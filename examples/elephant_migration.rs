//! Large-flow migration (paper §5.3): elephants start on the overlay
//! during control-plane congestion, get spotted by the controller's
//! flow-stats polling, and are migrated to physical paths — where the
//! data plane is orders of magnitude faster.
//!
//! Prints each elephant's delivery-rate timeline so the migration moment
//! is visible.
//!
//! ```text
//! cargo run --release --example elephant_migration
//! ```

use scotch::scenario::Scenario;
use scotch_sim::SimTime;

fn main() {
    let report = Scenario::overlay_datacenter(4)
        .with_clients(50.0)
        .with_attack(2_000.0)
        .with_elephants(3, 1200.0, 9000, SimTime::from_secs(2))
        .run(SimTime::from_secs(12), 11);

    println!("{}\n", report.summary());
    println!(
        "migrations: {} (deferred: {})\n",
        report.app.migrations, report.app.migrations_deferred
    );

    for (id, deliveries) in &report.tracked {
        if deliveries.is_empty() {
            continue;
        }
        println!("elephant {:?}: delivery rate per second", id);
        let start = deliveries[0].0.as_secs_f64();
        let end = deliveries.last().unwrap().0.as_secs_f64();
        for sec in (start as u64)..=(end as u64) {
            let lo = sec as f64;
            let hi = lo + 1.0;
            let in_bucket: Vec<_> = deliveries
                .iter()
                .filter(|(t, _)| {
                    let s = t.as_secs_f64();
                    s >= lo && s < hi
                })
                .collect();
            let n = in_bucket.len();
            let mean_lat_us = if n > 0 {
                in_bucket
                    .iter()
                    .map(|(_, l)| l.as_secs_f64() * 1e6)
                    .sum::<f64>()
                    / n as f64
            } else {
                0.0
            };
            let bar = "#".repeat(n / 40);
            println!("  t={sec:>2}s {n:>5} pps  lat {mean_lat_us:>7.0}us {bar}");
        }
    }

    let elephants: Vec<_> = report.flows.iter().filter(|f| f.intended >= 9000).collect();
    for e in &elephants {
        println!(
            "elephant {} delivered {}/{} packets ({} KB)",
            e.key,
            e.delivered,
            e.intended,
            e.delivered_bytes / 1024
        );
    }
    assert!(report.app.migrations >= 1, "at least one elephant migrates");
}
