//! Quickstart: the paper's headline result in ~30 lines.
//!
//! Runs the same DDoS flood against a Pica8-class switch twice — once with
//! the plain reactive controller, once with Scotch — and prints the client
//! flow failure fractions side by side.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use scotch::app::ControllerMode;
use scotch::scenario::Scenario;
use scotch_sim::SimTime;

fn main() {
    let horizon = SimTime::from_secs(10);
    let attack = 2_000.0; // spoofed new flows per second
    let clients = 100.0; // the paper's probe rate

    println!("DDoS attack: {attack} spoofed flows/s; clients: {clients} flows/s\n");

    // Without Scotch: the Pica8 OFA (~200 Packet-In/s) collapses.
    let baseline = Scenario::overlay_datacenter(4)
        .with_mode(ControllerMode::Baseline)
        .with_clients(clients)
        .with_attack(attack)
        .run(horizon, 42);
    println!("baseline   : {}", baseline.summary());

    // With Scotch: the overlay absorbs the surge.
    let scotch = Scenario::overlay_datacenter(4)
        .with_clients(clients)
        .with_attack(attack)
        .run(horizon, 42);
    println!("with Scotch: {}\n", scotch.summary());

    let steady = |r: &scotch::Report| {
        r.client_failure_fraction_between(SimTime::from_secs(1), SimTime::from_secs(9))
    };
    println!(
        "client flow failure (steady state): baseline {:.1}%  ->  Scotch {:.2}%",
        steady(&baseline) * 100.0,
        steady(&scotch) * 100.0
    );
    println!(
        "overlay activations: {}, flows carried by the overlay: {}",
        scotch.app.activations, scotch.app.overlay_admitted
    );

    assert!(steady(&baseline) > 0.5, "baseline should collapse");
    assert!(steady(&scotch) < 0.05, "Scotch should protect clients");
    println!("\nOK: Scotch elastically scaled the control plane.");
}
