//! Policy-consistent middlebox traversal (paper §5.4, Fig. 8).
//!
//! A stateful firewall fronts server 0. Flows must cross it on the
//! overlay path (via shared "green" rules at the sandwich switch) AND on
//! the physical path after migration (per-flow "red" rules at higher
//! priority) — and crucially, the *same instance* both times, or the
//! firewall would reject mid-flow packets for missing state.
//!
//! ```text
//! cargo run --release --example middlebox_policy
//! ```

use scotch::scenario::Scenario;
use scotch_sim::SimTime;

fn main() {
    let report = Scenario::overlay_datacenter(4)
        .with_middlebox()
        .with_clients(50.0)
        .with_attack(2_000.0)
        .with_elephants(4, 900.0, 6000, SimTime::from_secs(2))
        .run(SimTime::from_secs(12), 5);

    println!("{}\n", report.summary());
    println!(
        "firewall: {} mid-flow rejections (must be 0 — policy consistency)",
        report.middlebox_rejections
    );
    println!(
        "elephants migrated overlay -> physical: {}",
        report.app.migrations
    );

    let elephants: Vec<_> = report.flows.iter().filter(|f| f.intended >= 6000).collect();
    println!("\nper-elephant outcome (every packet crossed the firewall):");
    for e in &elephants {
        println!(
            "  {}: {}/{} delivered, first served by {:?}",
            e.key, e.delivered, e.intended, e.served_by
        );
    }

    assert_eq!(
        report.middlebox_rejections, 0,
        "migration must never bypass or re-home the stateful firewall"
    );
    assert!(report.app.migrations >= 1);
    println!("\nOK: overlay and physical paths traverse the same middlebox instance.");
}
