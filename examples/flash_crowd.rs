//! Flash crowd: Scotch's benefit is not DDoS-specific. A legitimate load
//! surge ("normal (e.g., flash crowds) ... traffic surge", paper abstract)
//! overloads the OFA exactly the same way; Scotch absorbs it and then
//! withdraws.
//!
//! ```text
//! cargo run --release --example flash_crowd
//! ```

use scotch::app::ControllerMode;
use scotch::scenario::Scenario;
use scotch_sim::SimTime;
use scotch_workload::flash::RateProfile;

fn main() {
    let profile = RateProfile {
        base: 30.0,
        peak: 1_800.0,
        surge_start: SimTime::from_secs(3),
        peak_start: SimTime::from_secs(4),
        peak_end: SimTime::from_secs(9),
        surge_end: SimTime::from_secs(10),
    };
    println!(
        "flash crowd: {} -> {} flows/s between t=3s and t=10s\n",
        profile.base, profile.peak
    );

    for (label, mode) in [
        ("baseline", ControllerMode::Baseline),
        ("scotch  ", ControllerMode::Scotch),
    ] {
        let report = Scenario::overlay_datacenter(4)
            .with_mode(mode)
            .with_flash_crowd(profile)
            .run(SimTime::from_secs(16), 99);
        let peak_failure =
            report.client_failure_fraction_between(SimTime::from_secs(4), SimTime::from_secs(9));
        println!(
            "{label}: {} flows, peak-window failure {:.1}%, activations {}, withdrawals {}",
            report.client_flows(),
            peak_failure * 100.0,
            report.app.activations,
            report.app.withdrawals,
        );
        // A flash crowd is all legitimate users: every failed flow is a
        // lost customer.
        let lost = report
            .flows
            .iter()
            .filter(|f| !f.is_attack && !f.succeeded())
            .count();
        println!("         lost users: {lost}");
    }
}
