//! Elastic scaling — the paper's title feature (§5.6).
//!
//! One mesh vSwitch absorbs ~10k Packet-In/s; a 15k flows/s flood
//! overwhelms it. At t=4s the operator (or an autoscaler) joins a second
//! vSwitch to the *live* overlay: tunnels are laid, the select group is
//! re-installed with the new bucket, and client failure collapses without
//! touching a single flow in flight.
//!
//! ```text
//! cargo run --release --example elastic_scaling
//! ```

use scotch::scenario::Scenario;
use scotch_sim::SimTime;

fn main() {
    let report = Scenario::overlay_datacenter(1)
        .with_backups(1)
        .with_clients(100.0)
        .with_attack(15_000.0)
        .with_vswitch_join(0, SimTime::from_secs(4))
        .run(SimTime::from_secs(8), 13);

    println!("{}\n", report.summary());
    println!("t(s)  client flows  failed");
    for sec in 0..8u64 {
        let from = SimTime::from_secs(sec);
        let to = SimTime::from_secs(sec + 1);
        let flows: Vec<_> = report
            .flows
            .iter()
            .filter(|f| !f.is_attack && f.started_at >= from && f.started_at < to)
            .collect();
        let failed = flows.iter().filter(|f| !f.succeeded()).count();
        let marker = if sec == 4 {
            "  <- second vSwitch joins"
        } else {
            ""
        };
        println!("{sec:>3}   {:>12}  {failed:>6}{marker}", flows.len());
    }
    println!("\nper-vSwitch Packet-In totals:");
    for v in report
        .vswitches
        .iter()
        .filter(|v| !v.name.starts_with("hostvsw"))
    {
        println!("  {:<10} {:>8}", v.name, v.ofa.packet_in_sent);
    }

    let before =
        report.client_failure_fraction_between(SimTime::from_secs(2), SimTime::from_secs(4));
    let after =
        report.client_failure_fraction_between(SimTime::from_secs(5), SimTime::from_secs(7));
    println!(
        "\nclient failure: {:.1}% before the join -> {:.1}% after",
        before * 100.0,
        after * 100.0
    );
    assert!(after < before / 3.0, "the join must fix the overload");
}
