//! DDoS mitigation walk-through: watch Scotch's lifecycle under an attack
//! that starts, peaks, and stops — activation, overlay routing, ingress
//! differentiation, and withdrawal (paper §4.2, §5.2, §5.5).
//!
//! ```text
//! cargo run --release --example ddos_mitigation
//! ```

use scotch::scenario::Scenario;
use scotch_sim::SimTime;

fn main() {
    // Attack active between t=2s and t=8s at 2500 flows/s.
    let report = Scenario::overlay_datacenter(5)
        .with_clients(60.0)
        .with_attack_window(2_500.0, SimTime::from_secs(2), SimTime::from_secs(8))
        .run(SimTime::from_secs(16), 7);

    println!("{}\n", report.summary());

    // Per-second client success timeline.
    println!("t(s)  client flows  failed   phase");
    for sec in 0..15u64 {
        let from = SimTime::from_secs(sec);
        let to = SimTime::from_secs(sec + 1);
        let flows: Vec<_> = report
            .flows
            .iter()
            .filter(|f| !f.is_attack && f.started_at >= from && f.started_at < to)
            .collect();
        let failed = flows.iter().filter(|f| !f.succeeded()).count();
        let phase = match sec {
            0..=1 => "calm",
            2..=7 => "under attack (overlay active)",
            _ => "attack over (withdrawing)",
        };
        println!("{sec:>3}   {:>12}  {failed:>6}   {phase}", flows.len());
    }

    println!(
        "\nlifecycle: {} activation(s), {} withdrawal(s)",
        report.app.activations, report.app.withdrawals
    );
    println!(
        "admissions: {} physical, {} overlay, {} dropped at the controller",
        report.app.physical_admitted, report.app.overlay_admitted, report.app.dropped
    );
    println!(
        "OFA drops at the hardware switch: {} (all during the pre-activation transient)",
        report.drops.ofa_overload
    );
    assert!(report.app.activations >= 1);
    assert!(report.app.withdrawals >= 1);
}
