//! Deterministic per-packet telemetry sampling.
//!
//! NetFlow-style sampled measurement ("Reinventing NetFlow for OpenFlow
//! Software-Defined Networks"): instead of counting every packet into the
//! exported stats, the vSwitch picks each forwarded packet independently
//! with probability `rate` and counts only the picks. The monitor then
//! multiplies sampled counts by `1/rate` (Horvitz–Thompson) to estimate
//! true volumes.
//!
//! The per-packet decision stream is drawn from a dedicated [`SimRng`]
//! forked off the scenario seed per vSwitch (the same forking discipline
//! as the fault engine and the shard lanes), so the full sample sequence
//! is bit-reproducible per `(scenario, seed, rate)` and invariant to the
//! shard count — a vSwitch sees its packets in the same canonical order
//! on every partitioning.
//!
//! Rather than drawing one uniform per packet, the sampler draws a
//! *geometric skip*: the number of consecutive non-sampled packets before
//! the next sample (`P(gap = k) = rate·(1−rate)^k`). The steady-state
//! per-packet cost is a single counter decrement, and one RNG draw per
//! *sampled* packet — at rate 1/64 that is ~64× fewer draws than naive
//! per-packet Bernoulli. At `rate ≥ 1.0` every packet is sampled with no
//! RNG draw at all, which is what makes `sampled { rate: 1.0 }` degrade
//! exactly (bit-for-bit) to exhaustive counting.

use scotch_sim::SimRng;

/// A geometric-skip packet sampler owned by one vSwitch.
#[derive(Debug, Clone)]
pub struct PacketSampler {
    rate: f64,
    /// Packets still to pass un-sampled before the next sampled one.
    skip: u64,
    rng: SimRng,
}

impl PacketSampler {
    /// A sampler picking each packet with probability `rate ∈ (0, 1]`.
    pub fn new(rate: f64, rng: SimRng) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "sampling rate must be in (0, 1], got {rate}"
        );
        let mut s = PacketSampler { rate, skip: 0, rng };
        if s.rate < 1.0 {
            s.skip = s.draw_gap();
        }
        s
    }

    /// The configured sampling probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Inverse-transform sample of the geometric gap before the next pick.
    fn draw_gap(&mut self) -> u64 {
        let u = self.rng.f64();
        // u ∈ [0,1) ⇒ ln(1−u) ∈ (−∞, 0]; ln(1−rate) < 0 for rate < 1.
        // u = 0 gives gap 0 (sample immediately); the `as` cast saturates
        // the (unreachable in practice) +∞ case.
        ((1.0 - u).ln() / (1.0 - self.rate).ln()).floor() as u64
    }

    /// Advance past one forwarded packet; `true` means *sample it*.
    pub fn tick(&mut self) -> bool {
        if self.rate >= 1.0 {
            return true;
        }
        if self.skip == 0 {
            self.skip = self.draw_gap();
            true
        } else {
            self.skip -= 1;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_one_samples_every_packet() {
        let mut s = PacketSampler::new(1.0, SimRng::new(7));
        assert!((0..10_000).all(|_| s.tick()));
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = PacketSampler::new(1.0 / 16.0, SimRng::new(42));
        let mut b = PacketSampler::new(1.0 / 16.0, SimRng::new(42));
        for _ in 0..50_000 {
            assert_eq!(a.tick(), b.tick());
        }
    }

    #[test]
    fn empirical_frequency_tracks_rate() {
        for &rate in &[0.5, 0.25, 1.0 / 64.0] {
            let mut s = PacketSampler::new(rate, SimRng::new(1234));
            let n = 400_000;
            let picked = (0..n).filter(|_| s.tick()).count();
            let observed = picked as f64 / n as f64;
            assert!(
                (observed - rate).abs() < rate * 0.1,
                "rate {rate}: observed {observed}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn zero_rate_panics() {
        PacketSampler::new(0.0, SimRng::new(1));
    }
}
