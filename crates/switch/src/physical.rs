//! The hardware OpenFlow switch model (Pica8 / HP class).
//!
//! Data plane: a multi-table [`Pipeline`] plus a [`GroupTable`], processing
//! at line rate (links are the only bandwidth constraint) — *except* when
//! heavy rule-insertion load starves the shared switch CPU, reproducing
//! Fig. 10.
//!
//! Control plane: an [`Ofa`] with the calibrated Packet-In and
//! rule-insertion limits.

use crate::ofa::Ofa;
use crate::profile::SwitchProfile;
use crate::{DropReason, Output};
use scotch_net::{NodeId, Packet, PortId};
use scotch_openflow::messages::{FlowStat, GroupModCommand, OfError};
use scotch_openflow::{
    Action, ControllerToSwitch, FlowModCommand, GroupTable, PacketInReason, Pipeline,
    SwitchToController, TableId,
};
use scotch_sim::rate::Ewma;
use scotch_sim::{SimDuration, SimRng, SimTime};

/// Data-plane counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets forwarded by the data plane.
    pub forwarded: u64,
    /// Packets dropped by the Fig. 10 interaction collapse.
    pub dropped_interaction: u64,
    /// Table-miss packets lost in the OFA.
    pub dropped_ofa: u64,
    /// Packets dropped by policy or dead groups.
    pub dropped_other: u64,
}

impl SwitchStats {
    /// Register these counters into a [`MetricsRegistry`] under
    /// `<prefix>.<field>` (see [`crate::ofa::OfaStats::register_metrics`]).
    pub fn register_metrics(&self, prefix: &str, reg: &mut scotch_sim::MetricsRegistry) {
        reg.add(&format!("{prefix}.forwarded"), self.forwarded);
        reg.add(
            &format!("{prefix}.dropped_interaction"),
            self.dropped_interaction,
        );
        reg.add(&format!("{prefix}.dropped_ofa"), self.dropped_ofa);
        reg.add(&format!("{prefix}.dropped_other"), self.dropped_other);
    }
}

/// A hardware OpenFlow switch.
#[derive(Debug, Clone)]
pub struct PhysicalSwitch {
    /// The switch's node in the topology.
    pub node: NodeId,
    profile: SwitchProfile,
    pipeline: Pipeline,
    groups: GroupTable,
    ofa: Ofa,
    /// Offered data-plane rate estimate, for the interaction model.
    data_rate: Ewma,
    rng: SimRng,
    stats: SwitchStats,
    /// Reusable per-packet action scratch (steady-state zero allocation).
    action_buf: Vec<Action>,
    /// Reusable scratch for group-selected actions.
    group_buf: Vec<Action>,
}

impl PhysicalSwitch {
    /// Build a switch at topology node `node` with the given profile.
    pub fn new(node: NodeId, profile: SwitchProfile, mut rng: SimRng) -> Self {
        let ofa_rng = rng.fork(0x0FA);
        PhysicalSwitch {
            node,
            pipeline: Pipeline::new(profile.n_tables, profile.flow_table_capacity),
            groups: GroupTable::new(),
            ofa: Ofa::new(&profile, ofa_rng),
            data_rate: Ewma::new(SimDuration::from_millis(500)),
            rng,
            profile,
            stats: SwitchStats::default(),
            action_buf: Vec::new(),
            group_buf: Vec::new(),
        }
    }

    /// The device profile.
    pub fn profile(&self) -> &SwitchProfile {
        &self.profile
    }

    /// The flow-table pipeline (tests and stats).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Mutable pipeline access (test setup without the OFA path).
    pub fn pipeline_mut(&mut self) -> &mut Pipeline {
        &mut self.pipeline
    }

    /// The group table.
    pub fn groups(&self) -> &GroupTable {
        &self.groups
    }

    /// OFA counters.
    pub fn ofa_stats(&self) -> crate::ofa::OfaStats {
        self.ofa.stats()
    }

    /// Data-plane counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// One-way control-channel latency to the controller.
    pub fn control_latency(&self) -> SimDuration {
        self.profile.control_latency
    }

    /// Set the OFA's service-time multiplier (fault injection: OFA
    /// slowdown). `1.0` restores the healthy agent.
    pub fn set_ofa_slowdown(&mut self, factor: f64) {
        self.ofa.set_slowdown(factor);
    }

    /// Fig. 10: does the shared CPU drop this data packet? Consumes one
    /// observation of the offered data rate either way.
    fn interaction_drops(&mut self, now: SimTime) -> bool {
        let offered = self.data_rate.observe(now).max(1e-9);
        let Some(knee) = self.profile.interaction_knee else {
            return false;
        };
        if self.ofa.attempted_insert_rate(now) < knee {
            return false;
        }
        let p_drop = (1.0 - self.profile.collapsed_pps / offered).clamp(0.0, 1.0);
        self.rng.chance(p_drop)
    }

    /// Process a data-plane packet arriving on `in_port`.
    ///
    /// Convenience wrapper over [`PhysicalSwitch::handle_packet_into`]
    /// (tests and one-shot callers; the simulation loop reuses a buffer).
    pub fn handle_packet(&mut self, now: SimTime, in_port: PortId, packet: Packet) -> Vec<Output> {
        let mut out = Vec::new();
        self.handle_packet_into(now, in_port, packet, &mut out);
        out
    }

    /// Process a data-plane packet, appending outputs to `out` (the hot
    /// path: no per-packet allocation with a reused buffer).
    pub fn handle_packet_into(
        &mut self,
        now: SimTime,
        in_port: PortId,
        packet: Packet,
        out: &mut Vec<Output>,
    ) {
        if self.interaction_drops(now) {
            self.stats.dropped_interaction += 1;
            out.push(Output::Dropped {
                reason: DropReason::DataPlaneOverload,
                packet,
            });
            return;
        }
        // Run the pipeline into the reusable scratch buffer: no per-packet
        // allocation on the forwarding path.
        let mut actions = std::mem::take(&mut self.action_buf);
        let matched = self
            .pipeline
            .process_into(now, &packet, in_port, &mut actions);
        if matched {
            self.execute_actions(now, in_port, packet, &actions, 0, out);
        } else {
            self.punt_to_controller(now, in_port, packet, out);
        }
        self.action_buf = actions;
    }

    fn punt_to_controller(
        &mut self,
        now: SimTime,
        in_port: PortId,
        packet: Packet,
        out: &mut Vec<Output>,
    ) {
        match self.ofa.offer_packet_in(now) {
            Some(at) => out.push(Output::ToController {
                at,
                msg: SwitchToController::PacketIn {
                    packet,
                    in_port,
                    reason: PacketInReason::NoMatch,
                    via_tunnel: None,
                    ingress_label: None,
                },
            }),
            None => {
                self.stats.dropped_ofa += 1;
                out.push(Output::Dropped {
                    reason: DropReason::OfaOverload,
                    packet,
                });
            }
        }
    }

    fn execute_actions(
        &mut self,
        now: SimTime,
        in_port: PortId,
        packet: Packet,
        actions: &[Action],
        depth: u8,
        out: &mut Vec<Output>,
    ) {
        let mut pkt = packet;
        for action in actions {
            match action {
                Action::Output(p) => {
                    self.stats.forwarded += 1;
                    out.push(Output::Forward {
                        out_port: *p,
                        packet: pkt,
                    });
                }
                Action::ToController => {
                    self.punt_to_controller(now, in_port, pkt, out);
                }
                Action::PushLabel(l) => pkt.push_label(*l),
                Action::PopLabel => {
                    pkt.pop_label();
                }
                Action::Drop => {
                    self.stats.dropped_other += 1;
                    out.push(Output::Dropped {
                        reason: DropReason::Policy,
                        packet: pkt,
                    });
                    return;
                }
                Action::Group(g) => {
                    // One level of group indirection (OpenFlow forbids
                    // group→group chains on most hardware; Scotch needs one
                    // level only).
                    if depth == 0 {
                        let mut acts = std::mem::take(&mut self.group_buf);
                        acts.clear();
                        let found = match self.groups.select(*g, &pkt.key) {
                            Some(chosen) => {
                                acts.extend_from_slice(chosen);
                                true
                            }
                            None => false,
                        };
                        if found {
                            self.execute_actions(now, in_port, pkt, &acts, 1, out);
                        } else {
                            self.stats.dropped_other += 1;
                            out.push(Output::Dropped {
                                reason: DropReason::NoRoute,
                                packet: pkt,
                            });
                        }
                        self.group_buf = acts;
                    }
                }
            }
        }
    }

    /// Process a controller message arriving over the control channel.
    pub fn handle_controller_msg(&mut self, now: SimTime, msg: ControllerToSwitch) -> Vec<Output> {
        match msg {
            ControllerToSwitch::FlowMod { table, command } => {
                self.handle_flow_mod(now, table, command)
            }
            ControllerToSwitch::GroupMod { group, command } => {
                match command {
                    GroupModCommand::Install(entry) => self.groups.install(group, entry),
                    GroupModCommand::Remove => {
                        self.groups.remove(group);
                    }
                    GroupModCommand::SetBucketAlive { bucket, alive } => {
                        if let Some(g) = self.groups.get_mut(group) {
                            if let Some(b) = g.buckets.get_mut(bucket) {
                                b.alive = alive;
                            }
                        }
                    }
                }
                Vec::new()
            }
            ControllerToSwitch::PacketOut { packet, out_port } => {
                self.stats.forwarded += 1;
                vec![Output::Forward { out_port, packet }]
            }
            ControllerToSwitch::FlowStatsRequest => {
                let mut stats = Vec::new();
                for t in 0..self.pipeline.table_count() {
                    let tid = TableId(t as u8);
                    for e in self.pipeline.table(tid).iter() {
                        stats.push(FlowStat {
                            table: tid,
                            matcher: e.matcher,
                            cookie: e.cookie,
                            packet_count: e.packet_count,
                            byte_count: e.byte_count,
                            duration: now.duration_since(e.installed_at),
                        });
                    }
                }
                vec![Output::ToController {
                    at: now + SimDuration::from_millis(1),
                    msg: SwitchToController::FlowStatsReply { stats },
                }]
            }
            ControllerToSwitch::EchoRequest { nonce } => vec![Output::ToController {
                at: now + SimDuration::from_micros(500),
                msg: SwitchToController::EchoReply { nonce },
            }],
            ControllerToSwitch::Barrier { xid } => vec![Output::ToController {
                at: now + SimDuration::from_millis(1),
                msg: SwitchToController::BarrierReply { xid },
            }],
        }
    }

    fn handle_flow_mod(
        &mut self,
        now: SimTime,
        table: TableId,
        command: FlowModCommand,
    ) -> Vec<Output> {
        match command {
            FlowModCommand::Add(entry) => {
                let Some(at) = self.ofa.offer_rule_insert(now) else {
                    return vec![Output::ToController {
                        at: now + SimDuration::from_millis(1),
                        msg: SwitchToController::Error {
                            kind: OfError::FlowModOverload,
                        },
                    }];
                };
                match self.pipeline.table_mut(table).insert(at, entry) {
                    Ok(()) => Vec::new(),
                    Err(_) => vec![Output::ToController {
                        at: now + SimDuration::from_millis(1),
                        msg: SwitchToController::Error {
                            kind: OfError::TableFull,
                        },
                    }],
                }
            }
            FlowModCommand::DeleteByCookie(cookie) => {
                self.pipeline.table_mut(table).remove_by_cookie(cookie);
                Vec::new()
            }
            FlowModCommand::DeleteExact(matcher) => {
                self.pipeline.table_mut(table).remove_exact(&matcher);
                Vec::new()
            }
            FlowModCommand::DeleteAll => {
                self.pipeline.table_mut(table).clear();
                Vec::new()
            }
        }
    }

    /// Expire timed-out entries, emitting FlowRemoved notifications.
    pub fn expire_flows(&mut self, now: SimTime) -> Vec<Output> {
        self.pipeline
            .expire(now)
            .into_iter()
            .map(|(table, e)| Output::ToController {
                at: now + SimDuration::from_millis(1),
                msg: SwitchToController::FlowRemoved {
                    table,
                    matcher: e.matcher,
                    cookie: e.cookie,
                    packet_count: e.packet_count,
                    byte_count: e.byte_count,
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_net::{FlowId, FlowKey, IpAddr};
    use scotch_openflow::{FlowEntry, Match};

    fn sw() -> PhysicalSwitch {
        PhysicalSwitch::new(
            NodeId(0),
            SwitchProfile::pica8_pronto_3780(),
            SimRng::new(7),
        )
    }

    fn pkt(sport: u16) -> Packet {
        Packet::flow_start(
            FlowKey::tcp(IpAddr::new(1, 0, 0, 1), sport, IpAddr::new(2, 0, 0, 2), 80),
            FlowId(sport as u64),
            SimTime::ZERO,
        )
    }

    fn add_rule(sw: &mut PhysicalSwitch, entry: FlowEntry) {
        let outs = sw.handle_controller_msg(
            SimTime::ZERO,
            ControllerToSwitch::FlowMod {
                table: TableId(0),
                command: FlowModCommand::Add(entry),
            },
        );
        assert!(outs.is_empty(), "flow mod should succeed: {outs:?}");
    }

    #[test]
    fn table_miss_becomes_packet_in() {
        let mut s = sw();
        let outs = s.handle_packet(SimTime::ZERO, PortId(0), pkt(1));
        assert_eq!(outs.len(), 1);
        match &outs[0] {
            Output::ToController {
                msg: SwitchToController::PacketIn { in_port, .. },
                ..
            } => assert_eq!(*in_port, PortId(0)),
            o => panic!("expected PacketIn, got {o:?}"),
        }
    }

    #[test]
    fn installed_rule_forwards() {
        let mut s = sw();
        add_rule(
            &mut s,
            FlowEntry::apply(
                Match::exact(pkt(1).key),
                10,
                vec![Action::Output(PortId(2))],
            ),
        );
        let outs = s.handle_packet(SimTime::from_millis(10), PortId(0), pkt(1));
        match &outs[0] {
            Output::Forward { out_port, .. } => assert_eq!(*out_port, PortId(2)),
            o => panic!("expected Forward, got {o:?}"),
        }
        assert_eq!(s.stats().forwarded, 1);
    }

    #[test]
    fn ofa_overload_drops_new_flows() {
        // Slam 10k new flows in one instant: only the queue depth + a few
        // survive.
        let mut s = sw();
        let mut punted = 0;
        let mut dropped = 0;
        for i in 0..10_000u16 {
            match &s.handle_packet(SimTime::ZERO, PortId(0), pkt(i))[0] {
                Output::ToController { .. } => punted += 1,
                Output::Dropped { reason, .. } => {
                    assert_eq!(*reason, DropReason::OfaOverload);
                    dropped += 1;
                }
                _ => panic!(),
            }
        }
        assert_eq!(punted, 64); // queue depth
        assert_eq!(dropped, 10_000 - 64);
    }

    #[test]
    fn flow_mod_overload_reports_error() {
        let mut s = sw();
        // Blast inserts at effectively infinite rate until one fails.
        let mut failures = 0;
        for i in 0..2000u16 {
            let outs = s.handle_controller_msg(
                SimTime::ZERO,
                ControllerToSwitch::FlowMod {
                    table: TableId(0),
                    command: FlowModCommand::Add(FlowEntry::apply(
                        Match::exact(pkt(i).key),
                        1,
                        vec![],
                    )),
                },
            );
            if let Some(Output::ToController {
                msg: SwitchToController::Error { kind },
                ..
            }) = outs.first()
            {
                assert_eq!(*kind, OfError::FlowModOverload);
                failures += 1;
            }
        }
        assert!(failures > 0, "overload should fail some inserts");
    }

    #[test]
    fn table_full_reports_error() {
        let mut profile = SwitchProfile::pica8_pronto_3780();
        profile.flow_table_capacity = 2;
        // Avoid insertion-rate failures: spread inserts out in time.
        let mut s = PhysicalSwitch::new(NodeId(0), profile, SimRng::new(1));
        let mut saw_full = false;
        for i in 0..3u16 {
            let outs = s.handle_controller_msg(
                SimTime::from_secs(i as u64),
                ControllerToSwitch::FlowMod {
                    table: TableId(0),
                    command: FlowModCommand::Add(FlowEntry::apply(
                        Match::exact(pkt(i).key),
                        1,
                        vec![],
                    )),
                },
            );
            if let Some(Output::ToController {
                msg:
                    SwitchToController::Error {
                        kind: OfError::TableFull,
                    },
                ..
            }) = outs.first()
            {
                saw_full = true;
            }
        }
        assert!(saw_full);
    }

    #[test]
    fn group_action_load_balances() {
        use scotch_openflow::{Bucket, GroupEntry, GroupId, SelectionPolicy};
        let mut s = sw();
        s.handle_controller_msg(
            SimTime::ZERO,
            ControllerToSwitch::GroupMod {
                group: GroupId(1),
                command: GroupModCommand::Install(GroupEntry::select(
                    SelectionPolicy::FlowHash,
                    vec![
                        Bucket::new(vec![Action::Output(PortId(10))]),
                        Bucket::new(vec![Action::Output(PortId(11))]),
                    ],
                )),
            },
        );
        add_rule(
            &mut s,
            FlowEntry::apply(Match::ANY, 1, vec![Action::Group(GroupId(1))]),
        );
        let mut ports = std::collections::HashSet::new();
        for i in 0..64u16 {
            for o in s.handle_packet(SimTime::from_millis(i as u64 + 10), PortId(0), pkt(i)) {
                if let Output::Forward { out_port, .. } = o {
                    ports.insert(out_port);
                }
            }
        }
        assert_eq!(ports.len(), 2, "both buckets should be used");
    }

    #[test]
    fn packet_out_forwards_without_table() {
        let mut s = sw();
        let outs = s.handle_controller_msg(
            SimTime::ZERO,
            ControllerToSwitch::PacketOut {
                packet: pkt(1),
                out_port: PortId(5),
            },
        );
        assert!(matches!(
            outs[0],
            Output::Forward {
                out_port: PortId(5),
                ..
            }
        ));
    }

    #[test]
    fn stats_request_reports_counters() {
        let mut s = sw();
        add_rule(
            &mut s,
            FlowEntry::apply(Match::exact(pkt(1).key), 5, vec![Action::Output(PortId(1))])
                .with_cookie(42),
        );
        s.handle_packet(SimTime::from_millis(5), PortId(0), pkt(1).with_size(500));
        let outs = s.handle_controller_msg(
            SimTime::from_millis(10),
            ControllerToSwitch::FlowStatsRequest,
        );
        match &outs[0] {
            Output::ToController {
                msg: SwitchToController::FlowStatsReply { stats },
                ..
            } => {
                let st = stats.iter().find(|f| f.cookie == 42).unwrap();
                assert_eq!(st.packet_count, 1);
                assert_eq!(st.byte_count, 500);
            }
            o => panic!("expected stats reply, got {o:?}"),
        }
    }

    #[test]
    fn echo_and_barrier_reply() {
        let mut s = sw();
        let outs =
            s.handle_controller_msg(SimTime::ZERO, ControllerToSwitch::EchoRequest { nonce: 9 });
        assert!(matches!(
            outs[0],
            Output::ToController {
                msg: SwitchToController::EchoReply { nonce: 9 },
                ..
            }
        ));
        let outs = s.handle_controller_msg(SimTime::ZERO, ControllerToSwitch::Barrier { xid: 3 });
        assert!(matches!(
            outs[0],
            Output::ToController {
                msg: SwitchToController::BarrierReply { xid: 3 },
                ..
            }
        ));
    }

    #[test]
    fn expiry_emits_flow_removed() {
        use scotch_sim::SimDuration;
        let mut s = sw();
        add_rule(
            &mut s,
            FlowEntry::apply(Match::exact(pkt(1).key), 5, vec![])
                .with_hard_timeout(SimDuration::from_secs(10))
                .with_cookie(7),
        );
        assert!(s.expire_flows(SimTime::from_secs(5)).is_empty());
        let outs = s.expire_flows(SimTime::from_secs(11));
        assert!(matches!(
            outs[0],
            Output::ToController {
                msg: SwitchToController::FlowRemoved { cookie: 7, .. },
                ..
            }
        ));
    }

    #[test]
    fn fig10_interaction_collapses_data_plane() {
        let mut s = sw();
        // Pre-install a forwarding rule so data packets hit the fast path.
        add_rule(
            &mut s,
            FlowEntry::apply(Match::ANY, 1, vec![Action::Output(PortId(1))]),
        );
        // Warm up: 1000 pps data, no insertion load -> no loss.
        let mut lost_before = 0;
        for i in 0..2000u64 {
            let now = SimTime::from_nanos(i * 1_000_000);
            let outs = s.handle_packet(now, PortId(0), pkt((i % 500) as u16));
            if matches!(
                outs[0],
                Output::Dropped {
                    reason: DropReason::DataPlaneOverload,
                    ..
                }
            ) {
                lost_before += 1;
            }
        }
        assert_eq!(lost_before, 0);

        // Now add 2000 attempted inserts/s (past the 1300 knee) alongside
        // 1000 pps of data; data-plane loss should exceed 90 %.
        let mut lost = 0;
        let mut total = 0;
        let t0 = 2_000_000_000u64;
        for i in 0..8000u64 {
            let now = SimTime::from_nanos(t0 + i * 500_000); // 2000/s inserts
            s.handle_controller_msg(
                now,
                ControllerToSwitch::FlowMod {
                    table: TableId(1),
                    command: FlowModCommand::Add(FlowEntry::apply(
                        Match::exact(pkt((i % 60000) as u16).key),
                        2,
                        vec![],
                    )),
                },
            );
            if i % 2 == 0 {
                // 1000 pps of data interleaved.
                total += 1;
                let outs = s.handle_packet(now, PortId(0), pkt((i % 500) as u16));
                if matches!(
                    outs[0],
                    Output::Dropped {
                        reason: DropReason::DataPlaneOverload,
                        ..
                    }
                ) {
                    lost += 1;
                }
            }
        }
        let ratio = lost as f64 / total as f64;
        assert!(ratio > 0.8, "interaction loss ratio {ratio}, want > 0.8");
    }
}
