//! Stateful middleboxes.
//!
//! §5.4's policy-consistency design exists because "middleboxes often
//! maintain flow states. When a flow is routed to a new middlebox in the
//! middle of the connection, the new middlebox may either reject the flow
//! or handle the flow differently due to lack of pre-established context."
//! That behaviour is exactly what these models implement: a
//! [`StatefulFirewall`] rejects mid-flow packets with no established state,
//! and a [`LoadBalancer`] pins each flow to a backend chosen on its first
//! packet. Migration that switches middlebox *instances* mid-flow therefore
//! visibly breaks flows — the failure Scotch's same-instance routing
//! (Fig. 8) prevents.

use scotch_net::{FlowKey, IpAddr, Packet, PacketKind};
use scotch_sim::{FxHashMap, FxHashSet};

/// Outcome of a middlebox processing a packet.
#[derive(Debug, Clone, PartialEq)]
pub enum MbVerdict {
    /// Pass the (possibly rewritten) packet through.
    Pass(Packet),
    /// Reject: no established state for a mid-flow packet.
    RejectNoState(Packet),
}

impl MbVerdict {
    /// True when the packet passed.
    pub fn passed(&self) -> bool {
        matches!(self, MbVerdict::Pass(_))
    }
}

/// A stateful firewall: admits flows on their first packet, then only
/// packets of flows it has state for (either direction).
#[derive(Debug, Clone, Default)]
pub struct StatefulFirewall {
    established: FxHashSet<FlowKey>,
    /// Flows admitted.
    pub admitted: u64,
    /// Mid-flow packets rejected for missing state.
    pub rejected: u64,
}

impl StatefulFirewall {
    /// A firewall with no established state.
    pub fn new() -> Self {
        StatefulFirewall::default()
    }

    /// Number of flows with established state.
    pub fn state_count(&self) -> usize {
        self.established.len()
    }

    /// Process one packet.
    pub fn process(&mut self, packet: Packet) -> MbVerdict {
        if packet.kind == PacketKind::FlowStart {
            self.established.insert(packet.key);
            self.admitted += 1;
            return MbVerdict::Pass(packet);
        }
        if self.established.contains(&packet.key)
            || self.established.contains(&packet.key.reversed())
        {
            MbVerdict::Pass(packet)
        } else {
            self.rejected += 1;
            MbVerdict::RejectNoState(packet)
        }
    }
}

/// A stateful L4 load balancer fronting a virtual IP.
///
/// The first packet of a flow to the VIP picks a backend (by flow hash)
/// and the choice is pinned; mid-flow packets with no pinned state are
/// rejected, mirroring the firewall's behaviour.
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    /// The virtual IP this balancer fronts.
    pub vip: IpAddr,
    backends: Vec<IpAddr>,
    pinned: FxHashMap<FlowKey, IpAddr>,
    /// Mid-flow packets rejected for missing state.
    pub rejected: u64,
}

impl LoadBalancer {
    /// A balancer for `vip` over the given backends (at least one).
    pub fn new(vip: IpAddr, backends: Vec<IpAddr>) -> Self {
        assert!(!backends.is_empty(), "need at least one backend");
        LoadBalancer {
            vip,
            backends,
            pinned: FxHashMap::default(),
            rejected: 0,
        }
    }

    /// Number of pinned flows.
    pub fn state_count(&self) -> usize {
        self.pinned.len()
    }

    /// Process one packet. Packets not addressed to the VIP pass through
    /// untouched.
    pub fn process(&mut self, mut packet: Packet) -> MbVerdict {
        if packet.key.dst != self.vip {
            return MbVerdict::Pass(packet);
        }
        let backend = match self.pinned.get(&packet.key) {
            Some(b) => *b,
            None if packet.kind == PacketKind::FlowStart => {
                let b = self.backends[(packet.key.hash64() % self.backends.len() as u64) as usize];
                self.pinned.insert(packet.key, b);
                b
            }
            None => {
                self.rejected += 1;
                return MbVerdict::RejectNoState(packet);
            }
        };
        packet.key.dst = backend;
        MbVerdict::Pass(packet)
    }
}

/// Any middlebox instance in the simulation.
#[derive(Debug, Clone)]
pub enum Middlebox {
    /// Stateful firewall.
    Firewall(StatefulFirewall),
    /// Stateful load balancer.
    LoadBalancer(LoadBalancer),
}

impl Middlebox {
    /// Dispatch processing.
    pub fn process(&mut self, packet: Packet) -> MbVerdict {
        match self {
            Middlebox::Firewall(f) => f.process(packet),
            Middlebox::LoadBalancer(l) => l.process(packet),
        }
    }

    /// Mid-flow rejections so far.
    pub fn rejected(&self) -> u64 {
        match self {
            Middlebox::Firewall(f) => f.rejected,
            Middlebox::LoadBalancer(l) => l.rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_net::FlowId;
    use scotch_sim::SimTime;

    fn key() -> FlowKey {
        FlowKey::tcp(IpAddr::new(1, 0, 0, 1), 99, IpAddr::new(2, 0, 0, 2), 80)
    }

    fn start(k: FlowKey) -> Packet {
        Packet::flow_start(k, FlowId(1), SimTime::ZERO)
    }

    fn data(k: FlowKey, seq: u32) -> Packet {
        Packet::data(k, FlowId(1), SimTime::ZERO, seq, 1000)
    }

    #[test]
    fn firewall_admits_then_passes() {
        let mut fw = StatefulFirewall::new();
        assert!(fw.process(start(key())).passed());
        assert!(fw.process(data(key(), 1)).passed());
        // Reverse direction shares state.
        assert!(fw.process(data(key().reversed(), 1)).passed());
        assert_eq!(fw.admitted, 1);
        assert_eq!(fw.state_count(), 1);
    }

    #[test]
    fn firewall_rejects_stateless_midflow() {
        // The §5.4 failure: a flow shows up mid-stream at a firewall that
        // never saw its SYN.
        let mut fw = StatefulFirewall::new();
        let v = fw.process(data(key(), 5));
        assert_eq!(v, MbVerdict::RejectNoState(data(key(), 5)));
        assert_eq!(fw.rejected, 1);
    }

    #[test]
    fn lb_pins_backend_per_flow() {
        let vip = IpAddr::new(10, 0, 0, 100);
        let backends = vec![IpAddr::new(10, 0, 1, 1), IpAddr::new(10, 0, 1, 2)];
        let mut lb = LoadBalancer::new(vip, backends.clone());
        let k = FlowKey::tcp(IpAddr::new(1, 1, 1, 1), 5, vip, 80);
        let MbVerdict::Pass(p1) = lb.process(start(k)) else {
            panic!()
        };
        assert!(backends.contains(&p1.key.dst));
        let MbVerdict::Pass(p2) = lb.process(data(k, 1)) else {
            panic!()
        };
        assert_eq!(p1.key.dst, p2.key.dst, "backend must stay pinned");
        assert_eq!(lb.state_count(), 1);
    }

    #[test]
    fn lb_rejects_stateless_midflow() {
        let vip = IpAddr::new(10, 0, 0, 100);
        let mut lb = LoadBalancer::new(vip, vec![IpAddr::new(10, 0, 1, 1)]);
        let k = FlowKey::tcp(IpAddr::new(1, 1, 1, 1), 5, vip, 80);
        assert!(!lb.process(data(k, 3)).passed());
        assert_eq!(lb.rejected, 1);
    }

    #[test]
    fn lb_ignores_other_destinations() {
        let vip = IpAddr::new(10, 0, 0, 100);
        let mut lb = LoadBalancer::new(vip, vec![IpAddr::new(10, 0, 1, 1)]);
        let v = lb.process(data(key(), 3));
        assert!(v.passed());
        assert_eq!(lb.state_count(), 0);
    }

    #[test]
    fn enum_dispatch() {
        let mut mb = Middlebox::Firewall(StatefulFirewall::new());
        assert!(mb.process(start(key())).passed());
        assert_eq!(mb.rejected(), 0);
        let mut mb2 = Middlebox::LoadBalancer(LoadBalancer::new(
            IpAddr::new(9, 9, 9, 9),
            vec![IpAddr::new(8, 8, 8, 8)],
        ));
        let k = FlowKey::tcp(IpAddr::new(1, 1, 1, 1), 5, IpAddr::new(9, 9, 9, 9), 80);
        assert!(!mb2.process(data(k, 1)).passed());
        assert_eq!(mb2.rejected(), 1);
    }
}
