//! The OpenFlow Agent (OFA) model.
//!
//! §3.1: "One problem with the current OpenFlow switch implementation is
//! that the OFA typically runs on a low end CPU that has limited processing
//! power." The OFA is the control-path bottleneck Scotch works around; its
//! three measured behaviours are modelled here:
//!
//! 1. **Packet-In generation** (Fig. 3/4): a FIFO served at
//!    `packet_in_capacity` messages/s with a bounded queue. Overflowing
//!    table-miss packets are lost — the "client flow failure" of Fig. 3.
//! 2. **Rule insertion** (Fig. 9): lossless up to `rule_insert_lossless`;
//!    past that, per-request success probability follows a calibrated
//!    saturation curve that plateaus at `rule_insert_ceiling`. We measured
//!    the aggregate curve (the paper's Fig. 9) and apply it per request
//!    using an EWMA of the attempted rate — mechanistic enough to respond
//!    to time-varying load, simple enough to document.
//! 3. **Data/control interaction** (Fig. 10): the attempted-insertion EWMA
//!    is exported so the switch's data plane can model the shared-CPU
//!    collapse past the knee.

use crate::profile::SwitchProfile;
use scotch_sim::rate::{Admission, Ewma, FifoServer};
use scotch_sim::{SimDuration, SimRng, SimTime};

/// Counters the OFA keeps (read by benchmarks and the controller's
/// monitoring, Fig. 4's three series come from these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OfaStats {
    /// Packet-In messages successfully generated.
    pub packet_in_sent: u64,
    /// Table-miss packets lost to Packet-In queue overflow.
    pub packet_in_dropped: u64,
    /// FlowMod insertions attempted by the controller.
    pub rules_attempted: u64,
    /// FlowMod insertions that took effect.
    pub rules_inserted: u64,
    /// FlowMod insertions lost to OFA overload.
    pub rules_failed: u64,
}

impl OfaStats {
    /// Register these counters into a [`MetricsRegistry`] under
    /// `<prefix>.<field>` — the unified export surface for reports and
    /// sweep manifests (the struct itself stays the hot-path increment
    /// site).
    pub fn register_metrics(&self, prefix: &str, reg: &mut scotch_sim::MetricsRegistry) {
        reg.add(&format!("{prefix}.packet_in_sent"), self.packet_in_sent);
        reg.add(
            &format!("{prefix}.packet_in_dropped"),
            self.packet_in_dropped,
        );
        reg.add(&format!("{prefix}.rules_attempted"), self.rules_attempted);
        reg.add(&format!("{prefix}.rules_inserted"), self.rules_inserted);
        reg.add(&format!("{prefix}.rules_failed"), self.rules_failed);
    }
}

/// The software agent of one switch.
#[derive(Debug, Clone)]
pub struct Ofa {
    /// Packet-In pipeline.
    packet_in: FifoServer,
    packet_in_service: SimDuration,
    /// Attempted rule-insertion rate estimate (drives Fig. 9 & Fig. 10
    /// behaviour).
    insert_rate: Ewma,
    /// Insertion completion pipeline (delay only; success is decided by the
    /// curve).
    insert_server: FifoServer,
    insert_service: SimDuration,
    lossless: f64,
    ceiling: f64,
    /// Saturation curve time constant, rules/s.
    tau: f64,
    /// Service-time multiplier (fault injection: OFA slowdown). 1.0 is the
    /// healthy agent; larger values slow both pipelines proportionally.
    slowdown: f64,
    stats: OfaStats,
    rng: SimRng,
}

impl Ofa {
    /// Build an OFA from a device profile. `rng` decides individual
    /// insertion successes in the overloaded regime.
    pub fn new(profile: &SwitchProfile, rng: SimRng) -> Self {
        // τ = (ceiling − lossless) keeps the curve's initial slope at 1, so
        // success never exceeds the attempted rate (Fig. 9 stays concave
        // and below the identity line).
        let tau = (profile.rule_insert_ceiling - profile.rule_insert_lossless).max(1.0);
        Ofa {
            packet_in: FifoServer::new(profile.packet_in_queue),
            packet_in_service: FifoServer::service_time(profile.packet_in_capacity),
            insert_rate: Ewma::new(SimDuration::from_millis(250)),
            insert_server: FifoServer::new(usize::MAX >> 1),
            insert_service: FifoServer::service_time(profile.rule_insert_ceiling),
            lossless: profile.rule_insert_lossless,
            ceiling: profile.rule_insert_ceiling,
            tau,
            slowdown: 1.0,
            stats: OfaStats::default(),
            rng,
        }
    }

    /// Set the service-time multiplier (fault injection). `1.0` restores
    /// the healthy agent; `k > 1` makes Packet-In generation and rule
    /// insertion `k`× slower.
    pub fn set_slowdown(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "OFA slowdown factor must be positive, got {factor}"
        );
        self.slowdown = factor;
    }

    /// Current service-time multiplier (1.0 when healthy).
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// A service time scaled by the active slowdown factor.
    fn scaled(&self, d: SimDuration) -> SimDuration {
        if self.slowdown == 1.0 {
            d
        } else {
            SimDuration::from_nanos((d.as_nanos() as f64 * self.slowdown).round() as u64)
        }
    }

    /// Offer a table-miss packet to the Packet-In path. Returns the time
    /// the Packet-In message leaves the OFA, or `None` if the queue
    /// overflowed and the packet is lost.
    pub fn offer_packet_in(&mut self, now: SimTime) -> Option<SimTime> {
        let service = self.scaled(self.packet_in_service);
        match self.packet_in.offer(now, service) {
            Admission::Accepted { departs_at } => {
                self.stats.packet_in_sent += 1;
                Some(departs_at)
            }
            Admission::Rejected => {
                self.stats.packet_in_dropped += 1;
                None
            }
        }
    }

    /// The aggregate successful-insertion rate at attempted rate `lambda`
    /// (the Fig. 9 curve).
    ///
    /// * `lambda ≤ lossless`: everything succeeds.
    /// * above: `lossless + (ceiling − lossless)·(1 − e^−(λ−lossless)/τ)`,
    ///   a concave rise flattening at the ceiling, matching the measured
    ///   plot.
    pub fn insertion_success_rate(&self, lambda: f64) -> f64 {
        if lambda <= self.lossless {
            lambda
        } else {
            let curve = self.lossless
                + (self.ceiling - self.lossless)
                    * (1.0 - (-(lambda - self.lossless) / self.tau).exp());
            curve.min(lambda)
        }
    }

    /// Offer one FlowMod insertion. Returns the time the rule takes effect,
    /// or `None` if the OFA lost it (Fig. 9's failed insertions).
    pub fn offer_rule_insert(&mut self, now: SimTime) -> Option<SimTime> {
        self.stats.rules_attempted += 1;
        let lambda = self.insert_rate.observe(now).max(1e-9);
        let p_success = (self.insertion_success_rate(lambda) / lambda).clamp(0.0, 1.0);
        if !self.rng.chance(p_success) {
            self.stats.rules_failed += 1;
            return None;
        }
        let service = self.scaled(self.insert_service);
        match self.insert_server.offer(now, service) {
            Admission::Accepted { departs_at } => {
                self.stats.rules_inserted += 1;
                Some(departs_at)
            }
            Admission::Rejected => {
                self.stats.rules_failed += 1;
                None
            }
        }
    }

    /// Current attempted-insertion rate estimate (rules/s) — the quantity
    /// Fig. 10's x-axis sweeps.
    pub fn attempted_insert_rate(&self, now: SimTime) -> f64 {
        self.insert_rate.value(now)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> OfaStats {
        self.stats
    }

    /// Current Packet-In backlog (diagnostic).
    pub fn packet_in_backlog(&mut self, now: SimTime) -> usize {
        self.packet_in.backlog(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SwitchProfile;

    fn pica8() -> Ofa {
        Ofa::new(&SwitchProfile::pica8_pronto_3780(), SimRng::new(1))
    }

    /// Drive `n` table-miss packets at `rate`/s; return achieved Packet-In
    /// rate.
    fn drive_packet_in(ofa: &mut Ofa, rate: f64, seconds: f64) -> f64 {
        let n = (rate * seconds) as u64;
        let gap = 1e9 / rate;
        let mut sent = 0u64;
        for i in 0..n {
            let now = SimTime::from_nanos((i as f64 * gap) as u64);
            if ofa.offer_packet_in(now).is_some() {
                sent += 1;
            }
        }
        sent as f64 / seconds
    }

    #[test]
    fn packet_in_underload_is_lossless() {
        let mut ofa = pica8();
        let achieved = drive_packet_in(&mut ofa, 100.0, 10.0);
        assert_eq!(achieved, 100.0);
        assert_eq!(ofa.stats().packet_in_dropped, 0);
    }

    #[test]
    fn packet_in_saturates_at_capacity() {
        // Fig. 4: achieved Packet-In rate tops out at the OFA capacity.
        let mut ofa = pica8();
        let achieved = drive_packet_in(&mut ofa, 2000.0, 10.0);
        assert!(
            (achieved - 200.0).abs() < 15.0,
            "achieved {achieved}/s, want ~200/s"
        );
        assert!(ofa.stats().packet_in_dropped > 0);
    }

    #[test]
    fn packet_in_departures_are_ordered() {
        let mut ofa = pica8();
        let a = ofa.offer_packet_in(SimTime::ZERO).unwrap();
        let b = ofa.offer_packet_in(SimTime::ZERO).unwrap();
        assert!(b > a);
        assert_eq!(b.duration_since(a), SimDuration::from_millis(5)); // 200/s
    }

    #[test]
    fn fig9_curve_shape() {
        let ofa = pica8();
        // Lossless region: identity.
        assert_eq!(ofa.insertion_success_rate(100.0), 100.0);
        assert_eq!(ofa.insertion_success_rate(200.0), 200.0);
        // Overload region: concave, below attempted, plateauing.
        let s600 = ofa.insertion_success_rate(600.0);
        let s1000 = ofa.insertion_success_rate(1000.0);
        let s3000 = ofa.insertion_success_rate(3000.0);
        assert!(s600 > 200.0 && s600 < 600.0);
        assert!(s1000 > s600);
        assert!(s3000 > s1000);
        assert!(s3000 <= 1000.0 + 1e-6);
        assert!(s3000 > 950.0, "plateau ≈ ceiling, got {s3000}");
    }

    /// Drive insertions at `rate`/s for `seconds`; return successful rate.
    fn drive_inserts(ofa: &mut Ofa, rate: f64, seconds: f64) -> f64 {
        let n = (rate * seconds) as u64;
        let gap = 1e9 / rate;
        let mut ok = 0u64;
        for i in 0..n {
            let now = SimTime::from_nanos((i as f64 * gap) as u64);
            if ofa.offer_rule_insert(now).is_some() {
                ok += 1;
            }
        }
        ok as f64 / seconds
    }

    #[test]
    fn insertions_lossless_below_budget() {
        let mut ofa = pica8();
        let ok = drive_inserts(&mut ofa, 150.0, 10.0);
        assert_eq!(ok, 150.0);
        assert_eq!(ofa.stats().rules_failed, 0);
    }

    #[test]
    fn insertions_saturate_like_fig9() {
        // At 2000 attempted/s the successful rate should sit near the
        // 1000/s plateau.
        let mut ofa = pica8();
        let ok = drive_inserts(&mut ofa, 2000.0, 10.0);
        assert!((850.0..1100.0).contains(&ok), "successful rate {ok}/s");
    }

    #[test]
    fn attempted_rate_estimator_tracks() {
        let mut ofa = pica8();
        for i in 0..2000u64 {
            // 1000 inserts/s for 2 s.
            ofa.offer_rule_insert(SimTime::from_nanos(i * 1_000_000));
        }
        let est = ofa.attempted_insert_rate(SimTime::from_secs(2));
        assert!((est - 1000.0).abs() < 150.0, "est={est}");
    }

    #[test]
    fn vswitch_ofa_is_much_faster() {
        let mut hw = pica8();
        let mut sw = Ofa::new(&SwitchProfile::open_vswitch(), SimRng::new(2));
        let hw_rate = drive_packet_in(&mut hw, 20_000.0, 5.0);
        let sw_rate = drive_packet_in(&mut sw, 20_000.0, 5.0);
        assert!(sw_rate > 40.0 * hw_rate, "hw={hw_rate} sw={sw_rate}");
    }

    #[test]
    fn slowdown_scales_packet_in_service() {
        let mut ofa = pica8();
        ofa.set_slowdown(4.0);
        let a = ofa.offer_packet_in(SimTime::ZERO).unwrap();
        let b = ofa.offer_packet_in(SimTime::ZERO).unwrap();
        // 200/s healthy → 5 ms; 4× slowdown → 20 ms between departures.
        assert_eq!(b.duration_since(a), SimDuration::from_millis(20));
        ofa.set_slowdown(1.0);
        assert_eq!(ofa.slowdown(), 1.0);
    }

    #[test]
    fn slowdown_cuts_achieved_packet_in_rate() {
        let mut ofa = pica8();
        ofa.set_slowdown(10.0);
        let achieved = drive_packet_in(&mut ofa, 2000.0, 10.0);
        // Healthy plateau ~200/s; 10× slowdown → ~20/s served, plus the
        // one-time 64-slot queue fill (64/10 s = 6.4/s of admissions).
        let expected = 20.0 + 64.0 / 10.0;
        assert!((achieved - expected).abs() < 5.0, "achieved {achieved}/s");
    }

    #[test]
    fn stats_are_consistent() {
        let mut ofa = pica8();
        drive_inserts(&mut ofa, 1000.0, 2.0);
        let s = ofa.stats();
        assert_eq!(s.rules_attempted, s.rules_inserted + s.rules_failed);
    }
}
