#![warn(missing_docs)]

//! # scotch-switch
//!
//! Device models for the Scotch reproduction:
//!
//! * [`profile::SwitchProfile`] — calibrated capacities of the testbed
//!   devices (Pica8 Pronto 3780, HP Procurve 6600, Open vSwitch), taken
//!   from the paper's measurements in §3 and §6.1–6.2.
//! * [`ofa::Ofa`] — the OpenFlow Agent model: a rate-limited Packet-In
//!   path, the rule-insertion success curve of Fig. 9, and the
//!   data-plane/control-path interaction knee of Fig. 10.
//! * [`physical::PhysicalSwitch`] — hardware switch: line-rate multi-table
//!   data plane + group table + slow OFA.
//! * [`vswitch::VSwitch`] — Open vSwitch: fast software control agent,
//!   pps-bounded software data plane, tunnel decapsulation and Packet-In
//!   metadata tagging (§5.2).
//! * [`middlebox`] — stateful firewall and load balancer used by the
//!   policy-consistency mechanism (§5.4).
//! * [`sampler::PacketSampler`] — deterministic geometric-skip packet
//!   sampler backing the NetFlow-style sampled telemetry mode.
//!
//! All models are passive state machines: methods take `now` and inputs,
//! and return [`Output`]s that the composition root (the `scotch` crate)
//! turns into scheduled events.

pub mod middlebox;
pub mod ofa;
pub mod physical;
pub mod profile;
pub mod sampler;
pub mod vswitch;

pub use ofa::Ofa;
pub use physical::PhysicalSwitch;
pub use profile::SwitchProfile;
pub use sampler::PacketSampler;
pub use vswitch::VSwitch;

use scotch_net::{Packet, PortId};
use scotch_openflow::SwitchToController;
use scotch_sim::SimTime;

/// Why a switch dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Table-miss packet lost because the OFA's Packet-In queue overflowed
    /// — the failure mode behind Fig. 3.
    OfaOverload,
    /// The data-plane capacity collapsed under rule-insertion load
    /// (Fig. 10).
    DataPlaneOverload,
    /// A rule said to drop.
    Policy,
    /// No route for the packet (e.g. select group with all buckets dead).
    NoRoute,
}

/// An effect produced by a device model, to be realized by the composition
/// root.
#[derive(Debug, Clone)]
pub enum Output {
    /// Emit `packet` on local port `out_port` (data plane; the root applies
    /// link bandwidth/latency).
    Forward {
        /// Egress port.
        out_port: PortId,
        /// Packet to transmit.
        packet: Packet,
    },
    /// Deliver a message to the controller at `at` (the OFA's service delay
    /// is already folded in; the root adds control-channel latency).
    ToController {
        /// Earliest emission time computed by the OFA model.
        at: SimTime,
        /// The message.
        msg: SwitchToController,
    },
    /// The packet was dropped.
    Dropped {
        /// Why.
        reason: DropReason,
        /// The dropped packet.
        packet: Packet,
    },
}
