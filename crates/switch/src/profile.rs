//! Calibrated device profiles.
//!
//! Numbers come from the paper's measurements:
//!
//! * **Fig. 3** — OFA Packet-In capacity ordering: Pica8 < HP Procurve ≪
//!   Open vSwitch. At ~200 new flows/s the Pica8 client-failure fraction
//!   starts climbing; the Procurve sustains noticeably more; OVS barely
//!   fails at the experiment's 3800 flows/s peak.
//! * **Fig. 9** — Pica8 rule insertion: lossless "up to 200 rules/second",
//!   successful rate "flattens out at about 1000 rules/second".
//! * **Fig. 10** — the data path collapses (>90 % loss at 500–2000 pps
//!   offered) once attempted insertion reaches ~1300 rules/s.
//! * §3.2 — Pica8 has 10 Gbps data ports; HP and OVS 1 Gbps; management
//!   ports 1 Gbps.

use scotch_sim::SimDuration;

/// Static capacities of a switch model.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchProfile {
    /// Human-readable device name.
    pub name: String,
    /// OFA Packet-In generation capacity, messages/second (Fig. 3/4
    /// bottleneck).
    pub packet_in_capacity: f64,
    /// OFA Packet-In queue depth (table-miss packets waiting for the
    /// agent); beyond it new-flow packets are lost.
    pub packet_in_queue: usize,
    /// Rule insertion rate the device sustains without loss (Fig. 9,
    /// left of the knee). This is the paper's safe controller budget `R`.
    pub rule_insert_lossless: f64,
    /// Saturated successful insertion ceiling (Fig. 9 plateau).
    pub rule_insert_ceiling: f64,
    /// Attempted-insertion rate at which the shared switch CPU starves the
    /// data plane (Fig. 10 turning point). `None` disables the effect.
    pub interaction_knee: Option<f64>,
    /// Residual data-plane forwarding capacity (packets/second) past the
    /// knee. Calibrated so 500–2000 pps offered loses >90 % (Fig. 10).
    pub collapsed_pps: f64,
    /// Per-flow-table entry capacity (TCAM bound, §3.3).
    pub flow_table_capacity: usize,
    /// Number of flow tables in the pipeline (Pica8 supports the
    /// multi-table feature Scotch needs, §3.3).
    pub n_tables: usize,
    /// Software data-plane forwarding cap in packets/second; `None` means
    /// the data plane is line-rate (hardware switches — the link model is
    /// then the only data-plane constraint).
    pub dataplane_pps: Option<f64>,
    /// One-way latency of the management-port control channel to the
    /// controller.
    pub control_latency: SimDuration,
}

impl SwitchProfile {
    /// Pica8 Pronto 3780 (the paper's primary device).
    pub fn pica8_pronto_3780() -> Self {
        SwitchProfile {
            name: "Pica8 Pronto 3780".into(),
            packet_in_capacity: 200.0,
            packet_in_queue: 64,
            rule_insert_lossless: 200.0,
            rule_insert_ceiling: 1000.0,
            interaction_knee: Some(1300.0),
            collapsed_pps: 25.0,
            flow_table_capacity: 2000,
            n_tables: 2,
            dataplane_pps: None,
            control_latency: SimDuration::from_millis(1),
        }
    }

    /// HP Procurve 6600 (older, higher OFA throughput, fewer OpenFlow
    /// data-plane features — no tunneling / multi-table, §3.3).
    pub fn hp_procurve_6600() -> Self {
        SwitchProfile {
            name: "HP Procurve 6600".into(),
            packet_in_capacity: 1000.0,
            packet_in_queue: 64,
            rule_insert_lossless: 300.0,
            rule_insert_ceiling: 1200.0,
            interaction_knee: None,
            collapsed_pps: f64::INFINITY,
            flow_table_capacity: 1500,
            n_tables: 1,
            dataplane_pps: None,
            control_latency: SimDuration::from_millis(1),
        }
    }

    /// Open vSwitch on an Intel Xeon E5-2450 2.1 GHz host (§3.2): the
    /// control agent is 1–2 orders of magnitude faster than the hardware
    /// OFAs; the data plane is software and pps-bounded instead.
    pub fn open_vswitch() -> Self {
        SwitchProfile {
            name: "Open vSwitch".into(),
            packet_in_capacity: 10_000.0,
            packet_in_queue: 2048,
            rule_insert_lossless: 20_000.0,
            rule_insert_ceiling: 20_000.0,
            interaction_knee: None,
            collapsed_pps: f64::INFINITY,
            flow_table_capacity: 100_000,
            n_tables: 2,
            dataplane_pps: Some(300_000.0),
            control_latency: SimDuration::from_micros(200),
        }
    }

    /// Open vSwitch accelerated with the Intel DPDK userspace datapath
    /// (§5.6: "Recent advancements in packet processing at general purpose
    /// computers, such as the systems based on the Intel DPDK library, can
    /// further boost the vSwitch forwarding speed significantly"). Same
    /// control agent, ~10x the software data plane.
    pub fn open_vswitch_dpdk() -> Self {
        SwitchProfile {
            name: "Open vSwitch (DPDK)".into(),
            dataplane_pps: Some(3_000_000.0),
            ..Self::open_vswitch()
        }
    }

    /// The controller's safe per-switch rule budget `R` for this device
    /// (§5.2/§6.1: "the OpenFlow controller should only insert the flow
    /// rules at a rate that does not cause installation failure").
    pub fn safe_rule_budget(&self) -> f64 {
        self.rule_insert_lossless
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_fig3() {
        let pica = SwitchProfile::pica8_pronto_3780();
        let hp = SwitchProfile::hp_procurve_6600();
        let ovs = SwitchProfile::open_vswitch();
        assert!(pica.packet_in_capacity < hp.packet_in_capacity);
        assert!(hp.packet_in_capacity < ovs.packet_in_capacity);
    }

    #[test]
    fn pica8_matches_fig9_fig10_calibration() {
        let p = SwitchProfile::pica8_pronto_3780();
        assert_eq!(p.rule_insert_lossless, 200.0);
        assert_eq!(p.rule_insert_ceiling, 1000.0);
        assert_eq!(p.interaction_knee, Some(1300.0));
        assert_eq!(p.safe_rule_budget(), 200.0);
    }

    #[test]
    fn only_vswitch_has_software_dataplane_cap() {
        assert!(SwitchProfile::pica8_pronto_3780().dataplane_pps.is_none());
        assert!(SwitchProfile::hp_procurve_6600().dataplane_pps.is_none());
        assert!(SwitchProfile::open_vswitch().dataplane_pps.is_some());
    }

    #[test]
    fn dpdk_boosts_the_data_plane_only() {
        let ovs = SwitchProfile::open_vswitch();
        let dpdk = SwitchProfile::open_vswitch_dpdk();
        assert!(dpdk.dataplane_pps.unwrap() >= 10.0 * ovs.dataplane_pps.unwrap());
        assert_eq!(dpdk.packet_in_capacity, ovs.packet_in_capacity);
    }

    #[test]
    fn scotch_requires_multi_table_on_pica8() {
        // §3.3 explains the Pica8 choice: multiple flow table support.
        assert!(SwitchProfile::pica8_pronto_3780().n_tables >= 2);
        assert_eq!(SwitchProfile::hp_procurve_6600().n_tables, 1);
    }
}
