//! The Open vSwitch model.
//!
//! §4: "The vSwitches have higher control plane capacity but lower data
//! plane throughput compared to the physical switches." A [`VSwitch`] has:
//!
//! * a fast software control agent (the OVS profile's Packet-In and
//!   insertion rates),
//! * a pps-bounded software data plane (DPDK-less OVS forwards a few
//!   hundred kpps per core),
//! * tunnel termination: when a tunneled packet arrives at the vSwitch
//!   that is the tunnel's endpoint, it decapsulates, recovers the inner
//!   ingress-port label, and — on table miss — reports both in the
//!   Packet-In metadata (§5.2), which is how the controller recovers the
//!   originating physical switch and ingress port.

use crate::ofa::Ofa;
use crate::profile::SwitchProfile;
use crate::sampler::PacketSampler;
use crate::{DropReason, Output};
use scotch_net::{Label, NodeId, Packet, PortId, TunnelId};
use scotch_openflow::messages::{FlowStat, GroupModCommand, OfError};
use scotch_openflow::{
    Action, ControllerToSwitch, FlowModCommand, FlowTable, GroupTable, PacketInReason,
    SwitchToController, TableId,
};
use scotch_sim::rate::{Admission, FifoServer};
use scotch_sim::{SimDuration, SimRng, SimTime};

/// vSwitch counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VSwitchStats {
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped at the software data plane's pps bound.
    pub dropped_dataplane: u64,
    /// Table-miss packets lost in the (fast, but finite) agent.
    pub dropped_agent: u64,
    /// Tunneled packets decapsulated here.
    pub decapsulated: u64,
    /// Controller messages silently absorbed while failed (the conservation
    /// invariant of the chaos harness accounts FlowMods against this).
    pub ctrl_absorbed: u64,
    /// Flow records exported by the *sampled* telemetry path (zero in
    /// exhaustive mode).
    pub sampled_exported: u64,
    /// Accumulated estimation error of exported sampled records, in parts
    /// per million of the true packet count — a simulator-side oracle
    /// comparing `sampled × 1/rate` against the ground-truth counter at
    /// export time. Divide by `sampled_exported` for the mean.
    pub est_error_ppm: u64,
}

impl VSwitchStats {
    /// Register these counters into a [`MetricsRegistry`] under
    /// `<prefix>.<field>` (see [`crate::ofa::OfaStats::register_metrics`]).
    pub fn register_metrics(&self, prefix: &str, reg: &mut scotch_sim::MetricsRegistry) {
        reg.add(&format!("{prefix}.forwarded"), self.forwarded);
        reg.add(
            &format!("{prefix}.dropped_dataplane"),
            self.dropped_dataplane,
        );
        reg.add(&format!("{prefix}.dropped_agent"), self.dropped_agent);
        reg.add(&format!("{prefix}.decapsulated"), self.decapsulated);
        reg.add(&format!("{prefix}.ctrl_absorbed"), self.ctrl_absorbed);
        reg.add(&format!("{prefix}.sampled_exported"), self.sampled_exported);
        reg.add(&format!("{prefix}.est_error_ppm"), self.est_error_ppm);
    }
}

/// An Open vSwitch participating in the Scotch overlay (mesh or host
/// vSwitch) or standing alone (the Fig. 3 comparison).
#[derive(Debug, Clone)]
pub struct VSwitch {
    /// The vSwitch's node in the topology.
    pub node: NodeId,
    profile: SwitchProfile,
    table: FlowTable,
    groups: GroupTable,
    ofa: Ofa,
    /// Software data-plane server (pps bound).
    dataplane: FifoServer,
    dataplane_service: SimDuration,
    stats: VSwitchStats,
    /// When true the vSwitch is failed: it forwards nothing and answers no
    /// heartbeats (§5.6 failure experiments).
    pub failed: bool,
    /// Reusable per-packet action scratch (steady-state zero allocation).
    action_buf: Vec<Action>,
    /// Reusable scratch for group-selected actions.
    group_buf: Vec<Action>,
    /// Telemetry sampler (`None` = exhaustive stats export).
    sampler: Option<PacketSampler>,
}

impl VSwitch {
    /// Build a vSwitch with the standard OVS profile.
    pub fn new(node: NodeId, rng: SimRng) -> Self {
        Self::with_profile(node, SwitchProfile::open_vswitch(), rng)
    }

    /// Build with a custom profile (tests, slower/faster hosts).
    pub fn with_profile(node: NodeId, profile: SwitchProfile, mut rng: SimRng) -> Self {
        let pps = profile.dataplane_pps.unwrap_or(1e9);
        VSwitch {
            node,
            table: FlowTable::new(profile.flow_table_capacity),
            groups: GroupTable::new(),
            ofa: Ofa::new(&profile, rng.fork(0x0FA)),
            dataplane: FifoServer::new(4096),
            dataplane_service: FifoServer::service_time(pps),
            profile,
            stats: VSwitchStats::default(),
            failed: false,
            action_buf: Vec::new(),
            group_buf: Vec::new(),
            sampler: None,
        }
    }

    /// Switch the stats-export path to sampled telemetry: count only
    /// packets the sampler picks, and export only flows with sampled
    /// traffic (plus, at `rate ≥ 1.0`, every installed flow — that is
    /// what makes rate 1.0 reproduce exhaustive replies exactly). `rng`
    /// must be forked deterministically per vSwitch from the scenario
    /// seed so replays and sharded runs see the identical pick sequence.
    pub fn enable_sampling(&mut self, rate: f64, rng: SimRng) {
        self.sampler = Some(PacketSampler::new(rate, rng));
    }

    /// The configured sampling rate, if sampled telemetry is enabled.
    pub fn sampling_rate(&self) -> Option<f64> {
        self.sampler.as_ref().map(|s| s.rate())
    }

    /// The device profile.
    pub fn profile(&self) -> &SwitchProfile {
        &self.profile
    }

    /// The flow table (tests, stats collection).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Agent counters.
    pub fn ofa_stats(&self) -> crate::ofa::OfaStats {
        self.ofa.stats()
    }

    /// Data-plane counters.
    pub fn stats(&self) -> VSwitchStats {
        self.stats
    }

    /// One-way control-channel latency.
    pub fn control_latency(&self) -> SimDuration {
        self.profile.control_latency
    }

    /// Set the agent's service-time multiplier (fault injection: OFA
    /// slowdown). `1.0` restores the healthy agent.
    pub fn set_ofa_slowdown(&mut self, factor: f64) {
        self.ofa.set_slowdown(factor);
    }

    /// Process a data-plane packet.
    ///
    /// `terminates_tunnel` tells the vSwitch whether it is the endpoint of
    /// the packet's outer tunnel (the composition root knows the tunnel
    /// table); if so the packet is decapsulated before table lookup.
    pub fn handle_packet(
        &mut self,
        now: SimTime,
        in_port: PortId,
        packet: Packet,
        terminates_tunnel: bool,
    ) -> Vec<Output> {
        let mut out = Vec::new();
        self.handle_packet_into(now, in_port, packet, terminates_tunnel, &mut out);
        out
    }

    /// Process a data-plane packet, appending outputs to `out` (the hot
    /// path: no per-packet allocation with a reused buffer).
    pub fn handle_packet_into(
        &mut self,
        now: SimTime,
        in_port: PortId,
        mut packet: Packet,
        terminates_tunnel: bool,
        out: &mut Vec<Output>,
    ) {
        if self.failed {
            self.stats.dropped_dataplane += 1;
            out.push(Output::Dropped {
                reason: DropReason::NoRoute,
                packet,
            });
            return;
        }
        // Software data plane: per-packet CPU cost.
        match self.dataplane.offer(now, self.dataplane_service) {
            Admission::Accepted { .. } => {}
            Admission::Rejected => {
                self.stats.dropped_dataplane += 1;
                out.push(Output::Dropped {
                    reason: DropReason::DataPlaneOverload,
                    packet,
                });
                return;
            }
        }

        // Tunnel termination: strip outer tunnel label and inner
        // ingress-port label, remembering both for Packet-In metadata.
        let mut via_tunnel: Option<TunnelId> = None;
        let mut ingress_label: Option<u16> = None;
        if terminates_tunnel {
            if let Some(Label::Tunnel(t)) = packet.top_label() {
                packet.pop_label();
                via_tunnel = Some(t);
                self.stats.decapsulated += 1;
                if let Some(Label::IngressPort(p)) = packet.top_label() {
                    packet.pop_label();
                    ingress_label = Some(p);
                }
            }
        }

        // Copy the matched entry's actions into the reusable scratch
        // buffer (actions are `Copy`): no per-packet allocation, and the
        // table borrow ends before `execute_actions` needs `&mut self`.
        let mut actions = std::mem::take(&mut self.action_buf);
        actions.clear();
        let sampler = &mut self.sampler;
        let matched = match self.table.match_packet_mut(now, &packet, in_port) {
            Some(entry) => {
                // Telemetry sampling: the sampler advances once per
                // matched packet; a pick lands on the matched entry's
                // sampled counters (one predicted branch when disabled).
                if let Some(s) = sampler.as_mut() {
                    if s.tick() {
                        entry.sampled_packets += 1;
                        entry.sampled_bytes += packet.size as u64;
                    }
                }
                for inst in &entry.instructions {
                    if let scotch_openflow::Instruction::Apply(a) = inst {
                        actions.extend_from_slice(a);
                    }
                }
                true
            }
            None => false,
        };
        if matched {
            self.execute_actions(now, in_port, packet, &actions, 0, out);
        } else {
            self.punt_to_controller(now, in_port, packet, via_tunnel, ingress_label, out);
        }
        self.action_buf = actions;
    }

    #[allow(clippy::too_many_arguments)]
    fn punt_to_controller(
        &mut self,
        now: SimTime,
        in_port: PortId,
        packet: Packet,
        via_tunnel: Option<TunnelId>,
        ingress_label: Option<u16>,
        out: &mut Vec<Output>,
    ) {
        match self.ofa.offer_packet_in(now) {
            Some(at) => out.push(Output::ToController {
                at,
                msg: SwitchToController::PacketIn {
                    packet,
                    in_port,
                    reason: PacketInReason::NoMatch,
                    via_tunnel,
                    ingress_label,
                },
            }),
            None => {
                self.stats.dropped_agent += 1;
                out.push(Output::Dropped {
                    reason: DropReason::OfaOverload,
                    packet,
                });
            }
        }
    }

    fn execute_actions(
        &mut self,
        now: SimTime,
        in_port: PortId,
        packet: Packet,
        actions: &[Action],
        depth: u8,
        out: &mut Vec<Output>,
    ) {
        let mut pkt = packet;
        for action in actions {
            match action {
                Action::Output(p) => {
                    self.stats.forwarded += 1;
                    out.push(Output::Forward {
                        out_port: *p,
                        packet: pkt,
                    });
                }
                Action::ToController => {
                    self.punt_to_controller(now, in_port, pkt, None, None, out);
                }
                Action::PushLabel(l) => pkt.push_label(*l),
                Action::PopLabel => {
                    pkt.pop_label();
                }
                Action::Drop => {
                    out.push(Output::Dropped {
                        reason: DropReason::Policy,
                        packet: pkt,
                    });
                    return;
                }
                Action::Group(g) => {
                    if depth == 0 {
                        let mut acts = std::mem::take(&mut self.group_buf);
                        acts.clear();
                        let found = match self.groups.select(*g, &pkt.key) {
                            Some(chosen) => {
                                acts.extend_from_slice(chosen);
                                true
                            }
                            None => false,
                        };
                        if found {
                            self.execute_actions(now, in_port, pkt, &acts, 1, out);
                        } else {
                            out.push(Output::Dropped {
                                reason: DropReason::NoRoute,
                                packet: pkt,
                            });
                        }
                        self.group_buf = acts;
                    }
                }
            }
        }
    }

    /// Process a controller message. A failed vSwitch is silent (heartbeat
    /// detection relies on this, §5.6).
    pub fn handle_controller_msg(&mut self, now: SimTime, msg: ControllerToSwitch) -> Vec<Output> {
        if self.failed {
            self.stats.ctrl_absorbed += 1;
            return Vec::new();
        }
        match msg {
            ControllerToSwitch::FlowMod { command, .. } => match command {
                FlowModCommand::Add(entry) => {
                    let Some(at) = self.ofa.offer_rule_insert(now) else {
                        return vec![Output::ToController {
                            at: now + SimDuration::from_millis(1),
                            msg: SwitchToController::Error {
                                kind: OfError::FlowModOverload,
                            },
                        }];
                    };
                    match self.table.insert(at, entry) {
                        Ok(()) => Vec::new(),
                        Err(_) => vec![Output::ToController {
                            at: now + SimDuration::from_millis(1),
                            msg: SwitchToController::Error {
                                kind: OfError::TableFull,
                            },
                        }],
                    }
                }
                FlowModCommand::DeleteByCookie(c) => {
                    self.table.remove_by_cookie(c);
                    Vec::new()
                }
                FlowModCommand::DeleteExact(m) => {
                    self.table.remove_exact(&m);
                    Vec::new()
                }
                FlowModCommand::DeleteAll => {
                    self.table.clear();
                    Vec::new()
                }
            },
            ControllerToSwitch::GroupMod { group, command } => {
                match command {
                    GroupModCommand::Install(entry) => self.groups.install(group, entry),
                    GroupModCommand::Remove => {
                        self.groups.remove(group);
                    }
                    GroupModCommand::SetBucketAlive { bucket, alive } => {
                        if let Some(g) = self.groups.get_mut(group) {
                            if let Some(b) = g.buckets.get_mut(bucket) {
                                b.alive = alive;
                            }
                        }
                    }
                }
                Vec::new()
            }
            ControllerToSwitch::PacketOut { packet, out_port } => {
                self.stats.forwarded += 1;
                vec![Output::Forward { out_port, packet }]
            }
            ControllerToSwitch::FlowStatsRequest => {
                let stats: Vec<FlowStat> = match &self.sampler {
                    None => self
                        .table
                        .iter()
                        .map(|e| FlowStat {
                            table: TableId(0),
                            matcher: e.matcher,
                            cookie: e.cookie,
                            packet_count: e.packet_count,
                            byte_count: e.byte_count,
                            duration: now.duration_since(e.installed_at),
                        })
                        .collect(),
                    Some(s) => {
                        // Sampled export: only flows with sampled traffic,
                        // and never the cookie-0 infrastructure rules
                        // (labels, overlay defaults — the monitor cannot
                        // resolve them to a flow anyway). At rate ≥ 1.0
                        // the activity filter is disabled so the record
                        // set matches the exhaustive reply on every flow
                        // the monitor can resolve — zero-count entries
                        // included — which keeps rate-1.0 runs
                        // byte-identical to exhaustive mode.
                        let all = s.rate() >= 1.0;
                        let scale = 1.0 / s.rate();
                        let acc = &mut self.stats;
                        self.table
                            .iter()
                            .filter(|e| e.cookie != 0 && (all || e.sampled_packets > 0))
                            .map(|e| {
                                acc.sampled_exported += 1;
                                let est = e.sampled_packets as f64 * scale;
                                let truth = e.packet_count as f64;
                                acc.est_error_ppm +=
                                    ((est - truth).abs() / truth.max(1.0) * 1e6) as u64;
                                FlowStat {
                                    table: TableId(0),
                                    matcher: e.matcher,
                                    cookie: e.cookie,
                                    packet_count: e.sampled_packets,
                                    byte_count: e.sampled_bytes,
                                    duration: now.duration_since(e.installed_at),
                                }
                            })
                            .collect()
                    }
                };
                vec![Output::ToController {
                    at: now + SimDuration::from_micros(500),
                    msg: SwitchToController::FlowStatsReply { stats },
                }]
            }
            ControllerToSwitch::EchoRequest { nonce } => vec![Output::ToController {
                at: now + SimDuration::from_micros(200),
                msg: SwitchToController::EchoReply { nonce },
            }],
            ControllerToSwitch::Barrier { xid } => vec![Output::ToController {
                at: now + SimDuration::from_micros(500),
                msg: SwitchToController::BarrierReply { xid },
            }],
        }
    }

    /// Expire timed-out entries, emitting FlowRemoved notifications.
    pub fn expire_flows(&mut self, now: SimTime) -> Vec<Output> {
        self.table
            .expire(now)
            .into_iter()
            .map(|e| Output::ToController {
                at: now + SimDuration::from_micros(500),
                msg: SwitchToController::FlowRemoved {
                    table: TableId(0),
                    matcher: e.matcher,
                    cookie: e.cookie,
                    packet_count: e.packet_count,
                    byte_count: e.byte_count,
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_net::{FlowId, FlowKey, IpAddr};
    use scotch_openflow::{FlowEntry, Match};

    fn vs() -> VSwitch {
        VSwitch::new(NodeId(1), SimRng::new(3))
    }

    fn pkt(sport: u16) -> Packet {
        Packet::flow_start(
            FlowKey::tcp(IpAddr::new(1, 0, 0, 1), sport, IpAddr::new(2, 0, 0, 2), 80),
            FlowId(sport as u64),
            SimTime::ZERO,
        )
    }

    #[test]
    fn decapsulates_and_reports_tunnel_metadata() {
        let mut v = vs();
        let mut p = pkt(1);
        p.push_label(Label::IngressPort(4));
        p.push_label(Label::Tunnel(TunnelId(9)));
        let outs = v.handle_packet(SimTime::ZERO, PortId(0), p, true);
        match &outs[0] {
            Output::ToController {
                msg:
                    SwitchToController::PacketIn {
                        packet,
                        via_tunnel,
                        ingress_label,
                        ..
                    },
                ..
            } => {
                assert_eq!(*via_tunnel, Some(TunnelId(9)));
                assert_eq!(*ingress_label, Some(4));
                assert!(packet.labels.is_empty(), "labels must be stripped");
            }
            o => panic!("expected PacketIn, got {o:?}"),
        }
        assert_eq!(v.stats().decapsulated, 1);
    }

    #[test]
    fn non_terminating_keeps_labels() {
        let mut v = vs();
        let mut p = pkt(1);
        p.push_label(Label::Tunnel(TunnelId(9)));
        let outs = v.handle_packet(SimTime::ZERO, PortId(0), p, false);
        match &outs[0] {
            Output::ToController {
                msg:
                    SwitchToController::PacketIn {
                        packet, via_tunnel, ..
                    },
                ..
            } => {
                assert_eq!(*via_tunnel, None);
                assert_eq!(packet.labels.len(), 1);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn installed_rule_forwards_into_next_tunnel() {
        let mut v = vs();
        v.handle_controller_msg(
            SimTime::ZERO,
            ControllerToSwitch::FlowMod {
                table: TableId(0),
                command: FlowModCommand::Add(FlowEntry::apply(
                    Match::exact(pkt(1).key),
                    10,
                    vec![Action::push_tunnel(TunnelId(2)), Action::Output(PortId(1))],
                )),
            },
        );
        let outs = v.handle_packet(SimTime::from_millis(1), PortId(0), pkt(1), false);
        match &outs[0] {
            Output::Forward { out_port, packet } => {
                assert_eq!(*out_port, PortId(1));
                assert_eq!(packet.top_label(), Some(Label::Tunnel(TunnelId(2))));
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn high_packet_in_capacity() {
        // 5000 new flows/s is fatal for the Pica8 OFA but trivial for OVS.
        let mut v = vs();
        let mut ok = 0;
        for i in 0..5000u64 {
            let now = SimTime::from_nanos(i * 200_000);
            if matches!(
                v.handle_packet(now, PortId(0), pkt((i % 60000) as u16), false)[0],
                Output::ToController { .. }
            ) {
                ok += 1;
            }
        }
        assert_eq!(ok, 5000, "OVS agent should absorb 5000 flows/s");
    }

    #[test]
    fn dataplane_pps_bound_drops() {
        // Offer far beyond 300k pps in one burst: the 4096-deep queue fills.
        let mut v = vs();
        let mut dropped = 0;
        for i in 0..10_000u16 {
            let outs = v.handle_packet(SimTime::ZERO, PortId(0), pkt(i), false);
            if matches!(
                outs[0],
                Output::Dropped {
                    reason: DropReason::DataPlaneOverload,
                    ..
                }
            ) {
                dropped += 1;
            }
        }
        assert!(dropped > 0);
        assert_eq!(v.stats().dropped_dataplane, dropped);
    }

    #[test]
    fn failed_vswitch_is_silent() {
        let mut v = vs();
        v.failed = true;
        assert!(v
            .handle_controller_msg(SimTime::ZERO, ControllerToSwitch::EchoRequest { nonce: 1 })
            .is_empty());
        let outs = v.handle_packet(SimTime::ZERO, PortId(0), pkt(1), false);
        assert!(matches!(outs[0], Output::Dropped { .. }));
    }

    #[test]
    fn stats_reply_covers_table() {
        let mut v = vs();
        v.handle_controller_msg(
            SimTime::ZERO,
            ControllerToSwitch::FlowMod {
                table: TableId(0),
                command: FlowModCommand::Add(
                    FlowEntry::apply(Match::exact(pkt(1).key), 1, vec![]).with_cookie(5),
                ),
            },
        );
        let outs =
            v.handle_controller_msg(SimTime::from_secs(1), ControllerToSwitch::FlowStatsRequest);
        match &outs[0] {
            Output::ToController {
                msg: SwitchToController::FlowStatsReply { stats },
                ..
            } => assert_eq!(stats.len(), 1),
            o => panic!("unexpected {o:?}"),
        }
    }

    fn install(v: &mut VSwitch, sport: u16, cookie: u64) {
        v.handle_controller_msg(
            SimTime::ZERO,
            ControllerToSwitch::FlowMod {
                table: TableId(0),
                command: FlowModCommand::Add(
                    FlowEntry::apply(
                        Match::exact(pkt(sport).key),
                        10,
                        vec![Action::Output(PortId(1))],
                    )
                    .with_cookie(cookie),
                ),
            },
        );
    }

    fn stats_reply(v: &mut VSwitch, now: SimTime) -> Vec<FlowStat> {
        let outs = v.handle_controller_msg(now, ControllerToSwitch::FlowStatsRequest);
        match outs.into_iter().next() {
            Some(Output::ToController {
                msg: SwitchToController::FlowStatsReply { stats },
                ..
            }) => stats,
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn sampled_export_skips_unsampled_and_infra_rules() {
        let mut v = vs();
        // Rate small enough that 3 packets are (with this seed) never
        // sampled; a cookie-0 "infra" rule must be excluded regardless.
        v.enable_sampling(1.0 / 1024.0, SimRng::new(99));
        install(&mut v, 1, 7);
        install(&mut v, 2, 0); // infra rule
        for _ in 0..3 {
            v.handle_packet(SimTime::from_millis(1), PortId(0), pkt(1), false);
            v.handle_packet(SimTime::from_millis(1), PortId(0), pkt(2), false);
        }
        let stats = stats_reply(&mut v, SimTime::from_secs(1));
        assert!(
            stats.iter().all(|s| s.cookie != 0),
            "infra rules must never be exported by the sampled path"
        );
        for s in &stats {
            assert!(s.packet_count > 0, "zero-sample flows must be filtered");
        }
    }

    #[test]
    fn rate_one_reply_matches_exhaustive_on_resolvable_flows() {
        let build = |sampled: bool| {
            let mut v = vs();
            if sampled {
                v.enable_sampling(1.0, SimRng::new(5));
            }
            install(&mut v, 1, 7);
            install(&mut v, 2, 8); // installed but never hit
            install(&mut v, 3, 0); // infra
            for i in 0..5u64 {
                v.handle_packet(SimTime::from_millis(i), PortId(0), pkt(1), false);
            }
            stats_reply(&mut v, SimTime::from_secs(1))
        };
        let exhaustive: Vec<FlowStat> =
            build(false).into_iter().filter(|s| s.cookie != 0).collect();
        let sampled = build(true);
        assert_eq!(
            sampled, exhaustive,
            "rate 1.0 must reproduce the exhaustive record set exactly \
             (zero-count entries included)"
        );
        assert!(sampled.iter().any(|s| s.packet_count == 0));
    }
}
