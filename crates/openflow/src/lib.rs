#![warn(missing_docs)]

//! # scotch-openflow
//!
//! A typed model of the OpenFlow 1.3 subset that Scotch relies on. No wire
//! format is implemented — the paper's contribution is an overlay
//! architecture, not a codec — but the *semantics* the design depends on
//! are all here:
//!
//! * priority-ordered [`table::FlowTable`]s with idle/hard timeouts, bounded
//!   capacity (the TCAM limit of §3.3) and match counters;
//! * a multi-table pipeline ([`table::Pipeline`]): Scotch needs two tables
//!   at the physical switch, "the first table contains the rule for setting
//!   the ingress port; and the second table contains the rule for load
//!   balancing" (§5.2);
//! * [`group::GroupTable`] with the *select* group type used for
//!   load-balancing across vSwitch tunnels (§5.1), including bucket
//!   liveness for vSwitch fail-over (§5.6);
//! * the control-channel [`messages`] exchanged with the controller.

pub mod group;
pub mod messages;
pub mod ofmatch;
pub mod table;
pub mod wire;

pub use group::{Bucket, GroupEntry, GroupId, GroupTable, GroupType, SelectionPolicy};
pub use messages::{ControllerToSwitch, FlowModCommand, PacketInReason, SwitchToController};
pub use ofmatch::{Action, Instruction, Match};
pub use table::{FlowEntry, FlowTable, Pipeline, PipelineVerdict, TableId};
