//! Group tables: OpenFlow 1.3 *select* groups for load balancing.
//!
//! §5.1: "To achieve load balancing, we use *select* group type, which
//! chooses one bucket in the action buckets to be executed. The bucket
//! selection algorithm is not defined in the spec … it is conceivable that
//! using a hash function based on the flow id may be a likely choice for
//! many vendors. We define one action bucket for each tunnel that connects
//! the physical switch with a vSwitch."
//!
//! We implement both flow-hash and round-robin selection (the A2 ablation
//! compares them) and bucket liveness so the controller can swap a failed
//! vSwitch's bucket for its backup (§5.6).

use crate::ofmatch::Action;
use scotch_net::FlowKey;
use scotch_sim::hash::FxHashMap;

/// Group table entry identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

/// Group semantics. Only *select* is needed by Scotch; *all* is included
/// for completeness (it is the spec's flooding/multicast type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupType {
    /// Execute one bucket chosen by the selection policy.
    Select,
    /// Execute every live bucket (packet replication).
    All,
}

/// How a *select* group picks its bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// ECMP-style: `flow_key.hash64() % live_buckets`. Per-flow sticky.
    FlowHash,
    /// Rotate across live buckets per packet. Not flow-sticky; exists for
    /// the A2 ablation.
    RoundRobin,
}

/// One action bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    /// Actions executed when this bucket is selected (for Scotch: push the
    /// tunnel label and output toward the tunnel's first hop).
    pub actions: Vec<Action>,
    /// Liveness flag, toggled by the controller on vSwitch failure.
    pub alive: bool,
    /// Packets that selected this bucket.
    pub packet_count: u64,
}

impl Bucket {
    /// A live bucket with the given actions.
    pub fn new(actions: Vec<Action>) -> Self {
        Bucket {
            actions,
            alive: true,
            packet_count: 0,
        }
    }
}

/// One group entry.
#[derive(Debug, Clone)]
pub struct GroupEntry {
    /// Semantics.
    pub group_type: GroupType,
    /// Selection policy (meaningful for [`GroupType::Select`]).
    pub policy: SelectionPolicy,
    /// Action buckets.
    pub buckets: Vec<Bucket>,
    rr_cursor: usize,
}

impl GroupEntry {
    /// A select group with the given policy and buckets.
    pub fn select(policy: SelectionPolicy, buckets: Vec<Bucket>) -> Self {
        GroupEntry {
            group_type: GroupType::Select,
            policy,
            buckets,
            rr_cursor: 0,
        }
    }

    /// Select a bucket for `key` and return its actions. `None` if every
    /// bucket is dead.
    pub fn select_bucket(&mut self, key: &FlowKey) -> Option<&[Action]> {
        // Live buckets are selected by rank without materializing an index
        // vector: bucket counts are tiny and this runs once per packet.
        let live_count = self.buckets.iter().filter(|b| b.alive).count();
        if live_count == 0 {
            return None;
        }
        let nth = match self.policy {
            SelectionPolicy::FlowHash => (key.hash64() % live_count as u64) as usize,
            SelectionPolicy::RoundRobin => {
                let i = self.rr_cursor % live_count;
                self.rr_cursor = self.rr_cursor.wrapping_add(1);
                i
            }
        };
        let idx = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.alive)
            .nth(nth)
            .map(|(i, _)| i)
            .expect("nth < live_count");
        self.buckets[idx].packet_count += 1;
        Some(&self.buckets[idx].actions)
    }
}

/// The switch's group table.
#[derive(Debug, Clone, Default)]
pub struct GroupTable {
    groups: FxHashMap<GroupId, GroupEntry>,
}

impl GroupTable {
    /// An empty group table.
    pub fn new() -> Self {
        GroupTable::default()
    }

    /// Install or replace a group (GroupMod ADD/MODIFY).
    pub fn install(&mut self, id: GroupId, entry: GroupEntry) {
        self.groups.insert(id, entry);
    }

    /// Remove a group (GroupMod DELETE). Returns true if it existed.
    pub fn remove(&mut self, id: GroupId) -> bool {
        self.groups.remove(&id).is_some()
    }

    /// Look up a group immutably.
    pub fn get(&self, id: GroupId) -> Option<&GroupEntry> {
        self.groups.get(&id)
    }

    /// Look up a group mutably (bucket liveness updates).
    pub fn get_mut(&mut self, id: GroupId) -> Option<&mut GroupEntry> {
        self.groups.get_mut(&id)
    }

    /// Run a packet's flow key through group `id`; returns the chosen
    /// bucket's actions, borrowed (the hot path copies them into a caller
    /// scratch buffer instead of allocating per packet).
    pub fn select(&mut self, id: GroupId, key: &FlowKey) -> Option<&[Action]> {
        let entry = self.groups.get_mut(&id)?;
        entry.select_bucket(key)
    }

    /// Number of installed groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no groups are installed.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use scotch_net::{IpAddr, PortId};

    fn key(sport: u16) -> FlowKey {
        FlowKey::tcp(IpAddr::new(1, 1, 1, 1), sport, IpAddr::new(2, 2, 2, 2), 80)
    }

    fn buckets(n: usize) -> Vec<Bucket> {
        (0..n)
            .map(|i| Bucket::new(vec![Action::Output(PortId(i as u16))]))
            .collect()
    }

    #[test]
    fn flow_hash_is_sticky() {
        let mut g = GroupEntry::select(SelectionPolicy::FlowHash, buckets(4));
        let k = key(42);
        let first = g.select_bucket(&k).unwrap().to_vec();
        for _ in 0..10 {
            assert_eq!(g.select_bucket(&k).unwrap(), first.as_slice());
        }
    }

    #[test]
    fn flow_hash_spreads_flows() {
        let mut g = GroupEntry::select(SelectionPolicy::FlowHash, buckets(4));
        for s in 0..400 {
            g.select_bucket(&key(s));
        }
        for b in &g.buckets {
            // Perfectly uniform would be 100 per bucket.
            assert!(
                (40..=180).contains(&(b.packet_count as i64)),
                "skewed: {}",
                b.packet_count
            );
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut g = GroupEntry::select(SelectionPolicy::RoundRobin, buckets(3));
        let k = key(1);
        let a = g.select_bucket(&k).unwrap().to_vec();
        let b = g.select_bucket(&k).unwrap().to_vec();
        let c = g.select_bucket(&k).unwrap().to_vec();
        let a2 = g.select_bucket(&k).unwrap().to_vec();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(a, a2);
    }

    #[test]
    fn dead_buckets_are_skipped() {
        let mut g = GroupEntry::select(SelectionPolicy::FlowHash, buckets(2));
        g.buckets[0].alive = false;
        for s in 0..50 {
            let acts = g.select_bucket(&key(s)).unwrap();
            assert_eq!(acts, &[Action::Output(PortId(1))]);
        }
        assert_eq!(g.buckets[0].packet_count, 0);
    }

    #[test]
    fn all_dead_yields_none() {
        let mut g = GroupEntry::select(SelectionPolicy::FlowHash, buckets(2));
        g.buckets[0].alive = false;
        g.buckets[1].alive = false;
        assert!(g.select_bucket(&key(1)).is_none());
    }

    #[test]
    fn table_install_select_remove() {
        let mut t = GroupTable::new();
        assert!(t.is_empty());
        t.install(
            GroupId(1),
            GroupEntry::select(SelectionPolicy::FlowHash, buckets(2)),
        );
        assert_eq!(t.len(), 1);
        assert!(t.select(GroupId(1), &key(1)).is_some());
        assert!(t.select(GroupId(2), &key(1)).is_none());
        assert!(t.remove(GroupId(1)));
        assert!(!t.remove(GroupId(1)));
    }

    #[test]
    fn failover_rewires_existing_flows() {
        // Simulates §5.6: kill a vSwitch's bucket; flows previously hashed
        // to it land on live buckets afterwards.
        let mut t = GroupTable::new();
        t.install(
            GroupId(7),
            GroupEntry::select(SelectionPolicy::FlowHash, buckets(3)),
        );
        let k = key(9);
        let before = t.select(GroupId(7), &k).unwrap().to_vec();
        // Find which port that was and kill it.
        let Action::Output(port) = before[0] else {
            panic!()
        };
        t.get_mut(GroupId(7)).unwrap().buckets[port.0 as usize].alive = false;
        let after = t.select(GroupId(7), &k).unwrap();
        assert_ne!(before, after);
    }

    proptest! {
        /// Selection never returns a dead bucket's actions.
        #[test]
        fn prop_never_selects_dead(alive_mask in 1u8..15, sport: u16) {
            let mut bs = buckets(4);
            for (i, b) in bs.iter_mut().enumerate() {
                b.alive = alive_mask & (1 << i) != 0;
            }
            let mut g = GroupEntry::select(SelectionPolicy::FlowHash, bs);
            if let Some(acts) = g.select_bucket(&key(sport)) {
                let Action::Output(p) = acts[0] else { panic!() };
                prop_assert!(alive_mask & (1 << p.0) != 0);
            }
        }

        /// Round-robin visits every live bucket within one rotation.
        #[test]
        fn prop_rr_covers_live(n in 1usize..8) {
            let mut g = GroupEntry::select(SelectionPolicy::RoundRobin, buckets(n));
            let mut seen = std::collections::HashSet::new();
            for _ in 0..n {
                let acts = g.select_bucket(&key(0)).unwrap();
                seen.insert(acts[0]);
            }
            prop_assert_eq!(seen.len(), n);
        }
    }
}
