//! OpenFlow 1.3 wire codec for the message subset Scotch uses.
//!
//! The simulation itself passes typed messages (the paper's contribution
//! is an overlay architecture, not a codec), but a Scotch controller
//! deployed against real switches speaks the OpenFlow 1.3 binary protocol
//! — this module provides that: spec-shaped framing (8-byte header,
//! version `0x04`), OXM TLV matches, instructions/actions, and the
//! message bodies for Packet-In/Out, FlowMod, GroupMod, FlowRemoved,
//! Echo, Barrier, Error and the flow-stats multipart pair.
//!
//! ## Scope and documented deviations
//!
//! * Simulation-only metadata does not ride the wire: a decoded
//!   [`Packet`]'s `flow_id`, `born_at` and `is_attack` are defaults; the
//!   §5.2 tunnel metadata of a Packet-In is carried in standard OXM
//!   `TUNNEL_ID` and `METADATA` fields.
//! * Our MPLS-ish [`Label`] maps onto the 20-bit MPLS label space: bit 19
//!   distinguishes tunnel labels (ids < 2^19) from ingress-port labels
//!   (< 2^16).
//! * `Action::Drop` encodes as an empty apply-actions list (OpenFlow's
//!   idiom for dropping); an empty list decodes back to `[Drop]`.
//! * `GroupModCommand::SetBucketAlive` is a controller-local shortcut with
//!   no OF1.3 equivalent (real controllers send a full `MODIFY`); encoding
//!   it returns [`WireError::NotRepresentable`].
//! * OXM prerequisite fields (`ETH_TYPE` before L3 matches, etc.) are
//!   emitted for label matches but not enforced on decode.

use crate::group::{Bucket, GroupEntry, GroupId, GroupType, SelectionPolicy};
use crate::messages::{
    ControllerToSwitch, FlowModCommand, FlowStat, GroupModCommand, OfError, PacketInReason,
    SwitchToController,
};
use crate::ofmatch::{Action, Instruction, Match};
use crate::table::{FlowEntry, TableId};
use scotch_net::{
    FlowId, FlowKey, IpAddr, Label, LabelStack, Packet, PacketKind, PortId, Protocol, TunnelId,
};
use scotch_sim::{SimDuration, SimTime};

/// OpenFlow protocol version emitted/accepted.
pub const OFP_VERSION: u8 = 0x04; // OpenFlow 1.3

/// Reserved port: send to controller.
pub const OFPP_CONTROLLER: u32 = 0xffff_fffd;
const OFP_NO_BUFFER: u32 = 0xffff_ffff;

// Message types (ofp_type).
const OFPT_HELLO: u8 = 0;
const OFPT_ERROR: u8 = 1;
const OFPT_ECHO_REQUEST: u8 = 2;
const OFPT_ECHO_REPLY: u8 = 3;
const OFPT_FEATURES_REQUEST: u8 = 5;
const OFPT_FEATURES_REPLY: u8 = 6;
const OFPT_PACKET_IN: u8 = 10;
const OFPT_FLOW_REMOVED: u8 = 11;
const OFPT_PACKET_OUT: u8 = 13;
const OFPT_FLOW_MOD: u8 = 14;
const OFPT_GROUP_MOD: u8 = 15;
const OFPT_MULTIPART_REQUEST: u8 = 18;
const OFPT_MULTIPART_REPLY: u8 = 19;
const OFPT_BARRIER_REQUEST: u8 = 20;
const OFPT_BARRIER_REPLY: u8 = 21;

// OXM basic-class fields.
const OXM_CLASS_BASIC: u16 = 0x8000;
const OXM_IN_PORT: u8 = 0;
const OXM_METADATA: u8 = 2;
const OXM_ETH_TYPE: u8 = 5;
const OXM_IP_PROTO: u8 = 10;
const OXM_IPV4_SRC: u8 = 11;
const OXM_IPV4_DST: u8 = 12;
const OXM_TCP_SRC: u8 = 13;
const OXM_TCP_DST: u8 = 14;
const OXM_UDP_SRC: u8 = 15;
const OXM_UDP_DST: u8 = 16;
const OXM_MPLS_LABEL: u8 = 34;
const OXM_TUNNEL_ID: u8 = 38;

const ETH_TYPE_IPV4: u16 = 0x0800;
const ETH_TYPE_MPLS: u16 = 0x8847;

/// Datapath capabilities advertised in a FEATURES_REPLY.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// The switch's datapath id (we use its topology `NodeId`).
    pub datapath_id: u64,
    /// Packet-In buffering capacity advertised by the switch.
    pub n_buffers: u32,
    /// Number of flow tables in the pipeline.
    pub n_tables: u8,
}

/// A decoded message: direction plus payload.
#[derive(Debug, Clone)]
pub enum OfMessage {
    /// Controller → switch.
    ToSwitch(ControllerToSwitch),
    /// Switch → controller.
    FromSwitch(SwitchToController),
    /// Connection setup: version negotiation (either direction).
    Hello,
    /// Controller asking for datapath capabilities.
    FeaturesRequest,
    /// Switch describing itself.
    FeaturesReply(Features),
}

/// Codec failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer too short / malformed length fields.
    Truncated,
    /// Header version is not OpenFlow 1.3.
    BadVersion(u8),
    /// Unknown or unsupported message type.
    UnsupportedType(u8),
    /// A field value that cannot be represented on the wire.
    NotRepresentable(&'static str),
    /// Malformed body content.
    Malformed(&'static str),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::BadVersion(v) => write!(f, "unsupported OpenFlow version {v:#x}"),
            WireError::UnsupportedType(t) => write!(f, "unsupported message type {t}"),
            WireError::NotRepresentable(what) => write!(f, "not representable on the wire: {what}"),
            WireError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Byte-order helpers
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(64),
        }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn pad(&mut self, n: usize) {
        self.buf.extend(std::iter::repeat_n(0, n));
    }
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    /// Patch a big-endian u16 length field at `at`.
    fn patch_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_be_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn skip(&mut self, n: usize) -> Result<(), WireError> {
        self.take(n).map(|_| ())
    }
}

// ---------------------------------------------------------------------
// Label <-> 20-bit MPLS label space
// ---------------------------------------------------------------------

fn label_to_mpls(l: Label) -> Result<u32, WireError> {
    match l {
        Label::Tunnel(TunnelId(t)) => {
            if t >= 1 << 19 {
                return Err(WireError::NotRepresentable("tunnel id >= 2^19"));
            }
            Ok((1 << 19) | t)
        }
        Label::IngressPort(p) => Ok(p as u32),
    }
}

fn mpls_to_label(v: u32) -> Label {
    if v & (1 << 19) != 0 {
        Label::Tunnel(TunnelId(v & ((1 << 19) - 1)))
    } else {
        Label::IngressPort((v & 0xffff) as u16)
    }
}

// ---------------------------------------------------------------------
// OXM match
// ---------------------------------------------------------------------

fn oxm_header(w: &mut Writer, field: u8, len: u8) {
    w.u16(OXM_CLASS_BASIC);
    w.u8(field << 1); // no mask
    w.u8(len);
}

/// Encode an ofp_match (type OFPMT_OXM = 1) with padding to 8 bytes.
fn encode_match(w: &mut Writer, m: &Match) -> Result<(), WireError> {
    let start = w.buf.len();
    w.u16(1); // OFPMT_OXM
    let len_at = w.buf.len();
    w.u16(0); // patched below

    if let Some(p) = m.in_port {
        oxm_header(w, OXM_IN_PORT, 4);
        w.u32(p.0 as u32);
    }
    match m.top_label {
        None => {}
        Some(None) => {
            oxm_header(w, OXM_ETH_TYPE, 2);
            w.u16(ETH_TYPE_IPV4);
        }
        Some(Some(l)) => {
            oxm_header(w, OXM_ETH_TYPE, 2);
            w.u16(ETH_TYPE_MPLS);
            oxm_header(w, OXM_MPLS_LABEL, 4);
            w.u32(label_to_mpls(l)?);
        }
    }
    if let Some(ip) = m.src {
        oxm_header(w, OXM_IPV4_SRC, 4);
        w.u32(ip.0);
    }
    if let Some(ip) = m.dst {
        oxm_header(w, OXM_IPV4_DST, 4);
        w.u32(ip.0);
    }
    if let Some(proto) = m.proto {
        oxm_header(w, OXM_IP_PROTO, 1);
        w.u8(proto.number());
    }
    let (sp_field, dp_field) = match m.proto {
        Some(Protocol::Udp) => (OXM_UDP_SRC, OXM_UDP_DST),
        _ => (OXM_TCP_SRC, OXM_TCP_DST),
    };
    if let Some(p) = m.sport {
        oxm_header(w, sp_field, 2);
        w.u16(p);
    }
    if let Some(p) = m.dport {
        oxm_header(w, dp_field, 2);
        w.u16(p);
    }

    let body_len = (w.buf.len() - start) as u16;
    w.patch_u16(len_at, body_len);
    // Pad the whole match to a multiple of 8.
    let pad = (8 - (body_len as usize % 8)) % 8;
    w.pad(pad);
    Ok(())
}

/// Decoded match plus the §5.2 metadata OXMs a Packet-In may carry.
struct DecodedMatch {
    matcher: Match,
    tunnel_id: Option<TunnelId>,
    metadata: Option<u64>,
}

fn decode_match(r: &mut Reader) -> Result<DecodedMatch, WireError> {
    let mtype = r.u16()?;
    if mtype != 1 {
        return Err(WireError::Malformed("match type"));
    }
    let mlen = r.u16()? as usize;
    if mlen < 4 {
        return Err(WireError::Malformed("match length"));
    }
    let mut body = Reader::new(r.take(mlen - 4)?);
    let mut m = Match::ANY;
    let mut tunnel_id = None;
    let mut metadata = None;
    let mut eth_type: Option<u16> = None;
    let mut mpls: Option<u32> = None;
    let mut udp = false;
    let mut sport = None;
    let mut dport = None;
    while body.remaining() >= 4 {
        let class = body.u16()?;
        let fh = body.u8()?;
        let len = body.u8()? as usize;
        let field = fh >> 1;
        if class != OXM_CLASS_BASIC {
            body.skip(len)?;
            continue;
        }
        match field {
            OXM_IN_PORT => m.in_port = Some(PortId(body.u32()? as u16)),
            OXM_ETH_TYPE => eth_type = Some(body.u16()?),
            OXM_MPLS_LABEL => mpls = Some(body.u32()?),
            OXM_IPV4_SRC => m.src = Some(IpAddr(body.u32()?)),
            OXM_IPV4_DST => m.dst = Some(IpAddr(body.u32()?)),
            OXM_IP_PROTO => {
                m.proto = match body.u8()? {
                    6 => Some(Protocol::Tcp),
                    17 => {
                        udp = true;
                        Some(Protocol::Udp)
                    }
                    1 => Some(Protocol::Icmp),
                    _ => None,
                }
            }
            OXM_TCP_SRC => sport = Some(body.u16()?),
            OXM_TCP_DST => dport = Some(body.u16()?),
            OXM_UDP_SRC => {
                udp = true;
                sport = Some(body.u16()?);
            }
            OXM_UDP_DST => {
                udp = true;
                dport = Some(body.u16()?);
            }
            OXM_TUNNEL_ID => tunnel_id = Some(TunnelId(body.u64()? as u32)),
            OXM_METADATA => metadata = Some(body.u64()?),
            _ => body.skip(len)?,
        }
    }
    m.sport = sport;
    m.dport = dport;
    if udp && m.proto.is_none() {
        m.proto = Some(Protocol::Udp);
    }
    m.top_label = match (eth_type, mpls) {
        (Some(ETH_TYPE_MPLS), Some(v)) => Some(Some(mpls_to_label(v))),
        (Some(ETH_TYPE_IPV4), _) => Some(None),
        _ => None,
    };
    // Consume the 8-byte padding of the whole match.
    let pad = (8 - (mlen % 8)) % 8;
    r.skip(pad)?;
    Ok(DecodedMatch {
        matcher: m,
        tunnel_id,
        metadata,
    })
}

// ---------------------------------------------------------------------
// Actions & instructions
// ---------------------------------------------------------------------

fn encode_action(w: &mut Writer, a: &Action) -> Result<(), WireError> {
    match a {
        Action::Output(p) => {
            w.u16(0); // OFPAT_OUTPUT
            w.u16(16);
            w.u32(p.0 as u32);
            w.u16(0xffff); // max_len: no buffer
            w.pad(6);
        }
        Action::ToController => {
            w.u16(0);
            w.u16(16);
            w.u32(OFPP_CONTROLLER);
            w.u16(0xffff);
            w.pad(6);
        }
        Action::Group(GroupId(g)) => {
            w.u16(22); // OFPAT_GROUP
            w.u16(8);
            w.u32(*g);
        }
        Action::PushLabel(l) => {
            // PUSH_MPLS + SET_FIELD(MPLS_LABEL)
            w.u16(19); // OFPAT_PUSH_MPLS
            w.u16(8);
            w.u16(ETH_TYPE_MPLS);
            w.pad(2);
            w.u16(25); // OFPAT_SET_FIELD
            w.u16(16);
            oxm_header(w, OXM_MPLS_LABEL, 4);
            w.u32(label_to_mpls(*l)?);
            w.pad(4);
        }
        Action::PopLabel => {
            w.u16(20); // OFPAT_POP_MPLS
            w.u16(8);
            w.u16(ETH_TYPE_IPV4);
            w.pad(2);
        }
        Action::Drop => {
            // OpenFlow has no drop action: dropping is an *empty* action
            // list, handled by the callers.
            return Err(WireError::NotRepresentable("explicit drop action"));
        }
    }
    Ok(())
}

/// Encode an action list, folding `Drop` into the empty list.
fn encode_action_list(w: &mut Writer, actions: &[Action]) -> Result<(), WireError> {
    if actions == [Action::Drop] {
        return Ok(());
    }
    for a in actions {
        encode_action(w, a)?;
    }
    Ok(())
}

fn decode_action_list(r: &mut Reader, total: usize) -> Result<Vec<Action>, WireError> {
    let mut body = Reader::new(r.take(total)?);
    let mut actions = Vec::new();
    let mut pending_push = false;
    while body.remaining() >= 4 {
        let atype = body.u16()?;
        let alen = body.u16()? as usize;
        if alen < 4 {
            return Err(WireError::Malformed("action length"));
        }
        let mut inner = Reader::new(body.take(alen - 4)?);
        match atype {
            0 => {
                let port = inner.u32()?;
                if port == OFPP_CONTROLLER {
                    actions.push(Action::ToController);
                } else {
                    actions.push(Action::Output(PortId(port as u16)));
                }
            }
            22 => actions.push(Action::Group(GroupId(inner.u32()?))),
            19 => pending_push = true, // PUSH_MPLS; label arrives in SET_FIELD
            20 => actions.push(Action::PopLabel),
            25 => {
                // SET_FIELD
                let _class = inner.u16()?;
                let fh = inner.u8()?;
                let _len = inner.u8()?;
                if fh >> 1 == OXM_MPLS_LABEL {
                    let v = inner.u32()?;
                    if pending_push {
                        actions.push(Action::PushLabel(mpls_to_label(v)));
                        pending_push = false;
                    }
                }
            }
            _ => {}
        }
    }
    if actions.is_empty() {
        actions.push(Action::Drop);
    }
    Ok(actions)
}

fn encode_instructions(w: &mut Writer, instructions: &[Instruction]) -> Result<(), WireError> {
    for inst in instructions {
        match inst {
            Instruction::GotoTable(t) => {
                w.u16(1); // OFPIT_GOTO_TABLE
                w.u16(8);
                w.u8(t.0);
                w.pad(3);
            }
            Instruction::Apply(actions) => {
                w.u16(4); // OFPIT_APPLY_ACTIONS
                let len_at = w.buf.len();
                w.u16(0);
                w.pad(4);
                let start = w.buf.len();
                encode_action_list(w, actions)?;
                let alen = w.buf.len() - start;
                w.patch_u16(len_at, (alen + 8) as u16);
            }
        }
    }
    Ok(())
}

fn decode_instructions(r: &mut Reader) -> Result<Vec<Instruction>, WireError> {
    let mut out = Vec::new();
    while r.remaining() >= 4 {
        let itype = r.u16()?;
        let ilen = r.u16()? as usize;
        if ilen < 4 {
            return Err(WireError::Malformed("instruction length"));
        }
        match itype {
            1 => {
                let table = r.u8()?;
                r.skip(3)?;
                out.push(Instruction::GotoTable(TableId(table)));
            }
            4 => {
                r.skip(4)?;
                let actions = decode_action_list(r, ilen - 8)?;
                out.push(Instruction::Apply(actions));
            }
            _ => {
                r.skip(ilen - 4)?;
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Packet bytes (Ethernet / MPLS / IPv4 / TCP|UDP)
// ---------------------------------------------------------------------

/// Serialize a simulated packet to wire bytes.
pub fn encode_packet(p: &Packet) -> Result<Vec<u8>, WireError> {
    let mut w = Writer::new();
    // Ethernet: zero MACs; ethertype depends on label stack.
    w.pad(12);
    if p.labels.is_empty() {
        w.u16(ETH_TYPE_IPV4);
    } else {
        w.u16(ETH_TYPE_MPLS);
        // Top of stack first on the wire.
        for (i, l) in p.labels.iter().rev().enumerate() {
            let v = label_to_mpls(l)?;
            let bottom = (i == p.labels.len() - 1) as u32;
            w.u32((v << 12) | (bottom << 8) | 64);
        }
    }
    // IPv4 header (20 bytes, no options).
    let l4_len = 20u16; // tcp/udp header (udp padded for simplicity)
    w.u8(0x45);
    w.u8(0);
    w.u16(20 + l4_len);
    w.u16(p.seq as u16); // identification: carries the sequence number
    w.u16(0);
    w.u8(64); // ttl
    w.u8(p.key.proto.number());
    w.u16(0); // checksum (not computed in the simulator)
    w.u32(p.key.src.0);
    w.u32(p.key.dst.0);
    // TCP-shaped L4 header (UDP uses the same 20-byte layout, padded).
    w.u16(p.key.sport);
    w.u16(p.key.dport);
    w.u32(p.seq);
    w.u32(0); // ack
    w.u8(0x50); // data offset
    w.u8(if p.kind == PacketKind::FlowStart {
        0x02
    } else {
        0x10
    }); // SYN / ACK
    w.u16(0xffff); // window
    w.u16(0); // checksum
    w.u16(0); // urgent
    Ok(w.buf)
}

/// Parse wire bytes back into a simulated packet. `flow_id`, `born_at`
/// and `is_attack` are simulation-side metadata and come back as
/// defaults; `size` is restored from `wire_size` (the original on-wire
/// length, possibly larger than the header bytes).
pub fn decode_packet(buf: &[u8], wire_size: u32) -> Result<Packet, WireError> {
    let mut r = Reader::new(buf);
    r.skip(12)?;
    let mut ethertype = r.u16()?;
    let mut labels_top_first = Vec::new();
    if ethertype == ETH_TYPE_MPLS {
        loop {
            let shim = r.u32()?;
            labels_top_first.push(mpls_to_label(shim >> 12));
            if shim & (1 << 8) != 0 {
                break;
            }
        }
        ethertype = ETH_TYPE_IPV4;
    }
    if ethertype != ETH_TYPE_IPV4 {
        return Err(WireError::Malformed("ethertype"));
    }
    let vihl = r.u8()?;
    if vihl != 0x45 {
        return Err(WireError::Malformed("ipv4 header"));
    }
    r.skip(1)?;
    let _tot = r.u16()?;
    let _ident = r.u16()?;
    r.skip(2)?;
    r.skip(1)?; // ttl
    let proto = r.u8()?;
    r.skip(2)?;
    let src = IpAddr(r.u32()?);
    let dst = IpAddr(r.u32()?);
    let sport = r.u16()?;
    let dport = r.u16()?;
    let seq = r.u32()?;
    r.skip(4)?;
    r.skip(1)?;
    let flags = r.u8()?;
    let proto = match proto {
        6 => Protocol::Tcp,
        17 => Protocol::Udp,
        1 => Protocol::Icmp,
        _ => return Err(WireError::Malformed("ip protocol")),
    };
    let key = FlowKey {
        src,
        dst,
        proto,
        sport,
        dport,
    };
    let kind = if flags & 0x02 != 0 {
        PacketKind::FlowStart
    } else {
        PacketKind::Data
    };
    let mut p = Packet {
        key,
        flow_id: FlowId(0),
        kind,
        size: wire_size,
        born_at: SimTime::ZERO,
        seq,
        labels: LabelStack::new(),
        is_attack: false,
    };
    // Stack stores bottom-first.
    for l in labels_top_first.into_iter().rev() {
        p.labels.push(l);
    }
    Ok(p)
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

fn header(w: &mut Writer, msg_type: u8, xid: u32) -> usize {
    w.u8(OFP_VERSION);
    w.u8(msg_type);
    let len_at = w.buf.len();
    w.u16(0);
    w.u32(xid);
    len_at
}

fn finish(mut w: Writer, len_at: usize) -> Vec<u8> {
    debug_assert!(w.buf.len() <= u16::MAX as usize, "frame exceeds u16 length");
    let total = w.buf.len() as u16;
    w.patch_u16(len_at, total);
    w.buf
}

fn finish_checked(w: Writer, len_at: usize) -> Result<Vec<u8>, WireError> {
    if w.buf.len() > u16::MAX as usize {
        return Err(WireError::NotRepresentable(
            "message exceeds the 64 KiB frame limit; use the segmented multipart encoder",
        ));
    }
    Ok(finish(w, len_at))
}

/// Encode a message with the given transaction id.
pub fn encode_message(msg: &OfMessage, xid: u32) -> Result<Vec<u8>, WireError> {
    let mut w = Writer::new();
    match msg {
        OfMessage::Hello => {
            let at = header(&mut w, OFPT_HELLO, xid);
            // Version bitmap element (type 1): we speak exactly 1.3.
            w.u16(1);
            w.u16(8);
            w.u32(1 << OFP_VERSION);
            finish_checked(w, at)
        }
        OfMessage::FeaturesRequest => {
            let at = header(&mut w, OFPT_FEATURES_REQUEST, xid);
            finish_checked(w, at)
        }
        OfMessage::FeaturesReply(f) => {
            let at = header(&mut w, OFPT_FEATURES_REPLY, xid);
            w.u64(f.datapath_id);
            w.u32(f.n_buffers);
            w.u8(f.n_tables);
            w.u8(0); // auxiliary_id
            w.pad(2);
            w.u32(0x0000_0001 | 0x0000_0008); // capabilities: FLOW_STATS | GROUP_STATS
            w.u32(0); // reserved
            finish_checked(w, at)
        }
        OfMessage::ToSwitch(m) => match m {
            ControllerToSwitch::EchoRequest { nonce } => {
                let at = header(&mut w, OFPT_ECHO_REQUEST, xid);
                w.u64(*nonce);
                finish_checked(w, at)
            }
            ControllerToSwitch::Barrier { xid: bx } => {
                let at = header(&mut w, OFPT_BARRIER_REQUEST, *bx as u32);
                finish_checked(w, at)
            }
            ControllerToSwitch::FlowStatsRequest => {
                let at = header(&mut w, OFPT_MULTIPART_REQUEST, xid);
                w.u16(1); // OFPMP_FLOW
                w.u16(0); // flags
                w.pad(4);
                // ofp_flow_stats_request body
                w.u8(0xff); // table: ALL
                w.pad(3);
                w.u32(0xffff_ffff); // out_port: ANY
                w.u32(0xffff_ffff); // out_group: ANY
                w.pad(4);
                w.u64(0); // cookie
                w.u64(0); // cookie mask
                encode_match(&mut w, &Match::ANY)?;
                finish_checked(w, at)
            }
            ControllerToSwitch::PacketOut { packet, out_port } => {
                let at = header(&mut w, OFPT_PACKET_OUT, xid);
                w.u32(OFP_NO_BUFFER);
                w.u32(OFPP_CONTROLLER); // in_port
                let actions_len_at = w.buf.len();
                w.u16(0);
                w.pad(6);
                let astart = w.buf.len();
                encode_action(&mut w, &Action::Output(*out_port))?;
                let alen = (w.buf.len() - astart) as u16;
                w.patch_u16(actions_len_at, alen);
                let data = encode_packet(packet)?;
                w.bytes(&data);
                finish_checked(w, at)
            }
            ControllerToSwitch::FlowMod { table, command } => {
                let at = header(&mut w, OFPT_FLOW_MOD, xid);
                let (cmd, cookie, cookie_mask, entry): (u8, u64, u64, Option<&FlowEntry>) =
                    match command {
                        FlowModCommand::Add(e) => (0, e.cookie, 0, Some(e)),
                        FlowModCommand::DeleteByCookie(c) => (3, *c, u64::MAX, None),
                        FlowModCommand::DeleteAll => (3, 0, 0, None),
                        FlowModCommand::DeleteExact(_) => (4, 0, 0, None),
                    };
                w.u64(cookie);
                w.u64(cookie_mask);
                w.u8(table.0);
                w.u8(cmd);
                let (idle, hard, prio) = match entry {
                    Some(e) => (
                        e.idle_timeout
                            .map(|d| d.as_nanos() / 1_000_000_000)
                            .unwrap_or(0) as u16,
                        e.hard_timeout
                            .map(|d| d.as_nanos() / 1_000_000_000)
                            .unwrap_or(0) as u16,
                        e.priority,
                    ),
                    None => (0, 0, 0),
                };
                w.u16(idle);
                w.u16(hard);
                w.u16(prio);
                w.u32(OFP_NO_BUFFER);
                w.u32(0xffff_ffff); // out_port ANY
                w.u32(0xffff_ffff); // out_group ANY
                w.u16(0x0001); // flags: SEND_FLOW_REM
                w.pad(2);
                match command {
                    FlowModCommand::Add(e) => {
                        encode_match(&mut w, &e.matcher)?;
                        encode_instructions(&mut w, &e.instructions)?;
                    }
                    FlowModCommand::DeleteByCookie(_) | FlowModCommand::DeleteAll => {
                        encode_match(&mut w, &Match::ANY)?;
                    }
                    FlowModCommand::DeleteExact(m) => {
                        encode_match(&mut w, m)?;
                    }
                }
                finish_checked(w, at)
            }
            ControllerToSwitch::GroupMod { group, command } => {
                let at = header(&mut w, OFPT_GROUP_MOD, xid);
                match command {
                    GroupModCommand::Install(entry) => {
                        w.u16(0); // OFPGC_ADD
                        let gtype = match entry.group_type {
                            GroupType::Select => 1u8,
                            GroupType::All => 0u8,
                        };
                        w.u8(gtype);
                        w.u8(0);
                        w.u32(group.0);
                        for b in &entry.buckets {
                            let blen_at = w.buf.len();
                            w.u16(0);
                            w.u16(1); // weight
                            w.u32(0xffff_ffff); // watch_port
                            w.u32(0xffff_ffff); // watch_group
                            w.pad(4);
                            encode_action_list(&mut w, &b.actions)?;
                            let blen = (w.buf.len() - blen_at) as u16;
                            w.patch_u16(blen_at, blen);
                        }
                        finish_checked(w, at)
                    }
                    GroupModCommand::Remove => {
                        w.u16(2); // OFPGC_DELETE
                        w.u8(1);
                        w.u8(0);
                        w.u32(group.0);
                        finish_checked(w, at)
                    }
                    GroupModCommand::SetBucketAlive { .. } => {
                        Err(WireError::NotRepresentable("SetBucketAlive"))
                    }
                }
            }
        },
        OfMessage::FromSwitch(m) => match m {
            SwitchToController::EchoReply { nonce } => {
                let at = header(&mut w, OFPT_ECHO_REPLY, xid);
                w.u64(*nonce);
                finish_checked(w, at)
            }
            SwitchToController::BarrierReply { xid: bx } => {
                let at = header(&mut w, OFPT_BARRIER_REPLY, *bx as u32);
                finish_checked(w, at)
            }
            SwitchToController::Error { kind } => {
                let at = header(&mut w, OFPT_ERROR, xid);
                w.u16(5); // OFPET_FLOW_MOD_FAILED
                w.u16(match kind {
                    OfError::TableFull => 1,       // OFPFMFC_TABLE_FULL
                    OfError::FlowModOverload => 0, // OFPFMFC_UNKNOWN
                });
                finish_checked(w, at)
            }
            SwitchToController::PacketIn {
                packet,
                in_port,
                reason,
                via_tunnel,
                ingress_label,
            } => {
                let at = header(&mut w, OFPT_PACKET_IN, xid);
                let data = encode_packet(packet)?;
                w.u32(OFP_NO_BUFFER);
                w.u16(data.len() as u16);
                w.u8(match reason {
                    PacketInReason::NoMatch => 0,
                    PacketInReason::Action => 1,
                });
                w.u8(0); // table_id
                w.u64(0); // cookie
                          // Match carrying IN_PORT + §5.2 metadata OXMs.
                let mstart = w.buf.len();
                w.u16(1);
                let mlen_at = w.buf.len();
                w.u16(0);
                oxm_header(&mut w, OXM_IN_PORT, 4);
                w.u32(in_port.0 as u32);
                if let Some(t) = via_tunnel {
                    oxm_header(&mut w, OXM_TUNNEL_ID, 8);
                    w.u64(t.0 as u64);
                }
                if let Some(l) = ingress_label {
                    oxm_header(&mut w, OXM_METADATA, 8);
                    w.u64(*l as u64);
                }
                let mlen = (w.buf.len() - mstart) as u16;
                w.patch_u16(mlen_at, mlen);
                let pad = (8 - (mlen as usize % 8)) % 8;
                w.pad(pad);
                w.pad(2);
                w.bytes(&data);
                finish_checked(w, at)
            }
            SwitchToController::FlowRemoved {
                table,
                matcher,
                cookie,
                packet_count,
                byte_count,
            } => {
                let at = header(&mut w, OFPT_FLOW_REMOVED, xid);
                w.u64(*cookie);
                w.u16(0); // priority (not tracked in the notification)
                w.u8(0); // reason: idle timeout
                w.u8(table.0);
                w.u32(0); // duration_sec
                w.u32(0); // duration_nsec
                w.u16(0); // idle_timeout
                w.u16(0); // hard_timeout
                w.u64(*packet_count);
                w.u64(*byte_count);
                encode_match(&mut w, matcher)?;
                finish_checked(w, at)
            }
            SwitchToController::FlowStatsReply { stats } => {
                let at = header(&mut w, OFPT_MULTIPART_REPLY, xid);
                w.u16(1); // OFPMP_FLOW
                w.u16(0);
                w.pad(4);
                for st in stats {
                    let elen_at = w.buf.len();
                    w.u16(0);
                    w.u8(st.table.0);
                    w.u8(0);
                    let secs = st.duration.as_nanos() / 1_000_000_000;
                    let nsec = (st.duration.as_nanos() % 1_000_000_000) as u32;
                    w.u32(secs as u32);
                    w.u32(nsec);
                    w.u16(0); // priority
                    w.u16(0); // idle
                    w.u16(0); // hard
                    w.u16(0); // flags
                    w.pad(4);
                    w.u64(st.cookie);
                    w.u64(st.packet_count);
                    w.u64(st.byte_count);
                    encode_match(&mut w, &st.matcher)?;
                    let elen = (w.buf.len() - elen_at) as u16;
                    w.patch_u16(elen_at, elen);
                }
                finish_checked(w, at)
            }
        },
    }
}

/// Decode one message; returns it plus the header transaction id.
pub fn decode_message(buf: &[u8]) -> Result<(OfMessage, u32), WireError> {
    let mut r = Reader::new(buf);
    let version = r.u8()?;
    if version != OFP_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let msg_type = r.u8()?;
    let total = r.u16()? as usize;
    if total > buf.len() {
        return Err(WireError::Truncated);
    }
    let xid = r.u32()?;
    let msg = match msg_type {
        OFPT_HELLO => OfMessage::Hello,
        OFPT_FEATURES_REQUEST => OfMessage::FeaturesRequest,
        OFPT_FEATURES_REPLY => {
            let datapath_id = r.u64()?;
            let n_buffers = r.u32()?;
            let n_tables = r.u8()?;
            OfMessage::FeaturesReply(Features {
                datapath_id,
                n_buffers,
                n_tables,
            })
        }
        OFPT_ECHO_REQUEST => {
            OfMessage::ToSwitch(ControllerToSwitch::EchoRequest { nonce: r.u64()? })
        }
        OFPT_ECHO_REPLY => OfMessage::FromSwitch(SwitchToController::EchoReply { nonce: r.u64()? }),
        OFPT_BARRIER_REQUEST => {
            OfMessage::ToSwitch(ControllerToSwitch::Barrier { xid: xid as u64 })
        }
        OFPT_BARRIER_REPLY => {
            OfMessage::FromSwitch(SwitchToController::BarrierReply { xid: xid as u64 })
        }
        OFPT_ERROR => {
            let _etype = r.u16()?;
            let code = r.u16()?;
            OfMessage::FromSwitch(SwitchToController::Error {
                kind: if code == 1 {
                    OfError::TableFull
                } else {
                    OfError::FlowModOverload
                },
            })
        }
        OFPT_PACKET_OUT => {
            let _buffer = r.u32()?;
            let _in_port = r.u32()?;
            let alen = r.u16()? as usize;
            r.skip(6)?;
            let actions = decode_action_list(&mut r, alen)?;
            let out_port = actions
                .iter()
                .find_map(|a| match a {
                    Action::Output(p) => Some(*p),
                    _ => None,
                })
                .ok_or(WireError::Malformed("packet-out without output"))?;
            let data = r.take(r.remaining())?;
            let packet = decode_packet(data, data.len() as u32)?;
            OfMessage::ToSwitch(ControllerToSwitch::PacketOut { packet, out_port })
        }
        OFPT_FLOW_MOD => {
            let cookie = r.u64()?;
            let cookie_mask = r.u64()?;
            let table = TableId(r.u8()?);
            let cmd = r.u8()?;
            let idle = r.u16()?;
            let hard = r.u16()?;
            let priority = r.u16()?;
            r.skip(4 + 4 + 4 + 2 + 2)?;
            let dm = decode_match(&mut r)?;
            match cmd {
                0 => {
                    let instructions = decode_instructions(&mut r)?;
                    let mut e = FlowEntry::new(dm.matcher, priority, instructions);
                    e.cookie = cookie;
                    if idle > 0 {
                        e.idle_timeout = Some(SimDuration::from_secs(idle as u64));
                    }
                    if hard > 0 {
                        e.hard_timeout = Some(SimDuration::from_secs(hard as u64));
                    }
                    OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
                        table,
                        command: FlowModCommand::Add(e),
                    })
                }
                3 => {
                    if cookie_mask != 0 {
                        OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
                            table,
                            command: FlowModCommand::DeleteByCookie(cookie),
                        })
                    } else {
                        // Non-strict delete with an empty match: delete all.
                        OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
                            table,
                            command: FlowModCommand::DeleteAll,
                        })
                    }
                }
                4 => OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
                    table,
                    command: FlowModCommand::DeleteExact(dm.matcher),
                }),
                _ => return Err(WireError::UnsupportedType(cmd)),
            }
        }
        OFPT_GROUP_MOD => {
            let cmd = r.u16()?;
            let gtype = r.u8()?;
            r.skip(1)?;
            let group = GroupId(r.u32()?);
            match cmd {
                0 | 1 => {
                    let mut buckets = Vec::new();
                    while r.remaining() >= 16 {
                        let blen = r.u16()? as usize;
                        r.skip(2 + 4 + 4 + 4)?;
                        if blen < 16 {
                            return Err(WireError::Malformed("bucket length"));
                        }
                        let actions = decode_action_list(&mut r, blen - 16)?;
                        buckets.push(Bucket::new(actions));
                    }
                    let mut entry = GroupEntry::select(SelectionPolicy::FlowHash, buckets);
                    entry.group_type = if gtype == 1 {
                        GroupType::Select
                    } else {
                        GroupType::All
                    };
                    OfMessage::ToSwitch(ControllerToSwitch::GroupMod {
                        group,
                        command: GroupModCommand::Install(entry),
                    })
                }
                2 => OfMessage::ToSwitch(ControllerToSwitch::GroupMod {
                    group,
                    command: GroupModCommand::Remove,
                }),
                _ => return Err(WireError::UnsupportedType(cmd as u8)),
            }
        }
        OFPT_PACKET_IN => {
            let _buffer = r.u32()?;
            let total_len = r.u16()? as u32;
            let reason = match r.u8()? {
                0 => PacketInReason::NoMatch,
                _ => PacketInReason::Action,
            };
            let _table = r.u8()?;
            let _cookie = r.u64()?;
            let dm = decode_match(&mut r)?;
            r.skip(2)?;
            let data = r.take(r.remaining())?;
            let packet = decode_packet(data, total_len.max(data.len() as u32))?;
            OfMessage::FromSwitch(SwitchToController::PacketIn {
                packet,
                in_port: dm.matcher.in_port.unwrap_or(PortId(0)),
                reason,
                via_tunnel: dm.tunnel_id,
                ingress_label: dm.metadata.map(|m| m as u16),
            })
        }
        OFPT_FLOW_REMOVED => {
            let cookie = r.u64()?;
            let _priority = r.u16()?;
            let _reason = r.u8()?;
            let table = TableId(r.u8()?);
            r.skip(4 + 4 + 2 + 2)?;
            let packet_count = r.u64()?;
            let byte_count = r.u64()?;
            let dm = decode_match(&mut r)?;
            OfMessage::FromSwitch(SwitchToController::FlowRemoved {
                table,
                matcher: dm.matcher,
                cookie,
                packet_count,
                byte_count,
            })
        }
        OFPT_MULTIPART_REQUEST => {
            let mp_type = r.u16()?;
            if mp_type != 1 {
                return Err(WireError::UnsupportedType(mp_type as u8));
            }
            OfMessage::ToSwitch(ControllerToSwitch::FlowStatsRequest)
        }
        OFPT_MULTIPART_REPLY => {
            let mp_type = r.u16()?;
            if mp_type != 1 {
                return Err(WireError::UnsupportedType(mp_type as u8));
            }
            r.skip(2 + 4)?;
            let mut stats = Vec::new();
            while r.remaining() >= 48 {
                let estart = r.pos;
                let elen = r.u16()? as usize;
                let table = TableId(r.u8()?);
                r.skip(1)?;
                let secs = r.u32()?;
                let nsec = r.u32()?;
                r.skip(2 + 2 + 2 + 2 + 4)?;
                let cookie = r.u64()?;
                let packet_count = r.u64()?;
                let byte_count = r.u64()?;
                let dm = decode_match(&mut r)?;
                // Skip any instruction bytes within the entry.
                let consumed = r.pos - estart;
                if elen > consumed {
                    r.skip(elen - consumed)?;
                }
                stats.push(FlowStat {
                    table,
                    matcher: dm.matcher,
                    cookie,
                    packet_count,
                    byte_count,
                    duration: SimDuration::from_nanos(secs as u64 * 1_000_000_000 + nsec as u64),
                });
            }
            OfMessage::FromSwitch(SwitchToController::FlowStatsReply { stats })
        }
        other => return Err(WireError::UnsupportedType(other)),
    };
    Ok((msg, xid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key() -> FlowKey {
        FlowKey::tcp(IpAddr::new(10, 0, 0, 1), 1234, IpAddr::new(10, 0, 1, 2), 80)
    }

    fn roundtrip(msg: OfMessage) -> OfMessage {
        let bytes = encode_message(&msg, 42).expect("encode");
        let (decoded, xid) = decode_message(&bytes).expect("decode");
        // Barrier messages carry their own xid; everything else keeps ours.
        match &msg {
            OfMessage::ToSwitch(ControllerToSwitch::Barrier { .. })
            | OfMessage::FromSwitch(SwitchToController::BarrierReply { .. }) => {}
            _ => assert_eq!(xid, 42),
        }
        decoded
    }

    #[test]
    fn header_is_openflow13() {
        let bytes = encode_message(
            &OfMessage::ToSwitch(ControllerToSwitch::EchoRequest { nonce: 7 }),
            0xDEAD_BEEF,
        )
        .unwrap();
        // Golden header: version 0x04, type ECHO_REQUEST(2), len 16, xid.
        assert_eq!(
            &bytes[..8],
            &[0x04, 0x02, 0x00, 0x10, 0xDE, 0xAD, 0xBE, 0xEF]
        );
        assert_eq!(bytes.len(), 16);
    }

    #[test]
    fn echo_roundtrip() {
        match roundtrip(OfMessage::ToSwitch(ControllerToSwitch::EchoRequest {
            nonce: 0x1122_3344_5566_7788,
        })) {
            OfMessage::ToSwitch(ControllerToSwitch::EchoRequest { nonce }) => {
                assert_eq!(nonce, 0x1122_3344_5566_7788)
            }
            other => panic!("{other:?}"),
        }
        match roundtrip(OfMessage::FromSwitch(SwitchToController::EchoReply {
            nonce: 9,
        })) {
            OfMessage::FromSwitch(SwitchToController::EchoReply { nonce: 9 }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn barrier_roundtrip_keeps_xid() {
        match roundtrip(OfMessage::ToSwitch(ControllerToSwitch::Barrier { xid: 77 })) {
            OfMessage::ToSwitch(ControllerToSwitch::Barrier { xid: 77 }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_codes_roundtrip() {
        for kind in [OfError::TableFull, OfError::FlowModOverload] {
            match roundtrip(OfMessage::FromSwitch(SwitchToController::Error { kind })) {
                OfMessage::FromSwitch(SwitchToController::Error { kind: k }) => {
                    assert_eq!(k, kind)
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn flow_mod_add_roundtrip() {
        let entry = FlowEntry::new(
            Match::exact(key()).with_in_port(PortId(3)),
            100,
            vec![
                Instruction::Apply(vec![
                    Action::PushLabel(Label::Tunnel(TunnelId(12))),
                    Action::Output(PortId(7)),
                ]),
                Instruction::GotoTable(TableId(1)),
            ],
        )
        .with_cookie(0xABCD)
        .with_idle_timeout(SimDuration::from_secs(10));
        let msg = OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
            table: TableId(0),
            command: FlowModCommand::Add(entry.clone()),
        });
        match roundtrip(msg) {
            OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
                table,
                command: FlowModCommand::Add(e),
            }) => {
                assert_eq!(table, TableId(0));
                assert_eq!(e.matcher, entry.matcher);
                assert_eq!(e.priority, 100);
                assert_eq!(e.cookie, 0xABCD);
                assert_eq!(e.idle_timeout, Some(SimDuration::from_secs(10)));
                assert_eq!(e.instructions, entry.instructions);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flow_mod_deletes_roundtrip() {
        match roundtrip(OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
            table: TableId(1),
            command: FlowModCommand::DeleteByCookie(99),
        })) {
            OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
                command: FlowModCommand::DeleteByCookie(99),
                ..
            }) => {}
            other => panic!("{other:?}"),
        }
        let m = Match::src_dst(key().src, key().dst);
        match roundtrip(OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
            table: TableId(0),
            command: FlowModCommand::DeleteExact(m),
        })) {
            OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
                command: FlowModCommand::DeleteExact(got),
                ..
            }) => assert_eq!(got, m),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn drop_rule_roundtrips_as_empty_action_list() {
        let entry = FlowEntry::apply(Match::ANY, 1, vec![Action::Drop]);
        match roundtrip(OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
            table: TableId(0),
            command: FlowModCommand::Add(entry),
        })) {
            OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
                command: FlowModCommand::Add(e),
                ..
            }) => assert_eq!(e.instructions, vec![Instruction::Apply(vec![Action::Drop])]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn group_mod_roundtrip() {
        let entry = GroupEntry::select(
            SelectionPolicy::FlowHash,
            vec![
                Bucket::new(vec![
                    Action::PushLabel(Label::Tunnel(TunnelId(3))),
                    Action::Output(PortId(2)),
                ]),
                Bucket::new(vec![Action::Output(PortId(4))]),
            ],
        );
        match roundtrip(OfMessage::ToSwitch(ControllerToSwitch::GroupMod {
            group: GroupId(5),
            command: GroupModCommand::Install(entry),
        })) {
            OfMessage::ToSwitch(ControllerToSwitch::GroupMod {
                group,
                command: GroupModCommand::Install(e),
            }) => {
                assert_eq!(group, GroupId(5));
                assert_eq!(e.group_type, GroupType::Select);
                assert_eq!(e.buckets.len(), 2);
                assert_eq!(
                    e.buckets[0].actions,
                    vec![
                        Action::PushLabel(Label::Tunnel(TunnelId(3))),
                        Action::Output(PortId(2))
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn set_bucket_alive_is_not_representable() {
        let err = encode_message(
            &OfMessage::ToSwitch(ControllerToSwitch::GroupMod {
                group: GroupId(1),
                command: GroupModCommand::SetBucketAlive {
                    bucket: 0,
                    alive: false,
                },
            }),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, WireError::NotRepresentable(_)));
    }

    #[test]
    fn packet_in_roundtrip_with_scotch_metadata() {
        let mut p = Packet::flow_start(key(), FlowId(5), SimTime::from_secs(1));
        p.push_label(Label::IngressPort(4));
        let msg = OfMessage::FromSwitch(SwitchToController::PacketIn {
            packet: p,
            in_port: PortId(9),
            reason: PacketInReason::NoMatch,
            via_tunnel: Some(TunnelId(77)),
            ingress_label: Some(4),
        });
        match roundtrip(msg) {
            OfMessage::FromSwitch(SwitchToController::PacketIn {
                packet,
                in_port,
                reason,
                via_tunnel,
                ingress_label,
            }) => {
                assert_eq!(in_port, PortId(9));
                assert_eq!(reason, PacketInReason::NoMatch);
                assert_eq!(via_tunnel, Some(TunnelId(77)));
                assert_eq!(ingress_label, Some(4));
                // Protocol-visible packet fields survive.
                assert_eq!(packet.key, p.key);
                assert_eq!(packet.kind, PacketKind::FlowStart);
                assert_eq!(packet.labels, p.labels);
                // Simulation metadata does not (documented).
                assert_eq!(packet.flow_id, FlowId(0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn packet_out_roundtrip() {
        let p = Packet::data(key(), FlowId(1), SimTime::ZERO, 17, 200);
        match roundtrip(OfMessage::ToSwitch(ControllerToSwitch::PacketOut {
            packet: p,
            out_port: PortId(6),
        })) {
            OfMessage::ToSwitch(ControllerToSwitch::PacketOut { packet, out_port }) => {
                assert_eq!(out_port, PortId(6));
                assert_eq!(packet.key, p.key);
                assert_eq!(packet.seq, 17);
                assert_eq!(packet.kind, PacketKind::Data);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flow_stats_roundtrip() {
        let stats = vec![
            FlowStat {
                table: TableId(0),
                matcher: Match::src_dst(key().src, key().dst),
                cookie: 11,
                packet_count: 1000,
                byte_count: 64000,
                duration: SimDuration::from_millis(2500),
            },
            FlowStat {
                table: TableId(1),
                matcher: Match::ANY,
                cookie: 12,
                packet_count: 5,
                byte_count: 320,
                duration: SimDuration::from_secs(9),
            },
        ];
        match roundtrip(OfMessage::FromSwitch(SwitchToController::FlowStatsReply {
            stats: stats.clone(),
        })) {
            OfMessage::FromSwitch(SwitchToController::FlowStatsReply { stats: got }) => {
                assert_eq!(got.len(), 2);
                assert_eq!(got[0].cookie, 11);
                assert_eq!(got[0].packet_count, 1000);
                assert_eq!(got[0].matcher, stats[0].matcher);
                assert_eq!(got[0].duration, stats[0].duration);
                assert_eq!(got[1].matcher, Match::ANY);
            }
            other => panic!("{other:?}"),
        }
        match roundtrip(OfMessage::ToSwitch(ControllerToSwitch::FlowStatsRequest)) {
            OfMessage::ToSwitch(ControllerToSwitch::FlowStatsRequest) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flow_removed_roundtrip() {
        match roundtrip(OfMessage::FromSwitch(SwitchToController::FlowRemoved {
            table: TableId(1),
            matcher: Match::exact(key()),
            cookie: 0xFEED,
            packet_count: 44,
            byte_count: 4096,
        })) {
            OfMessage::FromSwitch(SwitchToController::FlowRemoved {
                table,
                matcher,
                cookie,
                packet_count,
                byte_count,
            }) => {
                assert_eq!(table, TableId(1));
                assert_eq!(matcher, Match::exact(key()));
                assert_eq!(cookie, 0xFEED);
                assert_eq!((packet_count, byte_count), (44, 4096));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_version_and_truncation() {
        let mut bytes = encode_message(
            &OfMessage::ToSwitch(ControllerToSwitch::EchoRequest { nonce: 1 }),
            1,
        )
        .unwrap();
        let mut bad = bytes.clone();
        bad[0] = 0x01; // OpenFlow 1.0
        assert!(matches!(
            decode_message(&bad),
            Err(WireError::BadVersion(0x01))
        ));
        bytes.truncate(10);
        assert!(matches!(decode_message(&bytes), Err(WireError::Truncated)));
        assert!(decode_message(&[]).is_err());
    }

    #[test]
    fn label_mapping_is_bijective_in_range() {
        for l in [
            Label::Tunnel(TunnelId(0)),
            Label::Tunnel(TunnelId(524_287)),
            Label::IngressPort(0),
            Label::IngressPort(65_535),
        ] {
            assert_eq!(mpls_to_label(label_to_mpls(l).unwrap()), l);
        }
        assert!(label_to_mpls(Label::Tunnel(TunnelId(1 << 19))).is_err());
    }

    #[test]
    fn packet_bytes_roundtrip_with_label_stack() {
        let mut p = Packet::flow_start(key(), FlowId(3), SimTime::ZERO).with_size(500);
        p.push_label(Label::IngressPort(2));
        p.push_label(Label::Tunnel(TunnelId(9)));
        let bytes = encode_packet(&p).unwrap();
        let back = decode_packet(&bytes, p.size).unwrap();
        assert_eq!(back.key, p.key);
        assert_eq!(back.labels, p.labels);
        // 500 B payload + two 4 B label shims.
        assert_eq!(back.size, 508);
        assert_eq!(back.kind, PacketKind::FlowStart);
    }

    proptest! {
        /// Arbitrary matches survive the OXM roundtrip.
        #[test]
        fn prop_match_roundtrip(
            in_port in proptest::option::of(0u16..48),
            src in proptest::option::of(0u32..u32::MAX),
            dst in proptest::option::of(0u32..u32::MAX),
            proto_sel in 0u8..4,
            sport in proptest::option::of(0u16..u16::MAX),
            dport in proptest::option::of(0u16..u16::MAX),
            label_sel in 0u8..4,
            tunnel in 0u32..(1 << 19),
        ) {
            let proto = match proto_sel {
                0 => None,
                1 => Some(Protocol::Tcp),
                2 => Some(Protocol::Udp),
                _ => Some(Protocol::Icmp),
            };
            let top_label = match label_sel {
                0 => None,
                1 => Some(None),
                2 => Some(Some(Label::Tunnel(TunnelId(tunnel)))),
                _ => Some(Some(Label::IngressPort(tunnel as u16))),
            };
            let m = Match {
                in_port: in_port.map(PortId),
                src: src.map(IpAddr),
                dst: dst.map(IpAddr),
                proto,
                sport,
                dport,
                top_label,
            };
            // ICMP matches with ports are not meaningful on the wire (the
            // codec encodes ports as TCP fields); skip that corner.
            prop_assume!(!(proto == Some(Protocol::Icmp) && (sport.is_some() || dport.is_some())));
            let entry = FlowEntry::apply(m, 5, vec![Action::Output(PortId(1))]);
            let bytes = encode_message(
                &OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
                    table: TableId(0),
                    command: FlowModCommand::Add(entry),
                }),
                7,
            ).unwrap();
            let (decoded, _) = decode_message(&bytes).unwrap();
            let OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
                command: FlowModCommand::Add(e),
                ..
            }) = decoded else { panic!() };
            // Port fields imply TCP on the wire when proto is unset.
            let mut want = m;
            if want.proto.is_none() && (want.sport.is_some() || want.dport.is_some()) {
                want.proto = None; // ports decode, proto stays None
            }
            prop_assert_eq!(e.matcher, want);
        }

        /// Arbitrary packets survive the bytes roundtrip (protocol-visible
        /// fields).
        #[test]
        fn prop_packet_roundtrip(
            src: u32, dst: u32, sport: u16, dport: u16,
            seq in 0u32..1_000_000,
            size in 64u32..9000,
            // The inline stack holds at most 2 labels (§5.2).
            n_labels in 0usize..3,
        ) {
            let k = FlowKey::tcp(IpAddr(src), sport, IpAddr(dst), dport);
            let mut p = Packet::data(k, FlowId(1), SimTime::ZERO, seq, size);
            for i in 0..n_labels {
                p.push_label(if i % 2 == 0 {
                    Label::IngressPort(i as u16)
                } else {
                    Label::Tunnel(TunnelId(i as u32 * 100))
                });
            }
            let bytes = encode_packet(&p).unwrap();
            let back = decode_packet(&bytes, p.size).unwrap();
            prop_assert_eq!(back.key, p.key);
            prop_assert_eq!(back.labels, p.labels);
            prop_assert_eq!(back.seq, seq);
        }
    }
}

/// Incremental frame splitter for a TCP byte stream carrying OpenFlow
/// messages.
///
/// Feed arbitrary chunks with [`FrameReader::extend`]; pull complete
/// messages with [`FrameReader::next_message`]. Framing uses the header's
/// length field, so partial reads and coalesced messages are both handled
/// — the two realities of reading OpenFlow off a socket.
#[derive(Debug, Clone, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Append bytes received from the stream.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next complete message.
    ///
    /// * `Ok(Some(..))` — one message decoded and consumed.
    /// * `Ok(None)` — not enough bytes yet.
    /// * `Err(..)` — the stream is corrupt (bad version / length); the
    ///   offending frame is consumed so the caller may resynchronize or
    ///   drop the connection.
    pub fn next_message(&mut self) -> Result<Option<(OfMessage, u32)>, WireError> {
        if self.buf.len() < 8 {
            return Ok(None);
        }
        let total = u16::from_be_bytes([self.buf[2], self.buf[3]]) as usize;
        if total < 8 {
            self.buf.clear();
            return Err(WireError::Malformed("header length"));
        }
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame: Vec<u8> = self.buf.drain(..total).collect();
        decode_message(&frame).map(Some)
    }
}

#[cfg(test)]
mod frame_tests {
    use super::*;

    fn echo(nonce: u64) -> Vec<u8> {
        encode_message(
            &OfMessage::ToSwitch(ControllerToSwitch::EchoRequest { nonce }),
            nonce as u32,
        )
        .unwrap()
    }

    #[test]
    fn coalesced_messages_split() {
        let mut stream = Vec::new();
        for n in 0..5u64 {
            stream.extend(echo(n));
        }
        let mut r = FrameReader::new();
        r.extend(&stream);
        for n in 0..5u64 {
            match r.next_message().unwrap().unwrap() {
                (OfMessage::ToSwitch(ControllerToSwitch::EchoRequest { nonce }), _) => {
                    assert_eq!(nonce, n)
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(r.next_message().unwrap().is_none());
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let bytes = echo(42);
        let mut r = FrameReader::new();
        for (i, b) in bytes.iter().enumerate() {
            r.extend(&[*b]);
            let got = r.next_message().unwrap();
            if i + 1 < bytes.len() {
                assert!(got.is_none(), "premature decode at byte {i}");
            } else {
                assert!(got.is_some());
            }
        }
    }

    #[test]
    fn corrupt_length_errors_and_clears() {
        let mut bytes = echo(1);
        bytes[2] = 0;
        bytes[3] = 4; // length 4 < header size
        let mut r = FrameReader::new();
        r.extend(&bytes);
        assert!(r.next_message().is_err());
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn bad_version_consumes_the_frame_only() {
        let mut bad = echo(1);
        bad[0] = 0x01;
        let good = echo(7);
        let mut r = FrameReader::new();
        r.extend(&bad);
        r.extend(&good);
        assert!(matches!(r.next_message(), Err(WireError::BadVersion(1))));
        // The next frame still decodes.
        match r.next_message().unwrap().unwrap() {
            (OfMessage::ToSwitch(ControllerToSwitch::EchoRequest { nonce: 7 }), _) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn large_flow_mod_survives_fragmented_delivery() {
        let entry = FlowEntry::apply(
            Match::exact(FlowKey::tcp(
                IpAddr::new(1, 2, 3, 4),
                5,
                IpAddr::new(6, 7, 8, 9),
                10,
            )),
            9,
            vec![Action::Output(PortId(3)), Action::push_tunnel(TunnelId(2))],
        );
        let bytes = encode_message(
            &OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
                table: TableId(1),
                command: FlowModCommand::Add(entry),
            }),
            3,
        )
        .unwrap();
        let mut r = FrameReader::new();
        let mid = bytes.len() / 2;
        r.extend(&bytes[..mid]);
        assert!(r.next_message().unwrap().is_none());
        r.extend(&bytes[mid..]);
        assert!(matches!(
            r.next_message().unwrap().unwrap().0,
            OfMessage::ToSwitch(ControllerToSwitch::FlowMod { .. })
        ));
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The decoder never panics on arbitrary bytes — it returns an
        /// error or a message, but a malformed peer must not crash the
        /// controller.
        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_message(&bytes);
        }

        /// Same for the framed stream reader, fed arbitrary chunks.
        #[test]
        fn prop_frame_reader_never_panics(
            chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..8),
        ) {
            let mut r = FrameReader::new();
            for c in chunks {
                r.extend(&c);
                // Drain until it stalls or errors; must terminate.
                for _ in 0..16 {
                    match r.next_message() {
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        Err(_) => break,
                    }
                }
            }
        }

        /// Valid frames prefixed with garbage headers error cleanly.
        #[test]
        fn prop_decode_bad_version(v in 0u8..=255) {
            prop_assume!(v != OFP_VERSION);
            let mut bytes = encode_message(
                &OfMessage::ToSwitch(ControllerToSwitch::EchoRequest { nonce: 1 }),
                9,
            ).unwrap();
            bytes[0] = v;
            prop_assert!(matches!(decode_message(&bytes), Err(WireError::BadVersion(got)) if got == v));
        }
    }
}

#[cfg(test)]
mod handshake_tests {
    use super::*;

    /// The standard connection bootstrap: HELLO exchange, then
    /// FEATURES_REQUEST/REPLY — exactly what a Scotch controller would do
    /// against a real switch, run through the framed stream reader.
    #[test]
    fn hello_features_handshake_over_a_stream() {
        let mut to_switch = Vec::new();
        to_switch.extend(encode_message(&OfMessage::Hello, 1).unwrap());
        to_switch.extend(encode_message(&OfMessage::FeaturesRequest, 2).unwrap());

        // Switch side parses the stream...
        let mut sw = FrameReader::new();
        sw.extend(&to_switch);
        assert!(matches!(
            sw.next_message().unwrap().unwrap(),
            (OfMessage::Hello, 1)
        ));
        assert!(matches!(
            sw.next_message().unwrap().unwrap(),
            (OfMessage::FeaturesRequest, 2)
        ));

        // ...and answers.
        let feats = Features {
            datapath_id: 0xCAFE,
            n_buffers: 256,
            n_tables: 2,
        };
        let mut to_ctrl = Vec::new();
        to_ctrl.extend(encode_message(&OfMessage::Hello, 1).unwrap());
        to_ctrl.extend(encode_message(&OfMessage::FeaturesReply(feats), 2).unwrap());
        let mut ctl = FrameReader::new();
        ctl.extend(&to_ctrl);
        assert!(matches!(
            ctl.next_message().unwrap().unwrap(),
            (OfMessage::Hello, 1)
        ));
        match ctl.next_message().unwrap().unwrap() {
            (OfMessage::FeaturesReply(f), 2) => assert_eq!(f, feats),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hello_carries_the_13_version_bitmap() {
        let bytes = encode_message(&OfMessage::Hello, 0).unwrap();
        assert_eq!(bytes[1], 0); // OFPT_HELLO
                                 // Bitmap element: type 1, len 8, bit for version 4 set.
        let bitmap = u32::from_be_bytes(bytes[12..16].try_into().unwrap());
        assert_ne!(bitmap & (1 << 4), 0);
    }
}

/// Encode a flow-stats reply as one or more multipart segments, none
/// exceeding the 64 KiB frame limit. Segments before the last carry the
/// `OFPMPF_REPLY_MORE` flag, per spec.
pub fn encode_flow_stats_segmented(
    stats: &[FlowStat],
    xid: u32,
) -> Result<Vec<Vec<u8>>, WireError> {
    // Worst-case bytes per entry: fixed 48 + match (≤ 48 with padding).
    const BUDGET: usize = 60_000;
    const PER_ENTRY: usize = 96;
    let per_segment = (BUDGET / PER_ENTRY).max(1);
    let chunks: Vec<&[FlowStat]> = if stats.is_empty() {
        vec![&[][..]]
    } else {
        stats.chunks(per_segment).collect()
    };
    let n = chunks.len();
    let mut out = Vec::with_capacity(n);
    for (i, chunk) in chunks.into_iter().enumerate() {
        let more = i + 1 < n;
        let mut w = Writer::new();
        let at = header(&mut w, OFPT_MULTIPART_REPLY, xid);
        w.u16(1); // OFPMP_FLOW
        w.u16(if more { 0x0001 } else { 0 }); // OFPMPF_REPLY_MORE
        w.pad(4);
        for st in chunk {
            let elen_at = w.buf.len();
            w.u16(0);
            w.u8(st.table.0);
            w.u8(0);
            let secs = st.duration.as_nanos() / 1_000_000_000;
            let nsec = (st.duration.as_nanos() % 1_000_000_000) as u32;
            w.u32(secs as u32);
            w.u32(nsec);
            w.u16(0);
            w.u16(0);
            w.u16(0);
            w.u16(0);
            w.pad(4);
            w.u64(st.cookie);
            w.u64(st.packet_count);
            w.u64(st.byte_count);
            encode_match(&mut w, &st.matcher)?;
            let elen = (w.buf.len() - elen_at) as u16;
            w.patch_u16(elen_at, elen);
        }
        out.push(finish_checked(w, at)?);
    }
    Ok(out)
}

/// Reassembles segmented multipart flow-stats replies (`REPLY_MORE`
/// chains) into complete stat lists.
#[derive(Debug, Clone, Default)]
pub struct MultipartAssembler {
    pending: Vec<FlowStat>,
}

impl MultipartAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        MultipartAssembler::default()
    }

    /// Feed one multipart-reply frame. Returns the complete stats once the
    /// final (no-MORE) segment arrives, `None` while parts are pending.
    pub fn feed(&mut self, frame: &[u8]) -> Result<Option<Vec<FlowStat>>, WireError> {
        if frame.len() < 12 || frame[1] != OFPT_MULTIPART_REPLY {
            return Err(WireError::Malformed("not a multipart reply"));
        }
        let more = u16::from_be_bytes([frame[10], frame[11]]) & 0x0001 != 0;
        match decode_message(frame)? {
            (OfMessage::FromSwitch(SwitchToController::FlowStatsReply { stats }), _) => {
                self.pending.extend(stats);
                if more {
                    Ok(None)
                } else {
                    Ok(Some(std::mem::take(&mut self.pending)))
                }
            }
            _ => Err(WireError::Malformed("unexpected multipart type")),
        }
    }
}

#[cfg(test)]
mod multipart_tests {
    use super::*;

    fn stats(n: usize) -> Vec<FlowStat> {
        (0..n)
            .map(|i| FlowStat {
                table: TableId(0),
                matcher: Match::src_dst(IpAddr(i as u32), IpAddr::new(9, 9, 9, 9)),
                cookie: i as u64,
                packet_count: i as u64 * 10,
                byte_count: i as u64 * 1000,
                duration: SimDuration::from_millis(i as u64),
            })
            .collect()
    }

    #[test]
    fn oversized_reply_is_rejected_by_the_plain_encoder() {
        let big = stats(2000);
        let err = encode_message(
            &OfMessage::FromSwitch(SwitchToController::FlowStatsReply { stats: big }),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, WireError::NotRepresentable(_)));
    }

    #[test]
    fn segmented_roundtrip_reassembles_everything() {
        let all = stats(2000);
        let frames = encode_flow_stats_segmented(&all, 7).unwrap();
        assert!(frames.len() > 1, "2000 entries must segment");
        for f in &frames {
            assert!(f.len() <= u16::MAX as usize);
        }
        let mut asm = MultipartAssembler::new();
        let mut got = None;
        for (i, f) in frames.iter().enumerate() {
            let r = asm.feed(f).unwrap();
            if i + 1 < frames.len() {
                assert!(r.is_none(), "MORE segments must not complete");
            } else {
                got = r;
            }
        }
        let got = got.expect("final segment completes");
        assert_eq!(got.len(), all.len());
        assert_eq!(got[0].cookie, 0);
        assert_eq!(got.last().unwrap().cookie, 1999);
        assert_eq!(got[1500].matcher, all[1500].matcher);
    }

    #[test]
    fn small_reply_is_a_single_unflagged_segment() {
        let frames = encode_flow_stats_segmented(&stats(3), 1).unwrap();
        assert_eq!(frames.len(), 1);
        let flags = u16::from_be_bytes([frames[0][10], frames[0][11]]);
        assert_eq!(flags & 1, 0);
        let mut asm = MultipartAssembler::new();
        assert_eq!(asm.feed(&frames[0]).unwrap().unwrap().len(), 3);
    }

    #[test]
    fn empty_reply_still_produces_one_frame() {
        let frames = encode_flow_stats_segmented(&[], 1).unwrap();
        assert_eq!(frames.len(), 1);
        let mut asm = MultipartAssembler::new();
        assert_eq!(asm.feed(&frames[0]).unwrap().unwrap().len(), 0);
    }

    #[test]
    fn assembler_rejects_non_multipart() {
        let echo = encode_message(
            &OfMessage::ToSwitch(ControllerToSwitch::EchoRequest { nonce: 1 }),
            1,
        )
        .unwrap();
        let mut asm = MultipartAssembler::new();
        assert!(asm.feed(&echo).is_err());
    }
}
