//! Flow tables and the multi-table pipeline.
//!
//! A [`FlowTable`] holds priority-ordered [`FlowEntry`]s with idle and hard
//! timeouts and a bounded capacity (a full table rejects insertions — the
//! TCAM-exhaustion failure mode of §3.3: "a new flow rule won't be
//! installed at the flow table if it becomes full").
//!
//! A [`Pipeline`] chains tables OpenFlow-1.3 style: matching starts in
//! table 0 and `GotoTable` instructions continue it. Scotch's physical
//! switch uses two tables (§5.2): table 0 pushes the inner ingress-port
//! label, table 1 holds the per-flow rules and the overlay default rule.

use crate::ofmatch::{Action, Instruction, Match};
use scotch_net::{Packet, PortId};
use scotch_sim::{SimDuration, SimTime};

/// Index of a flow table within a switch's pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u8);

/// One installed rule.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEntry {
    /// Match condition.
    pub matcher: Match,
    /// Higher wins; ties break toward the earlier-installed entry.
    pub priority: u16,
    /// What to do on match.
    pub instructions: Vec<Instruction>,
    /// Controller-chosen opaque id (used for deletion and stats
    /// correlation).
    pub cookie: u64,
    /// Remove if unmatched for this long (`None` = no idle timeout).
    pub idle_timeout: Option<SimDuration>,
    /// Remove unconditionally this long after installation.
    pub hard_timeout: Option<SimDuration>,
    /// Installation time (set by the table).
    pub installed_at: SimTime,
    /// Last time a packet hit this entry.
    pub last_hit: SimTime,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// Packets matched *and* picked by the telemetry sampler (zero unless
    /// the owning switch samples; see the switch crate's `PacketSampler`).
    /// Living on the entry means sampled state is evicted, replaced and
    /// reset exactly when the entry itself is — no side-table bookkeeping.
    pub sampled_packets: u64,
    /// Bytes of sampled packets.
    pub sampled_bytes: u64,
}

impl FlowEntry {
    /// A rule with the given match, priority and instructions; no timeouts.
    pub fn new(matcher: Match, priority: u16, instructions: Vec<Instruction>) -> Self {
        FlowEntry {
            matcher,
            priority,
            instructions,
            cookie: 0,
            idle_timeout: None,
            hard_timeout: None,
            installed_at: SimTime::ZERO,
            last_hit: SimTime::ZERO,
            packet_count: 0,
            byte_count: 0,
            sampled_packets: 0,
            sampled_bytes: 0,
        }
    }

    /// Shorthand: match → apply a single action list.
    pub fn apply(matcher: Match, priority: u16, actions: Vec<Action>) -> Self {
        FlowEntry::new(matcher, priority, vec![Instruction::Apply(actions)])
    }

    /// Builder: set the cookie.
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }

    /// Builder: set the idle timeout.
    pub fn with_idle_timeout(mut self, t: SimDuration) -> Self {
        self.idle_timeout = Some(t);
        self
    }

    /// Builder: set the hard timeout.
    pub fn with_hard_timeout(mut self, t: SimDuration) -> Self {
        self.hard_timeout = Some(t);
        self
    }

    /// The first `Output` action among the entry's `Apply` instructions,
    /// if any (handy for inspecting where a rule forwards).
    pub fn first_output(&self) -> Option<Action> {
        self.instructions.iter().find_map(|i| match i {
            Instruction::Apply(acts) => acts
                .iter()
                .find(|a| matches!(a, Action::Output(_)))
                .copied(),
            Instruction::GotoTable(_) => None,
        })
    }

    /// Earliest time this entry *could* expire given its current state
    /// (`None` = no timeouts). A later hit pushes the idle part forward, so
    /// this is a lower bound, never an exact prediction.
    fn deadline(&self) -> Option<SimTime> {
        let hard = self.hard_timeout.map(|h| self.installed_at + h);
        let idle = self.idle_timeout.map(|i| self.last_hit + i);
        match (hard, idle) {
            (Some(h), Some(i)) => Some(h.min(i)),
            (Some(h), None) => Some(h),
            (None, Some(i)) => Some(i),
            (None, None) => None,
        }
    }

    fn expired(&self, now: SimTime) -> bool {
        if let Some(h) = self.hard_timeout {
            if now.duration_since(self.installed_at) >= h {
                return true;
            }
        }
        if let Some(i) = self.idle_timeout {
            if now.duration_since(self.last_hit) >= i {
                return true;
            }
        }
        false
    }
}

/// Why an insertion failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// The table is at capacity (TCAM full).
    TableFull,
}

/// A bounded, priority-ordered flow table.
///
/// Internally a slab plus a `(src, dst)` hash index: per-flow rules (the
/// overwhelming majority — both the paper's src/dst rules and microflow
/// rules specify both addresses) are found in O(1); only the handful of
/// "generic" rules (port-labelling defaults, label rules, wildcards) are
/// scanned. Semantics are identical to a full priority scan.
#[derive(Debug, Clone)]
pub struct FlowTable {
    /// Slab of entries; `None` marks a free slot.
    slots: Vec<Option<FlowEntry>>,
    /// Install order per slot, parallel to `slots`.
    seqs: Vec<u64>,
    /// Position of each slot within its index bucket, parallel to `slots`
    /// (meaningful only while the slot is occupied). Lets `unlink` use
    /// `swap_remove` instead of an O(bucket) `retain`.
    pos: Vec<usize>,
    /// Free slot indices for reuse.
    free: Vec<usize>,
    /// Slots of entries whose matcher specifies both `src` and `dst`.
    by_src_dst: scotch_sim::FxHashMap<(scotch_net::IpAddr, scotch_net::IpAddr), Vec<usize>>,
    /// Slots of all other (wildcard-ish) entries.
    generic: Vec<usize>,
    len: usize,
    capacity: usize,
    /// Monotone counter for deterministic tie-breaks.
    install_seq: u64,
    /// Conservative lower bound on the earliest time any entry can expire
    /// (`None` = nothing has a timeout). Idle-timeout hits only push real
    /// deadlines later, so the bound stays valid without per-hit updates;
    /// `expire` before the bound is a constant-time no-op.
    next_deadline: Option<SimTime>,
}

fn index_key(m: &Match) -> Option<(scotch_net::IpAddr, scotch_net::IpAddr)> {
    match (m.src, m.dst) {
        (Some(s), Some(d)) => Some((s, d)),
        _ => None,
    }
}

impl FlowTable {
    /// A table holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flow table must hold at least one entry");
        FlowTable {
            slots: Vec::new(),
            seqs: Vec::new(),
            pos: Vec::new(),
            free: Vec::new(),
            by_src_dst: scotch_sim::FxHashMap::default(),
            generic: Vec::new(),
            len: 0,
            capacity,
            install_seq: 0,
            next_deadline: None,
        }
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn bucket(&self, m: &Match) -> &[usize] {
        match index_key(m) {
            Some(k) => self.by_src_dst.get(&k).map(|v| v.as_slice()).unwrap_or(&[]),
            None => &self.generic,
        }
    }

    /// Append `slot` to its index bucket, recording its position.
    fn link(&mut self, slot: usize, matcher: &Match) {
        let bucket = match index_key(matcher) {
            Some(k) => self.by_src_dst.entry(k).or_default(),
            None => &mut self.generic,
        };
        self.pos[slot] = bucket.len();
        bucket.push(slot);
    }

    /// Remove `slot` from its index bucket in O(1) via `swap_remove` at the
    /// tracked position, fixing up the moved slot's position.
    fn unlink(&mut self, slot: usize, matcher: &Match) {
        let p = self.pos[slot];
        match index_key(matcher) {
            Some(k) => {
                if let Some(v) = self.by_src_dst.get_mut(&k) {
                    debug_assert_eq!(v.get(p), Some(&slot));
                    v.swap_remove(p);
                    if let Some(&moved) = v.get(p) {
                        self.pos[moved] = p;
                    }
                    if v.is_empty() {
                        self.by_src_dst.remove(&k);
                    }
                }
            }
            None => {
                debug_assert_eq!(self.generic.get(p), Some(&slot));
                self.generic.swap_remove(p);
                if let Some(&moved) = self.generic.get(p) {
                    self.pos[moved] = p;
                }
            }
        }
    }

    fn take_slot(&mut self, slot: usize) -> FlowEntry {
        let e = self.slots[slot].take().expect("occupied slot");
        self.unlink(slot, &e.matcher);
        self.free.push(slot);
        self.len -= 1;
        e
    }

    /// Install an entry at `now`. Identical (match, priority) replaces the
    /// existing entry, OpenFlow-style; otherwise a full table rejects.
    pub fn insert(&mut self, now: SimTime, mut entry: FlowEntry) -> Result<(), InsertError> {
        entry.installed_at = now;
        entry.last_hit = now;
        // Replacement: same (match, priority).
        let existing = self.bucket(&entry.matcher).iter().copied().find(|&s| {
            let e = self.slots[s].as_ref().expect("indexed slot occupied");
            e.matcher == entry.matcher && e.priority == entry.priority
        });
        if let Some(slot) = existing {
            self.note_deadline(entry.deadline());
            self.slots[slot] = Some(entry);
            return Ok(());
        }
        if self.len >= self.capacity {
            return Err(InsertError::TableFull);
        }
        self.note_deadline(entry.deadline());
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Some(entry);
                self.seqs[s] = self.install_seq;
                s
            }
            None => {
                self.slots.push(Some(entry));
                self.seqs.push(self.install_seq);
                self.pos.push(0);
                self.slots.len() - 1
            }
        };
        self.install_seq += 1;
        self.len += 1;
        let matcher = self.slots[slot].as_ref().unwrap().matcher;
        self.link(slot, &matcher);
        Ok(())
    }

    /// Lower `next_deadline` to cover a (possibly `None`) entry deadline.
    fn note_deadline(&mut self, d: Option<SimTime>) {
        if let Some(d) = d {
            self.next_deadline = Some(match self.next_deadline {
                Some(cur) => cur.min(d),
                None => d,
            });
        }
    }

    /// Remove all entries with the given cookie; returns how many were
    /// removed.
    pub fn remove_by_cookie(&mut self, cookie: u64) -> usize {
        let mut removed = 0;
        for slot in 0..self.slots.len() {
            if self.slots[slot]
                .as_ref()
                .is_some_and(|e| e.cookie == cookie)
            {
                self.take_slot(slot);
                removed += 1;
            }
        }
        removed
    }

    /// Remove entries whose match equals `matcher` exactly; returns count.
    pub fn remove_exact(&mut self, matcher: &Match) -> usize {
        // Walk the matcher's bucket in place: on removal, `unlink`'s
        // `swap_remove` pulls a new candidate into position `i`, so only
        // advance on a non-match.
        let mut removed = 0;
        let mut i = 0;
        while let Some(&slot) = self.bucket(matcher).get(i) {
            if self.slots[slot]
                .as_ref()
                .is_some_and(|e| &e.matcher == matcher)
            {
                self.take_slot(slot);
                removed += 1;
            } else {
                i += 1;
            }
        }
        removed
    }

    /// Remove every entry (non-strict delete with an empty match);
    /// returns how many were removed.
    pub fn clear(&mut self) -> usize {
        let n = self.len;
        self.slots.clear();
        self.seqs.clear();
        self.pos.clear();
        self.free.clear();
        self.by_src_dst.clear();
        self.generic.clear();
        self.len = 0;
        self.next_deadline = None;
        n
    }

    /// Drop expired entries; returns the removed entries (so the switch can
    /// emit FlowRemoved messages).
    pub fn expire(&mut self, now: SimTime) -> Vec<FlowEntry> {
        // Nothing can have expired before the tracked bound: the periodic
        // sweep is then a constant-time no-op on idle tables.
        match self.next_deadline {
            Some(d) if now >= d => {}
            _ => return Vec::new(),
        }
        let mut removed = Vec::new();
        let mut next: Option<SimTime> = None;
        for slot in 0..self.slots.len() {
            let Some(e) = self.slots[slot].as_ref() else {
                continue;
            };
            if e.expired(now) {
                removed.push(self.take_slot(slot));
            } else if let Some(d) = e.deadline() {
                next = Some(next.map_or(d, |n| n.min(d)));
            }
        }
        self.next_deadline = next;
        removed
    }

    /// Best-match lookup without mutating counters.
    pub fn lookup(&self, packet: &Packet, in_port: PortId) -> Option<&FlowEntry> {
        self.best_slot(packet, in_port)
            .map(|i| self.slots[i].as_ref().unwrap())
    }

    fn best_slot(&self, packet: &Packet, in_port: PortId) -> Option<usize> {
        let mut best: Option<usize> = None;
        let indexed = self
            .by_src_dst
            .get(&(packet.key.src, packet.key.dst))
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        for &i in indexed.iter().chain(self.generic.iter()) {
            let Some(e) = self.slots[i].as_ref() else {
                continue;
            };
            if !e.matcher.matches(packet, in_port) {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    let eb = self.slots[b].as_ref().unwrap();
                    if e.priority > eb.priority
                        || (e.priority == eb.priority && self.seqs[i] < self.seqs[b])
                    {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// Best-match lookup, bumping hit counters and the idle-timeout clock.
    pub fn match_packet(
        &mut self,
        now: SimTime,
        packet: &Packet,
        in_port: PortId,
    ) -> Option<&FlowEntry> {
        let idx = self.best_slot(packet, in_port)?;
        let e = self.slots[idx].as_mut().unwrap();
        e.packet_count += 1;
        e.byte_count += packet.size as u64;
        e.last_hit = now;
        Some(self.slots[idx].as_ref().unwrap())
    }

    /// [`FlowTable::match_packet`] returning a mutable entry, for callers
    /// that update per-entry state beyond the hit counters (the vSwitch
    /// telemetry sampler bumps `sampled_packets`/`sampled_bytes` here).
    pub fn match_packet_mut(
        &mut self,
        now: SimTime,
        packet: &Packet,
        in_port: PortId,
    ) -> Option<&mut FlowEntry> {
        let idx = self.best_slot(packet, in_port)?;
        let e = self.slots[idx].as_mut().unwrap();
        e.packet_count += 1;
        e.byte_count += packet.size as u64;
        e.last_hit = now;
        Some(e)
    }

    /// Iterate over installed entries (stats collection).
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.slots.iter().filter_map(|e| e.as_ref())
    }
}

/// Result of running a packet through a [`Pipeline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineVerdict {
    /// Apply these actions (in order) to the packet.
    Actions(Vec<Action>),
    /// No table entry matched (table-miss).
    Miss,
}

/// An ordered chain of flow tables, processed OpenFlow-1.3 style.
#[derive(Debug, Clone)]
pub struct Pipeline {
    tables: Vec<FlowTable>,
}

impl Pipeline {
    /// A pipeline of `n` tables, each with the given capacity.
    pub fn new(n_tables: usize, capacity_per_table: usize) -> Self {
        assert!(n_tables > 0);
        Pipeline {
            tables: (0..n_tables)
                .map(|_| FlowTable::new(capacity_per_table))
                .collect(),
        }
    }

    /// Access one table.
    pub fn table(&self, id: TableId) -> &FlowTable {
        &self.tables[id.0 as usize]
    }

    /// Mutable access to one table.
    pub fn table_mut(&mut self, id: TableId) -> &mut FlowTable {
        &mut self.tables[id.0 as usize]
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total entries across all tables.
    pub fn total_entries(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Expire entries in every table; returns removed entries tagged with
    /// their table.
    pub fn expire(&mut self, now: SimTime) -> Vec<(TableId, FlowEntry)> {
        let mut all = Vec::new();
        for (i, t) in self.tables.iter_mut().enumerate() {
            for e in t.expire(now) {
                all.push((TableId(i as u8), e));
            }
        }
        all
    }

    /// Run `packet` through the pipeline starting at table 0, following
    /// `GotoTable` instructions and accumulating applied actions.
    ///
    /// `GotoTable` may only move forward (OpenFlow forbids loops); a
    /// backwards goto terminates processing with whatever actions have been
    /// gathered.
    pub fn process(&mut self, now: SimTime, packet: &Packet, in_port: PortId) -> PipelineVerdict {
        let mut actions = Vec::new();
        if self.process_into(now, packet, in_port, &mut actions) {
            PipelineVerdict::Actions(actions)
        } else {
            PipelineVerdict::Miss
        }
    }

    /// Allocation-free variant of [`Pipeline::process`]: accumulates the
    /// applied actions into a caller-owned (typically reused) buffer, which
    /// is cleared first. Returns whether any table matched.
    pub fn process_into(
        &mut self,
        now: SimTime,
        packet: &Packet,
        in_port: PortId,
        actions: &mut Vec<Action>,
    ) -> bool {
        actions.clear();
        let mut table = 0usize;
        let mut matched_any = false;
        while let Some(entry) = self.tables[table].match_packet(now, packet, in_port) {
            matched_any = true;
            let mut next: Option<usize> = None;
            for inst in &entry.instructions {
                match inst {
                    Instruction::Apply(acts) => actions.extend(acts.iter().copied()),
                    Instruction::GotoTable(t) => {
                        if (t.0 as usize) > table {
                            next = Some(t.0 as usize);
                        }
                    }
                }
            }
            match next {
                Some(t) if t < self.tables.len() => table = t,
                _ => break,
            }
        }
        matched_any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use scotch_net::{FlowId, FlowKey, IpAddr};

    fn pkt(sport: u16) -> Packet {
        Packet::flow_start(
            FlowKey::tcp(IpAddr::new(1, 0, 0, 1), sport, IpAddr::new(2, 0, 0, 2), 80),
            FlowId(sport as u64),
            SimTime::ZERO,
        )
    }

    #[test]
    fn highest_priority_wins() {
        let mut t = FlowTable::new(10);
        t.insert(
            SimTime::ZERO,
            FlowEntry::apply(Match::ANY, 1, vec![Action::Drop]),
        )
        .unwrap();
        t.insert(
            SimTime::ZERO,
            FlowEntry::apply(
                Match::exact(pkt(5).key),
                10,
                vec![Action::Output(PortId(1))],
            ),
        )
        .unwrap();
        let hit = t.lookup(&pkt(5), PortId(0)).unwrap();
        assert_eq!(hit.priority, 10);
        // Non-matching flow falls to the wildcard.
        let miss = t.lookup(&pkt(6), PortId(0)).unwrap();
        assert_eq!(miss.priority, 1);
    }

    #[test]
    fn equal_priority_prefers_earlier_install() {
        let mut t = FlowTable::new(10);
        t.insert(
            SimTime::ZERO,
            FlowEntry::apply(Match::ANY, 5, vec![Action::Output(PortId(1))]).with_cookie(1),
        )
        .unwrap();
        t.insert(
            SimTime::ZERO,
            FlowEntry::apply(Match::on_port(PortId(0)), 5, vec![Action::Drop]).with_cookie(2),
        )
        .unwrap();
        assert_eq!(t.lookup(&pkt(1), PortId(0)).unwrap().cookie, 1);
    }

    #[test]
    fn capacity_rejects_and_replacement_does_not() {
        let mut t = FlowTable::new(2);
        t.insert(
            SimTime::ZERO,
            FlowEntry::apply(Match::exact(pkt(1).key), 1, vec![]),
        )
        .unwrap();
        t.insert(
            SimTime::ZERO,
            FlowEntry::apply(Match::exact(pkt(2).key), 1, vec![]),
        )
        .unwrap();
        assert_eq!(
            t.insert(
                SimTime::ZERO,
                FlowEntry::apply(Match::exact(pkt(3).key), 1, vec![])
            ),
            Err(InsertError::TableFull)
        );
        // Same (match, priority) replaces in place even when full.
        t.insert(
            SimTime::ZERO,
            FlowEntry::apply(Match::exact(pkt(1).key), 1, vec![Action::Drop]),
        )
        .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new(4);
        t.insert(SimTime::ZERO, FlowEntry::apply(Match::ANY, 1, vec![]))
            .unwrap();
        t.match_packet(SimTime::from_secs(1), &pkt(1).with_size(100), PortId(0));
        t.match_packet(SimTime::from_secs(2), &pkt(1).with_size(200), PortId(0));
        let e = t.iter().next().unwrap();
        assert_eq!(e.packet_count, 2);
        assert_eq!(e.byte_count, 300);
        assert_eq!(e.last_hit, SimTime::from_secs(2));
    }

    #[test]
    fn hard_timeout_expires() {
        let mut t = FlowTable::new(4);
        t.insert(
            SimTime::from_secs(10),
            FlowEntry::apply(Match::ANY, 1, vec![]).with_hard_timeout(SimDuration::from_secs(10)),
        )
        .unwrap();
        assert!(t.expire(SimTime::from_secs(15)).is_empty());
        let removed = t.expire(SimTime::from_secs(20));
        assert_eq!(removed.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_hit() {
        let mut t = FlowTable::new(4);
        t.insert(
            SimTime::ZERO,
            FlowEntry::apply(Match::ANY, 1, vec![]).with_idle_timeout(SimDuration::from_secs(5)),
        )
        .unwrap();
        // A hit at t=4 pushes expiry to t=9.
        t.match_packet(SimTime::from_secs(4), &pkt(1), PortId(0));
        assert!(t.expire(SimTime::from_secs(8)).is_empty());
        assert_eq!(t.expire(SimTime::from_secs(9)).len(), 1);
    }

    #[test]
    fn remove_by_cookie_and_exact() {
        let mut t = FlowTable::new(8);
        for i in 0..4 {
            t.insert(
                SimTime::ZERO,
                FlowEntry::apply(Match::exact(pkt(i).key), 1, vec![]).with_cookie(i as u64 % 2),
            )
            .unwrap();
        }
        assert_eq!(t.remove_by_cookie(0), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove_exact(&Match::exact(pkt(1).key)), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn pipeline_two_table_scotch_shape() {
        // Table 0: label the ingress port, goto table 1.
        // Table 1: default rule sends to the group.
        let mut p = Pipeline::new(2, 100);
        p.table_mut(TableId(0))
            .insert(
                SimTime::ZERO,
                FlowEntry::new(
                    Match::on_port(PortId(3)),
                    1,
                    vec![
                        Instruction::Apply(vec![Action::push_ingress(PortId(3))]),
                        Instruction::GotoTable(TableId(1)),
                    ],
                ),
            )
            .unwrap();
        p.table_mut(TableId(1))
            .insert(
                SimTime::ZERO,
                FlowEntry::apply(Match::ANY, 0, vec![Action::Group(crate::group::GroupId(1))]),
            )
            .unwrap();
        match p.process(SimTime::ZERO, &pkt(1), PortId(3)) {
            PipelineVerdict::Actions(a) => {
                assert_eq!(
                    a,
                    vec![
                        Action::push_ingress(PortId(3)),
                        Action::Group(crate::group::GroupId(1))
                    ]
                );
            }
            PipelineVerdict::Miss => panic!("expected actions"),
        }
    }

    #[test]
    fn pipeline_miss_when_nothing_matches() {
        let mut p = Pipeline::new(1, 10);
        assert_eq!(
            p.process(SimTime::ZERO, &pkt(1), PortId(0)),
            PipelineVerdict::Miss
        );
    }

    #[test]
    fn pipeline_ignores_backward_goto() {
        let mut p = Pipeline::new(2, 10);
        p.table_mut(TableId(1))
            .insert(
                SimTime::ZERO,
                FlowEntry::new(Match::ANY, 1, vec![Instruction::GotoTable(TableId(0))]),
            )
            .unwrap();
        p.table_mut(TableId(0))
            .insert(
                SimTime::ZERO,
                FlowEntry::new(
                    Match::ANY,
                    1,
                    vec![
                        Instruction::Apply(vec![Action::Output(PortId(1))]),
                        Instruction::GotoTable(TableId(1)),
                    ],
                ),
            )
            .unwrap();
        // Must terminate (no loop) and keep the applied action.
        match p.process(SimTime::ZERO, &pkt(1), PortId(0)) {
            PipelineVerdict::Actions(a) => assert_eq!(a, vec![Action::Output(PortId(1))]),
            PipelineVerdict::Miss => panic!(),
        }
    }

    proptest! {
        /// The matched entry always has the maximal priority among matching
        /// entries.
        #[test]
        fn prop_lookup_maximal_priority(
            prios in proptest::collection::vec(0u16..100, 1..50),
            probe in 0u16..50,
        ) {
            let mut t = FlowTable::new(prios.len());
            for (i, p) in prios.iter().enumerate() {
                // Half the entries match only one sport, half match all.
                let m = if i % 2 == 0 {
                    Match::ANY
                } else {
                    Match { sport: Some(i as u16), ..Match::ANY }
                };
                t.insert(SimTime::ZERO, FlowEntry::apply(m, *p, vec![])).unwrap();
            }
            let packet = pkt(probe);
            if let Some(hit) = t.lookup(&packet, PortId(0)) {
                let max = t
                    .iter()
                    .filter(|e| e.matcher.matches(&packet, PortId(0)))
                    .map(|e| e.priority)
                    .max()
                    .unwrap();
                prop_assert_eq!(hit.priority, max);
            }
        }

        /// The indexed lookup agrees with a naive full scan on arbitrary
        /// rule sets (the index is an optimization, never a semantic
        /// change).
        #[test]
        fn prop_index_equals_full_scan(
            specs in proptest::collection::vec((0u16..8, 0u16..8, 0u16..4, 0u16..50), 1..60),
            probe_sport in 0u16..8,
            probe_port in 0u16..4,
        ) {
            let mut t = FlowTable::new(specs.len());
            let mut naive: Vec<(Match, u16, u64)> = Vec::new();
            for (i, (kind, sport, port, prio)) in specs.iter().enumerate() {
                // Mix of indexed (src+dst) and generic (wildcard) rules.
                let m = match kind % 4 {
                    0 => Match::exact(pkt(*sport).key),
                    1 => Match::src_dst(pkt(*sport).key.src, pkt(*sport).key.dst),
                    2 => Match::on_port(PortId(*port)),
                    _ => Match { sport: Some(*sport), ..Match::ANY },
                };
                let _ = t.insert(
                    SimTime::ZERO,
                    FlowEntry::apply(m, *prio, vec![]).with_cookie(i as u64),
                );
                // Mirror replacement semantics in the oracle.
                if let Some(e) = naive.iter_mut().find(|(om, op, _)| *om == m && *op == *prio) {
                    e.2 = i as u64;
                } else if naive.len() < specs.len() {
                    naive.push((m, *prio, i as u64));
                }
            }
            let packet = pkt(probe_sport);
            let got = t.lookup(&packet, PortId(probe_port)).map(|e| e.cookie);
            // Oracle: max priority; ties break toward the earliest install
            // (replacement keeps the original position, hence `naive`'s
            // vector order IS install order).
            let want = naive
                .iter()
                .enumerate()
                .filter(|(_, (m, _, _))| m.matches(&packet, PortId(probe_port)))
                .max_by(|(ia, (_, pa, _)), (ib, (_, pb, _))| pa.cmp(pb).then(ib.cmp(ia)))
                .map(|(_, (_, _, c))| *c);
            prop_assert_eq!(got, want);
        }

        /// Inserting then removing by cookie leaves no trace of that cookie.
        #[test]
        fn prop_remove_by_cookie_complete(cookies in proptest::collection::vec(0u64..5, 1..40)) {
            let mut t = FlowTable::new(cookies.len());
            for (i, c) in cookies.iter().enumerate() {
                let m = Match { sport: Some(i as u16), ..Match::ANY };
                t.insert(SimTime::ZERO, FlowEntry::apply(m, 1, vec![]).with_cookie(*c)).unwrap();
            }
            let removed = t.remove_by_cookie(3);
            prop_assert_eq!(removed, cookies.iter().filter(|&&c| c == 3).count());
            prop_assert!(t.iter().all(|e| e.cookie != 3));
        }
    }
}
