//! Match fields, actions, and instructions.
//!
//! Every field of a [`Match`] is optional — `None` wildcards it. The
//! paper's experiments install rules keyed on (source IP, destination IP);
//! Scotch's default overlay rule is an all-wildcard match at the lowest
//! priority; the ingress-labelling rules of §5.2 match on `in_port`.

use scotch_net::{FlowKey, IpAddr, Label, Packet, PortId, Protocol, TunnelId};

/// A wildcardable OpenFlow match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Match {
    /// Ingress port at this switch.
    pub in_port: Option<PortId>,
    /// Source IPv4 address (exact).
    pub src: Option<IpAddr>,
    /// Destination IPv4 address (exact).
    pub dst: Option<IpAddr>,
    /// Transport protocol.
    pub proto: Option<Protocol>,
    /// Source transport port.
    pub sport: Option<u16>,
    /// Destination transport port.
    pub dport: Option<u16>,
    /// Top-of-stack label. `Some(None)` matches "no label present";
    /// `Some(Some(l))` matches exactly `l`; `None` wildcards the stack.
    pub top_label: Option<Option<Label>>,
}

impl Match {
    /// Match anything (the table-miss / default rule).
    pub const ANY: Match = Match {
        in_port: None,
        src: None,
        dst: None,
        proto: None,
        sport: None,
        dport: None,
        top_label: None,
    };

    /// Exact match on a flow's full 5-tuple.
    pub fn exact(key: FlowKey) -> Match {
        Match {
            src: Some(key.src),
            dst: Some(key.dst),
            proto: Some(key.proto),
            sport: Some(key.sport),
            dport: Some(key.dport),
            ..Match::ANY
        }
    }

    /// The (src, dst) pair match the paper's controller installs ("the
    /// OpenFlow controller installs the flow rules at the switch using both
    /// the source and destination IP addresses", §3.2).
    pub fn src_dst(src: IpAddr, dst: IpAddr) -> Match {
        Match {
            src: Some(src),
            dst: Some(dst),
            ..Match::ANY
        }
    }

    /// Match packets entering through one port.
    pub fn on_port(port: PortId) -> Match {
        Match {
            in_port: Some(port),
            ..Match::ANY
        }
    }

    /// Builder: additionally require the given ingress port.
    pub fn with_in_port(mut self, port: PortId) -> Match {
        self.in_port = Some(port);
        self
    }

    /// Builder: additionally require the given top-of-stack label.
    pub fn with_top_label(mut self, label: Option<Label>) -> Match {
        self.top_label = Some(label);
        self
    }

    /// Does this match cover `packet` arriving on `in_port`?
    pub fn matches(&self, packet: &Packet, in_port: PortId) -> bool {
        if let Some(p) = self.in_port {
            if p != in_port {
                return false;
            }
        }
        if let Some(s) = self.src {
            if s != packet.key.src {
                return false;
            }
        }
        if let Some(d) = self.dst {
            if d != packet.key.dst {
                return false;
            }
        }
        if let Some(pr) = self.proto {
            if pr != packet.key.proto {
                return false;
            }
        }
        if let Some(sp) = self.sport {
            if sp != packet.key.sport {
                return false;
            }
        }
        if let Some(dp) = self.dport {
            if dp != packet.key.dport {
                return false;
            }
        }
        if let Some(want) = self.top_label {
            if want != packet.top_label() {
                return false;
            }
        }
        true
    }

    /// Number of specified (non-wildcard) fields; used only in diagnostics.
    pub fn specificity(&self) -> u32 {
        self.in_port.is_some() as u32
            + self.src.is_some() as u32
            + self.dst.is_some() as u32
            + self.proto.is_some() as u32
            + self.sport.is_some() as u32
            + self.dport.is_some() as u32
            + self.top_label.is_some() as u32
    }
}

/// An action applied to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Emit on the given local port.
    Output(PortId),
    /// Punt to the controller (becomes a Packet-In through the OFA).
    ToController,
    /// Hand to a group-table entry (Scotch's load-balancing select group).
    Group(super::group::GroupId),
    /// Push a label (tunnel encapsulation / ingress-port labelling).
    PushLabel(Label),
    /// Pop the top label (tunnel decapsulation).
    PopLabel,
    /// Explicitly drop.
    Drop,
}

impl Action {
    /// Convenience: push the outer label for a tunnel.
    pub fn push_tunnel(id: TunnelId) -> Action {
        Action::PushLabel(Label::Tunnel(id))
    }

    /// Convenience: push the inner ingress-port label of §5.2.
    pub fn push_ingress(port: PortId) -> Action {
        Action::PushLabel(Label::IngressPort(port.0))
    }
}

/// An OpenFlow instruction: apply actions and/or continue in a later table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// Apply the action list immediately.
    Apply(Vec<Action>),
    /// Continue matching in the given table.
    GotoTable(super::table::TableId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_net::{FlowId, TunnelId};
    use scotch_sim::SimTime;

    fn pkt() -> Packet {
        Packet::flow_start(
            FlowKey::tcp(IpAddr::new(1, 0, 0, 1), 1000, IpAddr::new(2, 0, 0, 2), 80),
            FlowId(1),
            SimTime::ZERO,
        )
    }

    #[test]
    fn any_matches_everything() {
        assert!(Match::ANY.matches(&pkt(), PortId(0)));
        assert!(Match::ANY.matches(&pkt(), PortId(9)));
        assert_eq!(Match::ANY.specificity(), 0);
    }

    #[test]
    fn exact_matches_only_its_flow() {
        let p = pkt();
        let m = Match::exact(p.key);
        assert!(m.matches(&p, PortId(0)));
        let mut other = p;
        other.key.sport = 1001;
        assert!(!m.matches(&other, PortId(0)));
        assert_eq!(m.specificity(), 5);
    }

    #[test]
    fn src_dst_ignores_ports() {
        let p = pkt();
        let m = Match::src_dst(p.key.src, p.key.dst);
        let mut other = p;
        other.key.sport = 9999;
        assert!(m.matches(&other, PortId(3)));
        let mut wrong_dst = p;
        wrong_dst.key.dst = IpAddr::new(9, 9, 9, 9);
        assert!(!m.matches(&wrong_dst, PortId(3)));
    }

    #[test]
    fn in_port_discriminates() {
        let m = Match::on_port(PortId(2));
        assert!(m.matches(&pkt(), PortId(2)));
        assert!(!m.matches(&pkt(), PortId(3)));
    }

    #[test]
    fn label_matching_three_ways() {
        let mut labelled = pkt();
        labelled.push_label(Label::Tunnel(TunnelId(4)));
        let bare = pkt();

        // Wildcard: matches both.
        assert!(Match::ANY.matches(&labelled, PortId(0)));
        assert!(Match::ANY.matches(&bare, PortId(0)));

        // Require no label.
        let no_label = Match::ANY.with_top_label(None);
        assert!(!no_label.matches(&labelled, PortId(0)));
        assert!(no_label.matches(&bare, PortId(0)));

        // Require a specific label.
        let tun = Match::ANY.with_top_label(Some(Label::Tunnel(TunnelId(4))));
        assert!(tun.matches(&labelled, PortId(0)));
        assert!(!tun.matches(&bare, PortId(0)));
        let other = Match::ANY.with_top_label(Some(Label::Tunnel(TunnelId(5))));
        assert!(!other.matches(&labelled, PortId(0)));
    }

    #[test]
    fn builders_compose() {
        let m = Match::src_dst(IpAddr::new(1, 0, 0, 1), IpAddr::new(2, 0, 0, 2))
            .with_in_port(PortId(1))
            .with_top_label(None);
        assert_eq!(m.specificity(), 4);
        assert!(m.matches(&pkt(), PortId(1)));
        assert!(!m.matches(&pkt(), PortId(0)));
    }

    #[test]
    fn action_helpers() {
        assert_eq!(
            Action::push_tunnel(TunnelId(3)),
            Action::PushLabel(Label::Tunnel(TunnelId(3)))
        );
        assert_eq!(
            Action::push_ingress(PortId(7)),
            Action::PushLabel(Label::IngressPort(7))
        );
    }
}
