//! Control-channel messages.
//!
//! Typed equivalents of the OpenFlow 1.3 messages Scotch uses. The paper's
//! step numbering (Fig. 6) maps as: Packet-In = step 1/2, FlowMod = step 3,
//! FlowStats request/reply drive large-flow migration (§5.3), Echo
//! request/reply is the vSwitch heartbeat (§5.6).

use crate::group::GroupEntry;
use crate::ofmatch::Match;
use crate::table::{FlowEntry, TableId};
use scotch_net::{Packet, PortId, TunnelId};
use scotch_sim::SimDuration;

/// Why a Packet-In was generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketInReason {
    /// Table-miss: no rule matched (a new flow in reactive mode).
    NoMatch,
    /// An explicit `ToController` action fired.
    Action,
}

/// Per-flow statistics carried in a FlowStatsReply.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowStat {
    /// Table the entry lives in.
    pub table: TableId,
    /// The entry's match.
    pub matcher: Match,
    /// The entry's cookie.
    pub cookie: u64,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// Time since installation.
    pub duration: SimDuration,
}

/// Messages from a switch's agent to the controller.
#[derive(Debug, Clone, PartialEq)]
pub enum SwitchToController {
    /// A packet punted to the controller.
    ///
    /// Scotch configures vSwitches "to forward the entire packet to the
    /// controller, so that the controller can have more flexibility in
    /// deciding how to forward the packet" (§4.2) — hence the message
    /// carries the whole [`Packet`]. For a packet that arrived through an
    /// overlay tunnel, the vSwitch strips the labels and reports them in
    /// `via_tunnel` / `ingress_label` (§5.2).
    PacketIn {
        /// The punted packet, labels already stripped.
        packet: Packet,
        /// Local ingress port at the sending switch.
        in_port: PortId,
        /// Why the packet was punted.
        reason: PacketInReason,
        /// Tunnel the packet arrived on (vSwitch Packet-Ins only); the
        /// controller maps it back to the originating physical switch.
        via_tunnel: Option<TunnelId>,
        /// Inner label: ingress port at the originating physical switch.
        ingress_label: Option<u16>,
    },
    /// An entry timed out or was evicted.
    FlowRemoved {
        /// Table it was removed from.
        table: TableId,
        /// Its match.
        matcher: Match,
        /// Its cookie.
        cookie: u64,
        /// Final packet count.
        packet_count: u64,
        /// Final byte count.
        byte_count: u64,
    },
    /// Response to a FlowStatsRequest.
    FlowStatsReply {
        /// One record per installed entry in the queried tables.
        stats: Vec<FlowStat>,
    },
    /// Heartbeat response.
    EchoReply {
        /// Echoed nonce.
        nonce: u64,
    },
    /// Barrier acknowledgement: all earlier messages are fully processed.
    BarrierReply {
        /// Echoed transaction id.
        xid: u64,
    },
    /// Something failed on the switch (e.g. a FlowMod against a full
    /// table, §3.3, or one lost to OFA overload, §6.1).
    Error {
        /// What failed.
        kind: OfError,
    },
}

/// Error kinds a switch reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfError {
    /// FlowMod rejected: table at capacity.
    TableFull,
    /// FlowMod lost in the OFA (insertion-rate overload, Fig. 9).
    FlowModOverload,
}

/// FlowMod sub-commands.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowModCommand {
    /// Install (or replace the identical-match-and-priority) entry.
    Add(FlowEntry),
    /// Remove all entries carrying this cookie.
    DeleteByCookie(u64),
    /// Remove entries whose match equals this exactly (OFPFC_DELETE_STRICT).
    DeleteExact(Match),
    /// Remove every entry in the table (OFPFC_DELETE with an empty match —
    /// the spec's non-strict delete). Used by TCAM-triggered activation to
    /// make room for the overlay default rules.
    DeleteAll,
}

/// GroupMod sub-commands.
#[derive(Debug, Clone)]
pub enum GroupModCommand {
    /// Install or replace the group.
    Install(GroupEntry),
    /// Remove the group.
    Remove,
    /// Toggle one bucket's liveness (vSwitch fail-over, §5.6).
    SetBucketAlive {
        /// Bucket index within the group.
        bucket: usize,
        /// New liveness.
        alive: bool,
    },
}

/// Messages from the controller to a switch's agent.
#[derive(Debug, Clone)]
pub enum ControllerToSwitch {
    /// Modify a flow table.
    FlowMod {
        /// Target table.
        table: TableId,
        /// Operation.
        command: FlowModCommand,
    },
    /// Modify the group table.
    GroupMod {
        /// Target group.
        group: crate::group::GroupId,
        /// Operation.
        command: GroupModCommand,
    },
    /// Inject a packet out of a port (the controller returning the first
    /// packet of an admitted flow to the data plane).
    PacketOut {
        /// Packet to emit.
        packet: Packet,
        /// Port to emit it on.
        out_port: PortId,
    },
    /// Query installed flow statistics.
    FlowStatsRequest,
    /// Heartbeat probe.
    EchoRequest {
        /// Nonce to echo.
        nonce: u64,
    },
    /// Barrier: ask for a BarrierReply once all earlier messages have been
    /// processed (used to order migration rule installs, §5.3).
    Barrier {
        /// Transaction id.
        xid: u64,
    },
}

impl SwitchToController {
    /// Stable snake_case message-kind name, used as the metrics-registry
    /// key for per-message-type counters (`controller.rx.<kind>`).
    pub const fn kind_name(&self) -> &'static str {
        match self {
            SwitchToController::PacketIn { .. } => "packet_in",
            SwitchToController::FlowRemoved { .. } => "flow_removed",
            SwitchToController::FlowStatsReply { .. } => "flow_stats_reply",
            SwitchToController::EchoReply { .. } => "echo_reply",
            SwitchToController::BarrierReply { .. } => "barrier_reply",
            SwitchToController::Error { .. } => "error",
        }
    }
}

impl ControllerToSwitch {
    /// Stable snake_case message-kind name, used as the metrics-registry
    /// key for per-message-type counters (`controller.tx.<kind>`).
    pub const fn kind_name(&self) -> &'static str {
        match self {
            ControllerToSwitch::FlowMod { .. } => "flow_mod",
            ControllerToSwitch::GroupMod { .. } => "group_mod",
            ControllerToSwitch::PacketOut { .. } => "packet_out",
            ControllerToSwitch::FlowStatsRequest => "flow_stats_request",
            ControllerToSwitch::EchoRequest { .. } => "echo_request",
            ControllerToSwitch::Barrier { .. } => "barrier",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ofmatch::Action;
    use scotch_net::{FlowId, FlowKey, IpAddr};
    use scotch_sim::SimTime;

    #[test]
    fn packet_in_carries_tunnel_metadata() {
        let key = FlowKey::tcp(IpAddr::new(1, 1, 1, 1), 1, IpAddr::new(2, 2, 2, 2), 80);
        let m = SwitchToController::PacketIn {
            packet: Packet::flow_start(key, FlowId(1), SimTime::ZERO),
            in_port: PortId(0),
            reason: PacketInReason::NoMatch,
            via_tunnel: Some(TunnelId(3)),
            ingress_label: Some(5),
        };
        match m {
            SwitchToController::PacketIn {
                via_tunnel,
                ingress_label,
                ..
            } => {
                assert_eq!(via_tunnel, Some(TunnelId(3)));
                assert_eq!(ingress_label, Some(5));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn flow_mod_commands_construct() {
        let e = FlowEntry::apply(Match::ANY, 1, vec![Action::Drop]);
        let add = FlowModCommand::Add(e.clone());
        assert_eq!(add, FlowModCommand::Add(e));
        assert_ne!(
            FlowModCommand::DeleteByCookie(1),
            FlowModCommand::DeleteByCookie(2)
        );
    }
}
