//! Simulation results.

use crate::app::AppStats;
use scotch_net::NodeId;
use scotch_sim::journey::{JourneyMark, JourneyView, LatencyDecomposition};
use scotch_sim::metrics::Histogram;
use scotch_sim::trace::TraceRecorder;
use scotch_sim::{MetricsSnapshot, ProfileEntry, SimDuration, SimTime};
use scotch_switch::ofa::OfaStats;
use scotch_switch::physical::SwitchStats;
use scotch_switch::vswitch::VSwitchStats;

/// Outcome of one flow.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// The flow's accounting id.
    pub id: scotch_net::FlowId,
    /// The 5-tuple.
    pub key: scotch_net::FlowKey,
    /// Attack traffic?
    pub is_attack: bool,
    /// Packets the source emitted.
    pub emitted: u32,
    /// Packets the flow was supposed to carry.
    pub intended: u32,
    /// Packets that reached the destination host.
    pub delivered: u32,
    /// Bytes that reached the destination host.
    pub delivered_bytes: u64,
    /// First packet emission time.
    pub started_at: SimTime,
    /// First delivery, if any.
    pub first_delivered: Option<SimTime>,
    /// Last delivery, if any.
    pub last_delivered: Option<SimTime>,
    /// Which network served the flow at first delivery (None when the
    /// flow was relayed by the controller before any rule existed).
    pub served_by: Option<scotch_controller::flowdb::FlowPath>,
}

impl FlowOutcome {
    /// The paper's Fig. 3 success criterion: the flow "passed through the
    /// switch and reached the server".
    pub fn succeeded(&self) -> bool {
        self.delivered > 0
    }

    /// All packets arrived.
    pub fn completed(&self) -> bool {
        self.delivered >= self.intended
    }

    /// Time from first emission to last delivery (flow completion time),
    /// if the flow completed.
    pub fn completion_time(&self) -> Option<SimDuration> {
        if self.completed() {
            self.last_delivered
                .map(|t| t.duration_since(self.started_at))
        } else {
            None
        }
    }

    /// Setup latency: first emission to first delivery.
    pub fn setup_latency(&self) -> Option<SimDuration> {
        self.first_delivered
            .map(|t| t.duration_since(self.started_at))
    }
}

/// Per-physical-switch counters.
#[derive(Debug, Clone)]
pub struct SwitchReport {
    /// The switch's node.
    pub node: NodeId,
    /// Its name in the topology.
    pub name: String,
    /// OFA counters.
    pub ofa: OfaStats,
    /// Data-plane counters.
    pub dataplane: SwitchStats,
}

/// Per-vSwitch counters.
#[derive(Debug, Clone)]
pub struct VSwitchReport {
    /// The vSwitch's node.
    pub node: NodeId,
    /// Its name in the topology.
    pub name: String,
    /// Agent counters.
    pub ofa: OfaStats,
    /// Data-plane counters.
    pub dataplane: VSwitchStats,
}

/// Aggregate drop counters across the fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropCounts {
    /// Table-miss packets lost to OFA overload.
    pub ofa_overload: u64,
    /// Packets lost to the Fig. 10 interaction collapse or vSwitch pps
    /// bounds.
    pub dataplane: u64,
    /// Policy drops.
    pub policy: u64,
    /// No-route drops (dead group buckets etc.).
    pub no_route: u64,
    /// Link queue drops.
    pub link_queue: u64,
    /// Packets lost to injected link faults.
    pub link_faults: u64,
}

/// Everything a simulation run produced.
#[derive(Debug, Clone)]
pub struct Report {
    /// Simulated duration.
    pub duration: SimDuration,
    /// Per-flow outcomes, in generation order.
    pub flows: Vec<FlowOutcome>,
    /// Controller-application counters.
    pub app: AppStats,
    /// Per-physical-switch counters.
    pub switches: Vec<SwitchReport>,
    /// Per-vSwitch counters.
    pub vswitches: Vec<VSwitchReport>,
    /// Drop counters.
    pub drops: DropCounts,
    /// End-to-end delivery latency of legitimate packets (ns).
    pub latency: Histogram,
    /// Packets rejected by stateful middleboxes for missing state.
    pub middlebox_rejections: u64,
    /// Packets that arrived at a host that is not their destination.
    pub misrouted: u64,
    /// Messages dropped at the controller's processing capacity gate
    /// (always 0 with the default unbounded controller).
    pub controller_dropped: u64,
    /// Events processed (engine diagnostic).
    pub events_processed: u64,
    /// Delivery `(time, end-to-end latency)` samples of explicitly
    /// tracked flows (see [`crate::Simulation::track_flow`]).
    pub tracked: scotch_sim::FxHashMap<scotch_net::FlowId, Vec<(SimTime, SimDuration)>>,
    /// libpcap captures of tapped nodes (see
    /// [`crate::Simulation::capture_at`]).
    pub captures: scotch_sim::FxHashMap<NodeId, crate::pcap::PcapCapture>,
    /// Name-sorted snapshot of the unified metrics registry. NOT part of
    /// [`Report::canonical_json`] — golden fixtures pin the canonical
    /// report, the registry is the wider observability surface around it.
    pub metrics: MetricsSnapshot,
    /// The flight-recorder trace ring (empty when tracing was disabled).
    /// Timestamps are sim-time, so the trace is bit-reproducible per
    /// `(scenario, seed)`. Also excluded from the canonical report.
    pub trace: TraceRecorder,
    /// Canonical causal journey-mark stream (DESIGN.md §14), empty unless
    /// journey tracing was enabled. Sorted `(journey, time, point, node,
    /// info)`; bit-reproducible per `(scenario, seed, rate)` and invariant
    /// across shard counts. Excluded from the canonical report like
    /// `trace`/`metrics`.
    pub journeys: Vec<JourneyMark>,
    /// Per-event-type wall-clock dispatch profile, non-empty only when
    /// [`crate::Simulation::enable_profiling`] was called. Wall-clock ⇒
    /// machine-dependent ⇒ never in the canonical report.
    pub profile: Vec<ProfileEntry>,
    /// Per-lane busy/stall wall-clock profile of a sharded run, `Some`
    /// only when [`crate::Simulation::enable_shard_profiling`] was called
    /// and the run actually sharded. Wall-clock ⇒ machine-dependent ⇒
    /// never in the canonical report.
    pub shard_profile: Option<scotch_sim::EpochProfiler>,
}

impl Report {
    fn flows_where(&self, attack: bool) -> impl Iterator<Item = &FlowOutcome> {
        self.flows.iter().filter(move |f| f.is_attack == attack)
    }

    /// Legitimate flows generated.
    pub fn client_flows(&self) -> usize {
        self.flows_where(false).count()
    }

    /// Attack flows generated.
    pub fn attack_flows(&self) -> usize {
        self.flows_where(true).count()
    }

    /// Fig. 3's metric: fraction of legitimate flows that failed to reach
    /// their destination.
    pub fn client_failure_fraction(&self) -> f64 {
        let total = self.client_flows();
        if total == 0 {
            return 0.0;
        }
        let failed = self.flows_where(false).filter(|f| !f.succeeded()).count();
        failed as f64 / total as f64
    }

    /// [`Report::client_failure_fraction`] restricted to flows that
    /// started in `[from, to)` — used to separate steady-state behaviour
    /// from the activation transient and the end-of-run cutoff.
    pub fn client_failure_fraction_between(&self, from: SimTime, to: SimTime) -> f64 {
        let window: Vec<_> = self
            .flows_where(false)
            .filter(|f| f.started_at >= from && f.started_at < to)
            .collect();
        if window.is_empty() {
            return 0.0;
        }
        let failed = window.iter().filter(|f| !f.succeeded()).count();
        failed as f64 / window.len() as f64
    }

    /// Fraction of attack flows that reached the victim.
    pub fn attack_success_fraction(&self) -> f64 {
        let total = self.attack_flows();
        if total == 0 {
            return 0.0;
        }
        let ok = self.flows_where(true).filter(|f| f.succeeded()).count();
        ok as f64 / total as f64
    }

    /// Mean flow completion time of completed legitimate flows, seconds.
    pub fn mean_client_fct(&self) -> Option<f64> {
        let fcts: Vec<f64> = self
            .flows_where(false)
            .filter_map(|f| f.completion_time())
            .map(|d| d.as_secs_f64())
            .collect();
        if fcts.is_empty() {
            None
        } else {
            Some(fcts.iter().sum::<f64>() / fcts.len() as f64)
        }
    }

    /// Mean setup latency of successful legitimate flows, seconds.
    pub fn mean_client_setup_latency(&self) -> Option<f64> {
        let ls: Vec<f64> = self
            .flows_where(false)
            .filter_map(|f| f.setup_latency())
            .map(|d| d.as_secs_f64())
            .collect();
        if ls.is_empty() {
            None
        } else {
            Some(ls.iter().sum::<f64>() / ls.len() as f64)
        }
    }

    /// Aggregate Packet-In messages emitted by all mesh/host vSwitch
    /// agents (the E13 capacity metric).
    pub fn vswitch_packet_ins(&self) -> u64 {
        self.vswitches.iter().map(|v| v.ofa.packet_in_sent).sum()
    }

    /// Aggregate Packet-In messages emitted by physical-switch OFAs.
    pub fn physical_packet_ins(&self) -> u64 {
        self.switches.iter().map(|s| s.ofa.packet_in_sent).sum()
    }

    /// Render the full report as canonical JSON: a fixed field order, map
    /// entries sorted by key, and shortest-roundtrip float formatting, so
    /// two byte-identical strings mean two identical reports. This is the
    /// format the golden-report regression tests diff; any engine change
    /// that alters event ordering shows up here as a byte difference.
    pub fn canonical_json(&self) -> String {
        use scotch_runner::Json;

        fn time(t: SimTime) -> Json {
            Json::Num(t.as_nanos() as f64)
        }
        fn opt_time(t: Option<SimTime>) -> Json {
            t.map(time).unwrap_or(Json::Null)
        }
        fn key_json(k: &scotch_net::FlowKey) -> Json {
            Json::obj()
                .set("src", k.src.to_string())
                .set("dst", k.dst.to_string())
                .set("proto", format!("{:?}", k.proto))
                .set("sport", k.sport as u64)
                .set("dport", k.dport as u64)
        }
        fn ofa_json(o: &OfaStats) -> Json {
            Json::obj()
                .set("packet_in_sent", o.packet_in_sent)
                .set("packet_in_dropped", o.packet_in_dropped)
                .set("rules_attempted", o.rules_attempted)
                .set("rules_inserted", o.rules_inserted)
                .set("rules_failed", o.rules_failed)
        }

        let flows: Vec<Json> = self
            .flows
            .iter()
            .map(|f| {
                Json::obj()
                    .set("id", f.id.0)
                    .set("key", key_json(&f.key))
                    .set("is_attack", f.is_attack)
                    .set("emitted", f.emitted as u64)
                    .set("intended", f.intended as u64)
                    .set("delivered", f.delivered as u64)
                    .set("delivered_bytes", f.delivered_bytes)
                    .set("started_at", time(f.started_at))
                    .set("first_delivered", opt_time(f.first_delivered))
                    .set("last_delivered", opt_time(f.last_delivered))
                    .set(
                        "served_by",
                        match f.served_by {
                            Some(p) => Json::Str(format!("{p:?}")),
                            None => Json::Null,
                        },
                    )
            })
            .collect();

        let switches: Vec<Json> = self
            .switches
            .iter()
            .map(|s| {
                Json::obj()
                    .set("node", s.node.0 as u64)
                    .set("name", s.name.clone())
                    .set("ofa", ofa_json(&s.ofa))
                    .set(
                        "dataplane",
                        Json::obj()
                            .set("forwarded", s.dataplane.forwarded)
                            .set("dropped_interaction", s.dataplane.dropped_interaction)
                            .set("dropped_ofa", s.dataplane.dropped_ofa)
                            .set("dropped_other", s.dataplane.dropped_other),
                    )
            })
            .collect();

        let vswitches: Vec<Json> = self
            .vswitches
            .iter()
            .map(|v| {
                Json::obj()
                    .set("node", v.node.0 as u64)
                    .set("name", v.name.clone())
                    .set("ofa", ofa_json(&v.ofa))
                    .set(
                        "dataplane",
                        Json::obj()
                            .set("forwarded", v.dataplane.forwarded)
                            .set("dropped_dataplane", v.dataplane.dropped_dataplane)
                            .set("dropped_agent", v.dataplane.dropped_agent)
                            .set("decapsulated", v.dataplane.decapsulated),
                    )
            })
            .collect();

        let latency = Json::obj()
            .set("count", self.latency.count())
            .set("zero_count", self.latency.zero_count())
            .set("sum", self.latency.sum())
            .set("min", self.latency.min())
            .set("max", self.latency.max())
            .set(
                "buckets",
                Json::Arr(
                    self.latency
                        .nonzero_buckets()
                        .into_iter()
                        .map(|(d, s, n)| {
                            Json::Arr(vec![
                                Json::Num(d as f64),
                                Json::Num(s as f64),
                                Json::Num(n as f64),
                            ])
                        })
                        .collect(),
                ),
            );

        let mut tracked_ids: Vec<_> = self.tracked.keys().copied().collect();
        tracked_ids.sort();
        let tracked: Vec<Json> = tracked_ids
            .iter()
            .map(|id| {
                let samples = &self.tracked[id];
                Json::obj().set("flow", id.0).set(
                    "samples",
                    Json::Arr(
                        samples
                            .iter()
                            .map(|&(t, d)| Json::Arr(vec![time(t), Json::Num(d.as_nanos() as f64)]))
                            .collect(),
                    ),
                )
            })
            .collect();

        let mut capture_nodes: Vec<_> = self.captures.keys().copied().collect();
        capture_nodes.sort();
        let captures: Vec<Json> = capture_nodes
            .iter()
            .map(|n| {
                let cap = &self.captures[n];
                // FNV-1a over the raw pcap bytes pins the capture content
                // without inflating the report with a hex dump.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for &b in cap.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                Json::obj()
                    .set("node", n.0 as u64)
                    .set("records", cap.records())
                    .set("bytes", cap.bytes().len())
                    .set("fnv1a", format!("{h:016x}"))
            })
            .collect();

        Json::obj()
            .set("duration_ns", self.duration.as_nanos())
            .set("events_processed", self.events_processed)
            .set(
                "app",
                Json::obj()
                    .set("packet_ins", self.app.packet_ins)
                    .set("duplicate_packet_ins", self.app.duplicate_packet_ins)
                    .set("physical_admitted", self.app.physical_admitted)
                    .set("overlay_admitted", self.app.overlay_admitted)
                    .set("dropped", self.app.dropped)
                    .set("unroutable", self.app.unroutable)
                    .set("activations", self.app.activations)
                    .set("withdrawals", self.app.withdrawals)
                    .set("migrations", self.app.migrations)
                    .set("migrations_deferred", self.app.migrations_deferred)
                    .set("failovers", self.app.failovers)
                    .set("rule_failures", self.app.rule_failures)
                    .set("overlay_undeliverable", self.app.overlay_undeliverable),
            )
            .set(
                "drops",
                Json::obj()
                    .set("ofa_overload", self.drops.ofa_overload)
                    .set("dataplane", self.drops.dataplane)
                    .set("policy", self.drops.policy)
                    .set("no_route", self.drops.no_route)
                    .set("link_queue", self.drops.link_queue)
                    .set("link_faults", self.drops.link_faults),
            )
            .set("middlebox_rejections", self.middlebox_rejections)
            .set("misrouted", self.misrouted)
            .set("controller_dropped", self.controller_dropped)
            .set("latency", latency)
            .set("switches", Json::Arr(switches))
            .set("vswitches", Json::Arr(vswitches))
            .set("flows", Json::Arr(flows))
            .set("tracked", Json::Arr(tracked))
            .set("captures", Json::Arr(captures))
            .pretty()
    }

    /// Render the recorded trace as JSONL: one compact object per record
    /// with `seq`, `t_ns`, `cat`, `kind`, then the event's own fields.
    /// Deterministic per `(scenario, seed)`: sim-time timestamps only.
    pub fn trace_jsonl(&self) -> String {
        use scotch_runner::Json;
        let mut out = String::new();
        for rec in self.trace.records() {
            let mut line = Json::obj()
                .set("seq", rec.seq)
                .set("t_ns", rec.at.as_nanos())
                .set("cat", rec.event.category().name())
                .set("kind", rec.event.kind_name());
            for (name, value) in rec.event.fields() {
                line = line.set(name, value);
            }
            out.push_str(&line.compact());
            out.push('\n');
        }
        out
    }

    /// Per-journey timeline views reconstructed from the canonical mark
    /// stream (empty unless journey tracing was enabled).
    pub fn journey_views(&self) -> Vec<JourneyView> {
        JourneyView::split(&self.journeys)
    }

    /// Per-stage latency decomposition over the recorded journeys.
    pub fn journey_decomposition(&self) -> LatencyDecomposition {
        LatencyDecomposition::from_marks(&self.journeys)
    }

    /// Render the journey-mark stream as JSONL: one compact object per
    /// mark with `journey`, `t_ns`, `point`, `node`, `info`. The `shard`
    /// field is deliberately omitted — it is the one observational field
    /// that differs between shard counts; everything emitted here is
    /// byte-identical for shards 1/2/4/8.
    pub fn journeys_jsonl(&self) -> String {
        use scotch_runner::Json;
        let mut out = String::new();
        for m in &self.journeys {
            let line = Json::obj()
                .set("journey", m.journey)
                .set("t_ns", m.at.as_nanos())
                .set("point", m.point.name())
                .set("node", u64::from(m.node))
                .set("info", m.info);
            out.push_str(&line.compact());
            out.push('\n');
        }
        out
    }

    /// The metrics snapshot as a flat JSON object, sorted by name (the
    /// form embedded in sweep manifests and `results/` artifacts).
    pub fn metrics_json(&self) -> String {
        use scotch_runner::Json;
        let mut doc = Json::obj();
        for (name, value) in &self.metrics.entries {
            doc = doc.set(name, *value);
        }
        doc.pretty()
    }

    /// A one-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} flows ({} legit / {} attack) over {}: client failure {:.1}%, \
             physical admissions {}, overlay admissions {}, migrations {}, \
             activations {}, withdrawals {}, drops(ofa/data/link) {}/{}/{}",
            self.flows.len(),
            self.client_flows(),
            self.attack_flows(),
            self.duration,
            self.client_failure_fraction() * 100.0,
            self.app.physical_admitted,
            self.app.overlay_admitted,
            self.app.migrations,
            self.app.activations,
            self.app.withdrawals,
            self.drops.ofa_overload,
            self.drops.dataplane,
            self.drops.link_queue,
        )
    }
}
