//! Simulation results.

use crate::app::AppStats;
use scotch_net::NodeId;
use scotch_sim::metrics::Histogram;
use scotch_sim::{SimDuration, SimTime};
use scotch_switch::ofa::OfaStats;
use scotch_switch::physical::SwitchStats;
use scotch_switch::vswitch::VSwitchStats;

/// Outcome of one flow.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// The flow's accounting id.
    pub id: scotch_net::FlowId,
    /// The 5-tuple.
    pub key: scotch_net::FlowKey,
    /// Attack traffic?
    pub is_attack: bool,
    /// Packets the source emitted.
    pub emitted: u32,
    /// Packets the flow was supposed to carry.
    pub intended: u32,
    /// Packets that reached the destination host.
    pub delivered: u32,
    /// Bytes that reached the destination host.
    pub delivered_bytes: u64,
    /// First packet emission time.
    pub started_at: SimTime,
    /// First delivery, if any.
    pub first_delivered: Option<SimTime>,
    /// Last delivery, if any.
    pub last_delivered: Option<SimTime>,
    /// Which network served the flow at first delivery (None when the
    /// flow was relayed by the controller before any rule existed).
    pub served_by: Option<scotch_controller::flowdb::FlowPath>,
}

impl FlowOutcome {
    /// The paper's Fig. 3 success criterion: the flow "passed through the
    /// switch and reached the server".
    pub fn succeeded(&self) -> bool {
        self.delivered > 0
    }

    /// All packets arrived.
    pub fn completed(&self) -> bool {
        self.delivered >= self.intended
    }

    /// Time from first emission to last delivery (flow completion time),
    /// if the flow completed.
    pub fn completion_time(&self) -> Option<SimDuration> {
        if self.completed() {
            self.last_delivered
                .map(|t| t.duration_since(self.started_at))
        } else {
            None
        }
    }

    /// Setup latency: first emission to first delivery.
    pub fn setup_latency(&self) -> Option<SimDuration> {
        self.first_delivered
            .map(|t| t.duration_since(self.started_at))
    }
}

/// Per-physical-switch counters.
#[derive(Debug, Clone)]
pub struct SwitchReport {
    /// The switch's node.
    pub node: NodeId,
    /// Its name in the topology.
    pub name: String,
    /// OFA counters.
    pub ofa: OfaStats,
    /// Data-plane counters.
    pub dataplane: SwitchStats,
}

/// Per-vSwitch counters.
#[derive(Debug, Clone)]
pub struct VSwitchReport {
    /// The vSwitch's node.
    pub node: NodeId,
    /// Its name in the topology.
    pub name: String,
    /// Agent counters.
    pub ofa: OfaStats,
    /// Data-plane counters.
    pub dataplane: VSwitchStats,
}

/// Aggregate drop counters across the fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropCounts {
    /// Table-miss packets lost to OFA overload.
    pub ofa_overload: u64,
    /// Packets lost to the Fig. 10 interaction collapse or vSwitch pps
    /// bounds.
    pub dataplane: u64,
    /// Policy drops.
    pub policy: u64,
    /// No-route drops (dead group buckets etc.).
    pub no_route: u64,
    /// Link queue drops.
    pub link_queue: u64,
    /// Packets lost to injected link faults.
    pub link_faults: u64,
}

/// Everything a simulation run produced.
#[derive(Debug, Clone)]
pub struct Report {
    /// Simulated duration.
    pub duration: SimDuration,
    /// Per-flow outcomes, in generation order.
    pub flows: Vec<FlowOutcome>,
    /// Controller-application counters.
    pub app: AppStats,
    /// Per-physical-switch counters.
    pub switches: Vec<SwitchReport>,
    /// Per-vSwitch counters.
    pub vswitches: Vec<VSwitchReport>,
    /// Drop counters.
    pub drops: DropCounts,
    /// End-to-end delivery latency of legitimate packets (ns).
    pub latency: Histogram,
    /// Packets rejected by stateful middleboxes for missing state.
    pub middlebox_rejections: u64,
    /// Packets that arrived at a host that is not their destination.
    pub misrouted: u64,
    /// Messages dropped at the controller's processing capacity gate
    /// (always 0 with the default unbounded controller).
    pub controller_dropped: u64,
    /// Events processed (engine diagnostic).
    pub events_processed: u64,
    /// Delivery `(time, end-to-end latency)` samples of explicitly
    /// tracked flows (see [`crate::Simulation::track_flow`]).
    pub tracked: std::collections::HashMap<scotch_net::FlowId, Vec<(SimTime, SimDuration)>>,
    /// libpcap captures of tapped nodes (see
    /// [`crate::Simulation::capture_at`]).
    pub captures: std::collections::HashMap<NodeId, crate::pcap::PcapCapture>,
}

impl Report {
    fn flows_where(&self, attack: bool) -> impl Iterator<Item = &FlowOutcome> {
        self.flows.iter().filter(move |f| f.is_attack == attack)
    }

    /// Legitimate flows generated.
    pub fn client_flows(&self) -> usize {
        self.flows_where(false).count()
    }

    /// Attack flows generated.
    pub fn attack_flows(&self) -> usize {
        self.flows_where(true).count()
    }

    /// Fig. 3's metric: fraction of legitimate flows that failed to reach
    /// their destination.
    pub fn client_failure_fraction(&self) -> f64 {
        let total = self.client_flows();
        if total == 0 {
            return 0.0;
        }
        let failed = self.flows_where(false).filter(|f| !f.succeeded()).count();
        failed as f64 / total as f64
    }

    /// [`Report::client_failure_fraction`] restricted to flows that
    /// started in `[from, to)` — used to separate steady-state behaviour
    /// from the activation transient and the end-of-run cutoff.
    pub fn client_failure_fraction_between(&self, from: SimTime, to: SimTime) -> f64 {
        let window: Vec<_> = self
            .flows_where(false)
            .filter(|f| f.started_at >= from && f.started_at < to)
            .collect();
        if window.is_empty() {
            return 0.0;
        }
        let failed = window.iter().filter(|f| !f.succeeded()).count();
        failed as f64 / window.len() as f64
    }

    /// Fraction of attack flows that reached the victim.
    pub fn attack_success_fraction(&self) -> f64 {
        let total = self.attack_flows();
        if total == 0 {
            return 0.0;
        }
        let ok = self.flows_where(true).filter(|f| f.succeeded()).count();
        ok as f64 / total as f64
    }

    /// Mean flow completion time of completed legitimate flows, seconds.
    pub fn mean_client_fct(&self) -> Option<f64> {
        let fcts: Vec<f64> = self
            .flows_where(false)
            .filter_map(|f| f.completion_time())
            .map(|d| d.as_secs_f64())
            .collect();
        if fcts.is_empty() {
            None
        } else {
            Some(fcts.iter().sum::<f64>() / fcts.len() as f64)
        }
    }

    /// Mean setup latency of successful legitimate flows, seconds.
    pub fn mean_client_setup_latency(&self) -> Option<f64> {
        let ls: Vec<f64> = self
            .flows_where(false)
            .filter_map(|f| f.setup_latency())
            .map(|d| d.as_secs_f64())
            .collect();
        if ls.is_empty() {
            None
        } else {
            Some(ls.iter().sum::<f64>() / ls.len() as f64)
        }
    }

    /// Aggregate Packet-In messages emitted by all mesh/host vSwitch
    /// agents (the E13 capacity metric).
    pub fn vswitch_packet_ins(&self) -> u64 {
        self.vswitches.iter().map(|v| v.ofa.packet_in_sent).sum()
    }

    /// Aggregate Packet-In messages emitted by physical-switch OFAs.
    pub fn physical_packet_ins(&self) -> u64 {
        self.switches.iter().map(|s| s.ofa.packet_in_sent).sum()
    }

    /// A one-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} flows ({} legit / {} attack) over {}: client failure {:.1}%, \
             physical admissions {}, overlay admissions {}, migrations {}, \
             activations {}, withdrawals {}, drops(ofa/data/link) {}/{}/{}",
            self.flows.len(),
            self.client_flows(),
            self.attack_flows(),
            self.duration,
            self.client_failure_fraction() * 100.0,
            self.app.physical_admitted,
            self.app.overlay_admitted,
            self.app.migrations,
            self.app.activations,
            self.app.withdrawals,
            self.drops.ofa_overload,
            self.drops.dataplane,
            self.drops.link_queue,
        )
    }
}
