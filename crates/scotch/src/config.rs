//! Scotch configuration.

use scotch_openflow::SelectionPolicy;
use scotch_sim::SimDuration;

/// How new flows are grouped into the controller's fair-share queues
/// (§5.2: "we can classify the flows into different groups and enforce
/// fair sharing of the SDN network across groups").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FairnessPolicy {
    /// One queue per (switch, ingress port) — the paper's worked example
    /// ("if a DDoS attack comes from one or a few ports, we can limit its
    /// impact to those ports only").
    IngressPort,
    /// One queue per source-address prefix of the given length. Useful
    /// when sources cannot spoof (ingress-filtered networks); against a
    /// whole-address-space spoofing flood it degenerates, because the
    /// attacker claims every queue — prefer [`FairnessPolicy::Customers`]
    /// there.
    SourcePrefix(u8),
    /// One queue per *known* customer block `(address, prefix_len)`, plus
    /// one shared default queue for every unknown source — the paper's
    /// "group the flows according to which customer it belongs to".
    /// Spoofed floods from arbitrary addresses all land in the default
    /// queue and can starve only its share.
    Customers(Vec<(scotch_net::IpAddr, u8)>),
    /// A single shared queue (no fairness; the E11 ablation arm).
    None,
}

/// All Scotch tunables, with paper-calibrated defaults.
#[derive(Debug, Clone)]
pub struct ScotchConfig {
    /// Packet-In rate (per switch, flows/s) above which the overlay is
    /// activated (§4.2: the controller "monitors the rate of Packet-In
    /// messages ... to determine if the control path is congested").
    /// Default 160/s — 80 % of the Pica8 OFA capacity.
    pub activation_threshold: f64,
    /// New-flow rate below which withdrawal begins (§5.5). Must be well
    /// under the activation threshold to avoid flapping.
    pub withdrawal_threshold: f64,
    /// Consecutive seconds under the withdrawal threshold before
    /// withdrawing.
    pub withdrawal_hold: SimDuration,
    /// Per-switch rule budget `R`, rules/s. `None` uses each switch
    /// profile's lossless insertion rate (§6.1: "the OpenFlow controller
    /// should only insert the flow rules at a rate that does not cause
    /// installation failure").
    pub rule_budget: Option<f64>,
    /// Ingress queue length beyond which new flows are routed over the
    /// overlay (§5.2's *overlay threshold*).
    pub overlay_threshold: usize,
    /// Ingress queue length beyond which Packet-Ins are dropped (§5.2's
    /// *dropping threshold*).
    pub drop_threshold: usize,
    /// Enable per-ingress-port queues (disable for the E11 ablation: one
    /// shared queue per switch). Shorthand: `true` ≡
    /// [`FairnessPolicy::IngressPort`], `false` ≡ [`FairnessPolicy::None`];
    /// `fairness` overrides when set to `SourcePrefix`.
    pub ingress_differentiation: bool,
    /// Flow-grouping policy for the fair-share queues (§5.2).
    pub fairness: FairnessPolicy,
    /// Bucket selection for the load-balancing select group (§5.1).
    pub lb_policy: SelectionPolicy,
    /// Interval between FlowStats polls of the mesh vSwitches (§5.3).
    pub stats_poll_interval: SimDuration,
    /// A flow is an elephant once a poll sees it exceed this rate
    /// (packets/s) since the previous poll.
    pub elephant_pps: f64,
    /// Enable large-flow migration (disable for the A1 ablation).
    pub migration_enabled: bool,
    /// Idle timeout for per-flow rules (physical and vSwitch).
    pub rule_idle_timeout: SimDuration,
    /// Heartbeat probe period for vSwitch liveness (§5.6).
    pub heartbeat_period: SimDuration,
    /// Missed heartbeats before a vSwitch is declared failed.
    pub heartbeat_miss_limit: u32,
    /// Controller tick granularity (queue service, monitoring checks).
    pub tick_interval: SimDuration,
    /// Install reverse-direction rules at admission (needed for
    /// request/response workloads).
    pub install_reverse: bool,
    /// TableFull-error rate (per switch, errors/s) that also activates the
    /// overlay — the §3.3 TCAM-exhaustion trigger.
    pub tcam_activation_threshold: f64,
    /// Optional controller Packet-In processing capacity (messages/s).
    /// `None` models the paper's assumption that "a single node
    /// multi-threaded controller can handle millions of PacketIn/sec"
    /// (§2) — i.e. the controller is never the bottleneck. Setting it
    /// exposes what happens when it is.
    pub controller_capacity: Option<f64>,
    /// Match per-flow rules on the full 5-tuple (microflow rules, original
    /// Ethane/NOX style) instead of the paper's (source IP, destination
    /// IP) pair (§3.2). Microflow granularity makes *every* flow between a
    /// host pair reactive, which is what trace-driven workloads need.
    pub exact_match_rules: bool,
}

impl Default for ScotchConfig {
    fn default() -> Self {
        ScotchConfig {
            activation_threshold: 160.0,
            withdrawal_threshold: 80.0,
            withdrawal_hold: SimDuration::from_secs(2),
            rule_budget: None,
            overlay_threshold: 20,
            drop_threshold: 200,
            ingress_differentiation: true,
            fairness: FairnessPolicy::IngressPort,
            lb_policy: SelectionPolicy::FlowHash,
            stats_poll_interval: SimDuration::from_secs(1),
            elephant_pps: 300.0,
            migration_enabled: true,
            rule_idle_timeout: SimDuration::from_secs(10),
            heartbeat_period: SimDuration::from_secs(1),
            heartbeat_miss_limit: 3,
            tick_interval: SimDuration::from_millis(10),
            install_reverse: false,
            tcam_activation_threshold: 10.0,
            controller_capacity: None,
            exact_match_rules: false,
        }
    }
}

impl ScotchConfig {
    /// The effective fairness policy, reconciling the legacy boolean with
    /// the richer enum.
    pub fn effective_fairness(&self) -> FairnessPolicy {
        if self.ingress_differentiation {
            self.fairness.clone()
        } else {
            FairnessPolicy::None
        }
    }

    /// Sanity-check invariants between thresholds. Called by the app at
    /// construction; panics on nonsensical configs (these are programmer
    /// errors, not runtime conditions).
    pub fn validate(&self) {
        assert!(
            self.withdrawal_threshold < self.activation_threshold,
            "withdrawal threshold must sit below activation (hysteresis)"
        );
        assert!(
            self.overlay_threshold < self.drop_threshold,
            "overlay threshold must sit below the dropping threshold"
        );
        assert!(self.tick_interval > SimDuration::ZERO);
        assert!(self.stats_poll_interval > SimDuration::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ScotchConfig::default().validate();
    }

    #[test]
    fn defaults_match_paper_calibration() {
        let c = ScotchConfig::default();
        assert!(
            c.activation_threshold < 200.0,
            "must trip before OFA saturates"
        );
        assert!(c.withdrawal_threshold < c.activation_threshold);
        assert!(c.migration_enabled);
        assert!(c.ingress_differentiation);
        assert_eq!(c.rule_idle_timeout, SimDuration::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_panic() {
        let c = ScotchConfig {
            withdrawal_threshold: 500.0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "dropping")]
    fn inverted_queue_thresholds_panic() {
        let c = ScotchConfig {
            overlay_threshold: 300,
            drop_threshold: 200,
            ..Default::default()
        };
        c.validate();
    }
}
