//! Scotch configuration.

use scotch_openflow::SelectionPolicy;
use scotch_sim::SimDuration;

/// How new flows are grouped into the controller's fair-share queues
/// (§5.2: "we can classify the flows into different groups and enforce
/// fair sharing of the SDN network across groups").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FairnessPolicy {
    /// One queue per (switch, ingress port) — the paper's worked example
    /// ("if a DDoS attack comes from one or a few ports, we can limit its
    /// impact to those ports only").
    IngressPort,
    /// One queue per source-address prefix of the given length. Useful
    /// when sources cannot spoof (ingress-filtered networks); against a
    /// whole-address-space spoofing flood it degenerates, because the
    /// attacker claims every queue — prefer [`FairnessPolicy::Customers`]
    /// there.
    SourcePrefix(u8),
    /// One queue per *known* customer block `(address, prefix_len)`, plus
    /// one shared default queue for every unknown source — the paper's
    /// "group the flows according to which customer it belongs to".
    /// Spoofed floods from arbitrary addresses all land in the default
    /// queue and can starve only its share.
    Customers(Vec<(scotch_net::IpAddr, u8)>),
    /// A single shared queue (no fairness; the E11 ablation arm).
    None,
}

/// How the monitor learns per-flow counters from the mesh vSwitches
/// (§5.3, plus the NetFlow-style sampling extension — see DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TelemetryConfig {
    /// Every stats poll returns the full per-flow table (the paper's
    /// design). Accurate, but at millions of flows the monitor drowns in
    /// records.
    Exhaustive,
    /// Each vSwitch samples forwarded packets with probability `rate`
    /// from a dedicated per-vSwitch RNG stream (geometric skip counter,
    /// so the per-packet cost is one decrement) and exports only flows
    /// with sampled traffic; the monitor scales counts by `1/rate`
    /// (Horvitz–Thompson estimation). `rate: 1.0` samples every packet
    /// and exports every installed flow, reproducing exhaustive-mode
    /// canonical reports byte-for-byte.
    Sampled {
        /// Per-packet sampling probability in `(0, 1]`.
        rate: f64,
    },
}

impl TelemetryConfig {
    /// The sampling rate, or `None` in exhaustive mode.
    pub fn sampling_rate(&self) -> Option<f64> {
        match self {
            TelemetryConfig::Exhaustive => None,
            TelemetryConfig::Sampled { rate } => Some(*rate),
        }
    }

    /// The inverse-probability factor the monitor multiplies sampled
    /// counts by. Exactly 1.0 in exhaustive mode and at `rate: 1.0`.
    pub fn scale(&self) -> f64 {
        match self {
            TelemetryConfig::Exhaustive => 1.0,
            TelemetryConfig::Sampled { rate } => 1.0 / rate,
        }
    }

    /// How long an overlay flow stays "live" after its last observed
    /// activity before withdrawal may tear it down. Exhaustive polling
    /// observes every flow every poll, so two poll intervals (plus a
    /// nanosecond so an exactly-on-time reply still counts) suffice.
    /// Under sampling a flow is only *observed* when one of its packets
    /// is sampled — roughly every `1/rate` polls for a slow flow — so
    /// the horizon stretches by `ceil(1/rate)`. At `rate: 1.0` the
    /// factor is 1 and this reproduces the exhaustive horizon exactly.
    pub fn live_horizon(&self, poll: SimDuration) -> SimDuration {
        let base = poll.0 * 2 + 1;
        match self {
            TelemetryConfig::Exhaustive => SimDuration(base),
            TelemetryConfig::Sampled { rate } => {
                SimDuration(base.saturating_mul((1.0 / rate).ceil() as u64))
            }
        }
    }

    /// Panic on nonsensical rates (programmer error, not runtime input).
    pub fn validate(&self) {
        if let TelemetryConfig::Sampled { rate } = self {
            assert!(
                *rate > 0.0 && *rate <= 1.0,
                "sampling rate must be in (0, 1], got {rate}"
            );
        }
    }
}

/// All Scotch tunables, with paper-calibrated defaults.
#[derive(Debug, Clone)]
pub struct ScotchConfig {
    /// Packet-In rate (per switch, flows/s) above which the overlay is
    /// activated (§4.2: the controller "monitors the rate of Packet-In
    /// messages ... to determine if the control path is congested").
    /// Default 160/s — 80 % of the Pica8 OFA capacity.
    pub activation_threshold: f64,
    /// New-flow rate below which withdrawal begins (§5.5). Must be well
    /// under the activation threshold to avoid flapping.
    pub withdrawal_threshold: f64,
    /// Consecutive seconds under the withdrawal threshold before
    /// withdrawing.
    pub withdrawal_hold: SimDuration,
    /// Per-switch rule budget `R`, rules/s. `None` uses each switch
    /// profile's lossless insertion rate (§6.1: "the OpenFlow controller
    /// should only insert the flow rules at a rate that does not cause
    /// installation failure").
    pub rule_budget: Option<f64>,
    /// Ingress queue length beyond which new flows are routed over the
    /// overlay (§5.2's *overlay threshold*).
    pub overlay_threshold: usize,
    /// Ingress queue length beyond which Packet-Ins are dropped (§5.2's
    /// *dropping threshold*).
    pub drop_threshold: usize,
    /// Enable per-ingress-port queues (disable for the E11 ablation: one
    /// shared queue per switch). Shorthand: `true` ≡
    /// [`FairnessPolicy::IngressPort`], `false` ≡ [`FairnessPolicy::None`];
    /// `fairness` overrides when set to `SourcePrefix`.
    pub ingress_differentiation: bool,
    /// Flow-grouping policy for the fair-share queues (§5.2).
    pub fairness: FairnessPolicy,
    /// Bucket selection for the load-balancing select group (§5.1).
    pub lb_policy: SelectionPolicy,
    /// Interval between FlowStats polls of the mesh vSwitches (§5.3).
    pub stats_poll_interval: SimDuration,
    /// A flow is an elephant once a poll sees it exceed this rate
    /// (packets/s) since the previous poll.
    pub elephant_pps: f64,
    /// Enable large-flow migration (disable for the A1 ablation).
    pub migration_enabled: bool,
    /// Idle timeout for per-flow rules (physical and vSwitch).
    pub rule_idle_timeout: SimDuration,
    /// Heartbeat probe period for vSwitch liveness (§5.6).
    pub heartbeat_period: SimDuration,
    /// Missed heartbeats before a vSwitch is declared failed.
    pub heartbeat_miss_limit: u32,
    /// Controller tick granularity (queue service, monitoring checks).
    pub tick_interval: SimDuration,
    /// Install reverse-direction rules at admission (needed for
    /// request/response workloads).
    pub install_reverse: bool,
    /// TableFull-error rate (per switch, errors/s) that also activates the
    /// overlay — the §3.3 TCAM-exhaustion trigger.
    pub tcam_activation_threshold: f64,
    /// Optional controller Packet-In processing capacity (messages/s).
    /// `None` models the paper's assumption that "a single node
    /// multi-threaded controller can handle millions of PacketIn/sec"
    /// (§2) — i.e. the controller is never the bottleneck. Setting it
    /// exposes what happens when it is.
    pub controller_capacity: Option<f64>,
    /// Flow-telemetry mode for the §5.3 monitor: exhaustive per-flow
    /// stats polling (the paper's design) or sampled measurement with
    /// inverse-probability scaling.
    pub telemetry: TelemetryConfig,
    /// Match per-flow rules on the full 5-tuple (microflow rules, original
    /// Ethane/NOX style) instead of the paper's (source IP, destination
    /// IP) pair (§3.2). Microflow granularity makes *every* flow between a
    /// host pair reactive, which is what trace-driven workloads need.
    pub exact_match_rules: bool,
    /// Number of controller replicas in the cluster (DESIGN.md §16).
    /// `1` (the default) runs the single-controller engine byte-for-byte
    /// unchanged; `>= 2` activates per-switch mastership and failover.
    pub controllers: u32,
    /// One-way state-sync latency of the inter-controller coordination
    /// channel — the delay a mastership handoff pays before the new
    /// master may act, and the staleness bound on the shared flowdb /
    /// address book. Ignored when `controllers == 1`.
    pub sync_latency: SimDuration,
}

impl Default for ScotchConfig {
    fn default() -> Self {
        ScotchConfig {
            activation_threshold: 160.0,
            withdrawal_threshold: 80.0,
            withdrawal_hold: SimDuration::from_secs(2),
            rule_budget: None,
            overlay_threshold: 20,
            drop_threshold: 200,
            ingress_differentiation: true,
            fairness: FairnessPolicy::IngressPort,
            lb_policy: SelectionPolicy::FlowHash,
            stats_poll_interval: SimDuration::from_secs(1),
            elephant_pps: 300.0,
            migration_enabled: true,
            rule_idle_timeout: SimDuration::from_secs(10),
            heartbeat_period: SimDuration::from_secs(1),
            heartbeat_miss_limit: 3,
            tick_interval: SimDuration::from_millis(10),
            install_reverse: false,
            tcam_activation_threshold: 10.0,
            controller_capacity: None,
            telemetry: TelemetryConfig::Exhaustive,
            exact_match_rules: false,
            controllers: 1,
            sync_latency: SimDuration::from_micros(500),
        }
    }
}

impl ScotchConfig {
    /// The effective fairness policy, reconciling the legacy boolean with
    /// the richer enum.
    pub fn effective_fairness(&self) -> FairnessPolicy {
        if self.ingress_differentiation {
            self.fairness.clone()
        } else {
            FairnessPolicy::None
        }
    }

    /// Sanity-check invariants between thresholds. Called by the app at
    /// construction; panics on nonsensical configs (these are programmer
    /// errors, not runtime conditions).
    pub fn validate(&self) {
        assert!(
            self.withdrawal_threshold < self.activation_threshold,
            "withdrawal threshold must sit below activation (hysteresis)"
        );
        assert!(
            self.overlay_threshold < self.drop_threshold,
            "overlay threshold must sit below the dropping threshold"
        );
        assert!(self.tick_interval > SimDuration::ZERO);
        assert!(self.stats_poll_interval > SimDuration::ZERO);
        assert!(self.controllers >= 1, "need at least one controller");
        if self.controllers > 1 {
            assert!(
                self.sync_latency > SimDuration::ZERO,
                "a cluster needs a positive sync latency"
            );
        }
        self.telemetry.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ScotchConfig::default().validate();
    }

    #[test]
    fn defaults_match_paper_calibration() {
        let c = ScotchConfig::default();
        assert!(
            c.activation_threshold < 200.0,
            "must trip before OFA saturates"
        );
        assert!(c.withdrawal_threshold < c.activation_threshold);
        assert!(c.migration_enabled);
        assert!(c.ingress_differentiation);
        assert_eq!(c.rule_idle_timeout, SimDuration::from_secs(10));
    }

    #[test]
    fn telemetry_scale_is_exact_at_rate_one() {
        let t = TelemetryConfig::Sampled { rate: 1.0 };
        assert_eq!(t.scale(), 1.0);
        assert_eq!(t.sampling_rate(), Some(1.0));
        assert_eq!(TelemetryConfig::Exhaustive.scale(), 1.0);
        assert_eq!(TelemetryConfig::Exhaustive.sampling_rate(), None);
    }

    #[test]
    fn live_horizon_scales_with_inverse_rate() {
        let poll = SimDuration::from_secs(1);
        let base = TelemetryConfig::Exhaustive.live_horizon(poll);
        assert_eq!(base, SimDuration(poll.0 * 2 + 1));
        // rate: 1.0 must reproduce the exhaustive horizon exactly.
        assert_eq!(
            TelemetryConfig::Sampled { rate: 1.0 }.live_horizon(poll),
            base
        );
        // rate 1/64 → a slow flow is observed every ~64 polls.
        let sparse = TelemetryConfig::Sampled { rate: 1.0 / 64.0 }.live_horizon(poll);
        assert_eq!(sparse, SimDuration(base.0 * 64));
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn zero_sampling_rate_panics() {
        let c = ScotchConfig {
            telemetry: TelemetryConfig::Sampled { rate: 0.0 },
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn oversized_sampling_rate_panics() {
        TelemetryConfig::Sampled { rate: 1.5 }.validate();
    }

    #[test]
    #[should_panic(expected = "at least one controller")]
    fn zero_controllers_panics() {
        let c = ScotchConfig {
            controllers: 0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "sync latency")]
    fn cluster_without_sync_latency_panics() {
        let c = ScotchConfig {
            controllers: 3,
            sync_latency: SimDuration::ZERO,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_panic() {
        let c = ScotchConfig {
            withdrawal_threshold: 500.0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "dropping")]
    fn inverted_queue_thresholds_panic() {
        let c = ScotchConfig {
            overlay_threshold: 300,
            drop_threshold: 200,
            ..Default::default()
        };
        c.validate();
    }
}
