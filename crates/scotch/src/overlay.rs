//! The Scotch overlay fabric (§4.1, Fig. 5).
//!
//! Three tunnel classes:
//!
//! 1. **Load-distribution tunnels** — physical switch → each mesh vSwitch;
//!    the select-group buckets point into these.
//! 2. **Mesh tunnels** — full mesh between mesh vSwitches.
//! 3. **Delivery tunnels** — mesh vSwitch → host vSwitch, "hosts are
//!    partitioned based on their locations so that all hosts are covered by
//!    one or more nearby Scotch vSwitches".
//!
//! Tunnels are configured offline (§5.6) and never consume OFA capacity.

use scotch_net::{NodeId, Topology, TunnelId, TunnelTable};
use std::collections::HashMap;

/// The overlay's static wiring plus per-vSwitch liveness bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct OverlayManager {
    /// All tunnels (owned here; the composition root consults it for label
    /// forwarding).
    pub tunnels: TunnelTable,
    /// Mesh vSwitches, in bucket order.
    pub mesh: Vec<NodeId>,
    /// Load-distribution tunnels per physical switch, parallel to `mesh`.
    pub lb_tunnels: HashMap<NodeId, Vec<TunnelId>>,
    /// tunnel → originating physical switch (recovers the switch id from
    /// Packet-In metadata, §5.2).
    pub tunnel_origin: HashMap<TunnelId, NodeId>,
    /// Full-mesh tunnels between mesh vSwitches.
    pub mesh_tunnels: HashMap<(NodeId, NodeId), TunnelId>,
    /// Delivery tunnels mesh vSwitch → host vSwitch.
    pub delivery_tunnels: HashMap<(NodeId, NodeId), TunnelId>,
    /// Which host vSwitch delivers to each host.
    pub host_vswitch: HashMap<NodeId, NodeId>,
    /// Which mesh vSwitch is "local" to each host (the paper's
    /// location-based partition; with one rack it is a deterministic
    /// assignment).
    pub local_mesh: HashMap<NodeId, NodeId>,
    /// Aggregation tunnels for policy routing (§5.4): (mesh vSwitch → the
    /// middlebox's upstream physical switch).
    pub policy_in_tunnels: HashMap<(NodeId, NodeId), TunnelId>,
    /// (physical switch → mesh vSwitch) return tunnels from the middlebox's
    /// downstream switch.
    pub policy_out_tunnels: HashMap<(NodeId, NodeId), TunnelId>,
    /// Liveness per mesh vSwitch (index-aligned with `mesh`).
    pub alive: Vec<bool>,
    /// Standby vSwitches available to replace failures (§5.6).
    pub backups: Vec<NodeId>,
    /// Monotonic mutation counter. Sharded execution replicates the overlay
    /// to every shard's data-path slice and uses this to notice, at an epoch
    /// barrier, that the controller rewired something and replicas must be
    /// refreshed.
    pub version: u64,
}

impl OverlayManager {
    /// Build the overlay over `topo`.
    ///
    /// * `physical` — switches that will distribute load into the overlay;
    /// * `mesh` — the mesh vSwitch pool;
    /// * `hosts_with_vswitch` — `(host, host_vswitch)` delivery pairs;
    ///   hosts without an entry cannot receive overlay-routed flows.
    pub fn build(
        topo: &Topology,
        physical: &[NodeId],
        mesh: &[NodeId],
        hosts_with_vswitch: &[(NodeId, NodeId)],
    ) -> Self {
        let mut mgr = OverlayManager {
            mesh: mesh.to_vec(),
            alive: vec![true; mesh.len()],
            ..Default::default()
        };

        // 1. Load-distribution tunnels.
        for &ps in physical {
            let mut per_switch = Vec::new();
            for &v in mesh {
                let id = mgr
                    .tunnels
                    .add_shortest(topo, ps, v)
                    .unwrap_or_else(|| panic!("no path {ps:?} -> mesh {v:?}"));
                mgr.tunnel_origin.insert(id, ps);
                per_switch.push(id);
            }
            mgr.lb_tunnels.insert(ps, per_switch);
        }

        // 2. Full mesh between mesh vSwitches.
        for &a in mesh {
            for &b in mesh {
                if a != b {
                    let id = mgr
                        .tunnels
                        .add_shortest(topo, a, b)
                        .unwrap_or_else(|| panic!("no mesh path {a:?} -> {b:?}"));
                    mgr.mesh_tunnels.insert((a, b), id);
                }
            }
        }

        // 3. Delivery tunnels: every mesh vSwitch reaches every host
        //    vSwitch (the local-mesh hop uses its own delivery tunnel; any
        //    mesh vSwitch *can* deliver directly when it happens to be the
        //    local one).
        let mut host_vswitches: Vec<NodeId> = hosts_with_vswitch.iter().map(|p| p.1).collect();
        host_vswitches.sort_unstable();
        host_vswitches.dedup();
        for &m in mesh {
            for &w in &host_vswitches {
                if m == w {
                    continue;
                }
                let id = mgr
                    .tunnels
                    .add_shortest(topo, m, w)
                    .unwrap_or_else(|| panic!("no delivery path {m:?} -> {w:?}"));
                mgr.delivery_tunnels.insert((m, w), id);
            }
        }

        // Host partition: deterministic local mesh assignment (round robin
        // over host order — one "rack" in the testbed-scale topology).
        for (i, &(host, w)) in hosts_with_vswitch.iter().enumerate() {
            mgr.host_vswitch.insert(host, w);
            if !mesh.is_empty() {
                mgr.local_mesh.insert(host, mesh[i % mesh.len()]);
            }
        }

        mgr
    }

    /// Add policy aggregation tunnels for a middlebox sandwiched by
    /// `upstream` and `downstream` physical switches (§5.4 / Fig. 8; for a
    /// middlebox attached to a single switch pass the same node twice).
    /// `agg_in` / `agg_out` are the dedicated aggregation vSwitches.
    pub fn add_policy_tunnels(
        &mut self,
        topo: &Topology,
        agg_in: NodeId,
        upstream: NodeId,
        downstream: NodeId,
        agg_out: NodeId,
    ) {
        self.version += 1;
        let tin = self
            .tunnels
            .add_shortest(topo, agg_in, upstream)
            .expect("no path aggregation -> upstream switch");
        self.policy_in_tunnels.insert((agg_in, upstream), tin);
        let tout = self
            .tunnels
            .add_shortest(topo, downstream, agg_out)
            .expect("no path downstream switch -> aggregation");
        self.policy_out_tunnels.insert((downstream, agg_out), tout);
    }

    /// Lay the mesh tunnels between `v` and every current member, and the
    /// delivery tunnels from `v` to every host vSwitch. Idempotent; used
    /// both by elastic scale-out and by backup promotion (a standby that
    /// takes over a bucket needs its fabric wired too).
    pub fn wire_mesh_tunnels(&mut self, topo: &Topology, v: NodeId) {
        self.version += 1;
        for &m in &self.mesh.clone() {
            if m == v {
                continue;
            }
            if !self.mesh_tunnels.contains_key(&(v, m)) {
                if let Some(t) = self.tunnels.add_shortest(topo, v, m) {
                    self.mesh_tunnels.insert((v, m), t);
                }
            }
            if !self.mesh_tunnels.contains_key(&(m, v)) {
                if let Some(t) = self.tunnels.add_shortest(topo, m, v) {
                    self.mesh_tunnels.insert((m, v), t);
                }
            }
        }
        let mut host_vswitches: Vec<NodeId> = self.host_vswitch.values().copied().collect();
        host_vswitches.sort_unstable();
        host_vswitches.dedup();
        for w in host_vswitches {
            if w != v && !self.delivery_tunnels.contains_key(&(v, w)) {
                if let Some(t) = self.tunnels.add_shortest(topo, v, w) {
                    self.delivery_tunnels.insert((v, w), t);
                }
            }
        }
    }

    /// Grow the overlay: wire a new vSwitch into the mesh (§5.6: "We may
    /// also need to add new vSwitches to increase the Scotch overlay
    /// capacity"). Lays the mesh tunnels to every existing member and the
    /// delivery tunnels to every host vSwitch; the caller re-installs the
    /// load-balancing groups (which lays the per-switch tunnels).
    pub fn add_mesh_vswitch(&mut self, topo: &Topology, v: NodeId) {
        if self.mesh.contains(&v) {
            return;
        }
        self.version += 1;
        self.wire_mesh_tunnels(topo, v);
        self.mesh.push(v);
        self.alive.push(true);
    }

    /// Live mesh vSwitches in bucket order.
    pub fn live_mesh(&self) -> Vec<NodeId> {
        self.mesh
            .iter()
            .zip(&self.alive)
            .filter(|(_, a)| **a)
            .map(|(n, _)| *n)
            .collect()
    }

    /// Mark a mesh vSwitch dead; if a backup is available it takes over the
    /// bucket position. Returns the replacement if one was promoted.
    pub fn fail_vswitch(&mut self, v: NodeId) -> Option<NodeId> {
        let idx = self.mesh.iter().position(|n| *n == v)?;
        self.version += 1;
        self.alive[idx] = false;
        // §5.6: "the controller can replace the failed vSwitch with the
        // backup in the action buckets".
        if let Some(backup) = self.backups.pop() {
            self.mesh[idx] = backup;
            self.alive[idx] = true;
            Some(backup)
        } else {
            None
        }
    }

    /// Bucket index of a mesh vSwitch, if present.
    pub fn bucket_of(&self, v: NodeId) -> Option<usize> {
        self.mesh.iter().position(|n| *n == v)
    }

    /// The mesh vSwitch that delivers toward `host` (its local mesh).
    pub fn local_mesh_of(&self, host: NodeId) -> Option<NodeId> {
        self.local_mesh.get(&host).copied()
    }

    /// The host vSwitch of `host`.
    pub fn host_vswitch_of(&self, host: NodeId) -> Option<NodeId> {
        self.host_vswitch.get(&host).copied()
    }

    /// Total tunnels configured.
    pub fn tunnel_count(&self) -> usize {
        self.tunnels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_net::{LinkSpec, NodeKind};

    /// One physical switch, three mesh vSwitches, two hosts behind one
    /// host vSwitch.
    fn build() -> (Topology, OverlayManager, Vec<NodeId>) {
        let mut topo = Topology::new();
        let ps = topo.add_node(NodeKind::PhysicalSwitch, "ps");
        let mesh: Vec<NodeId> = (0..3)
            .map(|i| {
                let v = topo.add_node(NodeKind::VSwitch, format!("mesh{i}"));
                topo.add_duplex_link(ps, v, LinkSpec::gig());
                v
            })
            .collect();
        let w = topo.add_node(NodeKind::VSwitch, "hostvsw");
        topo.add_duplex_link(ps, w, LinkSpec::gig());
        let h1 = topo.add_node(NodeKind::Host, "h1");
        let h2 = topo.add_node(NodeKind::Host, "h2");
        topo.add_duplex_link(w, h1, LinkSpec::gig());
        topo.add_duplex_link(w, h2, LinkSpec::gig());
        let mgr = OverlayManager::build(&topo, &[ps], &mesh, &[(h1, w), (h2, w)]);
        (topo, mgr, vec![ps, w, h1, h2])
    }

    #[test]
    fn tunnel_classes_are_complete() {
        let (_t, mgr, ids) = build();
        let ps = ids[0];
        // 3 LB tunnels, 3*2 mesh tunnels, 3 delivery tunnels (mesh -> w).
        assert_eq!(mgr.lb_tunnels[&ps].len(), 3);
        assert_eq!(mgr.mesh_tunnels.len(), 6);
        assert_eq!(mgr.delivery_tunnels.len(), 3);
        assert_eq!(mgr.tunnel_count(), 12);
    }

    #[test]
    fn tunnel_origin_maps_back_to_switch() {
        let (_t, mgr, ids) = build();
        let ps = ids[0];
        for t in &mgr.lb_tunnels[&ps] {
            assert_eq!(mgr.tunnel_origin[t], ps);
        }
    }

    #[test]
    fn hosts_get_local_mesh_and_host_vswitch() {
        let (_t, mgr, ids) = build();
        let (w, h1, h2) = (ids[1], ids[2], ids[3]);
        assert_eq!(mgr.host_vswitch_of(h1), Some(w));
        assert_eq!(mgr.host_vswitch_of(h2), Some(w));
        assert!(mgr.local_mesh_of(h1).is_some());
        // Unknown host: none.
        assert_eq!(mgr.host_vswitch_of(NodeId(999)), None);
    }

    #[test]
    fn failover_promotes_backup() {
        let (_t, mut mgr, _) = build();
        let victim = mgr.mesh[1];
        // No backup: bucket goes dead.
        assert_eq!(mgr.fail_vswitch(victim), None);
        assert_eq!(mgr.live_mesh().len(), 2);
        // With a backup: replaced in place.
        let backup = NodeId(77);
        mgr.backups.push(backup);
        let victim2 = mgr.mesh[0];
        assert_eq!(mgr.fail_vswitch(victim2), Some(backup));
        assert_eq!(mgr.mesh[0], backup);
        // Bucket 1 is still dead (no second backup); bucket 0 recovered.
        assert_eq!(mgr.live_mesh().len(), 2);
        assert!(mgr.live_mesh().contains(&backup));
    }

    #[test]
    fn bucket_of_finds_position() {
        let (_t, mgr, _) = build();
        assert_eq!(mgr.bucket_of(mgr.mesh[2]), Some(2));
        assert_eq!(mgr.bucket_of(NodeId(500)), None);
    }

    #[test]
    fn policy_tunnels_register() {
        let (topo, mut mgr, ids) = build();
        let ps = ids[0];
        let (a_in, a_out) = (mgr.mesh[0], mgr.mesh[1]);
        mgr.add_policy_tunnels(&topo, a_in, ps, ps, a_out);
        assert!(mgr.policy_in_tunnels.contains_key(&(a_in, ps)));
        assert!(mgr.policy_out_tunnels.contains_key(&(ps, a_out)));
    }
}
