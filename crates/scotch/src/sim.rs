//! The composition root: one event loop wiring topology, devices,
//! controller, and workloads together.
//!
//! Follows the smoltcp-style event-driven design: every device is a
//! passive state machine; this module owns the [`EventQueue`] and converts
//! device outputs into scheduled events. All randomness is seeded, all
//! ties deterministic — a `(scenario, seed)` pair reproduces bit-identical
//! reports.

use crate::app::{ControllerMode, ScotchApp};
use crate::report::{DropCounts, FlowOutcome, Report, SwitchReport, VSwitchReport};
use scotch_controller::{Command, MasterView};
use scotch_net::{IpAddr, Label, LinkId, NodeId, NodeKind, NodeMap, Packet, PortId, Topology};
use scotch_openflow::{ControllerToSwitch, FlowModCommand, SwitchToController};
use scotch_sim::fault::{FaultEvent, FaultKind, FaultPlan, FAULT_KIND_COUNT, FAULT_KIND_NAMES};
use scotch_sim::journey::{
    JourneyPoint, JourneyRecorder, LatencyDecomposition, DROP_CTRL_REJECT, DROP_LINK,
};
use scotch_sim::metrics::Histogram;
use scotch_sim::trace::{TraceEvent, TraceRecorder};
use scotch_sim::{
    DispatchProfiler, EpochProfiler, EventQueue, FxHashMap, MetricsRegistry, SimDuration, SimRng,
    SimTime,
};
use scotch_switch::middlebox::{MbVerdict, Middlebox};
use scotch_switch::{DropReason, Output, PhysicalSwitch, VSwitch};
use scotch_workload::{FlowArrival, FlowSource, FlowSpec};

/// Discrete events. Crate-visible so the shard driver (`crate::shard`) can
/// route them between per-shard event queues.
pub(crate) enum Event {
    /// A packet lands on `(node, port)` after link transit.
    Arrive {
        node: NodeId,
        port: PortId,
        packet: Packet,
    },
    /// A source host emits packet `seq` of flow `flow_idx`.
    EmitPacket { flow_idx: usize, seq: u32 },
    /// Pull the next arrival from workload source `source_idx`.
    SourceNext { source_idx: usize },
    /// A switch→controller message arrives at the controller (subject to
    /// the optional controller-capacity gate).
    ///
    /// Control messages are boxed to keep the `Event` enum at the size of
    /// its hot variant (`Arrive`): every event is memmoved several times
    /// through the timing wheel, so the max variant size is a hot-path
    /// constant, while control events are comparatively rare.
    CtrlFromSwitch {
        from: NodeId,
        msg: Box<SwitchToController>,
    },
    /// A gated message whose controller service time has elapsed.
    CtrlProcessed {
        from: NodeId,
        msg: Box<SwitchToController>,
    },
    /// A controller→switch message arrives at a switch.
    CtrlToSwitch {
        to: NodeId,
        msg: Box<ControllerToSwitch>,
    },
    /// Periodic controller work (queue service, monitoring).
    ControllerTick,
    /// Periodic FlowStats poll (§5.3).
    StatsPoll,
    /// Periodic heartbeat probes (§5.6).
    Heartbeat,
    /// Periodic flow-table expiry sweep.
    ExpirySweep,
    /// Scripted fault injection: kill a vSwitch.
    FailVSwitch { node: NodeId },
    /// Scripted elastic scale-out: join a vSwitch to the overlay (§5.6).
    JoinVSwitch { node: NodeId },
    /// Scripted recovery of a previously failed vSwitch (§5.6).
    RecoverVSwitch { node: NodeId },
    /// Inject entry `idx` of the attached fault plan (chaos harness).
    InjectFault { idx: u32 },
    /// Toggle a directed link's administrative state; `finale` marks the
    /// last toggle of a bounded fault (traced as `FaultCleared`).
    SetLinkUp {
        link: LinkId,
        up: bool,
        kind: u8,
        finale: bool,
    },
    /// Restore a degraded link's latency.
    ClearLinkDegrade { link: LinkId },
    /// Restore a slowed OFA's service times.
    ClearOfaSlowdown { node: NodeId },
    /// End of a controller stall window (trace marker; the stall itself
    /// expires by timestamp comparison).
    ClearControllerStall,
    /// A cluster mastership-handoff deadline: settle every due migration
    /// and release the affected switches' parked messages to their new
    /// master replicas (DESIGN.md §16).
    ClusterHandoffDone,
    /// A crashed controller replica rejoins the cluster as a standby.
    RecoverReplica { replica: u32 },
    /// End of an inter-controller partition window (trace marker; the
    /// partition itself expires by timestamp comparison).
    ClearCtrlPartition,
}

/// Dispatch-profile row labels: the 21 [`Event`] kinds plus refined rows
/// that split the hottest variants by what actually happened inside them.
/// An `Arrive` that label-switches through a tunnel takes a very different
/// path from one that hits a device table; a `CtrlFromSwitch` carrying a
/// PacketIn is the controller's hot path while an echo is bookkeeping.
/// Handlers reclassify by overwriting [`Simulation::profile_kind`].
const PROFILE_KIND_NAMES: [&str; 24] = [
    "arrive",
    "emit_packet",
    "source_next",
    "ctrl_from_switch",
    "ctrl_processed",
    "ctrl_to_switch",
    "controller_tick",
    "stats_poll",
    "heartbeat",
    "expiry_sweep",
    "fail_vswitch",
    "join_vswitch",
    "recover_vswitch",
    "inject_fault",
    "set_link_up",
    "clear_link_degrade",
    "clear_ofa_slowdown",
    "clear_controller_stall",
    "cluster_handoff_done",
    "recover_replica",
    "clear_ctrl_partition",
    "arrive_tunnel_transit",
    "ctrl_packet_in",
    "ctrl_flowmod",
];

/// Refined profile row: `Arrive` resolved by tunnel label switching.
const PROFILE_KIND_TUNNEL_TRANSIT: usize = 21;
/// Refined profile row: `CtrlFromSwitch` carrying a PacketIn.
const PROFILE_KIND_PACKET_IN: usize = 22;
/// Refined profile row: `CtrlToSwitch` carrying a FlowMod.
const PROFILE_KIND_FLOWMOD: usize = 23;

impl Event {
    /// Dense variant index (matches the first 21 rows of
    /// [`PROFILE_KIND_NAMES`]).
    pub(crate) fn kind(&self) -> usize {
        match self {
            Event::Arrive { .. } => 0,
            Event::EmitPacket { .. } => 1,
            Event::SourceNext { .. } => 2,
            Event::CtrlFromSwitch { .. } => 3,
            Event::CtrlProcessed { .. } => 4,
            Event::CtrlToSwitch { .. } => 5,
            Event::ControllerTick => 6,
            Event::StatsPoll => 7,
            Event::Heartbeat => 8,
            Event::ExpirySweep => 9,
            Event::FailVSwitch { .. } => 10,
            Event::JoinVSwitch { .. } => 11,
            Event::RecoverVSwitch { .. } => 12,
            Event::InjectFault { .. } => 13,
            Event::SetLinkUp { .. } => 14,
            Event::ClearLinkDegrade { .. } => 15,
            Event::ClearOfaSlowdown { .. } => 16,
            Event::ClearControllerStall => 17,
            Event::ClusterHandoffDone => 18,
            Event::RecoverReplica { .. } => 19,
            Event::ClearCtrlPartition => 20,
        }
    }
}

/// Control-channel perturbation kinds for
/// [`TraceEvent::CtrlMsgPerturbed`] (`0` dropped rx, `1` dropped tx,
/// `2` duplicated, `3` delayed).
const PERTURB_DROP_RX: u32 = 0;
const PERTURB_DROP_TX: u32 = 1;
const PERTURB_DUP: u32 = 2;
const PERTURB_DELAY: u32 = 3;

/// Mutable chaos-harness state: active fault windows plus the exact
/// message accounting the invariant checker reconciles after the run.
///
/// Everything here is exported under `chaos.*` in the metrics snapshot
/// (never in the canonical report), and only when a fault plan is attached.
#[derive(Default)]
pub(crate) struct ChaosState {
    /// Faults injected, by [`FaultKind::index`].
    pub(crate) injected: [u64; FAULT_KIND_COUNT],
    /// Plan entries skipped because no candidate target existed.
    pub(crate) skipped: u64,
    /// Control-channel loss window (drop probability, end of window).
    pub(crate) loss_p: f64,
    pub(crate) loss_until: SimTime,
    /// Switch→controller duplication window.
    pub(crate) dup_p: f64,
    pub(crate) dup_until: SimTime,
    /// Reordering window (extra uniform delay in `[0, jitter]`).
    pub(crate) reorder_p: f64,
    pub(crate) reorder_jitter: SimDuration,
    pub(crate) reorder_until: SimTime,
    /// Controller outage: inbound messages and periodic work defer until
    /// this instant.
    pub(crate) stall_until: SimTime,
    /// Switch→controller messages dropped by loss, by rx message kind.
    pub(crate) rx_dropped: [u64; 6],
    /// Controller→switch messages dropped by loss, by tx message kind.
    pub(crate) tx_dropped: [u64; 6],
    /// Switch→controller messages duplicated, by rx message kind.
    pub(crate) duplicated: [u64; 6],
    /// Messages given extra reorder delay (both directions).
    pub(crate) delayed: u64,
    /// Messages deferred past a controller stall window.
    pub(crate) deferred: u64,
    /// Controller→switch messages absorbed by a failed vSwitch, by kind.
    pub(crate) absorbed: [u64; 6],
    /// FlowMod-Add commands sent / lost in transit / absorbed while the
    /// target vSwitch was failed (the FlowMod conservation ledger).
    pub(crate) flowmod_add_sent: u64,
    pub(crate) flowmod_add_dropped: u64,
    pub(crate) flowmod_add_absorbed: u64,
    /// Events still queued when the horizon hit, tallied so conservation
    /// checks are exact rather than tolerance-based.
    pub(crate) in_flight_rx: [u64; 6],
    pub(crate) in_flight_tx: [u64; 6],
    pub(crate) in_flight_flowmod_add: u64,
    pub(crate) in_flight_packets: u64,
}

impl ChaosState {
    /// Fold another shard's counters into this one (windows are not
    /// merged: they are broadcast state, identical on every shard).
    pub(crate) fn absorb_counters(&mut self, o: &ChaosState) {
        for i in 0..FAULT_KIND_COUNT {
            self.injected[i] += o.injected[i];
        }
        self.skipped += o.skipped;
        for i in 0..6 {
            self.rx_dropped[i] += o.rx_dropped[i];
            self.tx_dropped[i] += o.tx_dropped[i];
            self.duplicated[i] += o.duplicated[i];
            self.absorbed[i] += o.absorbed[i];
            self.in_flight_rx[i] += o.in_flight_rx[i];
            self.in_flight_tx[i] += o.in_flight_tx[i];
        }
        self.delayed += o.delayed;
        self.deferred += o.deferred;
        self.flowmod_add_sent += o.flowmod_add_sent;
        self.flowmod_add_dropped += o.flowmod_add_dropped;
        self.flowmod_add_absorbed += o.flowmod_add_absorbed;
        self.in_flight_flowmod_add += o.in_flight_flowmod_add;
        self.in_flight_packets += o.in_flight_packets;
    }

    pub(crate) fn tally_in_flight(&mut self, ev: &Event) {
        match ev {
            Event::Arrive { .. } | Event::EmitPacket { .. } => self.in_flight_packets += 1,
            Event::CtrlFromSwitch { msg, .. } | Event::CtrlProcessed { msg, .. } => {
                self.in_flight_rx[ctrl_rx_kind(msg)] += 1;
            }
            Event::CtrlToSwitch { msg, .. } => {
                self.in_flight_tx[ctrl_tx_kind(msg)] += 1;
                if matches!(
                    msg.as_ref(),
                    ControllerToSwitch::FlowMod {
                        command: FlowModCommand::Add(_),
                        ..
                    }
                ) {
                    self.in_flight_flowmod_add += 1;
                }
            }
            _ => {}
        }
    }
}

/// Dense index for [`ControllerToSwitch`] message kinds (see
/// [`ControllerToSwitch::kind_name`]), used for the per-message-type
/// command counters exported through the metrics registry.
fn ctrl_tx_kind(msg: &ControllerToSwitch) -> usize {
    match msg {
        ControllerToSwitch::FlowMod { .. } => 0,
        ControllerToSwitch::GroupMod { .. } => 1,
        ControllerToSwitch::PacketOut { .. } => 2,
        ControllerToSwitch::FlowStatsRequest => 3,
        ControllerToSwitch::EchoRequest { .. } => 4,
        ControllerToSwitch::Barrier { .. } => 5,
    }
}

const CTRL_TX_KIND_NAMES: [&str; 6] = [
    "flow_mod",
    "group_mod",
    "packet_out",
    "flow_stats_request",
    "echo_request",
    "barrier",
];

/// Dense index for [`SwitchToController`] message kinds (see
/// [`SwitchToController::kind_name`]).
fn ctrl_rx_kind(msg: &SwitchToController) -> usize {
    match msg {
        SwitchToController::PacketIn { .. } => 0,
        SwitchToController::FlowRemoved { .. } => 1,
        SwitchToController::FlowStatsReply { .. } => 2,
        SwitchToController::EchoReply { .. } => 3,
        SwitchToController::BarrierReply { .. } => 4,
        SwitchToController::Error { .. } => 5,
    }
}

const CTRL_RX_KIND_NAMES: [&str; 6] = [
    "packet_in",
    "flow_removed",
    "flow_stats_reply",
    "echo_reply",
    "barrier_reply",
    "error",
];

/// Dense flow-id → record-index map. `FlowId` encodes `stream << 48 | seq`
/// with both halves handed out contiguously by `FlowIdAllocator`, so two
/// levels of `Vec` replace hashing on the per-packet delivery path (and the
/// rehash churn of growing a map by hundreds of thousands of flows).
/// Stored values are `index + 1`; 0 marks an empty slot.
#[derive(Default)]
pub(crate) struct FlowIndex {
    streams: Vec<Vec<u32>>,
}

impl FlowIndex {
    const SEQ_MASK: u64 = (1 << 48) - 1;

    #[inline]
    fn get(&self, id: scotch_net::FlowId) -> Option<usize> {
        let stream = (id.0 >> 48) as usize;
        let seq = (id.0 & Self::SEQ_MASK) as usize;
        match self.streams.get(stream)?.get(seq) {
            Some(&v) if v != 0 => Some((v - 1) as usize),
            _ => None,
        }
    }

    fn insert(&mut self, id: scotch_net::FlowId, idx: usize) {
        let stream = (id.0 >> 48) as usize;
        let seq = (id.0 & Self::SEQ_MASK) as usize;
        if stream >= self.streams.len() {
            self.streams.resize_with(stream + 1, Vec::new);
        }
        let v = &mut self.streams[stream];
        if seq >= v.len() {
            v.resize(seq + 1, 0);
        }
        v[seq] = u32::try_from(idx + 1).expect("flow record index fits u32");
    }
}

pub(crate) struct FlowRecord {
    pub(crate) spec: FlowSpec,
    pub(crate) src_host: NodeId,
    pub(crate) started_at: SimTime,
    pub(crate) emitted: u32,
    pub(crate) delivered: u32,
    pub(crate) delivered_bytes: u64,
    pub(crate) first_delivered: Option<SimTime>,
    pub(crate) last_delivered: Option<SimTime>,
    pub(crate) served_by: Option<scotch_controller::flowdb::FlowPath>,
    /// Global index of the creating workload source and the flow's ordinal
    /// within that source. Unused sequentially; the shard driver merges
    /// per-shard flow lists back into the sequential creation order from
    /// `(source, seq)` plus the per-source `started_at` history.
    pub(crate) source: u32,
    pub(crate) seq: u32,
}

/// One event bound for another shard (or for the canonical inter-shard
/// ordering pass), captured at its generation site instead of being pushed
/// into the local queue.
///
/// At each epoch barrier the driver concatenates all shards' outboxes,
/// stably sorts on `(deliver, gen, class, origin)`, and pushes the entries
/// into the destination queues in that order. The key never mentions the
/// shard, and entries from one origin are generated on one shard in a
/// deterministic order the stable sort preserves — so the insertion order
/// (the timing wheel's tie-breaker) is identical for every shard count.
pub(crate) struct OutboxEntry {
    /// When the event is due at its destination.
    pub(crate) deliver: SimTime,
    /// When the emitting site generated it (`now` at the push site).
    pub(crate) gen: SimTime,
    /// Origin class rank: physical switch 0, vSwitch 1, controller 2,
    /// host 3, middlebox 4.
    pub(crate) class: u8,
    /// Emitting node id (`u32::MAX` for the controller).
    pub(crate) origin: u32,
    pub(crate) ev: Event,
}

/// Per-shard execution context. `None` on a sequential simulation; set by
/// the shard driver on every lane of a sharded run.
pub(crate) struct ShardCtx {
    /// This lane's shard id.
    pub(crate) shard: u32,
    /// The global node → shard map.
    pub(crate) part: std::sync::Arc<scotch_net::Partition>,
    /// Events generated here but ordered/routed at the next barrier.
    pub(crate) outbox: Vec<OutboxEntry>,
    /// Host deliveries `(time, host, packet)` deferred to the driver.
    /// Delivery has no causal consequences inside the event loop (it only
    /// updates flow/latency accounting), so the driver applies these at
    /// barriers in global time order instead of each lane racing to its
    /// own copy of the accounting state.
    pub(crate) deliveries: Vec<(SimTime, NodeId, Packet)>,
    /// `ExpirySweep` pops on this lane. Every lane runs its own sweep
    /// schedule; the canonical `events_processed` counts the sweep ticks
    /// once, so the driver subtracts non-zero-shard sweep pops.
    pub(crate) sweep_pops: u64,
    /// Total events popped by this lane across all epochs; the driver sums
    /// these (minus duplicate sweeps, plus centrally applied events) into
    /// the canonical `events_processed`.
    pub(crate) pops: u64,
    /// Global per-node control-channel latency, snapshotted from the full
    /// device set before partitioning. The controller lane dispatches
    /// commands to switches owned by other shards, whose profiles are not
    /// in its local device maps.
    pub(crate) ctrl_latency: std::sync::Arc<Vec<SimDuration>>,
    /// Wall-clock nanoseconds this lane spent executing the current epoch,
    /// harvested (and reset) by the driver at each barrier. Only stamped
    /// when `profile` is set.
    pub(crate) epoch_busy_ns: f64,
    /// `--profile-shards`: stamp `epoch_busy_ns` around each epoch. One
    /// predicted branch per epoch (not per event) when off.
    pub(crate) profile: bool,
}

fn origin_class(kind: NodeKind) -> u8 {
    match kind {
        NodeKind::PhysicalSwitch => 0,
        NodeKind::VSwitch => 1,
        NodeKind::Host => 3,
        NodeKind::Middlebox => 4,
    }
}

/// Origin-class rank of controller-emitted messages (see
/// [`OutboxEntry::class`]).
pub(crate) const ORIGIN_CLASS_CONTROLLER: u8 = 2;

/// Per-origin chaos stream, forked lazily from the plan seed exactly like
/// [`SimRng::fork`] derives child streams: mixing the origin id keeps every
/// origin's draw sequence independent of all others, and therefore
/// independent of which shard the origin runs on.
fn chaos_stream(streams: &mut FxHashMap<u32, SimRng>, seed: u64, origin: u32) -> &mut SimRng {
    streams
        .entry(origin)
        .or_insert_with(|| SimRng::new(seed ^ (origin as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// The simulation.
pub struct Simulation {
    /// The network graph (public for inspection in tests/benches).
    pub topo: Topology,
    /// The controller application.
    pub app: ScotchApp,
    /// Region node lists (one per rack in the rack-based topologies).
    /// Consumed by sharded execution to build the [`scotch_net::Partition`];
    /// empty means the scenario cannot shard and always runs sequentially.
    pub regions: Vec<Vec<NodeId>>,
    pub(crate) physical: NodeMap<PhysicalSwitch>,
    pub(crate) vswitches: NodeMap<VSwitch>,
    pub(crate) middleboxes: NodeMap<Middlebox>,
    pub(crate) host_ip: NodeMap<IpAddr>,
    pub(crate) ip_host: FxHashMap<IpAddr, NodeId>,
    pub(crate) sources: Vec<(NodeId, Box<dyn FlowSource>)>,
    /// Global source index per local source (identity sequentially; the
    /// shard driver re-labels when it partitions sources across lanes).
    pub(crate) source_ids: Vec<u32>,
    /// Next per-source flow ordinal (indexed like `sources`).
    pub(crate) source_seq: Vec<u32>,
    pub(crate) flows: Vec<FlowRecord>,
    pub(crate) flow_index: FlowIndex,
    pub(crate) tracked: FxHashMap<scotch_net::FlowId, Vec<(SimTime, SimDuration)>>,
    pub(crate) captures: NodeMap<crate::pcap::PcapCapture>,
    pub(crate) events: EventQueue<Event>,
    /// Optional controller processing gate (see
    /// `ScotchConfig::controller_capacity`).
    pub(crate) controller_gate: Option<(scotch_sim::rate::FifoServer, SimDuration)>,
    pub(crate) controller_dropped: u64,
    pub(crate) drops: DropCounts,
    pub(crate) latency: Histogram,
    pub(crate) misrouted: u64,
    /// Reusable device-output buffer: one allocation for the whole run
    /// instead of one `Vec<Output>` per packet event.
    out_buf: Vec<Output>,
    pub(crate) sweep_interval: SimDuration,
    /// Unified metrics registry: periodic series are sampled during the
    /// run, everything else is populated from the stats structs at report
    /// time (so hot-path increments stay plain `+= 1`s).
    pub(crate) registry: MetricsRegistry,
    /// Optional wall-clock dispatch-cost profiler (`bench hotpath
    /// --profile`). Never enabled on golden-report paths.
    pub(crate) profiler: Option<DispatchProfiler>,
    /// Profile row for the event being dispatched. Seeded with the event's
    /// kind; handlers overwrite it with a refined row (tunnel transit,
    /// PacketIn, FlowMod). Only written when the profiler is active.
    pub(crate) profile_kind: usize,
    /// `--profile-shards`: ask sharded execution to attach an
    /// [`EpochProfiler`] to the lockstep driver. Ignored sequentially.
    pub(crate) shard_profiling: bool,
    /// Per-lane busy/stall profile of a sharded run, filled in by the
    /// driver at merge-back when `shard_profiling` was set.
    pub(crate) epoch_profiler: Option<EpochProfiler>,
    /// Controller→switch messages sent, by message kind (dense arrays on
    /// the dispatch path; exported as `controller.tx.<kind>` at report
    /// time).
    pub(crate) ctrl_tx: [u64; 6],
    /// Switch→controller messages received, by message kind
    /// (`controller.rx.<kind>`).
    pub(crate) ctrl_rx: [u64; 6],
    /// Attached fault plan (empty = chaos harness inactive).
    pub(crate) fault_plan: Vec<FaultEvent>,
    /// Seed for the probabilistic fault draws (loss/dup/reorder), drawn
    /// from the RNG the scenario forked for the chaos harness. `Some` marks
    /// the harness active. Each perturbation *origin* (emitting node, or
    /// the controller) lazily forks its own stream from this seed, so the
    /// draw sequences are independent of how origins are spread over
    /// shards.
    pub(crate) chaos_seed: Option<u64>,
    /// Lazily forked per-origin chaos streams (see [`chaos_stream`]).
    pub(crate) chaos_streams: FxHashMap<u32, SimRng>,
    /// Live fault windows and the chaos accounting ledger.
    pub(crate) chaos: ChaosState,
    /// Sharded-execution context (`None` sequentially).
    pub(crate) shard: Option<ShardCtx>,
}

impl Simulation {
    /// Build a simulation over a wired topology and controller app.
    pub fn new(topo: Topology, app: ScotchApp) -> Self {
        let controller_gate = app.config.controller_capacity.map(|cap| {
            (
                scotch_sim::rate::FifoServer::new(4096),
                scotch_sim::rate::FifoServer::service_time(cap),
            )
        });
        Simulation {
            controller_gate,
            controller_dropped: 0,
            topo,
            app,
            regions: Vec::new(),
            physical: NodeMap::new(),
            vswitches: NodeMap::new(),
            middleboxes: NodeMap::new(),
            host_ip: NodeMap::new(),
            ip_host: FxHashMap::default(),
            sources: Vec::new(),
            source_ids: Vec::new(),
            source_seq: Vec::new(),
            flows: Vec::new(),
            flow_index: FlowIndex::default(),
            tracked: FxHashMap::default(),
            captures: NodeMap::new(),
            events: EventQueue::new(),
            drops: DropCounts::default(),
            latency: Histogram::new(),
            misrouted: 0,
            out_buf: Vec::new(),
            sweep_interval: SimDuration::from_secs(1),
            registry: MetricsRegistry::new(),
            profiler: None,
            profile_kind: 0,
            shard_profiling: false,
            epoch_profiler: None,
            ctrl_tx: [0; 6],
            ctrl_rx: [0; 6],
            fault_plan: Vec::new(),
            chaos_seed: None,
            chaos_streams: FxHashMap::default(),
            chaos: ChaosState::default(),
            shard: None,
        }
    }

    /// Turn on per-event-type wall-clock dispatch profiling. The profile is
    /// observability-only output ([`Report::profile`]); it never feeds the
    /// canonical report, so enabling it cannot perturb golden fixtures.
    pub fn enable_profiling(&mut self) {
        self.profiler = Some(DispatchProfiler::new(PROFILE_KIND_NAMES.to_vec()));
    }

    /// Ask sharded execution to profile per-lane busy vs. barrier-stall
    /// wall time (`--profile-shards`). Observability-only, like
    /// [`Simulation::enable_profiling`]: the numbers surface in
    /// [`Report::shard_profile`] and never feed the canonical report.
    /// Sequential runs ignore it.
    pub fn enable_shard_profiling(&mut self) {
        self.shard_profiling = true;
    }

    /// Attach a physical switch device at its node.
    pub fn add_physical(&mut self, sw: PhysicalSwitch) {
        self.physical.insert(sw.node, sw);
    }

    /// Attach a vSwitch device at its node.
    pub fn add_vswitch(&mut self, vs: VSwitch) {
        self.vswitches.insert(vs.node, vs);
    }

    /// Attach a middlebox at its node.
    pub fn add_middlebox(&mut self, node: NodeId, mb: Middlebox) {
        self.middleboxes.insert(node, mb);
    }

    /// Register a host's address (the emitting/receiving identity).
    pub fn add_host(&mut self, node: NodeId, ip: IpAddr) {
        self.host_ip.insert(node, ip);
        self.ip_host.insert(ip, node);
    }

    /// Attach a workload source. `default_host` emits flows whose source
    /// address is not a registered host (spoofed traffic).
    pub fn add_source(&mut self, default_host: NodeId, source: Box<dyn FlowSource>) {
        self.source_ids.push(self.sources.len() as u32);
        self.source_seq.push(0);
        self.sources.push((default_host, source));
    }

    /// Record every delivery timestamp for this flow (per-flow throughput
    /// series in the migration experiments).
    pub fn track_flow(&mut self, id: scotch_net::FlowId) {
        self.tracked.entry(id).or_default();
    }

    /// Tap a node: every packet arriving there is appended to a libpcap
    /// capture available in [`Report::captures`](crate::Report) after the
    /// run (smoltcp-style `--pcap` debugging).
    pub fn capture_at(&mut self, node: NodeId) {
        self.captures.entry_or_default(node);
    }

    /// Delivery `(time, end-to-end latency)` samples of a tracked flow.
    pub fn tracked_deliveries(&self, id: scotch_net::FlowId) -> &[(SimTime, SimDuration)] {
        self.tracked.get(&id).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Schedule a vSwitch failure (§5.6 fault injection).
    pub fn fail_vswitch_at(&mut self, node: NodeId, at: SimTime) {
        self.events.push(at, Event::FailVSwitch { node });
    }

    /// Schedule a vSwitch to join the overlay mesh at `at` (§5.6 elastic
    /// scale-out). The node must already be wired into the topology and
    /// have a device attached.
    pub fn join_vswitch_at(&mut self, node: NodeId, at: SimTime) {
        self.events.push(at, Event::JoinVSwitch { node });
    }

    /// Schedule recovery of a failed vSwitch at `at` (§5.6: it rejoins as
    /// a backup, or revives in place if its bucket was never replaced).
    pub fn recover_vswitch_at(&mut self, node: NodeId, at: SimTime) {
        self.events.push(at, Event::RecoverVSwitch { node });
    }

    /// Attach a declarative fault plan (chaos harness). Every entry is
    /// scheduled through the ordinary event queue, so a
    /// `(scenario, seed, plan)` triple replays bit-identically. `rng` seeds
    /// the probabilistic faults (loss/duplication/reordering draws) and
    /// should be forked from the scenario seed.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan, mut rng: SimRng) {
        for (i, ev) in plan.events.iter().enumerate() {
            self.events
                .push(ev.at, Event::InjectFault { idx: i as u32 });
        }
        self.fault_plan = plan.events.clone();
        // One seed, per-origin streams forked from it on demand — the same
        // fork discipline as workload streams, chosen so a draw sequence
        // belongs to its origin rather than to a global interleaving (which
        // would differ between shard counts).
        self.chaos_seed = Some(rng.u64());
    }

    /// Resolve and apply fault-plan entry `idx` at `now`.
    fn on_inject_fault(&mut self, now: SimTime, idx: u32) {
        let kind = self.fault_plan[idx as usize].kind;
        let kind_idx = kind.index();
        match kind {
            FaultKind::VSwitchCrash {
                target,
                restart_after,
            } => {
                // Candidates: live mesh members whose device is not already
                // failed (re-crashing a corpse is a no-op we skip instead).
                let candidates: Vec<NodeId> = self
                    .app
                    .overlay
                    .live_mesh()
                    .into_iter()
                    .filter(|&n| self.vswitches.get(n).map(|v| !v.failed).unwrap_or(false))
                    .collect();
                if candidates.is_empty() {
                    self.chaos.skipped += 1;
                    return;
                }
                let node = candidates[target as usize % candidates.len()];
                if let Some(vs) = self.vswitches.get_mut(node) {
                    vs.failed = true;
                }
                self.chaos.injected[kind_idx] += 1;
                self.app.trace.record(
                    now,
                    TraceEvent::FaultInjected {
                        kind: kind_idx as u32,
                        target: node.0,
                    },
                );
                if let Some(delay) = restart_after {
                    self.events
                        .push(now + delay, Event::RecoverVSwitch { node });
                }
            }
            FaultKind::LinkDown { target, duration } => {
                let n = self.topo.link_count();
                if n == 0 {
                    self.chaos.skipped += 1;
                    return;
                }
                let link = LinkId(target % n as u32);
                self.topo.set_link_up(link, false);
                self.chaos.injected[kind_idx] += 1;
                self.app.trace.record(
                    now,
                    TraceEvent::FaultInjected {
                        kind: kind_idx as u32,
                        target: link.0,
                    },
                );
                self.events.push(
                    now + duration,
                    Event::SetLinkUp {
                        link,
                        up: true,
                        kind: kind_idx as u8,
                        finale: true,
                    },
                );
            }
            FaultKind::LinkFlap {
                target,
                cycles,
                period,
            } => {
                let n = self.topo.link_count();
                if n == 0 || cycles == 0 {
                    self.chaos.skipped += 1;
                    return;
                }
                let link = LinkId(target % n as u32);
                self.topo.set_link_up(link, false);
                self.chaos.injected[kind_idx] += 1;
                self.app.trace.record(
                    now,
                    TraceEvent::FaultInjected {
                        kind: kind_idx as u32,
                        target: link.0,
                    },
                );
                for k in 0..cycles {
                    let last = k + 1 == cycles;
                    self.events.push(
                        now + period.mul(u64::from(2 * k + 1)),
                        Event::SetLinkUp {
                            link,
                            up: true,
                            kind: kind_idx as u8,
                            finale: last,
                        },
                    );
                    if !last {
                        self.events.push(
                            now + period.mul(u64::from(2 * k + 2)),
                            Event::SetLinkUp {
                                link,
                                up: false,
                                kind: kind_idx as u8,
                                finale: false,
                            },
                        );
                    }
                }
            }
            FaultKind::LinkDegrade {
                target,
                extra_latency,
                duration,
            } => {
                let n = self.topo.link_count();
                if n == 0 {
                    self.chaos.skipped += 1;
                    return;
                }
                let link = LinkId(target % n as u32);
                self.topo.set_link_extra_delay(link, extra_latency);
                self.chaos.injected[kind_idx] += 1;
                self.app.trace.record(
                    now,
                    TraceEvent::FaultInjected {
                        kind: kind_idx as u32,
                        target: link.0,
                    },
                );
                self.events
                    .push(now + duration, Event::ClearLinkDegrade { link });
            }
            FaultKind::CtrlLoss { p, duration } => {
                self.chaos.loss_p = p;
                self.chaos.loss_until = now + duration;
                self.chaos.injected[kind_idx] += 1;
                self.app.trace.record(
                    now,
                    TraceEvent::FaultInjected {
                        kind: kind_idx as u32,
                        target: u32::MAX,
                    },
                );
            }
            FaultKind::CtrlDup { p, duration } => {
                self.chaos.dup_p = p;
                self.chaos.dup_until = now + duration;
                self.chaos.injected[kind_idx] += 1;
                self.app.trace.record(
                    now,
                    TraceEvent::FaultInjected {
                        kind: kind_idx as u32,
                        target: u32::MAX,
                    },
                );
            }
            FaultKind::CtrlReorder {
                p,
                jitter,
                duration,
            } => {
                self.chaos.reorder_p = p;
                self.chaos.reorder_jitter = jitter;
                self.chaos.reorder_until = now + duration;
                self.chaos.injected[kind_idx] += 1;
                self.app.trace.record(
                    now,
                    TraceEvent::FaultInjected {
                        kind: kind_idx as u32,
                        target: u32::MAX,
                    },
                );
            }
            FaultKind::OfaSlowdown {
                target,
                factor,
                duration,
            } => {
                // Candidates: every device with an OFA, physical switches
                // first then vSwitches, both in ascending node-id order.
                let mut candidates: Vec<NodeId> = Vec::new();
                for i in 0..self.physical.id_bound() {
                    let n = NodeId(i);
                    if self.physical.get(n).is_some() {
                        candidates.push(n);
                    }
                }
                for i in 0..self.vswitches.id_bound() {
                    let n = NodeId(i);
                    if self.vswitches.get(n).is_some() {
                        candidates.push(n);
                    }
                }
                if candidates.is_empty() {
                    self.chaos.skipped += 1;
                    return;
                }
                let node = candidates[target as usize % candidates.len()];
                // A hostile plan must not panic the sim: the OFA asserts the
                // factor is finite and positive, so clamp before applying.
                let factor = if factor.is_finite() {
                    factor.max(1e-3)
                } else {
                    1.0
                };
                self.set_ofa_slowdown(node, factor);
                self.chaos.injected[kind_idx] += 1;
                self.app.trace.record(
                    now,
                    TraceEvent::FaultInjected {
                        kind: kind_idx as u32,
                        target: node.0,
                    },
                );
                self.events
                    .push(now + duration, Event::ClearOfaSlowdown { node });
            }
            FaultKind::ControllerStall { duration } => {
                let until = now + duration;
                self.chaos.stall_until = self.chaos.stall_until.max(until);
                self.chaos.injected[kind_idx] += 1;
                self.app.trace.record(
                    now,
                    TraceEvent::FaultInjected {
                        kind: kind_idx as u32,
                        target: u32::MAX,
                    },
                );
                self.events
                    .push(self.chaos.stall_until, Event::ClearControllerStall);
            }
            FaultKind::ReplicaCrash {
                target,
                restart_after,
            } => {
                // Candidates: live replicas; a single-controller run (or a
                // fully dead cluster) has none and skips the entry.
                let Some(replica) = self
                    .app
                    .cluster
                    .as_ref()
                    .and_then(|c| c.resolve_target(target))
                else {
                    self.chaos.skipped += 1;
                    return;
                };
                self.chaos.injected[kind_idx] += 1;
                self.app.trace.record(
                    now,
                    TraceEvent::FaultInjected {
                        kind: kind_idx as u32,
                        target: replica,
                    },
                );
                self.crash_replica(now, replica);
                if let Some(delay) = restart_after {
                    self.events
                        .push(now + delay, Event::RecoverReplica { replica });
                }
            }
            FaultKind::CtrlPartition { duration } => {
                let Some(cluster) = self.app.cluster.as_mut() else {
                    self.chaos.skipped += 1;
                    return;
                };
                let heal = cluster.partition(now, duration);
                self.chaos.injected[kind_idx] += 1;
                self.app.trace.record(
                    now,
                    TraceEvent::FaultInjected {
                        kind: kind_idx as u32,
                        target: u32::MAX,
                    },
                );
                self.app.trace.record(
                    now,
                    TraceEvent::ClusterPartitioned {
                        duration_ns: duration.as_nanos(),
                    },
                );
                self.events.push(heal, Event::ClearCtrlPartition);
            }
        }
    }

    /// Crash controller replica `replica`: every switch it masters starts
    /// migrating to its first live standby, and the handoff completion is
    /// scheduled through the timing wheel so the failover replays
    /// bit-identically. No-op without a cluster.
    pub(crate) fn crash_replica(&mut self, now: SimTime, replica: u32) {
        let Some(cluster) = self.app.cluster.as_mut() else {
            return;
        };
        let switches = self.topo.switch_ids();
        let (moved, deadline) = cluster.crash(now, replica, &switches);
        self.app.trace.record(
            now,
            TraceEvent::ReplicaCrashed {
                replica,
                switches: moved,
            },
        );
        if let Some(at) = deadline {
            self.events.push(at, Event::ClusterHandoffDone);
        }
    }

    /// Settle every due mastership migration: the new masters take over
    /// and each affected switch's parked messages are re-processed in
    /// arrival order, with `Handoff` journey annotations linking the
    /// failover into affected flows' timelines.
    fn on_cluster_handoff_done(&mut self, now: SimTime) {
        let Some(cluster) = self.app.cluster.as_mut() else {
            return;
        };
        let handoffs = cluster.settle(now);
        for h in handoffs {
            self.app.trace.record(
                now,
                TraceEvent::MastershipHandoff {
                    switch: h.switch.0,
                    from: h.from,
                    to: h.to,
                    released: h.released.len() as u32,
                },
            );
            let annotation = (u64::from(h.from) << 32) | u64::from(h.to);
            for (from, msg) in h.released {
                if let Some(j) = self.journey_of_msg(&msg) {
                    self.app
                        .journeys
                        .record(j, now, JourneyPoint::Handoff, h.switch.0, annotation);
                }
                if let Some(c) = self.app.cluster.as_mut() {
                    c.record_decision(h.to);
                }
                let cmds = self.app.handle_switch_msg(now, &self.topo, from, msg);
                self.dispatch_commands(now, cmds);
            }
        }
    }

    pub(crate) fn set_ofa_slowdown(&mut self, node: NodeId, factor: f64) {
        if let Some(sw) = self.physical.get_mut(node) {
            sw.set_ofa_slowdown(factor);
        } else if let Some(vs) = self.vswitches.get_mut(node) {
            vs.set_ofa_slowdown(factor);
        }
    }

    /// Send initial controller commands (e.g. policy green rules) at t=0.
    pub fn bootstrap_commands(&mut self, commands: Vec<Command>) {
        for cmd in commands {
            // Bootstrap bypasses `dispatch_commands` (no ctrl_tx counting,
            // no fault perturbation: it models pre-loaded state, not live
            // control traffic), but the FlowMod-conservation ledger must
            // still see its Adds or the chaos invariant would not balance.
            if matches!(
                &cmd.msg,
                ControllerToSwitch::FlowMod {
                    command: FlowModCommand::Add(_),
                    ..
                }
            ) {
                self.chaos.flowmod_add_sent += 1;
            }
            self.events.push(
                SimTime::ZERO,
                Event::CtrlToSwitch {
                    to: cmd.to,
                    msg: Box::new(cmd.msg),
                },
            );
        }
    }

    pub(crate) fn control_latency(&self, node: NodeId) -> SimDuration {
        if let Some(s) = self.physical.get(node) {
            s.control_latency()
        } else if let Some(v) = self.vswitches.get(node) {
            v.control_latency()
        } else if let Some(d) = self
            .shard
            .as_ref()
            .and_then(|ctx| ctx.ctrl_latency.get(node.0 as usize).copied())
        {
            // The controller lane dispatches to switches owned by other
            // shards; their latency comes from the pre-partition table.
            d
        } else {
            SimDuration::from_millis(1)
        }
    }

    pub(crate) fn dispatch_commands(&mut self, now: SimTime, commands: Vec<Command>) {
        for cmd in commands {
            let kind = ctrl_tx_kind(&cmd.msg);
            self.ctrl_tx[kind] += 1;
            let is_flowmod_add = matches!(
                &cmd.msg,
                ControllerToSwitch::FlowMod {
                    command: FlowModCommand::Add(_),
                    ..
                }
            );
            if self.chaos_seed.is_some() && is_flowmod_add {
                self.chaos.flowmod_add_sent += 1;
            }
            if self.app.trace.is_enabled() {
                if let ControllerToSwitch::FlowMod {
                    table,
                    command: FlowModCommand::Add(entry),
                } = &cmd.msg
                {
                    self.app.trace.record(
                        now,
                        TraceEvent::RuleInstalled {
                            switch: cmd.to.0,
                            table: table.0 as u32,
                            priority: entry.priority as u32,
                        },
                    );
                }
            }
            let mut at = now + self.control_latency(cmd.to);
            if let Some(seed) = self.chaos_seed {
                // All controller→switch perturbations draw from the
                // controller's own stream.
                let journey = self.journey_of_cmd(&cmd.msg);
                let rng = chaos_stream(&mut self.chaos_streams, seed, u32::MAX);
                if now < self.chaos.loss_until && rng.chance(self.chaos.loss_p) {
                    self.chaos.tx_dropped[kind] += 1;
                    if is_flowmod_add {
                        self.chaos.flowmod_add_dropped += 1;
                    }
                    self.app.trace.record(
                        now,
                        TraceEvent::CtrlMsgPerturbed {
                            kind: PERTURB_DROP_TX,
                        },
                    );
                    if let Some(j) = journey {
                        self.app.journeys.record(
                            j,
                            now,
                            JourneyPoint::Fault,
                            cmd.to.0,
                            u64::from(PERTURB_DROP_TX),
                        );
                    }
                    continue;
                }
                if now < self.chaos.reorder_until
                    && self.chaos.reorder_jitter > SimDuration::ZERO
                    && rng.chance(self.chaos.reorder_p)
                {
                    let extra = rng.range_u64(0, self.chaos.reorder_jitter.as_nanos());
                    at += SimDuration::from_nanos(extra);
                    self.chaos.delayed += 1;
                    self.app.trace.record(
                        now,
                        TraceEvent::CtrlMsgPerturbed {
                            kind: PERTURB_DELAY,
                        },
                    );
                    if let Some(j) = journey {
                        self.app.journeys.record(
                            j,
                            now,
                            JourneyPoint::Fault,
                            cmd.to.0,
                            u64::from(PERTURB_DELAY),
                        );
                    }
                }
            }
            self.push_ctrl_to(now, at, cmd.to, Box::new(cmd.msg));
        }
    }

    /// Push (or, sharded, outbox) a controller→switch delivery.
    fn push_ctrl_to(
        &mut self,
        now: SimTime,
        deliver: SimTime,
        to: NodeId,
        msg: Box<ControllerToSwitch>,
    ) {
        let ev = Event::CtrlToSwitch { to, msg };
        if let Some(ctx) = self.shard.as_mut() {
            // Every control delivery is outboxed in shard mode — even a
            // shard-local one — so the canonical (deliver, gen, class,
            // origin) ordering pass sees the same candidate set for every
            // shard count. Control latency is never below the lookahead
            // bound, so the entry is always due after the epoch ends.
            ctx.outbox.push(OutboxEntry {
                deliver,
                gen: now,
                class: ORIGIN_CLASS_CONTROLLER,
                origin: u32::MAX,
                ev,
            });
        } else {
            self.events.push(deliver, ev);
        }
    }

    /// Push (or, sharded, outbox) a switch→controller delivery.
    fn push_ctrl_from(
        &mut self,
        now: SimTime,
        deliver: SimTime,
        from: NodeId,
        msg: Box<SwitchToController>,
    ) {
        let class = origin_class(self.topo.kind(from));
        let ev = Event::CtrlFromSwitch { from, msg };
        if let Some(ctx) = self.shard.as_mut() {
            ctx.outbox.push(OutboxEntry {
                deliver,
                gen: now,
                class,
                origin: from.0,
                ev,
            });
        } else {
            self.events.push(deliver, ev);
        }
    }

    /// Record a journey mark for a first packet in flight. One compare per
    /// packet event when tracing is off (`wants` checks its enable flag
    /// first); hash + compare for `FlowStart` packets when on.
    #[inline]
    fn journey_mark(
        &mut self,
        now: SimTime,
        packet: &Packet,
        point: JourneyPoint,
        node: u32,
        info: u64,
    ) {
        if packet.kind == scotch_net::PacketKind::FlowStart
            && self.app.journeys.wants(packet.flow_id.0)
        {
            self.app
                .journeys
                .record(packet.flow_id.0, now, point, node, info);
        }
    }

    /// The traced journey a switch→controller message carries, if any.
    #[inline]
    fn journey_of_msg(&self, msg: &SwitchToController) -> Option<u64> {
        if !self.app.journeys.is_enabled() {
            return None;
        }
        match msg {
            SwitchToController::PacketIn { packet, .. }
                if packet.kind == scotch_net::PacketKind::FlowStart
                    && self.app.journeys.wants(packet.flow_id.0) =>
            {
                Some(packet.flow_id.0)
            }
            _ => None,
        }
    }

    /// The traced journey a controller→switch command affects, if any.
    /// PacketOuts carry the packet itself; FlowMod Adds resolve through
    /// the hub-side cookie → key → journey maps (both live on the
    /// controller lane, so the answer is shard-invariant).
    #[inline]
    fn journey_of_cmd(&self, msg: &ControllerToSwitch) -> Option<u64> {
        if !self.app.journeys.is_enabled() {
            return None;
        }
        match msg {
            ControllerToSwitch::PacketOut { packet, .. }
                if packet.kind == scotch_net::PacketKind::FlowStart
                    && self.app.journeys.wants(packet.flow_id.0) =>
            {
                Some(packet.flow_id.0)
            }
            ControllerToSwitch::FlowMod {
                command: FlowModCommand::Add(entry),
                ..
            } => self
                .app
                .cookie_key(entry.cookie)
                .and_then(|k| self.app.journey_keys.get(&k).copied()),
            _ => None,
        }
    }

    fn transmit(&mut self, now: SimTime, from: NodeId, out_port: PortId, packet: Packet) {
        match self.topo.transmit(now, from, out_port, packet.size) {
            Some((to, in_port, at)) => {
                if let Some(ctx) = self.shard.as_mut() {
                    if ctx.part.shard_of(to) != ctx.shard {
                        // Cross-shard arrival: the from-link is always owned
                        // here (its queue/counters live in this lane's topo
                        // clone); only the arrival event crosses. Its delay
                        // is at least the link propagation, which the
                        // lookahead bound is the minimum of.
                        ctx.outbox.push(OutboxEntry {
                            deliver: at,
                            gen: now,
                            class: origin_class(self.topo.kind(from)),
                            origin: from.0,
                            ev: Event::Arrive {
                                node: to,
                                port: in_port,
                                packet,
                            },
                        });
                        return;
                    }
                }
                self.events.push(
                    at,
                    Event::Arrive {
                        node: to,
                        port: in_port,
                        packet,
                    },
                );
            }
            None => {
                self.drops.link_queue += 1;
                self.journey_mark(now, &packet, JourneyPoint::Drop, from.0, DROP_LINK);
            }
        }
    }

    fn handle_outputs(&mut self, now: SimTime, node: NodeId, outputs: &mut Vec<Output>) {
        for out in outputs.drain(..) {
            match out {
                Output::Forward { out_port, packet } => {
                    self.transmit(now, node, out_port, packet);
                }
                Output::ToController { at, msg } => {
                    // The OFA stamps its own emission time `at` (service
                    // delay included); `max(now)` is the instant the
                    // message actually leaves the switch.
                    let journey = self.journey_of_msg(&msg);
                    if let Some(j) = journey {
                        let via_overlay = matches!(
                            &msg,
                            SwitchToController::PacketIn {
                                via_tunnel: Some(_),
                                ..
                            }
                        );
                        self.app.journeys.record(
                            j,
                            at.max(now),
                            JourneyPoint::OfaOut,
                            node.0,
                            u64::from(via_overlay),
                        );
                    }
                    let mut deliver = at.max(now) + self.control_latency(node);
                    let mut duplicate = false;
                    if let Some(seed) = self.chaos_seed {
                        // Switch→controller perturbations draw from the
                        // emitting node's own stream.
                        let rng = chaos_stream(&mut self.chaos_streams, seed, node.0);
                        let kind = ctrl_rx_kind(&msg);
                        if now < self.chaos.loss_until && rng.chance(self.chaos.loss_p) {
                            self.chaos.rx_dropped[kind] += 1;
                            self.app.trace.record(
                                now,
                                TraceEvent::CtrlMsgPerturbed {
                                    kind: PERTURB_DROP_RX,
                                },
                            );
                            if let Some(j) = journey {
                                self.app.journeys.record(
                                    j,
                                    now,
                                    JourneyPoint::Fault,
                                    node.0,
                                    u64::from(PERTURB_DROP_RX),
                                );
                            }
                            continue;
                        }
                        if now < self.chaos.reorder_until
                            && self.chaos.reorder_jitter > SimDuration::ZERO
                            && rng.chance(self.chaos.reorder_p)
                        {
                            let extra = rng.range_u64(0, self.chaos.reorder_jitter.as_nanos());
                            deliver += SimDuration::from_nanos(extra);
                            self.chaos.delayed += 1;
                            self.app.trace.record(
                                now,
                                TraceEvent::CtrlMsgPerturbed {
                                    kind: PERTURB_DELAY,
                                },
                            );
                            if let Some(j) = journey {
                                self.app.journeys.record(
                                    j,
                                    now,
                                    JourneyPoint::Fault,
                                    node.0,
                                    u64::from(PERTURB_DELAY),
                                );
                            }
                        }
                        if now < self.chaos.dup_until && rng.chance(self.chaos.dup_p) {
                            self.chaos.duplicated[kind] += 1;
                            self.app
                                .trace
                                .record(now, TraceEvent::CtrlMsgPerturbed { kind: PERTURB_DUP });
                            if let Some(j) = journey {
                                self.app.journeys.record(
                                    j,
                                    now,
                                    JourneyPoint::Fault,
                                    node.0,
                                    u64::from(PERTURB_DUP),
                                );
                            }
                            duplicate = true;
                        }
                    }
                    if duplicate {
                        self.push_ctrl_from(now, deliver, node, Box::new(msg.clone()));
                    }
                    self.push_ctrl_from(now, deliver, node, Box::new(msg));
                }
                Output::Dropped { reason, packet } => {
                    let code = match reason {
                        DropReason::OfaOverload => {
                            self.drops.ofa_overload += 1;
                            0
                        }
                        DropReason::DataPlaneOverload => {
                            self.drops.dataplane += 1;
                            1
                        }
                        DropReason::Policy => {
                            self.drops.policy += 1;
                            2
                        }
                        DropReason::NoRoute => {
                            self.drops.no_route += 1;
                            3
                        }
                    };
                    self.journey_mark(now, &packet, JourneyPoint::Drop, node.0, code);
                }
            }
        }
    }

    fn on_arrive(&mut self, now: SimTime, node: NodeId, port: PortId, packet: Packet) {
        if let Some(cap) = self.captures.get_mut(node) {
            cap.record(now, &packet);
        }
        let kind = self.topo.kind(node);
        if kind != NodeKind::Host {
            // Journey milestone: first-packet arrival at a forwarding
            // element. info bit 0 = rode an overlay tunnel, bit 1 = the
            // node is a middlebox.
            let info =
                u64::from(packet.is_tunneled()) | if kind == NodeKind::Middlebox { 2 } else { 0 };
            self.journey_mark(now, &packet, JourneyPoint::Arrive, node.0, info);
        }
        match kind {
            NodeKind::Host => self.deliver(now, node, packet),
            NodeKind::Middlebox => {
                let Some(mb) = self.middleboxes.get_mut(node) else {
                    return;
                };
                match mb.process(packet) {
                    MbVerdict::Pass(p) => {
                        // Two-port device: exit on the other port.
                        let other = self.topo.port_iter(node).find(|p2| *p2 != port);
                        if let Some(out) = other {
                            self.transmit(now, node, out, p);
                        }
                    }
                    MbVerdict::RejectNoState(p) => {
                        // Counted via the middlebox's own counter; also in
                        // policy drops.
                        self.drops.policy += 1;
                        self.journey_mark(now, &p, JourneyPoint::Drop, node.0, 2);
                    }
                }
            }
            NodeKind::PhysicalSwitch | NodeKind::VSwitch => {
                // Tunnel transit: label-switched in the data plane, no
                // table lookup, no OFA (§4.1).
                if let Some(Label::Tunnel(t)) = packet.top_label() {
                    let endpoint = self.app.overlay.tunnels.endpoint(t);
                    if endpoint != Some(node) {
                        if let Some(next) = self.app.overlay.tunnels.next_hop(t, node) {
                            if let Some(out) = self.topo.port_towards(node, next) {
                                if self.profiler.is_some() {
                                    self.profile_kind = PROFILE_KIND_TUNNEL_TRANSIT;
                                }
                                self.transmit(now, node, out, packet);
                                return;
                            }
                        }
                        // Unknown tunnel at this node: fall through to the
                        // device (its tables may still match).
                    }
                }
                let mut buf = std::mem::take(&mut self.out_buf);
                if let Some(sw) = self.physical.get_mut(node) {
                    sw.handle_packet_into(now, port, packet, &mut buf);
                    self.handle_outputs(now, node, &mut buf);
                } else if let Some(vs) = self.vswitches.get_mut(node) {
                    let terminates = matches!(packet.top_label(), Some(Label::Tunnel(t))
                        if self.app.overlay.tunnels.endpoint(t) == Some(node));
                    vs.handle_packet_into(now, port, packet, terminates, &mut buf);
                    self.handle_outputs(now, node, &mut buf);
                }
                self.out_buf = buf;
            }
        }
    }

    fn deliver(&mut self, now: SimTime, host: NodeId, packet: Packet) {
        // Journey terminal — recorded lane-side (before the sharded defer
        // below) so the mark lands at event time on the lane owning the
        // host, exactly as in the sequential engine. The driver's
        // accounting mirror must NOT record a second mark.
        if self.app.journeys.is_enabled() && self.host_ip.get(host) == Some(&packet.key.dst) {
            self.journey_mark(now, &packet, JourneyPoint::Deliver, host.0, 0);
        }
        if let Some(ctx) = self.shard.as_mut() {
            // Delivery only mutates accounting (flow record, latency
            // histogram, tracked samples) — it schedules nothing and
            // touches no device. Defer it to the driver, which applies all
            // shards' deliveries at the barrier in global time order
            // against the single authoritative accounting state.
            ctx.deliveries.push((now, host, packet));
            return;
        }
        let expected = self.host_ip.get(host);
        if expected != Some(&packet.key.dst) {
            self.misrouted += 1;
            return;
        }
        if let Some(idx) = self.flow_index.get(packet.flow_id) {
            let rec = &mut self.flows[idx];
            rec.delivered += 1;
            rec.delivered_bytes += packet.size as u64;
            if rec.first_delivered.is_none() {
                rec.first_delivered = Some(now);
                // The flowdb lookup only matters on first delivery; keeping
                // it out of the per-packet path saves a hash per event.
                rec.served_by = self.app.flowdb.get(&packet.key).map(|i| i.path);
            }
            rec.last_delivered = Some(now);
            if !rec.spec.is_attack {
                self.latency
                    .record(now.duration_since(packet.born_at).as_nanos() as f64);
            }
            // `tracked` is empty unless a test opted specific flows in;
            // skip the per-packet hash in that common case.
            if !self.tracked.is_empty() {
                if let Some(ts) = self.tracked.get_mut(&packet.flow_id) {
                    ts.push((now, now.duration_since(packet.born_at)));
                }
            }
        }
    }

    fn on_source_next(&mut self, source_idx: usize) {
        let (default_host, source) = &mut self.sources[source_idx];
        let Some(FlowArrival { at, flow }) = source.next_arrival() else {
            return;
        };
        let src_host = self
            .ip_host
            .get(&flow.key.src)
            .copied()
            .unwrap_or(*default_host);
        let idx = self.flows.len();
        self.flow_index.insert(flow.id, idx);
        let seq = self.source_seq[source_idx];
        self.source_seq[source_idx] = seq + 1;
        self.flows.push(FlowRecord {
            spec: flow,
            src_host,
            started_at: at,
            emitted: 0,
            delivered: 0,
            delivered_bytes: 0,
            first_delivered: None,
            last_delivered: None,
            served_by: None,
            source: self.source_ids[source_idx],
            seq,
        });
        self.events.push(
            at,
            Event::EmitPacket {
                flow_idx: idx,
                seq: 0,
            },
        );
        self.events.push(at, Event::SourceNext { source_idx });
    }

    fn on_emit(&mut self, now: SimTime, flow_idx: usize, seq: u32) {
        debug_assert!(
            self.shard
                .as_ref()
                .is_none_or(|c| c.part.shard_of(self.flows[flow_idx].src_host) == c.shard),
            "flow emitted on a lane that does not own its source host"
        );
        let (packet, src_host, more) = {
            let rec = &mut self.flows[flow_idx];
            let spec = &rec.spec;
            let mut p = if seq == 0 {
                Packet::flow_start(spec.key, spec.id, now).with_size(spec.packet_size)
            } else {
                Packet::data(spec.key, spec.id, now, seq, spec.packet_size)
            };
            p.is_attack = spec.is_attack;
            rec.emitted += 1;
            (p, rec.src_host, seq + 1 < spec.packets)
        };
        self.journey_mark(now, &packet, JourneyPoint::Emit, src_host.0, 0);
        // Hosts have exactly one uplink; `run()` validated its existence at
        // startup, so a miss here is an internal invariant violation.
        let uplink = self
            .topo
            .port_iter(src_host)
            .next()
            .expect("scenario error: emitting host has no uplink port");
        self.transmit(now, src_host, uplink, packet);
        if more {
            let gap = self.flows[flow_idx].spec.packet_interval;
            self.events.push(
                now + gap,
                Event::EmitPacket {
                    flow_idx,
                    seq: seq + 1,
                },
            );
        }
    }

    /// Validate the scenario and seed the initial events.
    ///
    /// # Panics
    ///
    /// Panics if any registered host (or workload default host) has no
    /// uplink port — that is a scenario construction error, not a runtime
    /// condition, and silently misdirecting its traffic would corrupt
    /// every downstream metric.
    ///
    /// In shard mode the controller timers (tick / stats poll / heartbeat)
    /// are seeded on shard 0 only — the controller lives there — while the
    /// expiry sweep runs on every lane (each lane sweeps its own devices)
    /// and each lane seeds the sources it owns.
    pub(crate) fn start(&mut self) {
        for (host, _) in self.host_ip.iter() {
            assert!(
                self.topo.port_iter(host).next().is_some(),
                "scenario error: host {} ({:?}) has no uplink port",
                self.topo.name(host),
                host
            );
        }
        for (default_host, _) in &self.sources {
            assert!(
                self.topo.port_iter(*default_host).next().is_some(),
                "scenario error: workload default host {} ({:?}) has no uplink port",
                self.topo.name(*default_host),
                default_host
            );
        }
        // Seed periodic events and sources.
        let tick = self.app.config.tick_interval;
        let poll = self.app.config.stats_poll_interval;
        let hb = self.app.config.heartbeat_period;
        if self.shard.as_ref().is_none_or(|c| c.shard == 0) {
            self.events
                .push(SimTime::ZERO + tick, Event::ControllerTick);
            if self.app.mode == ControllerMode::Scotch {
                self.events.push(SimTime::ZERO + poll, Event::StatsPoll);
                self.events.push(SimTime::ZERO + hb, Event::Heartbeat);
            }
        }
        self.events
            .push(SimTime::ZERO + self.sweep_interval, Event::ExpirySweep);
        for i in 0..self.sources.len() {
            self.events
                .push(SimTime::ZERO, Event::SourceNext { source_idx: i });
        }
    }

    /// Run until `until`, returning the report.
    ///
    /// # Panics
    ///
    /// Panics if any registered host (or workload default host) has no
    /// uplink port (see [`Simulation::start`]).
    pub fn run(mut self, until: SimTime) -> Report {
        self.start();
        let mut processed = 0u64;
        let mut overflow_event: Option<Event> = None;
        while let Some((now, ev)) = self.events.pop() {
            if now > until {
                // Keep the one popped-but-unprocessed event so the chaos
                // in-flight accounting below stays exact.
                overflow_event = Some(ev);
                break;
            }
            processed += 1;
            self.process_event(now, ev);
        }

        if !self.fault_plan.is_empty() {
            // Tally everything still queued past the horizon so the chaos
            // conservation invariants reconcile exactly (messages in flight
            // are neither delivered nor lost — they are accounted).
            if let Some(ev) = overflow_event.take() {
                self.chaos.tally_in_flight(&ev);
            }
            self.tally_remaining();
        }

        self.into_report(until, processed)
    }

    /// Pop and process every event strictly before `bound`, returning the
    /// number of events processed. Shard lanes advance through one epoch
    /// with this; the epoch driver guarantees no cross-shard event earlier
    /// than `bound` can still arrive.
    pub(crate) fn run_epoch(&mut self, bound: SimTime) -> u64 {
        let mut processed = 0u64;
        while self.events.peek_time().is_some_and(|t| t < bound) {
            let (now, ev) = self.events.pop().expect("peeked event present");
            processed += 1;
            if matches!(ev, Event::ExpirySweep) {
                if let Some(ctx) = self.shard.as_mut() {
                    ctx.sweep_pops += 1;
                }
            }
            self.process_event(now, ev);
        }
        processed
    }

    /// Drain the queue into the chaos in-flight tally (end-of-run
    /// reconciliation for fault-plan scenarios).
    pub(crate) fn tally_remaining(&mut self) {
        while let Some((_, ev)) = self.events.pop() {
            self.chaos.tally_in_flight(&ev);
        }
    }

    /// Process one event. Extracted from the run loop so shard lanes and
    /// the sequential driver share byte-identical semantics.
    pub(crate) fn process_event(&mut self, now: SimTime, ev: Event) {
        // The profiler is `None` on every measured path; the stamp is a
        // single well-predicted branch per event when disabled.
        let prof = self.profiler.as_ref().map(|_| std::time::Instant::now());
        if prof.is_some() {
            self.profile_kind = ev.kind();
        }
        match ev {
            Event::Arrive { node, port, packet } => self.on_arrive(now, node, port, packet),
            Event::EmitPacket { flow_idx, seq } => self.on_emit(now, flow_idx, seq),
            Event::SourceNext { source_idx } => self.on_source_next(source_idx),
            Event::CtrlFromSwitch { from, msg } => {
                if now < self.chaos.stall_until {
                    // Controller outage: defer the message (order among
                    // deferred messages is preserved by insertion seq).
                    self.chaos.deferred += 1;
                    self.events
                        .push(self.chaos.stall_until, Event::CtrlFromSwitch { from, msg });
                    return;
                }
                let rx_kind = ctrl_rx_kind(&msg);
                self.ctrl_rx[rx_kind] += 1;
                if rx_kind == 0 && self.profiler.is_some() {
                    self.profile_kind = PROFILE_KIND_PACKET_IN;
                }
                let journey = self.journey_of_msg(&msg);
                if let Some(j) = journey {
                    // With a cluster, `info` attributes the receiving
                    // master replica as `replica + 1` (0 = single
                    // controller, or mastership in flux).
                    let info = self
                        .app
                        .cluster
                        .as_ref()
                        .map_or(0, |c| match c.master_view(from) {
                            MasterView::Master(m) => u64::from(m) + 1,
                            MasterView::Park => 0,
                        });
                    self.app
                        .journeys
                        .record(j, now, JourneyPoint::CtrlRx, from.0, info);
                }
                // Mastership in flux (crash mid-handoff, or every replica
                // dead): park the message; the completing handoff releases
                // it to the new master in arrival order (I5).
                if let Some(cluster) = self.app.cluster.as_mut() {
                    if cluster.master_view(from) == MasterView::Park {
                        cluster.park(from, from, *msg);
                        return;
                    }
                }
                match &mut self.controller_gate {
                    Some((server, service)) => match server.offer(now, *service) {
                        scotch_sim::rate::Admission::Accepted { departs_at } => {
                            self.events
                                .push(departs_at, Event::CtrlProcessed { from, msg });
                        }
                        scotch_sim::rate::Admission::Rejected => {
                            self.controller_dropped += 1;
                            if let Some(j) = journey {
                                self.app.journeys.record(
                                    j,
                                    now,
                                    JourneyPoint::Drop,
                                    from.0,
                                    DROP_CTRL_REJECT,
                                );
                            }
                        }
                    },
                    None => {
                        if let Some(cluster) = self.app.cluster.as_mut() {
                            if let MasterView::Master(m) = cluster.master_view(from) {
                                cluster.record_decision(m);
                            }
                        }
                        let cmds = {
                            let topo = &self.topo;
                            self.app.handle_switch_msg(now, topo, from, *msg)
                        };
                        self.dispatch_commands(now, cmds);
                    }
                }
            }
            Event::CtrlProcessed { from, msg } => {
                if now < self.chaos.stall_until {
                    self.chaos.deferred += 1;
                    self.events
                        .push(self.chaos.stall_until, Event::CtrlProcessed { from, msg });
                    return;
                }
                if let Some(j) = self.journey_of_msg(&msg) {
                    self.app
                        .journeys
                        .record(j, now, JourneyPoint::CtrlDeq, from.0, 0);
                }
                // Mastership may have moved while the message sat in the
                // capacity gate; re-check before processing.
                if let Some(cluster) = self.app.cluster.as_mut() {
                    match cluster.master_view(from) {
                        MasterView::Park => {
                            cluster.park(from, from, *msg);
                            return;
                        }
                        MasterView::Master(m) => cluster.record_decision(m),
                    }
                }
                let cmds = {
                    let topo = &self.topo;
                    self.app.handle_switch_msg(now, topo, from, *msg)
                };
                self.dispatch_commands(now, cmds);
            }
            Event::CtrlToSwitch { to, msg } => {
                if self.profiler.is_some() && ctrl_tx_kind(&msg) == 0 {
                    self.profile_kind = PROFILE_KIND_FLOWMOD;
                }
                if self.chaos_seed.is_some() {
                    // A failed vSwitch absorbs the command (its own
                    // ctrl_absorbed counter also ticks); so does a node
                    // with no attached device. Tallied so the FlowMod
                    // conservation ledger balances exactly.
                    let dead_vs = self.vswitches.get(to).map(|v| v.failed).unwrap_or(false);
                    let no_device =
                        self.physical.get(to).is_none() && self.vswitches.get(to).is_none();
                    if dead_vs || no_device {
                        self.chaos.absorbed[ctrl_tx_kind(&msg)] += 1;
                        if matches!(
                            msg.as_ref(),
                            ControllerToSwitch::FlowMod {
                                command: FlowModCommand::Add(_),
                                ..
                            }
                        ) {
                            self.chaos.flowmod_add_absorbed += 1;
                        }
                    }
                }
                let mut outputs = if let Some(sw) = self.physical.get_mut(to) {
                    sw.handle_controller_msg(now, *msg)
                } else if let Some(vs) = self.vswitches.get_mut(to) {
                    vs.handle_controller_msg(now, *msg)
                } else {
                    Vec::new()
                };
                self.handle_outputs(now, to, &mut outputs);
            }
            Event::ControllerTick => {
                // During a controller stall the periodic work is skipped
                // but the timer keeps re-arming, so the cadence resumes
                // as soon as the stall window ends.
                if now >= self.chaos.stall_until {
                    let cmds = {
                        let topo = &self.topo;
                        self.app.tick(now, topo)
                    };
                    self.dispatch_commands(now, cmds);
                }
                self.events
                    .push(now + self.app.config.tick_interval, Event::ControllerTick);
            }
            Event::StatsPoll => {
                if now >= self.chaos.stall_until {
                    let cmds = self.app.poll_stats();
                    self.dispatch_commands(now, cmds);
                }
                self.events
                    .push(now + self.app.config.stats_poll_interval, Event::StatsPoll);
            }
            Event::Heartbeat => {
                if now >= self.chaos.stall_until {
                    let cmds = self.app.heartbeat(now);
                    self.dispatch_commands(now, cmds);
                }
                self.events
                    .push(now + self.app.config.heartbeat_period, Event::Heartbeat);
            }
            Event::ExpirySweep => {
                // Ascending-id walks (no key collection): dense stores
                // make the sweep order deterministic by construction.
                for i in 0..self.physical.id_bound() {
                    let n = NodeId(i);
                    if let Some(sw) = self.physical.get_mut(n) {
                        let mut outs = sw.expire_flows(now);
                        self.handle_outputs(now, n, &mut outs);
                    }
                }
                for i in 0..self.vswitches.id_bound() {
                    let n = NodeId(i);
                    if let Some(vs) = self.vswitches.get_mut(n) {
                        let mut outs = vs.expire_flows(now);
                        self.handle_outputs(now, n, &mut outs);
                    }
                }
                // Once-per-sweep (1 Hz sim-time) gauge sampling: cheap,
                // deterministic, and off the per-packet path entirely.
                // Only the hub lane samples — the controller (and its
                // registry that survives into the report) lives there.
                if self.shard.as_ref().is_none_or(|c| c.shard == 0) {
                    self.registry.sample(
                        "controller.flowdb.size",
                        now,
                        self.app.flowdb.len() as f64,
                    );
                    self.registry.sample(
                        "controller.backlog",
                        now,
                        self.app.total_backlog() as f64,
                    );
                    self.registry
                        .sample("sim.event_queue.len", now, self.events.len() as f64);
                    self.registry.sample(
                        "overlay.mesh_live",
                        now,
                        self.app.overlay.alive.iter().filter(|a| **a).count() as f64,
                    );
                    self.registry.sample(
                        "overlay.standby_remaining",
                        now,
                        self.app.overlay.backups.len() as f64,
                    );
                    self.registry.sample(
                        "monitor.cache_size",
                        now,
                        self.app.telemetry.len() as f64,
                    );
                }
                self.events
                    .push(now + self.sweep_interval, Event::ExpirySweep);
            }
            Event::FailVSwitch { node } => {
                if let Some(vs) = self.vswitches.get_mut(node) {
                    vs.failed = true;
                }
            }
            Event::JoinVSwitch { node } => {
                let cmds = {
                    let topo = &self.topo;
                    self.app.join_vswitch(now, topo, node)
                };
                self.dispatch_commands(now, cmds);
            }
            Event::RecoverVSwitch { node } => {
                if let Some(vs) = self.vswitches.get_mut(node) {
                    vs.failed = false;
                }
                self.app.recover_vswitch(now, node);
                if self.chaos_seed.is_some() {
                    // Restart half of a VSwitchCrash fault.
                    self.app.trace.record(
                        now,
                        TraceEvent::FaultCleared {
                            kind: 0,
                            target: node.0,
                        },
                    );
                }
            }
            Event::InjectFault { idx } => self.on_inject_fault(now, idx),
            Event::SetLinkUp {
                link,
                up,
                kind,
                finale,
            } => {
                self.topo.set_link_up(link, up);
                if finale {
                    self.app.trace.record(
                        now,
                        TraceEvent::FaultCleared {
                            kind: u32::from(kind),
                            target: link.0,
                        },
                    );
                }
            }
            Event::ClearLinkDegrade { link } => {
                self.topo.set_link_extra_delay(link, SimDuration::ZERO);
                self.app.trace.record(
                    now,
                    TraceEvent::FaultCleared {
                        kind: 3,
                        target: link.0,
                    },
                );
            }
            Event::ClearOfaSlowdown { node } => {
                self.set_ofa_slowdown(node, 1.0);
                self.app.trace.record(
                    now,
                    TraceEvent::FaultCleared {
                        kind: 7,
                        target: node.0,
                    },
                );
            }
            Event::ClearControllerStall => {
                // Stall windows can extend; only the final marker (at or
                // past the latest `stall_until`) traces the clear.
                if now >= self.chaos.stall_until {
                    self.app.trace.record(
                        now,
                        TraceEvent::FaultCleared {
                            kind: 8,
                            target: u32::MAX,
                        },
                    );
                }
            }
            Event::ClusterHandoffDone => self.on_cluster_handoff_done(now),
            Event::RecoverReplica { replica } => {
                let Some(cluster) = self.app.cluster.as_mut() else {
                    return;
                };
                if let Some(at) = cluster.recover(now, replica) {
                    self.events.push(at, Event::ClusterHandoffDone);
                }
                self.app
                    .trace
                    .record(now, TraceEvent::ReplicaRecovered { replica });
                self.app.trace.record(
                    now,
                    TraceEvent::FaultCleared {
                        kind: 9,
                        target: replica,
                    },
                );
            }
            Event::ClearCtrlPartition => {
                // Partition windows can extend; only the final marker (at
                // or past the latest heal instant) traces the clear.
                let healed = self
                    .app
                    .cluster
                    .as_ref()
                    .is_some_and(|c| !c.is_partitioned(now));
                if healed {
                    self.app.trace.record(now, TraceEvent::ClusterHealed {});
                    self.app.trace.record(
                        now,
                        TraceEvent::FaultCleared {
                            kind: 10,
                            target: u32::MAX,
                        },
                    );
                }
            }
        }
        if let Some(t0) = prof {
            let kind = self.profile_kind;
            if let Some(p) = self.profiler.as_mut() {
                p.record(kind, t0.elapsed().as_nanos() as f64);
            }
        }
    }

    pub(crate) fn into_report(mut self, until: SimTime, events_processed: u64) -> Report {
        let mut drops = self.drops;
        drops.link_queue += self.topo.total_link_drops();
        drops.link_faults = self.topo.total_link_faults();
        let switches: Vec<SwitchReport> = self
            .physical
            .iter()
            .map(|(n, s)| SwitchReport {
                node: n,
                name: self.topo.name(n).to_string(),
                ofa: s.ofa_stats(),
                dataplane: s.stats(),
            })
            .collect();
        let vswitches: Vec<VSwitchReport> = self
            .vswitches
            .iter()
            .map(|(n, v)| VSwitchReport {
                node: n,
                name: self.topo.name(n).to_string(),
                ofa: v.ofa_stats(),
                dataplane: v.stats(),
            })
            .collect();

        let middlebox_rejections = self.middleboxes.values().map(|m| m.rejected()).sum();

        // Populate the unified registry from the per-component stats
        // structs. They stay the hot-path increment sites; the registry is
        // the one external, name-sorted surface over all of them.
        let mut reg = std::mem::take(&mut self.registry);
        self.app.stats().register_metrics("app", &mut reg);
        for s in &switches {
            s.ofa
                .register_metrics(&format!("switch.{}.ofa", s.name), &mut reg);
            s.dataplane
                .register_metrics(&format!("switch.{}.dataplane", s.name), &mut reg);
        }
        for v in &vswitches {
            v.ofa
                .register_metrics(&format!("vswitch.{}.ofa", v.name), &mut reg);
            v.dataplane
                .register_metrics(&format!("vswitch.{}.dataplane", v.name), &mut reg);
        }
        reg.add("drops.ofa_overload", drops.ofa_overload);
        reg.add("drops.dataplane", drops.dataplane);
        reg.add("drops.policy", drops.policy);
        reg.add("drops.no_route", drops.no_route);
        reg.add("drops.link_queue", drops.link_queue);
        reg.add("drops.link_faults", drops.link_faults);
        reg.add("controller.dropped", self.controller_dropped);
        reg.add("middlebox.rejections", middlebox_rejections);
        reg.add("sim.misrouted", self.misrouted);
        reg.add("sim.events_processed", events_processed);
        for (i, &n) in self.ctrl_tx.iter().enumerate() {
            reg.add(&format!("controller.tx.{}", CTRL_TX_KIND_NAMES[i]), n);
        }
        for (i, &n) in self.ctrl_rx.iter().enumerate() {
            reg.add(&format!("controller.rx.{}", CTRL_RX_KIND_NAMES[i]), n);
        }
        for (node, total) in self.app.monitor.totals() {
            reg.add(
                &format!("controller.packet_in.{}", self.topo.name(node)),
                total,
            );
        }
        // Monitor (telemetry pipeline) surface: message/record load on the
        // controller side, plus the estimation-error oracle the sampled
        // vSwitch export paths accumulate against ground truth.
        reg.add("monitor.stats_msgs", self.app.telemetry.stats_msgs);
        reg.add("monitor.sampled_records", self.app.telemetry.records);
        let (err_sum, err_n) = vswitches.iter().fold((0u64, 0u64), |(s, n), v| {
            (
                s + v.dataplane.est_error_ppm,
                n + v.dataplane.sampled_exported,
            )
        });
        reg.sample(
            "monitor.est_error",
            until,
            if err_n > 0 {
                err_sum as f64 / err_n as f64
            } else {
                0.0
            },
        );
        let lat = reg.histogram("flow.latency_ns");
        *reg.histogram_mut(lat) = self.latency.clone();
        reg.add("trace.recorded", self.app.trace.total_recorded());
        reg.add("trace.dropped", self.app.trace.dropped());
        // Causal journey stream (DESIGN.md §14): close every open journey
        // at the horizon, then fold the per-stage latency decomposition
        // into the registry. Like trace/metrics, the mark stream itself is
        // report output excluded from `canonical_json()`.
        let mut journeys = std::mem::replace(&mut self.app.journeys, JourneyRecorder::disabled());
        if journeys.is_enabled() {
            journeys.close_open(until);
            reg.add("journey.marks", journeys.total_recorded());
            reg.add("journey.marks_dropped", journeys.dropped());
            let d = LatencyDecomposition::from_marks(journeys.marks());
            reg.add("journey.count", d.journeys);
            reg.add("journey.delivered", d.delivered);
            reg.add("journey.dropped", d.dropped);
            reg.add("journey.cancelled", d.cancelled);
            let id = reg.histogram("journey.setup_ns");
            *reg.histogram_mut(id) = d.setup.clone();
            for (stage, h) in &d.stages {
                if h.count() > 0 {
                    let id = reg.histogram(&format!("journey.stage.{}_ns", stage.name()));
                    *reg.histogram_mut(id) = h.clone();
                }
            }
        }
        if !self.fault_plan.is_empty() {
            // Chaos ledger: only exported when a fault plan was attached, so
            // fault-free golden runs keep their exact metric surface.
            let c = &self.chaos;
            for (i, &n) in c.injected.iter().enumerate() {
                reg.add(&format!("chaos.injected.{}", FAULT_KIND_NAMES[i]), n);
            }
            reg.add("chaos.skipped", c.skipped);
            for (i, name) in CTRL_RX_KIND_NAMES.iter().enumerate() {
                reg.add(&format!("chaos.rx_dropped.{name}"), c.rx_dropped[i]);
                reg.add(&format!("chaos.duplicated.{name}"), c.duplicated[i]);
                reg.add(&format!("chaos.in_flight_rx.{name}"), c.in_flight_rx[i]);
            }
            for (i, name) in CTRL_TX_KIND_NAMES.iter().enumerate() {
                reg.add(&format!("chaos.tx_dropped.{name}"), c.tx_dropped[i]);
                reg.add(&format!("chaos.absorbed.{name}"), c.absorbed[i]);
                reg.add(&format!("chaos.in_flight_tx.{name}"), c.in_flight_tx[i]);
            }
            reg.add("chaos.delayed", c.delayed);
            reg.add("chaos.deferred", c.deferred);
            reg.add("chaos.flowmod_add.sent", c.flowmod_add_sent);
            reg.add("chaos.flowmod_add.dropped", c.flowmod_add_dropped);
            reg.add("chaos.flowmod_add.absorbed", c.flowmod_add_absorbed);
            reg.add("chaos.flowmod_add.in_flight", c.in_flight_flowmod_add);
            reg.add("chaos.in_flight.packets", c.in_flight_packets);
        }
        if let Some(cluster) = &self.app.cluster {
            // Cluster ledger: only exported when a cluster is configured, so
            // single-controller golden runs keep their exact metric surface.
            let s = cluster.stats();
            reg.add("ctrl.cluster.replicas", u64::from(cluster.replicas()));
            reg.add("ctrl.cluster.live", u64::from(cluster.live_replicas()));
            for (i, &n) in cluster.decisions().iter().enumerate() {
                reg.add(&format!("ctrl.cluster.decisions.replica{i}"), n);
            }
            reg.add("ctrl.cluster.handoffs", s.handoffs);
            reg.add("ctrl.cluster.handoff_exceeded", s.handoff_exceeded);
            reg.add("ctrl.cluster.pending_enq", s.pending_enq);
            reg.add("ctrl.cluster.pending_rel", s.pending_rel);
            reg.add("ctrl.cluster.pending", cluster.pending_now());
            reg.add("ctrl.cluster.crashes", s.crashes);
            reg.add("ctrl.cluster.recoveries", s.recoveries);
            reg.add("ctrl.cluster.partitions", s.partitions);
            let id = reg.histogram("ctrl.cluster.handoff_ns");
            *reg.histogram_mut(id) = cluster.handoff_histogram().clone();
        }
        let metrics = reg.snapshot();

        let profile = self
            .profiler
            .as_ref()
            .map(|p| p.entries())
            .unwrap_or_default();
        let trace = std::mem::replace(&mut self.app.trace, TraceRecorder::disabled());

        Report {
            duration: until.duration_since(SimTime::ZERO),
            flows: self
                .flows
                .into_iter()
                .map(|r| FlowOutcome {
                    id: r.spec.id,
                    key: r.spec.key,
                    is_attack: r.spec.is_attack,
                    emitted: r.emitted,
                    intended: r.spec.packets,
                    delivered: r.delivered,
                    delivered_bytes: r.delivered_bytes,
                    started_at: r.started_at,
                    first_delivered: r.first_delivered,
                    last_delivered: r.last_delivered,
                    served_by: r.served_by,
                })
                .collect(),
            app: self.app.stats(),
            switches,
            vswitches,
            drops,
            latency: self.latency,
            middlebox_rejections,
            misrouted: self.misrouted,
            controller_dropped: self.controller_dropped,
            events_processed,
            tracked: self.tracked,
            captures: self.captures.into_iter().collect(),
            metrics,
            trace,
            journeys: journeys.take_marks(),
            profile,
            shard_profile: self.epoch_profiler,
        }
    }
}
