//! Declarative service-level objectives over journey latency data.
//!
//! An [`SloTable`] is a small set of rules — "on this scenario, this
//! journey metric must stay on this side of this bound" — parsed from (and
//! rendered back to) a line-oriented text format, so CI can pin a table in
//! a file next to the golden reports:
//!
//! ```text
//! # scenario   metric                 bound
//! *            setup_p99          <=  50ms
//! datacenter   stage.install_p95  <=  10ms
//! *            delivered_fraction >=  0.25
//! ```
//!
//! Metrics are measured against a run's [`LatencyDecomposition`] (built
//! from the canonical journey-mark stream, so a check's verdict is
//! bit-deterministic per `(scenario, seed, rate)` and shard-count
//! invariant). Checking follows the `chaos` exit-code convention: 0 when
//! every rule holds, 1 when any rule is violated; usage errors (a table
//! that does not parse) are the caller's 2.

use scotch_sim::journey::{LatencyDecomposition, Stage, STAGES};

/// What an SLO rule measures, always over journeys of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloMetric {
    /// Quantile of end-to-end setup latency (delivered journeys), ns.
    SetupQuantile(Quantile),
    /// Quantile of one stage's span durations, ns.
    StageQuantile(Stage, Quantile),
    /// Delivered journeys as a fraction of all journeys (dimensionless).
    DeliveredFraction,
    /// Cancelled journeys (still in flight at the horizon) as a fraction
    /// of all journeys (dimensionless).
    CancelledFraction,
}

/// The quantiles an SLO may bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantile {
    /// Median.
    P50,
    /// 95th percentile.
    P95,
    /// 99th percentile.
    P99,
}

impl Quantile {
    fn q(self) -> f64 {
        match self {
            Quantile::P50 => 0.50,
            Quantile::P95 => 0.95,
            Quantile::P99 => 0.99,
        }
    }

    fn suffix(self) -> &'static str {
        match self {
            Quantile::P50 => "p50",
            Quantile::P95 => "p95",
            Quantile::P99 => "p99",
        }
    }

    fn parse(s: &str) -> Option<Quantile> {
        match s {
            "p50" => Some(Quantile::P50),
            "p95" => Some(Quantile::P95),
            "p99" => Some(Quantile::P99),
            _ => None,
        }
    }
}

impl SloMetric {
    /// Stable text name (the table format's second column).
    pub fn name(&self) -> String {
        match self {
            SloMetric::SetupQuantile(q) => format!("setup_{}", q.suffix()),
            SloMetric::StageQuantile(s, q) => format!("stage.{}_{}", s.name(), q.suffix()),
            SloMetric::DeliveredFraction => "delivered_fraction".into(),
            SloMetric::CancelledFraction => "cancelled_fraction".into(),
        }
    }

    /// Inverse of [`SloMetric::name`].
    pub fn parse(s: &str) -> Result<SloMetric, String> {
        if s == "delivered_fraction" {
            return Ok(SloMetric::DeliveredFraction);
        }
        if s == "cancelled_fraction" {
            return Ok(SloMetric::CancelledFraction);
        }
        if let Some(q) = s.strip_prefix("setup_").and_then(Quantile::parse) {
            return Ok(SloMetric::SetupQuantile(q));
        }
        if let Some(rest) = s.strip_prefix("stage.") {
            if let Some((stage_name, q)) = rest.rsplit_once('_') {
                if let Some(q) = Quantile::parse(q) {
                    if let Some(stage) = STAGES.iter().find(|st| st.name() == stage_name) {
                        return Ok(SloMetric::StageQuantile(*stage, q));
                    }
                }
            }
        }
        Err(format!("unknown SLO metric '{s}'"))
    }

    /// True when the metric's unit is nanoseconds (affects threshold
    /// parsing and rendering).
    pub fn is_duration(&self) -> bool {
        matches!(
            self,
            SloMetric::SetupQuantile(_) | SloMetric::StageQuantile(..)
        )
    }

    /// Measure this metric against a run's decomposition. `None` when the
    /// run produced no data for it (no journeys, or an empty stage) — the
    /// check is then reported as skipped, not violated.
    pub fn measure(&self, d: &LatencyDecomposition) -> Option<f64> {
        match self {
            SloMetric::SetupQuantile(q) => (d.setup.count() > 0).then(|| d.setup.quantile(q.q())),
            SloMetric::StageQuantile(stage, q) => d
                .stages
                .iter()
                .find(|(s, _)| s == stage)
                .filter(|(_, h)| h.count() > 0)
                .map(|(_, h)| h.quantile(q.q())),
            SloMetric::DeliveredFraction => {
                (d.journeys > 0).then(|| d.delivered as f64 / d.journeys as f64)
            }
            SloMetric::CancelledFraction => {
                (d.journeys > 0).then(|| d.cancelled as f64 / d.journeys as f64)
            }
        }
    }
}

/// Which side of the bound is healthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloOp {
    /// Measured value must be `<= threshold` (latency bounds).
    Le,
    /// Measured value must be `>= threshold` (delivery floors).
    Ge,
}

impl SloOp {
    fn text(self) -> &'static str {
        match self {
            SloOp::Le => "<=",
            SloOp::Ge => ">=",
        }
    }
}

/// One rule: on scenarios matching `scenario` (`*` = all), `metric op
/// threshold` must hold. Duration thresholds are ns.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Scenario name this rule applies to, or `*` for every scenario.
    pub scenario: String,
    /// The measured quantity.
    pub metric: SloMetric,
    /// Healthy side of the bound.
    pub op: SloOp,
    /// The bound (ns for duration metrics, a plain ratio otherwise).
    pub threshold: f64,
}

impl SloRule {
    fn applies_to(&self, scenario: &str) -> bool {
        self.scenario == "*" || self.scenario == scenario
    }

    /// The rule as one table-format line (no trailing newline).
    pub fn render(&self) -> String {
        let bound = if self.metric.is_duration() {
            fmt_ns(self.threshold)
        } else {
            format!("{}", self.threshold)
        };
        format!(
            "{} {} {} {}",
            self.scenario,
            self.metric.name(),
            self.op.text(),
            bound
        )
    }
}

/// Render a nanosecond quantity with the tightest exact unit (so the
/// parse/render round trip is lossless for whole-unit thresholds).
pub fn fmt_ns(ns: f64) -> String {
    for (div, unit) in [(1e9, "s"), (1e6, "ms"), (1e3, "us")] {
        let v = ns / div;
        if v >= 1.0 && v.fract() == 0.0 {
            return format!("{v}{unit}");
        }
    }
    format!("{ns}ns")
}

/// Parse a duration bound: a float with an `ns`/`us`/`ms`/`s` suffix.
fn parse_ns(text: &str) -> Result<f64, String> {
    let (num, mult) = if let Some(v) = text.strip_suffix("ns") {
        (v, 1.0)
    } else if let Some(v) = text.strip_suffix("us") {
        (v, 1e3)
    } else if let Some(v) = text.strip_suffix("ms") {
        (v, 1e6)
    } else if let Some(v) = text.strip_suffix('s') {
        (v, 1e9)
    } else {
        return Err(format!("duration bound '{text}' needs a ns/us/ms/s suffix"));
    };
    let v: f64 = num
        .parse()
        .map_err(|e| format!("bad duration bound '{text}': {e}"))?;
    Ok(v * mult)
}

/// A set of SLO rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloTable {
    /// The rules, in declaration order.
    pub rules: Vec<SloRule>,
}

impl SloTable {
    /// The built-in table CI checks when no file is given: a loose
    /// latency ceiling everywhere, and a tighter one on the overlay
    /// datacenter (whose mesh vSwitch path is the paper's fast path).
    pub fn builtin() -> SloTable {
        SloTable {
            rules: vec![
                SloRule {
                    scenario: "*".into(),
                    metric: SloMetric::SetupQuantile(Quantile::P99),
                    op: SloOp::Le,
                    threshold: 50e6, // 50 ms
                },
                SloRule {
                    scenario: "datacenter".into(),
                    metric: SloMetric::SetupQuantile(Quantile::P95),
                    op: SloOp::Le,
                    threshold: 25e6, // 25 ms
                },
                SloRule {
                    scenario: "datacenter".into(),
                    metric: SloMetric::StageQuantile(Stage::Install, Quantile::P95),
                    op: SloOp::Le,
                    threshold: 10e6, // 10 ms
                },
                SloRule {
                    scenario: "*".into(),
                    metric: SloMetric::CancelledFraction,
                    op: SloOp::Le,
                    threshold: 0.25,
                },
            ],
        }
    }

    /// Parse the line format: `scenario metric <=|>= bound`, `#` comments
    /// and blank lines skipped.
    pub fn parse(text: &str) -> Result<SloTable, String> {
        let mut rules = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let err = |msg: String| format!("slo line {}: {msg}", lineno + 1);
            if fields.len() != 4 {
                return Err(err(format!(
                    "expected 'scenario metric <=|>= bound', got '{line}'"
                )));
            }
            let metric = SloMetric::parse(fields[1]).map_err(err)?;
            let op = match fields[2] {
                "<=" => SloOp::Le,
                ">=" => SloOp::Ge,
                other => return Err(err(format!("unknown operator '{other}'"))),
            };
            let threshold = if metric.is_duration() {
                parse_ns(fields[3]).map_err(err)?
            } else {
                fields[3]
                    .parse()
                    .map_err(|e| err(format!("bad bound '{}': {e}", fields[3])))?
            };
            rules.push(SloRule {
                scenario: fields[0].to_string(),
                metric,
                op,
                threshold,
            });
        }
        Ok(SloTable { rules })
    }

    /// Render back to the line format ([`SloTable::parse`] round-trips).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for rule in &self.rules {
            out.push_str(&rule.render());
            out.push('\n');
        }
        out
    }

    /// Check every applicable rule against a run's decomposition.
    pub fn check(&self, scenario: &str, d: &LatencyDecomposition) -> SloOutcome {
        let checks = self
            .rules
            .iter()
            .filter(|r| r.applies_to(scenario))
            .map(|rule| {
                let measured = rule.metric.measure(d);
                let pass = measured.map(|m| match rule.op {
                    SloOp::Le => m <= rule.threshold,
                    SloOp::Ge => m >= rule.threshold,
                });
                SloCheck {
                    rule: rule.clone(),
                    measured,
                    pass,
                }
            })
            .collect();
        SloOutcome { checks }
    }
}

/// One rule's verdict on one run.
#[derive(Debug, Clone)]
pub struct SloCheck {
    /// The rule that was checked.
    pub rule: SloRule,
    /// What the run measured (`None`: no data for this metric).
    pub measured: Option<f64>,
    /// `Some(false)` = violated; `None` = skipped for lack of data.
    pub pass: Option<bool>,
}

impl SloCheck {
    /// One human-readable verdict line.
    pub fn render(&self) -> String {
        let verdict = match self.pass {
            Some(true) => "ok",
            Some(false) => "VIOLATED",
            None => "skipped (no data)",
        };
        let measured = match self.measured {
            Some(m) if self.rule.metric.is_duration() => fmt_ns_approx(m),
            Some(m) => format!("{m:.4}"),
            None => "-".into(),
        };
        format!("{}: measured {measured}: {verdict}", self.rule.render())
    }
}

/// Render a measured nanosecond quantity for humans (not round-tripped).
fn fmt_ns_approx(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// The verdicts of one [`SloTable::check`] run.
#[derive(Debug, Clone)]
pub struct SloOutcome {
    /// Per-rule verdicts, in table order.
    pub checks: Vec<SloCheck>,
}

impl SloOutcome {
    /// The violated checks.
    pub fn violations(&self) -> impl Iterator<Item = &SloCheck> {
        self.checks.iter().filter(|c| c.pass == Some(false))
    }

    /// `chaos`-style process exit code: 0 clean, 1 violated.
    pub fn exit_code(&self) -> i32 {
        if self.violations().next().is_some() {
            1
        } else {
            0
        }
    }

    /// Multi-line human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for check in &self.checks {
            out.push_str("slo: ");
            out.push_str(&check.render());
            out.push('\n');
        }
        let violated = self.violations().count();
        if violated > 0 {
            out.push_str(&format!("slo: {violated} rule(s) VIOLATED\n"));
        } else {
            out.push_str("slo: all rules hold\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_sim::journey::{JourneyMark, JourneyPoint};
    use scotch_sim::SimTime;

    fn mark(journey: u64, at_us: u64, point: JourneyPoint) -> JourneyMark {
        JourneyMark {
            journey,
            at: SimTime::from_nanos(at_us * 1_000),
            point,
            shard: 0,
            node: 1,
            info: 0,
        }
    }

    /// Two delivered journeys (10 us and 30 us end-to-end) and one
    /// cancelled one.
    fn sample() -> LatencyDecomposition {
        let marks = vec![
            mark(1, 0, JourneyPoint::Emit),
            mark(1, 10, JourneyPoint::Deliver),
            mark(2, 0, JourneyPoint::Emit),
            mark(2, 30, JourneyPoint::Deliver),
            mark(3, 0, JourneyPoint::Emit),
            mark(3, 100, JourneyPoint::Cancel),
        ];
        LatencyDecomposition::from_marks(&marks)
    }

    #[test]
    fn parse_render_round_trips() {
        let text = "\
* setup_p99 <= 50ms
datacenter stage.install_p95 <= 10ms
* delivered_fraction >= 0.25
single setup_p50 <= 1500us
";
        let table = SloTable::parse(text).unwrap();
        assert_eq!(table.rules.len(), 4);
        assert_eq!(table.render(), text);
        // And the builtin table round-trips too.
        let builtin = SloTable::builtin();
        assert_eq!(SloTable::parse(&builtin.render()).unwrap(), builtin);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(SloTable::parse("* bogus_metric <= 1ms").is_err());
        assert!(SloTable::parse("* setup_p99 == 1ms").is_err());
        assert!(SloTable::parse("* setup_p99 <= 1").is_err()); // no unit
        assert!(SloTable::parse("* setup_p99 <=").is_err());
        assert!(SloTable::parse("* delivered_fraction >= x").is_err());
        // Comments and blanks are fine.
        assert!(SloTable::parse("# note\n\n  # more\n")
            .unwrap()
            .rules
            .is_empty());
    }

    #[test]
    fn duration_units_scale() {
        let t = SloTable::parse("* setup_p99 <= 2ms").unwrap();
        assert_eq!(t.rules[0].threshold, 2e6);
        let t = SloTable::parse("* setup_p99 <= 3us").unwrap();
        assert_eq!(t.rules[0].threshold, 3e3);
        let t = SloTable::parse("* setup_p99 <= 4s").unwrap();
        assert_eq!(t.rules[0].threshold, 4e9);
        let t = SloTable::parse("* setup_p99 <= 5ns").unwrap();
        assert_eq!(t.rules[0].threshold, 5.0);
    }

    #[test]
    fn check_passes_and_fails_on_the_bound() {
        let d = sample();
        // p99 of {10us, 30us} is ~30us: a 1 ms ceiling holds, a 1 us
        // ceiling does not.
        let ok = SloTable::parse("* setup_p99 <= 1ms")
            .unwrap()
            .check("x", &d);
        assert_eq!(ok.exit_code(), 0);
        let bad = SloTable::parse("* setup_p99 <= 1us")
            .unwrap()
            .check("x", &d);
        assert_eq!(bad.exit_code(), 1);
        assert_eq!(bad.violations().count(), 1);
        assert!(bad.render().contains("VIOLATED"));
    }

    #[test]
    fn scenario_matching_filters_rules() {
        let d = sample();
        let table = SloTable::parse(
            "datacenter setup_p99 <= 1us\nsingle setup_p99 <= 1us\n* delivered_fraction >= 0.5\n",
        )
        .unwrap();
        // On 'single' only its own rule plus the wildcard apply; the
        // (violated) datacenter rule is ignored.
        let out = table.check("single", &d);
        assert_eq!(out.checks.len(), 2);
        assert_eq!(out.violations().count(), 1); // single's 1us ceiling
    }

    #[test]
    fn missing_data_is_skipped_not_violated() {
        let d = LatencyDecomposition::from_marks(&[]);
        let out = SloTable::builtin().check("datacenter", &d);
        assert!(out.checks.iter().all(|c| c.pass.is_none()));
        assert_eq!(out.exit_code(), 0);
        // A stage with no spans is likewise skipped.
        let d = sample();
        let out = SloTable::parse("* stage.ofa_queue_p99 <= 1ns")
            .unwrap()
            .check("x", &d);
        assert!(out.checks[0].pass.is_none());
    }

    #[test]
    fn fractions_check_against_ge() {
        let d = sample(); // 2 of 3 delivered
        let ok = SloTable::parse("* delivered_fraction >= 0.5")
            .unwrap()
            .check("x", &d);
        assert_eq!(ok.exit_code(), 0);
        let bad = SloTable::parse("* delivered_fraction >= 0.9")
            .unwrap()
            .check("x", &d);
        assert_eq!(bad.exit_code(), 1);
        let cancelled = SloTable::parse("* cancelled_fraction <= 0.2")
            .unwrap()
            .check("x", &d);
        assert_eq!(cancelled.exit_code(), 1); // 1/3 cancelled
    }
}
