//! Command-line front end for the Scotch simulator.
//!
//! ```text
//! scotch-cli [OPTIONS]
//! scotch-cli trace [OPTIONS] [TRACE OPTIONS]
//! scotch-cli explain [OPTIONS] [EXPLAIN OPTIONS]
//! scotch-cli sweep [SWEEP OPTIONS]
//! scotch-cli bench hotpath [BENCH OPTIONS]
//! scotch-cli chaos [SCENARIO OPTIONS] [CHAOS OPTIONS]
//! scotch-cli determinism [DETERMINISM OPTIONS]
//! scotch-cli shards [SCENARIO OPTIONS] [SHARDS OPTIONS]
//!
//! Topology:
//!   --scenario <datacenter|single|multirack>   (default: datacenter)
//!   --mesh <N>          mesh vSwitches                  (default: 4)
//!   --racks <N>         racks for multirack             (default: 3)
//!   --servers <N>       servers (datacenter)            (default: 2)
//!   --middlebox         stateful firewall on server 0
//!
//! Workload:
//!   --attack <RATE>     spoofed flood, flows/s
//!   --attack-window <START> <END>   restrict the flood to [start, end) s
//!   --clients <RATE>    probe clients, flows/s          (default: 100)
//!   --trace <RATE>      Poisson/Pareto DC trace, flows/s
//!   --elephants <N> <PPS> <PKTS>    inject N paced elephants at t=2s
//!   --link-loss <P>     random per-packet loss on every link
//!
//! Control:
//!   --baseline          plain reactive controller (no Scotch)
//!   --sampling-rate <P> sampled flow telemetry at per-packet probability
//!                       P in (0, 1]; 1.0 reproduces exhaustive reports
//!                       byte-for-byte (default: exhaustive polling)
//!   --controllers <N>   controller-cluster replicas behind per-switch
//!                       mastership (DESIGN.md §16); 1 = the single-
//!                       controller engine, byte-for-byte (default: 1)
//!   --sync-latency-us <N>  inter-replica state-sync latency in µs — the
//!                       mastership-handoff bound (default: 500)
//!   --failover <SECS>   crash replica 0 at the given time, no restart
//!                       (scripted failover; requires --controllers >= 2)
//!   --seed <N>          RNG seed                        (default: 1)
//!   --duration <SECS>   simulated seconds               (default: 10)
//!   --json              machine-readable summary on stdout
//!   --pcap <NODE> <FILE>  capture packets arriving at the named node
//!
//! Sharded execution (multirack only; other topologies fall back to the
//! sequential engine — the canonical report is identical either way):
//!   --shards <N>        partition racks across up to N shards (default: 1)
//!   --threads <N>       lockstep worker threads, 0 = one per shard
//!   --interrack-us <N>  ToR-spine propagation in µs (widens the
//!                       conservative lookahead window)
//!   --rack-clients <RATE>  per-rack probe clients, flows/s each
//!   --profile-shards    wall-clock per-lane busy/stall profiling of the
//!                       lockstep driver (observability-only, like
//!                       bench --profile; prints a lane table after the
//!                       run and never perturbs the canonical report)
//!
//! Sweep (multi-seed batches on the shared parallel runner):
//!   --smoke             CI preset: tiny horizons, 2 seeds, all scenarios
//!   --scenario <NAME>   one scenario instead of all three
//!   --seeds <N>         seeds per scenario                (default: 3)
//!   --seed-base <N>     first seed                        (default: 1)
//!   --duration <SECS>   simulated seconds per job         (default: 4)
//!   --attack <RATE>     flood rate for every job          (default: 1500)
//!   --clients <RATE>    client rate for every job         (default: 100)
//!   --threads <N>       worker threads                    (default: cores)
//!   --out <DIR>         manifest directory                (default: results)
//!   --sampling-rate <P> run every job with sampled telemetry at rate P
//!   --sampling-ablation replace the grid with the sampled-telemetry
//!                       ablation: exhaustive + rates {1, 1/4, 1/16, 1/64,
//!                       1/256} x seeds on the elephant/DDoS datacenter
//!                       scenario; KPIs cover migration-decision latency
//!                       and monitor load (the DESIGN.md §13 figure data)
//!   --scaling           replace the grid with the shard-scaling sweep:
//!                       shard counts {1, 2, 4, 8} x two multirack shapes,
//!                       each job profiled; deterministic KPIs (events,
//!                       epochs, handoffs, hub share) plus wall-clock
//!                       speedup/utilization in the manifest's timing
//!                       object, and a speedup-vs-utilization table on
//!                       stderr (DESIGN.md §15)
//!   --quiet             suppress per-job progress lines
//! ```
//!
//! Shards (execution-plane scaling report for one sharded run; accepts
//! every top-level scenario/workload/control option above — when none are
//! given it defaults to the determinism matrix's `multirack_parallel`
//! shape at 2 simulated seconds — plus):
//!   --shards <N>        shard count (values below 2 are bumped to the
//!                       default 4; the report needs a sharded run)
//!   --out <FILE>        also write the JSON report here
//!   --check             warn (never fail) when the hub shard holds more
//!                       than 60% of lane events or mean lane idle
//!                       exceeds 50% — the CI health probe
//!
//! The table reports per-lane events/busy/stall/utilization, barrier-stall
//! share, the epoch-width histogram, the inter-shard message matrix, and
//! the hub-shard share. Sim-time columns are deterministic per
//! `(scenario, seed, shard count)`; wall-clock columns are machine-
//! dependent observability.
//!
//! Trace (flight-recorder dump of one run; accepts every top-level
//! scenario/workload/control option above, plus):
//!   --out <FILE>        write JSONL here instead of stdout
//!   --filter <CATS>     comma-separated categories to keep
//!                       (overlay,queue,flow,rule,packet_in,group,health)
//!   --verbose           record per-flow events too (admissions, drops,
//!                       rule installs, Packet-Ins)
//!   --capacity <N>      trace ring capacity in records   (default: 65536)
//!   --limit <N>         emit only the first N records     (default: all)
//!   --summary           print per-category/per-kind counts to stderr;
//!                       with --shards N each kind also gets a per-shard
//!                       attribution column (sK:count, -:count for events
//!                       with no node, e.g. controller-side perturbations)
//!
//! Explain (causal journey timelines with latency decomposition; accepts
//! every top-level scenario/workload/control option above, plus):
//!   --rate <P>          journey sampling rate in (0, 1]  (default: 1/64)
//!   --journey <ID>      always trace this flow id (decimal or 0x hex) and
//!                       print its timeline; repeatable
//!   --slowest <N>       print the N slowest delivered journeys
//!                       (default: 5; ignored when --journey is given)
//!   --stage-summary     per-stage latency table (count, p50/p95/p99)
//!   --export <FILE>     write the canonical journey-mark stream as JSONL
//!   --slo               check the built-in SLO table; exit 1 on violation
//!   --slo-table <FILE>  check a table file instead (see scotch::slo)
//!
//! `explain` output is a pure function of `(scenario, seed, rate)`:
//! journey selection is a stateless hash and the canonical mark stream
//! excludes shard attribution, so the same run prints byte-identically at
//! any `--shards` count.
//!
//! Bench (single-process hot-path throughput on a fixed scenario set):
//!   --out <FILE>        where to write the fresh numbers
//!                       (default: BENCH_hotpath.fresh.json)
//!   --baseline <FILE>   committed BENCH_hotpath.json to diff against
//!                       (prints a delta; warns, never fails, on regression)
//!   --label <NAME>      run label recorded in the JSON      (default: dev)
//!   --iters <N>         iterations per scenario, best wall time wins
//!                       (default: 3)
//!   --profile           per-event-type dispatch-cost histograms (wall
//!                       clock, observability-only)
//!   --trace-overhead    measure flight-recorder tracing (warn >5%) and
//!                       journey tracing at the default sampled rate
//!                       (warn >2%, exit 1 above 5%) against an
//!                       observability-off baseline
//!   --shards <N>        run every scenario on the sharded engine with up
//!                       to N shards, and add the `multirack_sharded`
//!                       fabric (wide lookahead, per-rack sources) to the
//!                       measured set
//!   --profile-shards    with --shards N: print the per-lane busy/stall
//!                       profile of the `multirack_sharded` fabric, then
//!                       measure the profiler's own overhead interleaved
//!                       (profiling off vs on, median paired ratio; warns
//!                       above 2%, exits 1 above 5%)
//!   --sampling-rate <P> rate for the `monitor_sampled_smoke` scenario
//!                       (default: 1/64; the exhaustive twin always runs)
//!   --gate              exit 1 when any scenario regresses more than 10%
//!                       vs the baseline (soft perf gate; without this
//!                       flag regressions only warn)
//!   --quiet             suppress per-scenario progress lines
//!
//! Chaos (deterministic fault injection + invariant checking; accepts the
//! top-level scenario/workload/control options above, plus):
//!   --plan <FILE>       run a pinned fault-plan file instead of generating
//!   --events <N>        faults per generated plan        (default: 12)
//!   --search <N>        try N consecutive seeds, stop at the first plan
//!                       that violates an invariant, then shrink it
//!   --shrink-runs <N>   shrink budget in re-runs          (default: 200)
//!   --failover-bound <SECS>  override the I2 failover bound (0 breaks I2
//!                       deliberately; default derives from the heartbeat)
//!   --setup-bound <SECS>  per-flow setup-latency bound (I7): flows that
//!                       complete setup under faults must do so within
//!                       this bound                   (default: unchecked)
//!   --max-undeliverable <N>  I3 stranded-flow budget       (default: 0)
//!   --report <FILE>     write the violation report (with trace windows)
//!   --plan-out <FILE>   write the (shrunk) failing plan
//!   --promote <NAME>    commit the failing plan (shrunk, in `--search`
//!                       mode) as a regression fixture at
//!                       `crates/scotch/tests/fixtures/<NAME>.plan`
//!
//! `chaos` exits 0 on a clean run, 1 when an invariant was violated
//! (or `--search` found a failing plan), 2 on usage errors. With
//! `--shards N` (N > 1) the same `(scenario, seed, plan)` is re-run on the
//! sharded engine and the canonical reports are byte-compared; a
//! divergence also exits 1. (`--search` stays sequential.)
//!
//! Determinism (shard-count invariance matrix; the local mirror of CI's
//! `determinism-matrix` job):
//!   --shards <CSV>      shard counts to compare vs sequential
//!                       (default: 2,4,8)
//!   --threads <N>       lockstep worker threads, 0 = one per shard
//!   --duration <SECS>   simulated seconds per case       (default: 2)
//!   --plan <FILE>       pinned fault plan for the chaos case (default:
//!                       a generated plan)
//!
//! `determinism` runs each matrix scenario sequentially, then at every
//! requested shard count, and byte-compares the canonical reports; any
//! divergence exits 1. The matrix includes a sampled-telemetry case
//! (rate 1/64), a 3-replica controller-cluster case under the fault plan
//! plus a scripted failover, and one extra cell checks that
//! `sampled { rate: 1.0 }` reproduces the exhaustive report byte-for-byte.
//!
//! `sweep` fans each `(scenario, seed)` pair out on the work-stealing
//! runner, prints one progress line per finished job, and writes a
//! machine-readable run manifest (`<out>/<name>.manifest.json`) whose
//! non-timing fields are byte-identical across reruns.

use scotch::app::ControllerMode;
use scotch::scenario::Scenario;
use scotch::slo::SloTable;
use scotch_sim::journey::{
    JourneyConfig, JourneyPoint, JourneyView, DEFAULT_JOURNEY_RATE, STAGES, VERDICT_NAMES,
};
use scotch_sim::trace::{TraceCategory, TraceConfig, TraceLevel};
use scotch_sim::SimDuration;
use scotch_sim::SimTime;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    scenario: String,
    mesh: usize,
    racks: usize,
    servers: usize,
    middlebox: bool,
    attack: Option<f64>,
    attack_window: Option<(f64, f64)>,
    clients: f64,
    trace: Option<f64>,
    elephants: Option<(usize, f64, u32)>,
    link_loss: f64,
    baseline: bool,
    sampling_rate: Option<f64>,
    seed: u64,
    duration: f64,
    json: bool,
    pcap: Option<(String, String)>,
    shards: usize,
    threads: usize,
    interrack_us: Option<u64>,
    rack_clients: Option<f64>,
    profile_shards: bool,
    controllers: u32,
    sync_latency_us: Option<u64>,
    failover: Option<f64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scenario: "datacenter".into(),
            mesh: 4,
            racks: 3,
            servers: 2,
            middlebox: false,
            attack: None,
            attack_window: None,
            clients: 100.0,
            trace: None,
            elephants: None,
            link_loss: 0.0,
            baseline: false,
            sampling_rate: None,
            seed: 1,
            duration: 10.0,
            json: false,
            pcap: None,
            shards: 1,
            threads: 0,
            interrack_us: None,
            rack_clients: None,
            profile_shards: false,
            controllers: 1,
            sync_latency_us: None,
            failover: None,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut i = 0;
    let next = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scenario" => o.scenario = next(&mut i)?,
            "--mesh" => o.mesh = next(&mut i)?.parse().map_err(|e| format!("--mesh: {e}"))?,
            "--racks" => o.racks = next(&mut i)?.parse().map_err(|e| format!("--racks: {e}"))?,
            "--servers" => {
                o.servers = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--servers: {e}"))?
            }
            "--middlebox" => o.middlebox = true,
            "--attack" => {
                o.attack = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("--attack: {e}"))?,
                )
            }
            "--attack-window" => {
                let start: f64 = next(&mut i)?.parse().map_err(|e| format!("window: {e}"))?;
                let end: f64 = next(&mut i)?.parse().map_err(|e| format!("window: {e}"))?;
                o.attack_window = Some((start, end));
            }
            "--clients" => {
                o.clients = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--trace" => {
                o.trace = Some(next(&mut i)?.parse().map_err(|e| format!("--trace: {e}"))?)
            }
            "--elephants" => {
                let n: usize = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("elephants: {e}"))?;
                let pps: f64 = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("elephants: {e}"))?;
                let pkts: u32 = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("elephants: {e}"))?;
                o.elephants = Some((n, pps, pkts));
            }
            "--link-loss" => {
                o.link_loss = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--link-loss: {e}"))?
            }
            "--baseline" => o.baseline = true,
            "--sampling-rate" => {
                o.sampling_rate = Some(parse_sampling_rate(&next(&mut i)?)?);
            }
            "--seed" => o.seed = next(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--duration" => {
                o.duration = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?
            }
            "--json" => o.json = true,
            "--shards" => {
                o.shards = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if o.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--threads" => {
                o.threads = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--interrack-us" => {
                o.interrack_us = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("--interrack-us: {e}"))?,
                )
            }
            "--rack-clients" => {
                o.rack_clients = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("--rack-clients: {e}"))?,
                )
            }
            "--profile-shards" => o.profile_shards = true,
            "--controllers" => {
                o.controllers = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--controllers: {e}"))?;
                if o.controllers == 0 {
                    return Err("--controllers must be at least 1".into());
                }
            }
            "--sync-latency-us" => {
                let us: u64 = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--sync-latency-us: {e}"))?;
                if us == 0 {
                    return Err("--sync-latency-us must be positive".into());
                }
                o.sync_latency_us = Some(us);
            }
            "--failover" => {
                let at: f64 = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--failover: {e}"))?;
                if !(at.is_finite() && at > 0.0) {
                    return Err("--failover time must be positive".into());
                }
                o.failover = Some(at);
            }
            "--pcap" => {
                let node = next(&mut i)?;
                let file = next(&mut i)?;
                o.pcap = Some((node, file));
            }
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    if !matches!(o.scenario.as_str(), "datacenter" | "single" | "multirack") {
        return Err(format!("unknown scenario '{}'", o.scenario));
    }
    if o.failover.is_some() && o.controllers < 2 {
        return Err("--failover requires --controllers >= 2".into());
    }
    Ok(o)
}

/// Parse and range-check a `--sampling-rate` value (shared by the run,
/// sweep, and bench front ends).
fn parse_sampling_rate(text: &str) -> Result<f64, String> {
    let rate: f64 = text.parse().map_err(|e| format!("--sampling-rate: {e}"))?;
    if !(rate > 0.0 && rate <= 1.0) {
        return Err(format!("--sampling-rate must be in (0, 1], got {rate}"));
    }
    Ok(rate)
}

fn build_scenario(o: &Options) -> Scenario {
    let mut s = match o.scenario.as_str() {
        "single" => Scenario::single_switch(scotch_switch::SwitchProfile::pica8_pronto_3780()),
        "multirack" => Scenario::multirack(o.racks, o.mesh.max(1)),
        _ => Scenario::overlay_datacenter(o.mesh).with_servers(o.servers),
    };
    if o.middlebox {
        s = s.with_middlebox();
    }
    match (o.attack, o.attack_window) {
        (Some(rate), Some((start, end))) => {
            s = s.with_attack_window(
                rate,
                SimTime::from_secs_f64(start),
                SimTime::from_secs_f64(end),
            )
        }
        (Some(rate), None) => s = s.with_attack(rate),
        _ => {}
    }
    if o.clients > 0.0 {
        s = s.with_clients(o.clients);
    }
    if let Some(rate) = o.trace {
        s = s.with_trace(rate);
    }
    if let Some((n, pps, pkts)) = o.elephants {
        s = s.with_elephants(n, pps, pkts, SimTime::from_secs(2));
    }
    if o.link_loss > 0.0 {
        s = s.with_link_loss(o.link_loss);
    }
    if let Some(us) = o.interrack_us {
        s = s.with_interrack_propagation(SimDuration::from_micros(us));
    }
    if let Some(rate) = o.rack_clients {
        s = s.with_rack_clients(rate);
    }
    if let Some(rate) = o.sampling_rate {
        s = s.with_sampling_rate(rate);
    }
    if o.controllers > 1 {
        s = s.with_controllers(o.controllers);
    }
    if let Some(us) = o.sync_latency_us {
        s = s.with_sync_latency(SimDuration::from_micros(us));
    }
    if let Some(at) = o.failover {
        s = s.with_failover_at(0, SimTime::from_secs_f64(at));
    }
    if o.baseline {
        s = s.with_mode(ControllerMode::Baseline);
    }
    s
}

/// Parsed trace-specific flags (everything else is forwarded to
/// [`parse_args`]).
#[derive(Debug, Clone, PartialEq)]
struct TraceOptions {
    out: Option<String>,
    filter: Option<String>,
    verbose: bool,
    capacity: usize,
    limit: usize,
    summary: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            out: None,
            filter: None,
            verbose: false,
            capacity: 65_536,
            limit: 0,
            summary: false,
        }
    }
}

/// Split a `trace` command line into trace flags and scenario flags.
fn parse_trace_args(args: &[String]) -> Result<(TraceOptions, Vec<String>), String> {
    let mut t = TraceOptions::default();
    let mut rest = Vec::new();
    let mut i = 0;
    let next = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--out" => t.out = Some(next(&mut i)?),
            "--filter" => t.filter = Some(next(&mut i)?),
            "--verbose" => t.verbose = true,
            "--capacity" => {
                t.capacity = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
                if t.capacity == 0 {
                    return Err("--capacity must be at least 1".into());
                }
            }
            "--limit" => t.limit = next(&mut i)?.parse().map_err(|e| format!("--limit: {e}"))?,
            "--summary" => t.summary = true,
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    Ok((t, rest))
}

/// Resolve a [`TraceConfig`] from the parsed trace flags: `--verbose`
/// raises every category to Verbose, `--filter` silences everything not
/// listed.
fn trace_config(t: &TraceOptions) -> Result<TraceConfig, String> {
    let mut config = if t.verbose {
        TraceConfig::verbose()
    } else {
        TraceConfig::default()
    };
    config = config.with_capacity(t.capacity);
    if let Some(filter) = &t.filter {
        let mut keep = [false; scotch_sim::trace::TRACE_CATEGORIES];
        for name in filter.split(',').filter(|s| !s.is_empty()) {
            let cat = TraceCategory::from_name(name.trim())
                .ok_or_else(|| format!("--filter: unknown category '{name}'"))?;
            keep[cat.index()] = true;
        }
        for cat in TraceCategory::ALL {
            if !keep[cat.index()] {
                config = config.with_level(cat, TraceLevel::Off);
            }
        }
    }
    Ok(config)
}

fn trace_main(args: &[String]) -> i32 {
    let usage = || {
        eprintln!("usage: scotch-cli trace [SCENARIO OPTIONS] [--out FILE] [--filter CATS]");
        eprintln!("                        [--verbose] [--capacity N] [--limit N] [--summary]");
    };
    let (topts, rest) = match parse_trace_args(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            return 2;
        }
    };
    let opts = match parse_args(&rest) {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            usage();
            return if e == "help" { 0 } else { 2 };
        }
    };
    let config = match trace_config(&topts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };

    let horizon = SimTime::from_secs_f64(opts.duration);
    let sim = build_scenario(&opts)
        .with_tracing(config)
        .build_until(opts.seed, horizon);
    // With --shards, the summary attributes each record to the shard that
    // would own its node under the same rack partition the sharded engine
    // uses (the trace itself is always recorded hub-side).
    let node_count = sim.topo.node_count();
    let partition = (opts.shards > 1)
        .then(|| scotch_net::Partition::by_regions(node_count, &sim.regions, opts.shards));
    let report = sim.run(horizon);

    let jsonl = report.trace_jsonl();
    let emitted: String = if topts.limit > 0 {
        jsonl
            .lines()
            .take(topts.limit)
            .map(|l| format!("{l}\n"))
            .collect()
    } else {
        jsonl
    };
    match &topts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &emitted) {
                eprintln!("error: failed to write {path}: {e}");
                return 1;
            }
            eprintln!(
                "wrote {} trace record(s) to {path}",
                emitted.lines().count()
            );
        }
        None => print!("{emitted}"),
    }

    if topts.summary {
        let records = report.trace.records();
        let shards = partition.as_ref().map(|p| p.shards() as usize).unwrap_or(0);
        // Per kind: category, total, and (with --shards) per-shard counts
        // plus one trailing slot for records with no node attribution
        // (controller-side events like ctrl_msg_perturbed).
        let mut by_kind: Vec<(&'static str, &'static str, u64, Vec<u64>)> = Vec::new();
        for rec in &records {
            let kind = rec.event.kind_name();
            if !by_kind.iter().any(|(k, ..)| *k == kind) {
                by_kind.push((kind, rec.event.category().name(), 0, vec![0; shards + 1]));
            }
            let slot = by_kind.iter_mut().find(|(k, ..)| *k == kind).unwrap();
            slot.2 += 1;
            if let Some(part) = &partition {
                let idx = trace_event_node(rec.event)
                    .filter(|n| (*n as usize) < node_count)
                    .map(|n| part.shard_of(scotch_net::NodeId(n)) as usize)
                    .unwrap_or(shards);
                slot.3[idx] += 1;
            }
        }
        by_kind.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        eprintln!(
            "trace summary: {} recorded, {} overwritten (ring capacity {})",
            report.trace.total_recorded(),
            report.trace.dropped(),
            topts.capacity
        );
        for (kind, cat, n, per_shard) in by_kind {
            if partition.is_some() {
                let mut cells: Vec<String> = per_shard[..shards]
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c > 0)
                    .map(|(s, c)| format!("s{s}:{c}"))
                    .collect();
                if per_shard[shards] > 0 {
                    cells.push(format!("-:{}", per_shard[shards]));
                }
                eprintln!("  {n:>8}  {kind} [{cat}]  {}", cells.join(" "));
            } else {
                eprintln!("  {n:>8}  {kind} [{cat}]");
            }
        }
    }
    0
}

/// The node a trace event is attributed to, when it has one (the shard
/// column of `trace --summary`).
fn trace_event_node(event: scotch_sim::trace::TraceEvent) -> Option<u32> {
    event
        .fields()
        .into_iter()
        .find(|(name, _)| matches!(*name, "switch" | "node" | "dead"))
        .map(|(_, v)| v as u32)
}

/// Parsed `explain` subcommand flags (everything else is forwarded to
/// [`parse_args`]).
#[derive(Debug, Clone, PartialEq)]
struct ExplainOptions {
    rate: f64,
    journeys: Vec<u64>,
    slowest: usize,
    stage_summary: bool,
    export: Option<String>,
    slo: bool,
    slo_table: Option<String>,
}

impl Default for ExplainOptions {
    fn default() -> Self {
        ExplainOptions {
            rate: DEFAULT_JOURNEY_RATE,
            journeys: Vec::new(),
            slowest: 5,
            stage_summary: false,
            export: None,
            slo: false,
            slo_table: None,
        }
    }
}

/// Parse a journey id: decimal or `0x`-prefixed hex.
fn parse_journey_id(text: &str) -> Result<u64, String> {
    let parsed = match text.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => text.parse(),
    };
    parsed.map_err(|e| format!("--journey: bad id '{text}': {e}"))
}

/// Split an `explain` command line into explain flags and scenario flags.
fn parse_explain_args(args: &[String]) -> Result<(ExplainOptions, Vec<String>), String> {
    let mut e = ExplainOptions::default();
    let mut rest = Vec::new();
    let mut i = 0;
    let next = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--rate" => {
                let rate: f64 = next(&mut i)?.parse().map_err(|e| format!("--rate: {e}"))?;
                if !(rate > 0.0 && rate <= 1.0) {
                    return Err(format!("--rate must be in (0, 1], got {rate}"));
                }
                e.rate = rate;
            }
            "--journey" => e.journeys.push(parse_journey_id(&next(&mut i)?)?),
            "--slowest" => {
                e.slowest = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--slowest: {e}"))?
            }
            "--stage-summary" => e.stage_summary = true,
            "--export" => e.export = Some(next(&mut i)?),
            "--slo" => e.slo = true,
            "--slo-table" => {
                e.slo = true;
                e.slo_table = Some(next(&mut i)?);
            }
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    Ok((e, rest))
}

/// Human duration from integer nanoseconds — a pure function of sim time,
/// so `explain` output is byte-deterministic.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_dur(d: SimDuration) -> String {
    fmt_ns(d.as_nanos())
}

fn fmt_at(t: SimTime) -> String {
    fmt_ns(t.as_nanos())
}

/// Name a `Drop` mark's `info` code (the `DropReason` dense index plus the
/// journey-layer extensions).
fn drop_reason_name(info: u64) -> &'static str {
    match info {
        0 => "ofa_overload",
        1 => "dataplane_overload",
        2 => "policy",
        3 => "no_route",
        x if x == scotch_sim::journey::DROP_LINK => "link_queue",
        x if x == scotch_sim::journey::DROP_CTRL_REJECT => "ctrl_reject",
        _ => "unknown",
    }
}

/// Name a `Fault` mark's `info` code (the `PERTURB_*` kinds).
fn perturb_name(info: u64) -> &'static str {
    match info {
        0 => "ctrl_rx_dropped",
        1 => "ctrl_tx_dropped",
        2 => "ctrl_msg_duplicated",
        3 => "ctrl_msg_delayed",
        _ => "unknown",
    }
}

fn node_name(names: &[String], node: u32) -> &str {
    names.get(node as usize).map(String::as_str).unwrap_or("-")
}

/// Print one journey's per-stage timeline. The layout is shard-free on
/// purpose: the same `(scenario, seed, rate)` must print byte-identically
/// at any `--shards` count.
fn print_timeline(view: &JourneyView, names: &[String]) {
    let outcome = match view.terminal() {
        Some(m) if m.point == JourneyPoint::Deliver => "delivered".to_string(),
        Some(m) if m.point == JourneyPoint::Cancel => "cancelled at horizon".to_string(),
        Some(m) => format!("dropped: {}", drop_reason_name(m.info)),
        None => "incomplete".to_string(),
    };
    let verdict = view
        .marks
        .iter()
        .find(|m| m.point == JourneyPoint::Decision)
        .map(|m| VERDICT_NAMES.get(m.info as usize).copied().unwrap_or("?"))
        .unwrap_or("none");
    // A `CtrlRx` mark carries `replica + 1` when a controller cluster is
    // settled (0 means the single-controller engine or mastership in flux).
    let replica = view
        .marks
        .iter()
        .find(|m| m.point == JourneyPoint::CtrlRx && m.info > 0)
        .map(|m| format!(", replica {}", m.info - 1))
        .unwrap_or_default();
    println!(
        "journey {:#x} ({outcome}, verdict {verdict}{replica}) start t={} total {}",
        view.id,
        fmt_at(view.start()),
        fmt_dur(view.total()),
    );
    let segments = view.segments();
    for span in &segments {
        let path = if span.from_node == span.to_node {
            node_name(names, span.to_node).to_string()
        } else {
            format!(
                "{} -> {}",
                node_name(names, span.from_node),
                node_name(names, span.to_node)
            )
        };
        println!(
            "  {:<14} {:>12}  {path}",
            span.stage.name(),
            fmt_dur(span.duration()),
        );
    }
    for ann in view.annotations() {
        match ann.point {
            JourneyPoint::Fault => println!(
                "  ! fault {} at t={} ({})",
                perturb_name(ann.info),
                fmt_at(ann.at),
                node_name(names, ann.node),
            ),
            JourneyPoint::Handoff => println!(
                "  ! handoff replica {} -> {} at t={} (switch {})",
                ann.info >> 32,
                ann.info & 0xffff_ffff,
                fmt_at(ann.at),
                node_name(names, ann.node),
            ),
            _ => println!(
                "  ! migration{} at t={} (first hop {})",
                if ann.info == 1 { " deferred" } else { "" },
                fmt_at(ann.at),
                node_name(names, ann.node),
            ),
        }
    }
    println!(
        "  {:<14} {:>12}  (sum of {} stage span(s))",
        "total",
        fmt_dur(view.total()),
        segments.len()
    );
}

fn explain_main(args: &[String]) -> i32 {
    let usage = || {
        eprintln!("usage: scotch-cli explain [SCENARIO OPTIONS] [--rate P] [--journey ID]");
        eprintln!("                          [--slowest N] [--stage-summary] [--export FILE]");
        eprintln!("                          [--slo] [--slo-table FILE]");
    };
    let (eopts, rest) = match parse_explain_args(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            return 2;
        }
    };
    let opts = match parse_args(&rest) {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            usage();
            return if e == "help" { 0 } else { 2 };
        }
    };
    let table = match &eopts.slo_table {
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match SloTable::parse(&text) {
                Ok(t) => Some(t),
                Err(e) => {
                    eprintln!("error: bad SLO table {path}: {e}");
                    return 2;
                }
            },
            Err(e) => {
                eprintln!("error: cannot read SLO table {path}: {e}");
                return 2;
            }
        },
        None if eopts.slo => Some(SloTable::builtin()),
        None => None,
    };

    let horizon = SimTime::from_secs_f64(opts.duration);
    let config = JourneyConfig {
        rate: eopts.rate,
        always: eopts.journeys.clone(),
        ..JourneyConfig::default()
    };
    let sim = build_scenario(&opts)
        .with_journeys(config)
        .build_until(opts.seed, horizon);
    let names: Vec<String> = (0..sim.topo.node_count() as u32)
        .map(|n| sim.topo.name(scotch_net::NodeId(n)).to_string())
        .collect();
    // Same sharded-engine clamp as the top-level run path.
    let report = if opts.shards > 1 && opts.trace.is_none() {
        sim.run_sharded(horizon, opts.shards, opts.threads)
    } else {
        sim.run(horizon)
    };

    let views = report.journey_views();
    let d = report.journey_decomposition();
    if !eopts.journeys.is_empty() {
        for id in &eopts.journeys {
            match views.iter().find(|v| v.id == *id) {
                Some(view) => print_timeline(view, &names),
                None => eprintln!("warning: journey {id:#x} produced no marks in this run"),
            }
        }
    } else if eopts.slowest > 0 {
        // Slowest delivered journeys by end-to-end setup latency; journey
        // id breaks ties so the listing is deterministic.
        let mut delivered: Vec<&JourneyView> = views.iter().filter(|v| v.is_delivered()).collect();
        delivered.sort_by(|a, b| b.total().cmp(&a.total()).then(a.id.cmp(&b.id)));
        println!(
            "slowest {} of {} delivered journey(s) ({} traced):",
            eopts.slowest.min(delivered.len()),
            delivered.len(),
            views.len()
        );
        for view in delivered.iter().take(eopts.slowest) {
            print_timeline(view, &names);
        }
    }

    if eopts.stage_summary {
        println!(
            "stage summary: {} journey(s): {} delivered, {} dropped, {} cancelled",
            d.journeys, d.delivered, d.dropped, d.cancelled
        );
        println!(
            "  {:<14} {:>8} {:>12} {:>12} {:>12}",
            "stage", "count", "p50", "p95", "p99"
        );
        for stage in STAGES {
            let h = &d.stages[stage as usize].1;
            if h.count() == 0 {
                continue;
            }
            let (p50, p95, p99) = d.stage_quantiles(stage);
            println!(
                "  {:<14} {:>8} {:>12} {:>12} {:>12}",
                stage.name(),
                h.count(),
                fmt_ns(p50 as u64),
                fmt_ns(p95 as u64),
                fmt_ns(p99 as u64)
            );
        }
        if d.setup.count() > 0 {
            println!(
                "  {:<14} {:>8} {:>12} {:>12} {:>12}",
                "setup (e2e)",
                d.setup.count(),
                fmt_ns(d.setup.quantile(0.50) as u64),
                fmt_ns(d.setup.quantile(0.95) as u64),
                fmt_ns(d.setup.quantile(0.99) as u64)
            );
        }
    }

    if let Some(path) = &eopts.export {
        let jsonl = report.journeys_jsonl();
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("error: failed to write {path}: {e}");
            return 1;
        }
        eprintln!("wrote {} journey mark(s) to {path}", jsonl.lines().count());
    }

    if let Some(table) = table {
        let outcome = table.check(&opts.scenario, &d);
        print!("{}", outcome.render());
        return outcome.exit_code();
    }
    0
}

/// Parsed `sweep` subcommand line.
#[derive(Debug, Clone, PartialEq)]
struct SweepOptions {
    smoke: bool,
    scenario: Option<String>,
    seeds: u64,
    seed_base: u64,
    duration: f64,
    attack: f64,
    clients: f64,
    threads: usize,
    out: String,
    sampling_rate: Option<f64>,
    sampling_ablation: bool,
    scaling: bool,
    quiet: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            smoke: false,
            scenario: None,
            seeds: 3,
            seed_base: 1,
            duration: 4.0,
            attack: 1500.0,
            clients: 100.0,
            threads: 0,
            out: "results".into(),
            sampling_rate: None,
            sampling_ablation: false,
            scaling: false,
            quiet: false,
        }
    }
}

fn parse_sweep_args(args: &[String]) -> Result<SweepOptions, String> {
    let mut o = SweepOptions::default();
    let mut i = 0;
    let next = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                o.smoke = true;
                o.seeds = 2;
                o.duration = 2.0;
                o.attack = 1000.0;
            }
            "--scenario" => o.scenario = Some(next(&mut i)?),
            "--seeds" => o.seeds = next(&mut i)?.parse().map_err(|e| format!("--seeds: {e}"))?,
            "--seed-base" => {
                o.seed_base = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--seed-base: {e}"))?
            }
            "--duration" => {
                o.duration = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?
            }
            "--attack" => {
                o.attack = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--attack: {e}"))?
            }
            "--clients" => {
                o.clients = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--threads" => {
                o.threads = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--out" => o.out = next(&mut i)?,
            "--sampling-rate" => {
                o.sampling_rate = Some(parse_sampling_rate(&next(&mut i)?)?);
            }
            "--sampling-ablation" => o.sampling_ablation = true,
            "--scaling" => o.scaling = true,
            "--quiet" => o.quiet = true,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown sweep option {other}")),
        }
        i += 1;
    }
    if o.seeds == 0 {
        return Err("--seeds must be at least 1".into());
    }
    if let Some(s) = &o.scenario {
        if !matches!(s.as_str(), "datacenter" | "single" | "multirack") {
            return Err(format!("unknown scenario '{s}'"));
        }
    }
    Ok(o)
}

/// Build the `(scenario, seed)` job grid for a sweep.
fn sweep_jobs(o: &SweepOptions) -> Vec<scotch_runner::Job<()>> {
    let scenarios: Vec<String> = match &o.scenario {
        Some(s) => vec![s.clone()],
        None => vec!["datacenter".into(), "single".into(), "multirack".into()],
    };
    let horizon = SimTime::from_secs_f64(o.duration);
    let mut jobs = Vec::new();
    for scenario in &scenarios {
        for k in 0..o.seeds {
            let seed = o.seed_base + k;
            let base = Options {
                scenario: scenario.clone(),
                mesh: if o.smoke { 2 } else { 4 },
                racks: 2,
                attack: Some(o.attack),
                clients: o.clients,
                sampling_rate: o.sampling_rate,
                seed,
                duration: o.duration,
                ..Options::default()
            };
            jobs.push(scotch_runner::Job::new(
                format!("{scenario}/s{seed}"),
                seed,
                move |ctx: &mut scotch_runner::JobCtx| {
                    // Journey tracing at the default sampled rate feeds the
                    // manifest's latency KPIs and SLO check verdicts; the
                    // mark stream is deterministic in (scenario, seed), so
                    // normalized manifests stay rerun-stable.
                    let report = build_scenario(&base)
                        .with_journey_rate(DEFAULT_JOURNEY_RATE)
                        .run(horizon, seed);
                    ctx.add_units(report.events_processed);
                    ctx.kpi("flows", report.flows.len() as f64);
                    ctx.kpi("client_failure", report.client_failure_fraction());
                    ctx.kpi(
                        "client_failure_steady",
                        report.client_failure_fraction_between(
                            SimTime::from_secs(1),
                            horizon.saturating_sub(SimDuration::from_secs(1)),
                        ),
                    );
                    ctx.kpi("physical_admitted", report.app.physical_admitted as f64);
                    ctx.kpi("overlay_admitted", report.app.overlay_admitted as f64);
                    ctx.kpi("activations", report.app.activations as f64);
                    let d = report.journey_decomposition();
                    ctx.kpi("journeys", d.journeys as f64);
                    ctx.kpi("journeys_delivered", d.delivered as f64);
                    if d.setup.count() > 0 {
                        ctx.kpi("journey_setup_p99_ms", d.setup.quantile(0.99) / 1e6);
                    }
                    for check in SloTable::builtin().check(&base.scenario, &d).checks {
                        let verdict = match check.pass {
                            Some(true) => "ok",
                            Some(false) => "violated",
                            None => "skipped",
                        };
                        ctx.check(&format!("slo: {}", check.rule.render()), verdict);
                    }
                    // Full metrics-registry snapshot into the manifest, so
                    // archived runs are comparable in every dimension.
                    ctx.metrics_snapshot(
                        report
                            .metrics
                            .entries
                            .iter()
                            .map(|(name, value)| (name.as_str(), *value)),
                    );
                },
            ));
        }
    }
    jobs
}

/// The rate ladder the sampled-telemetry ablation measures (besides the
/// exhaustive-polling reference).
const ABLATION_RATES: [f64; 5] = [1.0, 1.0 / 4.0, 1.0 / 16.0, 1.0 / 64.0, 1.0 / 256.0];

/// Build the `--sampling-ablation` job grid: exhaustive plus every rate in
/// [`ABLATION_RATES`], each across the seed range, on the elephant/DDoS
/// datacenter scenario. The manifest's KPI columns are the DESIGN.md §13
/// figure data — sampling rate vs migration-decision latency vs monitor
/// load vs estimate error.
fn ablation_jobs(o: &SweepOptions) -> Vec<scotch_runner::Job<()>> {
    let mut modes: Vec<(String, Option<f64>)> = vec![("exhaustive".into(), None)];
    modes.extend(
        ABLATION_RATES
            .iter()
            .map(|&r| (format!("r{}", (1.0 / r).round() as u64), Some(r))),
    );
    let horizon = SimTime::from_secs_f64(o.duration);
    let mut jobs = Vec::new();
    for (label, rate) in modes {
        for k in 0..o.seeds {
            let seed = o.seed_base + k;
            let attack = o.attack;
            let clients = o.clients;
            jobs.push(scotch_runner::Job::new(
                format!("ablation/{label}/s{seed}"),
                seed,
                move |ctx: &mut scotch_runner::JobCtx| {
                    let mut s = Scenario::overlay_datacenter(4)
                        .with_clients(clients)
                        .with_attack(attack)
                        .with_elephants(4, 1_000.0, 50_000, SimTime::from_secs(1));
                    if let Some(rate) = rate {
                        s = s.with_sampling_rate(rate);
                    }
                    let report = s.run(horizon, seed);
                    ctx.add_units(report.events_processed);
                    ctx.kpi("sampling_rate", rate.unwrap_or(1.0));
                    ctx.kpi("elephant_decisions", report.app.elephant_decisions as f64);
                    // Mean flow age at flag time — how long an elephant ran
                    // before the monitor noticed it.
                    ctx.kpi(
                        "decision_latency_ms",
                        report.app.decision_latency_ns as f64
                            / report.app.elephant_decisions.max(1) as f64
                            / 1e6,
                    );
                    ctx.kpi("migrations", report.app.migrations as f64);
                    let metric = |name: &str| report.metrics.get(name).unwrap_or(0.0);
                    ctx.kpi("stats_msgs", metric("monitor.stats_msgs"));
                    ctx.kpi("sampled_records", metric("monitor.sampled_records"));
                    ctx.kpi("est_error_ppm", metric("monitor.est_error.last"));
                    ctx.metrics_snapshot(
                        report
                            .metrics
                            .entries
                            .iter()
                            .map(|(name, value)| (name.as_str(), *value)),
                    );
                },
            ));
        }
    }
    jobs
}

/// The shard counts the `--scaling` sweep fans out.
const SCALING_SHARDS: [usize; 4] = [1, 2, 4, 8];

/// The two multirack shapes the `--scaling` sweep measures: the
/// determinism matrix's parallel shape and the wider bench fabric.
#[allow(clippy::type_complexity)]
fn scaling_shapes() -> Vec<(&'static str, fn() -> Scenario)> {
    vec![
        ("multirack_parallel", || {
            Scenario::multirack(4, 1)
                .with_interrack_propagation(SimDuration::from_micros(200))
                .with_rack_clients(150.0)
                .with_clients(80.0)
                .with_attack(400.0)
        }),
        ("multirack_fabric", || {
            Scenario::multirack(8, 1)
                .with_interrack_propagation(SimDuration::from_micros(200))
                .with_rack_clients(400.0)
                .with_clients(100.0)
                .with_attack(2_000.0)
        }),
    ]
}

/// Build the `--scaling` job grid: shard counts [`SCALING_SHARDS`] x
/// [`scaling_shapes`], every job profiled. The KPI columns (events,
/// epochs, handoffs, hub share) are sim-time deterministic, so normalized
/// manifests stay rerun-stable; speedup and utilization land in the
/// per-job `timing` object, which normalized manifests strip.
fn scaling_jobs(o: &SweepOptions) -> Vec<scotch_runner::Job<()>> {
    let horizon = SimTime::from_secs_f64(o.duration);
    let seed = o.seed_base;
    let mut jobs = Vec::new();
    for (shape, make) in scaling_shapes() {
        for k in SCALING_SHARDS {
            jobs.push(scotch_runner::Job::new(
                format!("scaling/{shape}/x{k}"),
                seed,
                move |ctx: &mut scotch_runner::JobCtx| {
                    let mut sim = make().build_until(seed, horizon);
                    sim.enable_shard_profiling();
                    let report = if k > 1 {
                        sim.run_sharded(horizon, k, 0)
                    } else {
                        sim.run(horizon)
                    };
                    ctx.add_units(report.events_processed);
                    let metric = |name: &str| report.metrics.get(name).unwrap_or(0.0);
                    ctx.kpi("shards", k as f64);
                    ctx.kpi("events", report.events_processed as f64);
                    ctx.kpi("epochs", metric("shard.epochs"));
                    ctx.kpi("handoffs", metric("shard.handoffs"));
                    ctx.kpi("hub_share", metric("shard.hub_share_ppm") / 1e6);
                    if let Some(p) = report.shard_profile.as_ref() {
                        ctx.timing("mean_utilization", p.mean_utilization());
                        if p.total_ns() > 0.0 {
                            ctx.timing("barrier_frac", p.barrier_ns() / p.total_ns());
                        }
                    }
                    ctx.metrics_snapshot(
                        report
                            .metrics
                            .entries
                            .iter()
                            .map(|(name, value)| (name.as_str(), *value)),
                    );
                },
            ));
        }
    }
    jobs
}

fn sweep_main(args: &[String]) -> i32 {
    let opts = match parse_sweep_args(args) {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!("usage: scotch-cli sweep [--smoke] [--scenario NAME] [--seeds N] ...");
            eprintln!("       (full flag list in the doc comment at the top of scotch-cli.rs)");
            return if e == "help" { 0 } else { 2 };
        }
    };
    let name = if opts.scaling {
        "sweep-scaling"
    } else if opts.sampling_ablation {
        "sweep-sampling-ablation"
    } else if opts.smoke {
        "sweep-smoke"
    } else {
        "sweep"
    };
    let jobs = if opts.scaling {
        scaling_jobs(&opts)
    } else if opts.sampling_ablation {
        ablation_jobs(&opts)
    } else {
        sweep_jobs(&opts)
    };
    if opts.scaling {
        eprintln!(
            "sweep '{name}': {} job(s), {} shape(s) x shard counts {:?}",
            jobs.len(),
            scaling_shapes().len(),
            SCALING_SHARDS
        );
    } else if opts.sampling_ablation {
        eprintln!(
            "sweep '{name}': {} job(s), {} telemetry mode(s) x {} seed(s)",
            jobs.len(),
            ABLATION_RATES.len() + 1,
            opts.seeds
        );
    } else {
        eprintln!(
            "sweep '{name}': {} job(s), {} scenario(s) x {} seed(s)",
            jobs.len(),
            if opts.scenario.is_some() { 1 } else { 3 },
            opts.seeds
        );
    }
    // Scaling jobs each spawn their own lockstep workers; running them one
    // at a time keeps the speedup numbers from fighting each other for
    // cores (override with an explicit --threads).
    let pool_threads = if opts.scaling && opts.threads == 0 {
        1
    } else {
        opts.threads
    };
    let sweep = scotch_runner::SweepRunner::new()
        .threads(pool_threads)
        .progress(!opts.quiet)
        .run(name, jobs);
    if opts.scaling {
        eprintln!("speedup vs utilization (wall-clock; x1 sequential is the reference):");
        for (shape, _) in scaling_shapes() {
            let wall_of = |k: usize| {
                sweep
                    .results
                    .iter()
                    .find(|r| r.id == format!("scaling/{shape}/x{k}"))
                    .map(|r| (r.wall.as_secs_f64(), &r.timings))
            };
            let base = wall_of(1).map(|(w, _)| w);
            for k in SCALING_SHARDS {
                let Some((wall, timings)) = wall_of(k) else {
                    continue;
                };
                let speedup = base
                    .map(|b| format!("{:.2}x", b / wall.max(1e-9)))
                    .unwrap_or_else(|| "-".into());
                let util = timings
                    .iter()
                    .find(|(n, _)| n == "mean_utilization")
                    .map(|(_, v)| format!("{v:.2}"))
                    .unwrap_or_else(|| "-".into());
                eprintln!("  {shape} x{k}: {wall:.3}s wall, speedup {speedup}, utilization {util}");
            }
        }
    }
    let manifest = sweep.manifest();
    let dir = std::path::PathBuf::from(&opts.out);
    match scotch_runner::manifest::write(&dir, name, &manifest) {
        Ok(path) => eprintln!(
            "{} ok, {} failed in {:.1}s ({:.1} jobs/s); manifest: {}",
            sweep.completed.get(),
            sweep.failed.get(),
            sweep.wall.as_secs_f64(),
            sweep.jobs_per_sec(),
            path.display()
        ),
        Err(e) => {
            eprintln!("error: failed to write manifest: {e}");
            return 1;
        }
    }
    if sweep.failed.get() > 0 {
        1
    } else {
        0
    }
}

/// Parsed `bench hotpath` subcommand line.
#[derive(Debug, Clone, PartialEq)]
struct BenchOptions {
    out: String,
    baseline: Option<String>,
    label: String,
    iters: u32,
    profile: bool,
    trace_overhead: bool,
    profile_shards: bool,
    shards: usize,
    sampling_rate: f64,
    gate: bool,
    quiet: bool,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            out: "BENCH_hotpath.fresh.json".into(),
            baseline: None,
            label: "dev".into(),
            iters: 3,
            profile: false,
            trace_overhead: false,
            profile_shards: false,
            shards: 1,
            sampling_rate: 1.0 / 64.0,
            gate: false,
            quiet: false,
        }
    }
}

fn parse_bench_args(args: &[String]) -> Result<BenchOptions, String> {
    let mut o = BenchOptions::default();
    let mut i = 0;
    let next = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--out" => o.out = next(&mut i)?,
            "--baseline" => o.baseline = Some(next(&mut i)?),
            "--label" => o.label = next(&mut i)?,
            "--iters" => o.iters = next(&mut i)?.parse().map_err(|e| format!("--iters: {e}"))?,
            "--profile" => o.profile = true,
            "--trace-overhead" => o.trace_overhead = true,
            "--profile-shards" => o.profile_shards = true,
            "--shards" => {
                o.shards = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if o.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--sampling-rate" => o.sampling_rate = parse_sampling_rate(&next(&mut i)?)?,
            "--gate" => o.gate = true,
            "--quiet" => o.quiet = true,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown bench option {other}")),
        }
        i += 1;
    }
    if o.iters == 0 {
        return Err("--iters must be at least 1".into());
    }
    Ok(o)
}

/// Seed shared by every hot-path bench scenario (the bench crate's
/// `DEFAULT_SEED`; duplicated here so the CLI builds without the bench
/// crate).
const HOTPATH_SEED: u64 = 20141202;

/// The monitor-heavy bench shape: a dense 25 ms stats poll over an overlay
/// fabric whose flow tables keep growing under flood, so every exhaustive
/// poll walks and ships thousands of flow records and telemetry dominates
/// the run. Measured in both telemetry modes — the pair is the DESIGN.md
/// §13 headline comparison.
fn monitor_bench_scenario() -> Scenario {
    Scenario::overlay_datacenter(4)
        .with_config(scotch::ScotchConfig {
            stats_poll_interval: SimDuration::from_millis(25),
            ..scotch::ScotchConfig::default()
        })
        .with_clients(100.0)
        .with_attack(6_000.0)
        .with_elephants(4, 800.0, 50_000, SimTime::from_secs(1))
}

/// The fixed `(scenario, seed)` set the hot-path bench measures. Factories
/// because [`Scenario`] is single-use; each returns `(name, builder,
/// horizon)`. `sampling_rate` only affects the `monitor_sampled_smoke`
/// row — every other scenario keeps exhaustive telemetry.
#[allow(clippy::type_complexity)]
fn hotpath_scenarios(
    sampling_rate: f64,
) -> Vec<(&'static str, Box<dyn Fn() -> Scenario>, SimTime)> {
    vec![
        (
            // The paper's Fig. 3 regime: spoofed-source DDoS against one
            // hardware switch — the event-count worst case per switch.
            "ddos_smoke",
            Box::new(|| {
                Scenario::single_switch(scotch_switch::SwitchProfile::pica8_pronto_3780())
                    .with_clients(100.0)
                    .with_attack(20_000.0)
            }) as Box<dyn Fn() -> Scenario>,
            SimTime::from_secs(10),
        ),
        (
            // Scotch overlay under flood: exercises tunnels, vSwitch mesh
            // and the controller application.
            "overlay_ddos_smoke",
            Box::new(|| {
                Scenario::overlay_datacenter(4)
                    .with_clients(100.0)
                    .with_attack(8_000.0)
            }),
            SimTime::from_secs(5),
        ),
        (
            // Leaf-spine fabric with mostly-legitimate load: multi-hop
            // forwarding dominates over punts.
            "multirack_smoke",
            Box::new(|| {
                Scenario::multirack(2, 2)
                    .with_clients(200.0)
                    .with_attack(4_000.0)
            }),
            SimTime::from_secs(5),
        ),
        (
            // Telemetry worst case, exhaustive polling: the reference
            // side of the sampled-vs-exhaustive monitor comparison.
            "monitor_exhaustive_smoke",
            Box::new(monitor_bench_scenario),
            SimTime::from_secs(4),
        ),
        (
            // Same fabric and workload with sampled telemetry — the
            // monitor ingests only flows the sampler actually saw.
            "monitor_sampled_smoke",
            Box::new(move || monitor_bench_scenario().with_sampling_rate(sampling_rate)),
            SimTime::from_secs(4),
        ),
    ]
}

/// The scenario shape sharding is built for, added to the measured set by
/// `bench hotpath --shards N`: many racks with locally-sourced traffic and
/// a wide inter-rack lookahead window.
#[allow(clippy::type_complexity)]
fn sharded_bench_scenario() -> (&'static str, Box<dyn Fn() -> Scenario>, SimTime) {
    (
        "multirack_sharded",
        Box::new(|| {
            Scenario::multirack(8, 1)
                .with_interrack_propagation(SimDuration::from_micros(200))
                .with_rack_clients(400.0)
                .with_clients(100.0)
                .with_attack(2_000.0)
        }),
        SimTime::from_secs(5),
    )
}

/// One measured scenario result.
struct BenchResult {
    name: &'static str,
    sim_seconds: f64,
    events: u64,
    wall_seconds: f64,
    events_per_sec: f64,
}

fn run_hotpath(iters: u32, quiet: bool, shards: usize, sampling_rate: f64) -> Vec<BenchResult> {
    let mut results = Vec::new();
    let mut scenarios = hotpath_scenarios(sampling_rate);
    if shards > 1 {
        scenarios.push(sharded_bench_scenario());
    }
    for (name, make, horizon) in scenarios {
        let mut best: Option<(u64, f64)> = None; // (events, wall)
        for _ in 0..iters {
            let sim = make().build_until(HOTPATH_SEED, horizon);
            let start = std::time::Instant::now();
            let report = if shards > 1 {
                sim.run_sharded(horizon, shards, 0)
            } else {
                sim.run(horizon)
            };
            let wall = start.elapsed().as_secs_f64();
            let events = report.events_processed;
            if let Some((prev_events, _)) = best {
                // Determinism sanity: the same (scenario, seed) must
                // process the same event count every iteration.
                assert_eq!(prev_events, events, "{name}: nondeterministic event count");
            }
            if best.map(|(_, w)| wall < w).unwrap_or(true) {
                best = Some((events, wall));
            }
        }
        let (events, wall) = best.unwrap();
        let eps = events as f64 / wall.max(1e-9);
        if !quiet {
            eprintln!("{name}: {events} events in {wall:.3}s ({:.0} ev/s)", eps);
        }
        results.push(BenchResult {
            name,
            sim_seconds: horizon.as_secs_f64(),
            events,
            wall_seconds: wall,
            events_per_sec: eps,
        });
    }
    results
}

/// Render one bench run as the `BENCH_hotpath.json` `runs[]` entry.
fn hotpath_run_json(label: &str, results: &[BenchResult]) -> scotch_runner::Json {
    use scotch_runner::Json;
    Json::obj().set("label", label).set(
        "scenarios",
        Json::Arr(
            results
                .iter()
                .map(|r| {
                    Json::obj()
                        .set("name", r.name)
                        .set("seed", HOTPATH_SEED)
                        .set("sim_seconds", r.sim_seconds)
                        .set("events", r.events)
                        .set("wall_seconds", r.wall_seconds)
                        .set("events_per_sec", r.events_per_sec)
                })
                .collect(),
        ),
    )
}

/// Extract `(name, events_per_sec)` pairs from a `BENCH_hotpath.json`
/// produced by [`hotpath_run_json`]. A full JSON parser is overkill for a
/// file we also write: scan for the `"name"`/`"events_per_sec"` lines and
/// let the last run in the file win.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            current = rest.split('"').next().map(String::from);
        } else if let Some(rest) = line.strip_prefix("\"events_per_sec\": ") {
            let val: f64 = match rest.trim_end_matches(',').parse() {
                Ok(v) => v,
                Err(_) => continue,
            };
            if let Some(name) = current.take() {
                if let Some(slot) = out.iter_mut().find(|(n, _)| *n == name) {
                    slot.1 = val;
                } else {
                    out.push((name, val));
                }
            }
        }
    }
    out
}

fn bench_main(args: &[String]) -> i32 {
    if args.first().map(String::as_str) != Some("hotpath") {
        eprintln!("usage: scotch-cli bench hotpath [--out FILE] [--baseline FILE]");
        eprintln!("                                [--label NAME] [--iters N] [--quiet]");
        return 2;
    }
    let opts = match parse_bench_args(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!("usage: scotch-cli bench hotpath [--out FILE] [--baseline FILE]");
            eprintln!("                                [--label NAME] [--iters N] [--quiet]");
            return if e == "help" { 0 } else { 2 };
        }
    };

    let results = run_hotpath(opts.iters, opts.quiet, opts.shards, opts.sampling_rate);
    let doc = scotch_runner::Json::obj()
        .set("bench", "hotpath")
        .set(
            "runs",
            scotch_runner::Json::Arr(vec![hotpath_run_json(&opts.label, &results)]),
        )
        .pretty();
    if let Err(e) = std::fs::write(&opts.out, doc) {
        eprintln!("error: failed to write {}: {e}", opts.out);
        return 1;
    }
    eprintln!("wrote {}", opts.out);

    let mut regressed = false;
    if let Some(path) = &opts.baseline {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let base = parse_baseline(&text);
                eprintln!("hotpath delta vs {path} (last run in file):");
                for r in &results {
                    match base.iter().find(|(n, _)| n == r.name) {
                        Some((_, b)) if *b > 0.0 => {
                            let ratio = r.events_per_sec / b;
                            eprintln!(
                                "  {}: {ratio:.2}x ({:.0} ev/s vs baseline {:.0} ev/s)",
                                r.name, r.events_per_sec, b
                            );
                            if ratio < 0.9 {
                                // A soft gate: a >10% drop fails only when
                                // --gate is set (same runner class as the
                                // committed baseline); otherwise CI runner
                                // clock noise makes this a warning.
                                regressed = true;
                                eprintln!(
                                    "warning: hotpath regression on {}: {ratio:.2}x vs baseline",
                                    r.name
                                );
                            }
                        }
                        _ => eprintln!("  {}: no baseline entry", r.name),
                    }
                }
            }
            Err(e) => eprintln!("warning: cannot read baseline {path}: {e}"),
        }
    }

    if opts.profile {
        eprintln!("dispatch-cost profile (wall clock; observability-only, never golden):");
        for (name, make, horizon) in hotpath_scenarios(opts.sampling_rate) {
            let mut sim = make().build_until(HOTPATH_SEED, horizon);
            sim.enable_profiling();
            let report = sim.run(horizon);
            eprintln!("{name}:");
            eprintln!(
                "  {:<22} {:>10} {:>9} {:>9} {:>9} {:>10}",
                "event", "count", "mean_ns", "p50_ns", "p99_ns", "total_ms"
            );
            for e in &report.profile {
                eprintln!(
                    "  {:<22} {:>10} {:>9.0} {:>9.0} {:>9.0} {:>10.2}",
                    e.name,
                    e.count,
                    e.mean_ns,
                    e.p50_ns,
                    e.p99_ns,
                    e.total_ns / 1e6
                );
            }
            // Top cost centers at a glance, including the refined rows
            // (tunnel transit, PacketIn, FlowMod) that split the hottest
            // dispatch kinds by what actually happened inside them.
            let mut by_total: Vec<_> = report.profile.iter().filter(|e| e.count > 0).collect();
            by_total.sort_by(|a, b| b.total_ns.total_cmp(&a.total_ns));
            let top: Vec<String> = by_total
                .iter()
                .take(3)
                .map(|e| format!("{} {:.2}ms", e.name, e.total_ns / 1e6))
                .collect();
            eprintln!("  top kinds by total: {}", top.join(", "));
        }
    }

    if opts.trace_overhead {
        eprintln!(
            "observability overhead (everything off vs flight-recorder tracing at the \
             default level vs journey sampling at rate {:.6}):",
            DEFAULT_JOURNEY_RATE
        );
        let mut worst_trace: f64 = 0.0;
        let mut worst_journey: f64 = 0.0;
        for (name, make, horizon) in hotpath_scenarios(opts.sampling_rate) {
            let ([off, trace, journey], [trace_ratio, journey_ratio]) =
                overhead_walls(&*make, horizon, opts.iters.max(7));
            let trace_pct = (trace_ratio - 1.0) * 100.0;
            let journey_pct = (journey_ratio - 1.0) * 100.0;
            worst_trace = worst_trace.max(trace_pct);
            worst_journey = worst_journey.max(journey_pct);
            eprintln!(
                "  {name}: {off:.3}s off, {trace:.3}s trace ({trace_pct:+.1}%), \
                 {journey:.3}s journeys ({journey_pct:+.1}%)"
            );
        }
        if worst_trace > 5.0 {
            eprintln!("warning: tracing overhead {worst_trace:.1}% exceeds the 5% budget");
        }
        if worst_journey > 5.0 {
            eprintln!(
                "error: journey-tracing overhead {worst_journey:.1}% exceeds the 5% hard budget"
            );
            return 1;
        } else if worst_journey > 2.0 {
            eprintln!(
                "warning: journey-tracing overhead {worst_journey:.1}% exceeds the 2% budget"
            );
        }
    }

    if opts.profile_shards {
        if opts.shards < 2 {
            eprintln!("error: --profile-shards needs --shards N (N >= 2)");
            return 2;
        }
        // Lane profile of the sharded fabric, then the profiler's own cost
        // measured under the same interleaved median-paired-ratio
        // discipline as the tracing/journey gates above.
        let (name, make, horizon) = sharded_bench_scenario();
        let mut sim = make().build_until(HOTPATH_SEED, horizon);
        sim.enable_shard_profiling();
        let sizes =
            scotch_net::Partition::by_regions(sim.topo.node_count(), &sim.regions, opts.shards)
                .shard_sizes();
        let report = sim.run_sharded(horizon, opts.shards, 0);
        eprintln!("shard profile ({name}, {} shards):", opts.shards);
        print_shard_report(&report, &sizes);

        let ratio = shard_profile_overhead(&*make, horizon, opts.shards, opts.iters.max(5));
        let pct = (ratio - 1.0) * 100.0;
        eprintln!("shard-profiling overhead ({name}): {pct:+.1}% (median paired ratio)");
        if pct > 5.0 {
            eprintln!("error: shard-profiling overhead {pct:.1}% exceeds the 5% hard budget");
            return 1;
        } else if pct > 2.0 {
            eprintln!("warning: shard-profiling overhead {pct:.1}% exceeds the 2% budget");
        }
    }
    if opts.gate && regressed {
        eprintln!("error: --gate set and at least one scenario regressed >10%");
        return 1;
    }
    0
}

/// Interleaved overhead measurement for one bench scenario in three
/// configurations: `[everything off, flight recorder on, journey sampling
/// at the default rate]`. Returns the best wall time per configuration
/// (for display) and the **median paired ratio** of trace/off and
/// journeys/off (for gating): the three configurations run back-to-back
/// inside each iteration, so a slow phase (CPU frequency shift, noisy
/// neighbour) inflates numerator and denominator of that iteration's
/// ratio together instead of biasing whichever configuration happened to
/// run during it, and the median discards the remaining outliers.
fn overhead_walls(
    make: &dyn Fn() -> Scenario,
    horizon: SimTime,
    iters: u32,
) -> ([f64; 3], [f64; 2]) {
    const CONFIGS: [(bool, Option<f64>); 3] = [
        (false, None),
        (true, None),
        (false, Some(DEFAULT_JOURNEY_RATE)),
    ];
    let mut best = [f64::INFINITY; 3];
    let mut ratios: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for _ in 0..iters {
        let mut wall = [0.0f64; 3];
        for (slot, (tracing, journey_rate)) in CONFIGS.into_iter().enumerate() {
            let mut s = make();
            if tracing {
                s = s.with_tracing(TraceConfig::default());
            }
            if let Some(rate) = journey_rate {
                s = s.with_journey_rate(rate);
            }
            let sim = s.build_until(HOTPATH_SEED, horizon);
            let start = std::time::Instant::now();
            let _ = sim.run(horizon);
            wall[slot] = start.elapsed().as_secs_f64();
            best[slot] = best[slot].min(wall[slot]);
        }
        ratios[0].push(wall[1] / wall[0].max(1e-9));
        ratios[1].push(wall[2] / wall[0].max(1e-9));
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let [trace_ratios, journey_ratios] = ratios;
    (best, [median(trace_ratios), median(journey_ratios)])
}

/// Interleaved overhead of `--profile-shards` on one sharded scenario:
/// profiling-off and profiling-on run back-to-back each iteration, and the
/// gate reads the median paired on/off wall-time ratio (the PR 8
/// discipline — per-iteration pairing cancels machine-wide slowdowns, the
/// median discards outliers).
fn shard_profile_overhead(
    make: &dyn Fn() -> Scenario,
    horizon: SimTime,
    shards: usize,
    iters: u32,
) -> f64 {
    let mut ratios = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let mut wall = [0.0f64; 2];
        for (slot, profiled) in [(0, false), (1, true)] {
            let mut sim = make().build_until(HOTPATH_SEED, horizon);
            if profiled {
                sim.enable_shard_profiling();
            }
            let start = std::time::Instant::now();
            let _ = sim.run_sharded(horizon, shards, 0);
            wall[slot] = start.elapsed().as_secs_f64();
        }
        ratios.push(wall[1] / wall[0].max(1e-9));
    }
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

/// Parsed chaos-specific flags (everything else is forwarded to
/// [`parse_args`]).
#[derive(Debug, Clone, PartialEq)]
struct ChaosOptions {
    plan: Option<String>,
    events: usize,
    search: Option<u64>,
    shrink_runs: usize,
    failover_bound: Option<f64>,
    setup_bound: Option<f64>,
    max_undeliverable: u64,
    report: Option<String>,
    plan_out: Option<String>,
    promote: Option<String>,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            plan: None,
            events: 12,
            search: None,
            shrink_runs: 200,
            failover_bound: None,
            setup_bound: None,
            max_undeliverable: 0,
            report: None,
            plan_out: None,
            promote: None,
        }
    }
}

fn parse_chaos_args(args: &[String]) -> Result<(ChaosOptions, Vec<String>), String> {
    let mut c = ChaosOptions::default();
    let mut rest = Vec::new();
    let mut i = 0;
    let next = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--plan" => c.plan = Some(next(&mut i)?),
            "--events" => {
                c.events = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--events: {e}"))?
            }
            "--search" => {
                c.search = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("--search: {e}"))?,
                )
            }
            "--shrink-runs" => {
                c.shrink_runs = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--shrink-runs: {e}"))?
            }
            "--failover-bound" => {
                c.failover_bound = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("--failover-bound: {e}"))?,
                )
            }
            "--setup-bound" => {
                c.setup_bound = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("--setup-bound: {e}"))?,
                )
            }
            "--max-undeliverable" => {
                c.max_undeliverable = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--max-undeliverable: {e}"))?
            }
            "--report" => c.report = Some(next(&mut i)?),
            "--plan-out" => c.plan_out = Some(next(&mut i)?),
            "--promote" => {
                let name = next(&mut i)?;
                if name.is_empty()
                    || !name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    return Err(format!("--promote: bad fixture name `{name}`"));
                }
                c.promote = Some(name);
            }
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    Ok((c, rest))
}

/// One line per fault kind actually injected, from the chaos metrics.
fn injected_summary(report: &scotch::Report) -> String {
    let mut parts = Vec::new();
    for name in scotch_sim::fault::FAULT_KIND_NAMES {
        let n = report
            .metrics
            .get(&format!("chaos.injected.{name}"))
            .unwrap_or(0.0) as u64;
        if n > 0 {
            parts.push(format!("{name}={n}"));
        }
    }
    let skipped = report.metrics.get("chaos.skipped").unwrap_or(0.0) as u64;
    if skipped > 0 {
        parts.push(format!("skipped={skipped}"));
    }
    if parts.is_empty() {
        "none".into()
    } else {
        parts.join(" ")
    }
}

/// Write the violation report (plan + rendered violations) for artifacts.
fn write_chaos_report(
    path: &str,
    plan: &scotch_sim::fault::FaultPlan,
    seed: u64,
    violations: &[scotch::Violation],
) {
    let mut body = format!("# chaos violation report (seed {seed})\n# plan:\n");
    for line in plan.render().lines() {
        body.push_str("#   ");
        body.push_str(line);
        body.push('\n');
    }
    body.push_str(&scotch::chaos::render_violations(violations));
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("warning: failed to write {path}: {e}");
    }
}

/// Commit a failing plan as a regression fixture under
/// `crates/scotch/tests/fixtures/`. The header comment records everything
/// a replay needs — seed, horizon, and the knobs that differ from their
/// defaults — and `FaultPlan::parse` skips it, so the fixture file is
/// also a valid `--plan` input.
fn promote_fixture(
    name: &str,
    plan: &scotch_sim::fault::FaultPlan,
    seed: u64,
    opts: &Options,
    copts: &ChaosOptions,
    violations: &[scotch::Violation],
) {
    let dir = std::path::Path::new("crates/scotch/tests/fixtures");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let mut body = format!("# chaos fixture `{name}` (promoted minimal failing plan)\n");
    body.push_str(&format!("# seed={seed}\n"));
    body.push_str(&format!("# duration_s={}\n", opts.duration));
    body.push_str(&format!("# scenario={}\n", opts.scenario));
    body.push_str(&format!("# controllers={}\n", opts.controllers));
    if let Some(us) = opts.sync_latency_us {
        body.push_str(&format!("# sync_latency_us={us}\n"));
    }
    if let Some(secs) = copts.failover_bound {
        body.push_str(&format!("# failover_bound_s={secs}\n"));
    }
    if copts.max_undeliverable > 0 {
        body.push_str(&format!(
            "# max_undeliverable={}\n",
            copts.max_undeliverable
        ));
    }
    let mut names: Vec<&str> = violations.iter().map(|v| v.invariant).collect();
    names.dedup();
    body.push_str(&format!("# violations: {}\n", names.join(" ")));
    body.push_str(&plan.render());
    let path = dir.join(format!("{name}.plan"));
    match std::fs::write(&path, body) {
        Ok(()) => println!("chaos: promoted failing plan to {}", path.display()),
        Err(e) => eprintln!("warning: failed to write {}: {e}", path.display()),
    }
}

fn chaos_main(args: &[String]) -> i32 {
    let usage = || {
        eprintln!("usage: scotch-cli chaos [SCENARIO OPTIONS] [--plan FILE | --events N]");
        eprintln!("                        [--search N] [--shrink-runs N] [--failover-bound S]");
        eprintln!(
            "                        [--setup-bound S] [--max-undeliverable N] [--report FILE]"
        );
        eprintln!("                        [--plan-out FILE] [--promote NAME]");
    };
    let (copts, rest) = match parse_chaos_args(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            return 2;
        }
    };
    let opts = match parse_args(&rest) {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            usage();
            return if e == "help" { 0 } else { 2 };
        }
    };

    let horizon = SimTime::from_secs_f64(opts.duration);
    let horizon_dur = SimDuration::from_secs_f64(opts.duration);
    let mut cfg = scotch::ChaosConfig::default();
    if let Some(secs) = copts.failover_bound {
        cfg.failover_bound = SimDuration::from_secs_f64(secs);
    }
    if let Some(secs) = copts.setup_bound {
        cfg.setup_latency_bound = Some(SimDuration::from_secs_f64(secs));
    }
    cfg.max_undeliverable = copts.max_undeliverable;

    let run_one = |plan: &scotch_sim::fault::FaultPlan, seed: u64| {
        scotch::chaos::run_plan(&|| build_scenario(&opts), seed, horizon, plan, &cfg)
    };

    // Pinned-plan mode, or a single generated plan when --search is absent.
    let Some(tries) = copts.search else {
        let plan = match &copts.plan {
            Some(path) => {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: cannot read plan {path}: {e}");
                        return 2;
                    }
                };
                match scotch_sim::fault::FaultPlan::parse(&text) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("error: bad plan {path}: {e}");
                        return 2;
                    }
                }
            }
            None => scotch::chaos::generate_plan(opts.seed, horizon_dur, copts.events),
        };
        let outcome = run_one(&plan, opts.seed);
        println!(
            "chaos: seed={} plan={} events, injected: {}",
            opts.seed,
            plan.len(),
            injected_summary(&outcome.report)
        );
        if let Some(path) = &copts.plan_out {
            if let Err(e) = std::fs::write(path, plan.render()) {
                eprintln!("warning: failed to write {path}: {e}");
            }
        }
        // Shard-count invariance check: the same (scenario, seed, plan) on
        // the sharded engine must reproduce the sequential canonical
        // report byte-for-byte. (The invariant checker itself always runs
        // on the sequential report — it needs the full trace.)
        if opts.shards > 1 {
            let sharded = build_scenario(&opts)
                .with_fault_plan(plan.clone())
                .run_sharded(horizon, opts.seed, opts.shards, opts.threads);
            if sharded.canonical_json() != outcome.report.canonical_json() {
                eprintln!(
                    "error: canonical report diverged at --shards {}",
                    opts.shards
                );
                return 1;
            }
            println!(
                "chaos: canonical report identical at --shards {}{}",
                opts.shards,
                lane_balance_suffix(&sharded)
            );
        }
        if outcome.violations.is_empty() {
            println!("chaos: all invariants hold");
            return 0;
        }
        println!("chaos: {} violation(s)", outcome.violations.len());
        print!("{}", scotch::chaos::render_violations(&outcome.violations));
        if let Some(path) = &copts.report {
            write_chaos_report(path, &plan, opts.seed, &outcome.violations);
        }
        if let Some(name) = &copts.promote {
            promote_fixture(name, &plan, opts.seed, &opts, &copts, &outcome.violations);
        }
        return 1;
    };

    // Search mode: generate a fresh plan per seed until one violates an
    // invariant, then shrink it to a (locally) minimal failing plan.
    for seed in opts.seed..opts.seed.saturating_add(tries) {
        let plan = scotch::chaos::generate_plan(seed, horizon_dur, copts.events);
        let outcome = run_one(&plan, seed);
        if outcome.violations.is_empty() {
            println!(
                "chaos: seed={seed} clean ({})",
                injected_summary(&outcome.report)
            );
            continue;
        }
        println!(
            "chaos: seed={seed} FAILS with {} violation(s); shrinking (budget {} runs)",
            outcome.violations.len(),
            copts.shrink_runs
        );
        let (small, runs) = scotch::chaos::shrink(
            &plan,
            |cand| !run_one(cand, seed).violations.is_empty(),
            copts.shrink_runs,
        );
        let final_outcome = run_one(&small, seed);
        println!(
            "chaos: shrunk {} -> {} events in {} runs; minimal plan:",
            plan.len(),
            small.len(),
            runs
        );
        print!("{}", small.render());
        print!(
            "{}",
            scotch::chaos::render_violations(&final_outcome.violations)
        );
        if let Some(path) = &copts.plan_out {
            if let Err(e) = std::fs::write(path, small.render()) {
                eprintln!("warning: failed to write {path}: {e}");
            }
        }
        if let Some(path) = &copts.report {
            write_chaos_report(path, &small, seed, &final_outcome.violations);
        }
        if let Some(name) = &copts.promote {
            promote_fixture(name, &small, seed, &opts, &copts, &final_outcome.violations);
        }
        return 1;
    }
    println!("chaos: {tries} seed(s) searched, no invariant violations");
    0
}

/// Parsed `determinism` subcommand line.
#[derive(Debug, Clone, PartialEq)]
struct DeterminismOptions {
    shards: Vec<usize>,
    threads: usize,
    duration: f64,
    plan: Option<String>,
}

impl Default for DeterminismOptions {
    fn default() -> Self {
        DeterminismOptions {
            shards: vec![2, 4, 8],
            threads: 0,
            duration: 2.0,
            plan: None,
        }
    }
}

fn parse_determinism_args(args: &[String]) -> Result<DeterminismOptions, String> {
    let mut o = DeterminismOptions::default();
    let mut i = 0;
    let next = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                let csv = next(&mut i)?;
                let mut list = Vec::new();
                for part in csv.split(',').filter(|s| !s.is_empty()) {
                    let n: usize = part
                        .trim()
                        .parse()
                        .map_err(|e| format!("--shards '{part}': {e}"))?;
                    if n < 2 {
                        return Err("--shards entries must be at least 2".into());
                    }
                    list.push(n);
                }
                if list.is_empty() {
                    return Err("--shards needs at least one count".into());
                }
                o.shards = list;
            }
            "--threads" => {
                o.threads = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--duration" => {
                o.duration = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?
            }
            "--plan" => o.plan = Some(next(&mut i)?),
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown determinism option {other}")),
        }
        i += 1;
    }
    Ok(o)
}

/// The determinism matrix's scenario set: the golden-report shapes (which
/// exercise the sequential-fallback clamp) plus multirack variants that
/// genuinely partition, including one under a fault plan.
#[allow(clippy::type_complexity)]
fn determinism_cases(
    plan: scotch_sim::fault::FaultPlan,
) -> Vec<(&'static str, Box<dyn Fn() -> Scenario>)> {
    let parallel = || {
        Scenario::multirack(4, 1)
            .with_interrack_propagation(SimDuration::from_micros(200))
            .with_rack_clients(150.0)
            .with_clients(80.0)
            .with_attack(400.0)
    };
    vec![
        (
            "single_ddos",
            Box::new(|| {
                Scenario::single_switch(scotch_switch::SwitchProfile::pica8_pronto_3780())
                    .with_clients(100.0)
                    .with_attack(2_000.0)
            }) as Box<dyn Fn() -> Scenario>,
        ),
        (
            "overlay_ddos",
            Box::new(|| {
                Scenario::overlay_datacenter(4)
                    .with_servers(2)
                    .with_clients(100.0)
                    .with_attack(2_000.0)
            }),
        ),
        ("multirack_parallel", Box::new(parallel)),
        (
            // Sampled telemetry must be shard-count invariant too: the
            // sampler streams are keyed by (seed, node), not by shard.
            "multirack_sampled",
            Box::new(move || parallel().with_sampling_rate(1.0 / 64.0)),
        ),
        (
            "multirack_chaos",
            Box::new({
                let plan = plan.clone();
                move || parallel().with_fault_plan(plan.clone())
            }),
        ),
        (
            // Controller-cluster cell: a 3-replica cluster under the same
            // fault plan plus a scripted mid-run failover of replica 0.
            // Mastership handoffs and pending-queue migration must land
            // identically at every shard count.
            "multirack_cluster",
            Box::new(move || {
                parallel()
                    .with_controllers(3)
                    .with_sync_latency(SimDuration::from_micros(500))
                    .with_fault_plan(plan.clone())
                    .with_failover_at(0, SimTime::from_secs_f64(0.5))
            }),
        ),
    ]
}

/// Determinism matrix seed — the goldens' seed, so the sequential arm of
/// the matrix pins the exact reports the golden tests check.
const DETERMINISM_SEED: u64 = 20141202;

fn determinism_main(args: &[String]) -> i32 {
    let opts = match parse_determinism_args(args) {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!("usage: scotch-cli determinism [--shards CSV] [--threads N]");
            eprintln!("                              [--duration SECS] [--plan FILE]");
            return if e == "help" { 0 } else { 2 };
        }
    };
    let horizon = SimTime::from_secs_f64(opts.duration);
    let plan = match &opts.plan {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read plan {path}: {e}");
                    return 2;
                }
            };
            match scotch_sim::fault::FaultPlan::parse(&text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: bad plan {path}: {e}");
                    return 2;
                }
            }
        }
        None => scotch::chaos::generate_plan(
            DETERMINISM_SEED,
            SimDuration::from_secs_f64(opts.duration),
            8,
        ),
    };

    let mut diverged = 0u32;
    for (name, make) in determinism_cases(plan) {
        let base = make().run(horizon, DETERMINISM_SEED).canonical_json();
        for &k in &opts.shards {
            let rep = make().run_sharded(horizon, DETERMINISM_SEED, k, opts.threads);
            if rep.canonical_json() == base {
                println!(
                    "determinism: {name} --shards {k}: ok{}",
                    lane_balance_suffix(&rep)
                );
            } else {
                diverged += 1;
                eprintln!("determinism: {name} --shards {k}: DIVERGED");
            }
        }
    }

    // The telemetry degeneration contract (DESIGN.md §13): sampled
    // telemetry at rate 1.0 must reproduce the exhaustive-mode canonical
    // report byte-for-byte on the golden overlay shape.
    let overlay = || {
        Scenario::overlay_datacenter(4)
            .with_servers(2)
            .with_clients(100.0)
            .with_attack(2_000.0)
    };
    let exhaustive = overlay().run(horizon, DETERMINISM_SEED).canonical_json();
    let rate_one = overlay()
        .with_sampling_rate(1.0)
        .run(horizon, DETERMINISM_SEED)
        .canonical_json();
    if rate_one == exhaustive {
        println!("determinism: overlay_ddos sampled-rate-1.0 == exhaustive: ok");
    } else {
        diverged += 1;
        eprintln!("determinism: overlay_ddos sampled-rate-1.0 == exhaustive: DIVERGED");
    }
    if diverged > 0 {
        eprintln!("error: {diverged} matrix cell(s) diverged from the sequential report");
        1
    } else {
        println!("determinism: all cells byte-identical");
        0
    }
}

/// Parsed `shards` subcommand flags (everything else is forwarded to
/// [`parse_args`]).
#[derive(Debug, Clone, Default, PartialEq)]
struct ShardsOptions {
    out: Option<String>,
    check: bool,
}

/// Split a `shards` command line into shards flags and scenario flags.
fn parse_shards_args(args: &[String]) -> Result<(ShardsOptions, Vec<String>), String> {
    let mut s = ShardsOptions::default();
    let mut rest = Vec::new();
    let mut i = 0;
    let next = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--out" => s.out = Some(next(&mut i)?),
            "--check" => s.check = true,
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    Ok((s, rest))
}

/// The `shards` subcommand's default workload when no scenario flags are
/// given: the determinism matrix's `multirack_parallel` shape, which
/// genuinely partitions at every shard count the CI matrix checks.
fn default_shards_options() -> Options {
    Options {
        scenario: "multirack".into(),
        racks: 4,
        mesh: 1,
        interrack_us: Some(200),
        rack_clients: Some(150.0),
        clients: 80.0,
        attack: Some(400.0),
        duration: 2.0,
        ..Options::default()
    }
}

/// Warn-threshold for the hub shard's share of lane events (`--check`).
const HUB_SHARE_WARN: f64 = 0.60;
/// Warn-threshold for mean lane idle (1 − mean utilization) (`--check`).
const LANE_IDLE_WARN: f64 = 0.50;

/// Assemble the machine-readable scaling report for one sharded run:
/// deterministic sim-time telemetry (lanes, epochs, epoch-width quantiles,
/// inter-shard message matrix, hub share) plus the wall-clock lane profile
/// when `--profile-shards` ran.
fn shard_report_json(
    report: &scotch::Report,
    shard_sizes: &[usize],
    scenario: &str,
    seed: u64,
) -> scotch_runner::Json {
    use scotch_runner::Json;
    let metric = |name: &str| report.metrics.get(name).unwrap_or(0.0);
    let m = metric("shard.lanes") as usize;
    let mut lanes = Vec::with_capacity(m);
    let rows = report
        .shard_profile
        .as_ref()
        .map(|p| p.lane_rows())
        .unwrap_or_default();
    for s in 0..m {
        let mut lane = Json::obj()
            .set("lane", s)
            .set("nodes", shard_sizes.get(s).copied().unwrap_or(0))
            .set("events", metric(&format!("shard.lane.{s}.events")));
        if let Some(r) = rows.get(s) {
            lane = lane
                .set("busy_ms", r.busy_ns / 1e6)
                .set("stall_ms", r.stall_ns / 1e6)
                .set("utilization", r.utilization)
                .set("util_p50", r.util_p50)
                .set("util_p99", r.util_p99)
                .set("critical_epochs", r.critical_epochs);
        }
        lanes.push(lane);
    }
    let xmsgs: Vec<Json> = (0..m)
        .map(|src| {
            Json::Arr(
                (0..m)
                    .map(|dst| Json::from(metric(&format!("shard.xmsgs.{src}.{dst}"))))
                    .collect(),
            )
        })
        .collect();
    let mut doc = Json::obj()
        .set("schema", "scotch-shard-report/v1")
        .set("scenario", scenario)
        .set("seed", seed)
        .set("shards", m)
        .set("epochs", metric("shard.epochs"))
        .set("centrals", metric("shard.centrals"))
        .set(
            "epoch_width_ns",
            Json::obj()
                .set("mean", metric("shard.epoch_width_ns.mean"))
                .set("p50", metric("shard.epoch_width_ns.p50"))
                .set("p99", metric("shard.epoch_width_ns.p99"))
                .set("max", metric("shard.epoch_width_ns.max")),
        )
        .set("handoffs", metric("shard.handoffs"))
        .set("hub_share", metric("shard.hub_share_ppm") / 1e6)
        .set("lanes", Json::Arr(lanes))
        .set("xmsgs", Json::Arr(xmsgs));
    if let Some(p) = report.shard_profile.as_ref() {
        doc = doc.set(
            "wall",
            Json::obj()
                .set("barrier_ms", p.barrier_ns() / 1e6)
                .set("total_ms", p.total_ns() / 1e6)
                .set(
                    "barrier_frac",
                    if p.total_ns() > 0.0 {
                        p.barrier_ns() / p.total_ns()
                    } else {
                        0.0
                    },
                )
                .set("mean_utilization", p.mean_utilization()),
        );
    }
    doc
}

/// Print the human-readable scaling report (the table twin of
/// [`shard_report_json`]).
fn print_shard_report(report: &scotch::Report, shard_sizes: &[usize]) {
    let metric = |name: &str| report.metrics.get(name).unwrap_or(0.0);
    let m = metric("shard.lanes") as usize;
    println!(
        "shard scaling report: {m} lanes, {} epochs (width p50 {}, p99 {}), {} handoffs",
        metric("shard.epochs") as u64,
        fmt_ns(metric("shard.epoch_width_ns.p50") as u64),
        fmt_ns(metric("shard.epoch_width_ns.p99") as u64),
        metric("shard.handoffs") as u64,
    );
    println!(
        "hub share: {:.1}% of lane events (lane 0 runs spine + controller)",
        metric("shard.hub_share_ppm") / 1e4
    );
    let rows = report
        .shard_profile
        .as_ref()
        .map(|p| p.lane_rows())
        .unwrap_or_default();
    println!(
        "  {:>5} {:>6} {:>10} {:>10} {:>10} {:>6} {:>8} {:>9}",
        "lane", "nodes", "events", "busy_ms", "stall_ms", "util", "util_p99", "critical"
    );
    for s in 0..m {
        let events = metric(&format!("shard.lane.{s}.events")) as u64;
        let nodes = shard_sizes.get(s).copied().unwrap_or(0);
        let tag = if s == 0 {
            "0*".to_string()
        } else {
            s.to_string()
        };
        match rows.get(s) {
            Some(r) => println!(
                "  {tag:>5} {nodes:>6} {events:>10} {:>10.2} {:>10.2} {:>6.2} {:>8.2} {:>9}",
                r.busy_ns / 1e6,
                r.stall_ns / 1e6,
                r.utilization,
                r.util_p99,
                r.critical_epochs
            ),
            None => println!(
                "  {tag:>5} {nodes:>6} {events:>10} {:>10} {:>10} {:>6} {:>8} {:>9}",
                "-", "-", "-", "-", "-"
            ),
        }
    }
    if let Some(p) = report.shard_profile.as_ref() {
        let frac = if p.total_ns() > 0.0 {
            p.barrier_ns() / p.total_ns()
        } else {
            0.0
        };
        println!(
            "barrier wall: {:.1}ms of {:.1}ms total ({:.1}%), mean lane utilization {:.2}",
            p.barrier_ns() / 1e6,
            p.total_ns() / 1e6,
            frac * 100.0,
            p.mean_utilization()
        );
    }
    if metric("shard.handoffs") > 0.0 {
        println!("inter-shard messages (src row -> dst column):");
        print!("  {:>5}", "");
        for dst in 0..m {
            print!(" {:>9}", format!("d{dst}"));
        }
        println!();
        for src in 0..m {
            print!("  {:>5}", format!("s{src}"));
            for dst in 0..m {
                let n = metric(&format!("shard.xmsgs.{src}.{dst}")) as u64;
                if src == dst {
                    print!(" {:>9}", "-");
                } else {
                    print!(" {n:>9}");
                }
            }
            println!();
        }
    }
}

/// Compact per-lane balance tail for `determinism` / `chaos --shards`
/// lines: `" (lanes [a, b, ...] events, hub 42%)"`. Empty when the run fell
/// back to sequential (no `shard.*` telemetry in the report).
fn lane_balance_suffix(report: &scotch::Report) -> String {
    let Some(lanes) = report.metrics.get("shard.lanes") else {
        return String::new();
    };
    let events: Vec<String> = (0..lanes as usize)
        .map(|s| {
            report
                .metrics
                .get(&format!("shard.lane.{s}.events"))
                .map_or_else(|| "?".into(), |v| format!("{}", v as u64))
        })
        .collect();
    let hub = report
        .metrics
        .get("shard.hub_share_ppm")
        .map_or_else(String::new, |ppm| format!(", hub {:.0}%", ppm / 10_000.0));
    format!(" (lanes [{}] events{hub})", events.join(", "))
}

/// `--check`: warn-only health probe over the scaling report. Returns the
/// warning lines (empty = healthy); the caller prints them and still
/// exits 0.
fn shard_check_warnings(report: &scotch::Report) -> Vec<String> {
    let metric = |name: &str| report.metrics.get(name).unwrap_or(0.0);
    let mut warnings = Vec::new();
    let hub_share = metric("shard.hub_share_ppm") / 1e6;
    if hub_share > HUB_SHARE_WARN {
        warnings.push(format!(
            "hub shard holds {:.1}% of lane events (> {:.0}%): the spine/controller \
             lane is the serial bottleneck at this shard count",
            hub_share * 100.0,
            HUB_SHARE_WARN * 100.0
        ));
    }
    if let Some(p) = report.shard_profile.as_ref() {
        let idle = 1.0 - p.mean_utilization();
        if p.epochs() > 0 && idle > LANE_IDLE_WARN {
            warnings.push(format!(
                "mean lane idle {:.1}% (> {:.0}%): lanes mostly wait at barriers — \
                 widen the lookahead or lower the shard count",
                idle * 100.0,
                LANE_IDLE_WARN * 100.0
            ));
        }
    }
    warnings
}

fn shards_main(args: &[String]) -> i32 {
    let usage = || {
        eprintln!("usage: scotch-cli shards [SCENARIO OPTIONS] [--out FILE] [--check]");
        eprintln!("       (defaults to the multirack_parallel determinism shape, 4 shards)");
    };
    let (sopts, rest) = match parse_shards_args(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            return 2;
        }
    };
    let mut opts = if rest.is_empty() {
        default_shards_options()
    } else {
        match parse_args(&rest) {
            Ok(o) => o,
            Err(e) => {
                if e != "help" {
                    eprintln!("error: {e}\n");
                }
                usage();
                return if e == "help" { 0 } else { 2 };
            }
        }
    };
    if opts.shards < 2 {
        opts.shards = 4;
    }

    let horizon = SimTime::from_secs_f64(opts.duration);
    let mut sim = build_scenario(&opts).build_until(opts.seed, horizon);
    sim.enable_shard_profiling();
    let shard_sizes =
        scotch_net::Partition::by_regions(sim.topo.node_count(), &sim.regions, opts.shards)
            .shard_sizes();
    let report = sim.run_sharded(horizon, opts.shards, opts.threads);
    if report.metrics.get("shard.lanes").is_none() {
        eprintln!(
            "error: the run fell back to sequential execution (scenario '{}' cannot \
             shard); no scaling report to print",
            opts.scenario
        );
        return 1;
    }

    let doc = shard_report_json(&report, &shard_sizes, &opts.scenario, opts.seed);
    if opts.json {
        println!("{}", doc.pretty());
    } else {
        print_shard_report(&report, &shard_sizes);
    }
    if let Some(path) = &sopts.out {
        if let Err(e) = std::fs::write(path, doc.pretty()) {
            eprintln!("error: failed to write {path}: {e}");
            return 1;
        }
        eprintln!("wrote scaling report to {path}");
    }
    if sopts.check {
        let warnings = shard_check_warnings(&report);
        for w in &warnings {
            eprintln!("warning: {w}");
        }
        if warnings.is_empty() {
            eprintln!("check: shard health ok");
        }
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        std::process::exit(trace_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("explain") {
        std::process::exit(explain_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("determinism") {
        std::process::exit(determinism_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("shards") {
        std::process::exit(shards_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("chaos") {
        std::process::exit(chaos_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("sweep") {
        std::process::exit(sweep_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("bench") {
        std::process::exit(bench_main(&args[1..]));
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!("usage: see the doc comment at the top of scotch-cli.rs, or README.md");
            std::process::exit(if e == "help" { 0 } else { 2 });
        }
    };

    let horizon = SimTime::from_secs_f64(opts.duration);
    let mut sim = build_scenario(&opts).build_until(opts.seed, horizon);
    let pcap_node = opts.pcap.as_ref().and_then(|(name, _)| {
        let found = (0..sim.topo.node_count() as u32)
            .map(scotch_net::NodeId)
            .find(|n| sim.topo.name(*n) == name);
        if let Some(n) = found {
            sim.capture_at(n);
        } else {
            eprintln!("warning: no node named '{name}'; capture disabled");
        }
        found
    });

    // The sharded engine clamps non-partitionable scenarios to the
    // sequential path itself; the trace workload clamp mirrors
    // `Scenario::run_sharded` (multi-host sources cannot be partitioned).
    let sharded = opts.shards > 1 && opts.trace.is_none();
    if opts.profile_shards && sharded {
        sim.enable_shard_profiling();
    }
    let shard_sizes = (opts.profile_shards && sharded).then(|| {
        scotch_net::Partition::by_regions(sim.topo.node_count(), &sim.regions, opts.shards)
            .shard_sizes()
    });
    let report = if sharded {
        sim.run_sharded(horizon, opts.shards, opts.threads)
    } else {
        sim.run(horizon)
    };

    if let (Some(node), Some((_, file))) = (pcap_node, opts.pcap.as_ref()) {
        if let Some(cap) = report.captures.get(&node) {
            if let Err(e) = std::fs::write(file, cap.bytes()) {
                eprintln!("warning: failed to write {file}: {e}");
            } else {
                eprintln!("wrote {} packets to {file}", cap.records());
            }
        }
    }

    let steady = report.client_failure_fraction_between(
        SimTime::from_secs(1),
        horizon.saturating_sub(SimDuration::from_secs(1)),
    );
    if opts.json {
        // Hand-rolled JSON keeps the CLI dependency-free; the bench crate
        // offers full serde output.
        println!(
            "{{\"flows\":{},\"client_flows\":{},\"attack_flows\":{},\
             \"client_failure\":{:.6},\"client_failure_steady\":{:.6},\
             \"physical_admitted\":{},\"overlay_admitted\":{},\"migrations\":{},\
             \"activations\":{},\"withdrawals\":{},\"failovers\":{},\
             \"drops_ofa\":{},\"drops_dataplane\":{},\"drops_link\":{},\
             \"events\":{}}}",
            report.flows.len(),
            report.client_flows(),
            report.attack_flows(),
            report.client_failure_fraction(),
            steady,
            report.app.physical_admitted,
            report.app.overlay_admitted,
            report.app.migrations,
            report.app.activations,
            report.app.withdrawals,
            report.app.failovers,
            report.drops.ofa_overload,
            report.drops.dataplane,
            report.drops.link_queue,
            report.events_processed,
        );
    } else {
        println!("{}", report.summary());
        println!(
            "steady-state client failure (excluding first/last second): {:.2}%",
            steady * 100.0
        );
        if let Some(fct) = report.mean_client_fct() {
            println!("mean client flow completion time: {:.4}s", fct);
        }
    }
    if let Some(sizes) = shard_sizes {
        if report.metrics.get("shard.lanes").is_some() {
            print_shard_report(&report, &sizes);
        } else {
            eprintln!(
                "note: --profile-shards had no effect (the run fell back to \
                 sequential execution)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Options, String> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        parse_args(&args)
    }

    #[test]
    fn defaults() {
        let o = parse("").unwrap();
        assert_eq!(o, Options::default());
    }

    #[test]
    fn full_flag_set() {
        let o = parse(
            "--scenario multirack --racks 4 --mesh 2 --attack 2500 --clients 80 \
             --elephants 3 1000 5000 --link-loss 0.01 --seed 9 --duration 12 --json",
        )
        .unwrap();
        assert_eq!(o.scenario, "multirack");
        assert_eq!(o.racks, 4);
        assert_eq!(o.mesh, 2);
        assert_eq!(o.attack, Some(2500.0));
        assert_eq!(o.clients, 80.0);
        assert_eq!(o.elephants, Some((3, 1000.0, 5000)));
        assert_eq!(o.link_loss, 0.01);
        assert_eq!(o.seed, 9);
        assert_eq!(o.duration, 12.0);
        assert!(o.json);
    }

    #[test]
    fn attack_window_pairs() {
        let o = parse("--attack 2000 --attack-window 1 4").unwrap();
        assert_eq!(o.attack_window, Some((1.0, 4.0)));
    }

    #[test]
    fn profile_shards_flag_parses() {
        let o = parse("--shards 4 --profile-shards").unwrap();
        assert_eq!(o.shards, 4);
        assert!(o.profile_shards);
        assert!(!parse("").unwrap().profile_shards);
    }

    #[test]
    fn shards_flags_split_from_scenario_flags() {
        let args: Vec<String> = "--out shards.json --check --scenario multirack --racks 8"
            .split_whitespace()
            .map(String::from)
            .collect();
        let (s, rest) = parse_shards_args(&args).unwrap();
        assert_eq!(s.out.as_deref(), Some("shards.json"));
        assert!(s.check);
        assert_eq!(rest, ["--scenario", "multirack", "--racks", "8"]);
    }

    #[test]
    fn default_shards_options_build_a_partitionable_scenario() {
        let o = default_shards_options();
        assert_eq!(o.scenario, "multirack");
        let sim = build_scenario(&o).build(1);
        assert!(sim.regions.len() > 1, "shards default needs rack regions");
    }

    #[test]
    fn scaling_sweep_flag_and_grid() {
        let args: Vec<String> = vec!["--scaling".into()];
        let o = parse_sweep_args(&args).unwrap();
        assert!(o.scaling);
        let jobs = scaling_jobs(&o);
        assert_eq!(jobs.len(), scaling_shapes().len() * SCALING_SHARDS.len());
    }

    #[test]
    fn cluster_flags_parse() {
        let o = parse("--controllers 3 --sync-latency-us 750 --failover 1.5").unwrap();
        assert_eq!(o.controllers, 3);
        assert_eq!(o.sync_latency_us, Some(750));
        assert_eq!(o.failover, Some(1.5));
        let d = parse("").unwrap();
        assert_eq!(d.controllers, 1);
        assert_eq!(d.sync_latency_us, None);
        assert_eq!(d.failover, None);
    }

    #[test]
    fn rejects_bad_cluster_flags() {
        assert!(parse("--controllers 0").is_err());
        assert!(parse("--sync-latency-us 0").is_err());
        assert!(parse("--controllers 3 --failover 0").is_err());
        // A scripted failover needs a standby to fail over to.
        assert!(parse("--failover 1.0").is_err());
        assert!(parse("--controllers 1 --failover 1.0").is_err());
    }

    #[test]
    fn cluster_flags_reach_the_scenario() {
        let o = parse("--controllers 3 --sync-latency-us 750 --failover 0.5").unwrap();
        let sim = build_scenario(&o).build(1);
        let cluster = sim.app.cluster.as_ref().expect("cluster built");
        assert_eq!(cluster.replicas(), 3);
        assert_eq!(cluster.sync_latency(), SimDuration::from_micros(750));
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(parse("--bogus").is_err());
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse("--attack").is_err());
    }

    #[test]
    fn rejects_unknown_scenario() {
        assert!(parse("--scenario ring").is_err());
    }

    #[test]
    fn build_scenarios_do_not_panic() {
        for s in ["single", "datacenter", "multirack"] {
            let o = Options {
                scenario: s.into(),
                attack: Some(500.0),
                ..Options::default()
            };
            let _sim = build_scenario(&o).build(1);
        }
    }

    fn parse_trace(s: &str) -> Result<(TraceOptions, Vec<String>), String> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        parse_trace_args(&args)
    }

    #[test]
    fn trace_flags_split_from_scenario_flags() {
        let (t, rest) = parse_trace(
            "--scenario single --attack 500 --out t.jsonl --filter overlay,queue \
             --verbose --capacity 1024 --limit 50 --summary",
        )
        .unwrap();
        assert_eq!(t.out.as_deref(), Some("t.jsonl"));
        assert_eq!(t.filter.as_deref(), Some("overlay,queue"));
        assert!(t.verbose);
        assert_eq!(t.capacity, 1024);
        assert_eq!(t.limit, 50);
        assert!(t.summary);
        // Scenario flags pass through untouched, in order.
        assert_eq!(rest, vec!["--scenario", "single", "--attack", "500"]);
        let o = parse_args(&rest).unwrap();
        assert_eq!(o.scenario, "single");
        assert_eq!(o.attack, Some(500.0));
    }

    #[test]
    fn trace_config_filter_silences_unlisted_categories() {
        let (t, _) = parse_trace("--filter overlay,health").unwrap();
        let config = trace_config(&t).unwrap();
        assert_eq!(
            config.levels[TraceCategory::Overlay.index()],
            TraceLevel::Brief
        );
        assert_eq!(
            config.levels[TraceCategory::Health.index()],
            TraceLevel::Brief
        );
        assert_eq!(config.levels[TraceCategory::Flow.index()], TraceLevel::Off);
        assert_eq!(config.levels[TraceCategory::Queue.index()], TraceLevel::Off);
    }

    #[test]
    fn trace_config_verbose_raises_kept_categories() {
        let (t, _) = parse_trace("--verbose --filter flow").unwrap();
        let config = trace_config(&t).unwrap();
        assert_eq!(
            config.levels[TraceCategory::Flow.index()],
            TraceLevel::Verbose
        );
        assert_eq!(
            config.levels[TraceCategory::Overlay.index()],
            TraceLevel::Off
        );
    }

    #[test]
    fn trace_rejects_bad_input() {
        assert!(parse_trace("--capacity 0").is_err());
        assert!(parse_trace("--out").is_err());
        let (t, _) = parse_trace("--filter bogus").unwrap();
        assert!(trace_config(&t).is_err());
    }

    fn parse_explain(s: &str) -> Result<(ExplainOptions, Vec<String>), String> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        parse_explain_args(&args)
    }

    #[test]
    fn explain_flags_split_from_scenario_flags() {
        let (e, rest) = parse_explain(
            "--scenario datacenter --attack 2000 --rate 0.25 --journey 42 --journey 0x2a \
             --slowest 3 --stage-summary --export j.jsonl",
        )
        .unwrap();
        assert_eq!(e.rate, 0.25);
        assert_eq!(e.journeys, vec![42, 42]);
        assert_eq!(e.slowest, 3);
        assert!(e.stage_summary);
        assert_eq!(e.export.as_deref(), Some("j.jsonl"));
        assert!(!e.slo);
        assert_eq!(rest, vec!["--scenario", "datacenter", "--attack", "2000"]);
        assert!(parse_args(&rest).is_ok());
    }

    #[test]
    fn explain_defaults_and_slo_flags() {
        let (e, _) = parse_explain("").unwrap();
        assert_eq!(e, ExplainOptions::default());
        assert_eq!(e.rate, DEFAULT_JOURNEY_RATE);
        assert_eq!(e.slowest, 5);
        let (e, _) = parse_explain("--slo").unwrap();
        assert!(e.slo && e.slo_table.is_none());
        let (e, _) = parse_explain("--slo-table slo.txt").unwrap();
        assert!(e.slo);
        assert_eq!(e.slo_table.as_deref(), Some("slo.txt"));
    }

    #[test]
    fn explain_rejects_bad_input() {
        assert!(parse_explain("--rate 0").is_err());
        assert!(parse_explain("--rate 1.5").is_err());
        assert!(parse_explain("--journey zz").is_err());
        assert!(parse_explain("--journey").is_err());
        assert!(parse_explain("--slowest x").is_err());
    }

    #[test]
    fn journey_ids_parse_decimal_and_hex() {
        assert_eq!(parse_journey_id("42").unwrap(), 42);
        assert_eq!(parse_journey_id("0xff").unwrap(), 255);
        assert!(parse_journey_id("0x").is_err());
        assert!(parse_journey_id("-1").is_err());
    }

    #[test]
    fn explain_duration_formatting_is_stable() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.500us");
        assert_eq!(fmt_ns(2_345_000), "2.345ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.210s");
    }

    #[test]
    fn trace_event_nodes_attribute_by_field_name() {
        use scotch_sim::trace::TraceEvent;
        assert_eq!(
            trace_event_node(TraceEvent::FlowDropped { switch: 7 }),
            Some(7)
        );
        assert_eq!(
            trace_event_node(TraceEvent::VSwitchJoined { node: 3 }),
            Some(3)
        );
        assert_eq!(
            trace_event_node(TraceEvent::FailoverExecuted {
                dead: 5,
                replacement: 6
            }),
            Some(5)
        );
        assert_eq!(
            trace_event_node(TraceEvent::CtrlMsgPerturbed { kind: 1 }),
            None
        );
    }

    #[test]
    fn bench_profile_and_overhead_flags() {
        let o = parse_bench("--profile --trace-overhead").unwrap();
        assert!(o.profile);
        assert!(o.trace_overhead);
    }

    #[test]
    fn shard_flags_parse() {
        let o = parse(
            "--scenario multirack --racks 4 --shards 4 --threads 2 \
             --interrack-us 200 --rack-clients 150",
        )
        .unwrap();
        assert_eq!(o.shards, 4);
        assert_eq!(o.threads, 2);
        assert_eq!(o.interrack_us, Some(200));
        assert_eq!(o.rack_clients, Some(150.0));
        assert!(parse("--shards 0").is_err());
        assert!(parse("--shards").is_err());
    }

    fn parse_det(s: &str) -> Result<DeterminismOptions, String> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        parse_determinism_args(&args)
    }

    #[test]
    fn determinism_flags_parse() {
        assert_eq!(parse_det("").unwrap(), DeterminismOptions::default());
        let o = parse_det("--shards 2,4 --threads 3 --duration 1.5 --plan p.plan").unwrap();
        assert_eq!(o.shards, vec![2, 4]);
        assert_eq!(o.threads, 3);
        assert_eq!(o.duration, 1.5);
        assert_eq!(o.plan.as_deref(), Some("p.plan"));
        assert!(parse_det("--shards 1").is_err());
        assert!(parse_det("--shards ,").is_err());
        assert!(parse_det("--bogus").is_err());
    }

    #[test]
    fn bench_shards_and_gate_flags() {
        let o = parse_bench("--shards 8 --gate").unwrap();
        assert_eq!(o.shards, 8);
        assert!(o.gate);
        assert!(parse_bench("--shards 0").is_err());
    }

    #[test]
    fn sampling_rate_flags_parse() {
        // Run front end: optional, defaults to exhaustive.
        assert_eq!(parse("").unwrap().sampling_rate, None);
        let o = parse("--sampling-rate 0.015625").unwrap();
        assert_eq!(o.sampling_rate, Some(0.015625));
        assert!(parse("--sampling-rate 0").is_err());
        assert!(parse("--sampling-rate 1.5").is_err());
        assert!(parse("--sampling-rate -0.1").is_err());
        assert!(parse("--sampling-rate").is_err());
        // Bench front end: defaults to 1/64, only shapes the sampled row.
        assert_eq!(parse_bench("").unwrap().sampling_rate, 1.0 / 64.0);
        assert_eq!(
            parse_bench("--sampling-rate 0.25").unwrap().sampling_rate,
            0.25
        );
        assert!(parse_bench("--sampling-rate 2").is_err());
        // Sweep front end: per-job override plus the ablation preset.
        let s = parse_sweep("--sampling-rate 0.5").unwrap();
        assert_eq!(s.sampling_rate, Some(0.5));
        assert!(!s.sampling_ablation);
        assert!(
            parse_sweep("--sampling-ablation")
                .unwrap()
                .sampling_ablation
        );
        assert!(parse_sweep("--sampling-rate 0").is_err());
    }

    #[test]
    fn ablation_grid_covers_every_mode_and_seed() {
        let o = parse_sweep("--sampling-ablation --seeds 2 --seed-base 5").unwrap();
        let jobs = ablation_jobs(&o);
        // exhaustive + 5 rates, 2 seeds each.
        assert_eq!(jobs.len(), (ABLATION_RATES.len() + 1) * 2);
        assert_eq!(jobs[0].id, "ablation/exhaustive/s5");
        assert_eq!(jobs[1].id, "ablation/exhaustive/s6");
        assert_eq!(jobs[2].id, "ablation/r1/s5");
        assert_eq!(jobs.last().unwrap().id, "ablation/r256/s6");
    }

    #[test]
    fn determinism_cases_build() {
        let plan = scotch::chaos::generate_plan(1, SimDuration::from_secs(2), 4);
        let cases = determinism_cases(plan);
        assert!(cases.iter().any(|(name, _)| *name == "multirack_cluster"));
        for (name, make) in cases {
            assert!(!name.is_empty());
            let sim = make().build(1);
            if name == "multirack_cluster" {
                assert_eq!(sim.app.cluster.as_ref().map(|c| c.replicas()), Some(3));
            }
        }
    }

    #[test]
    fn chaos_flags_split_and_parse() {
        let args: Vec<String> =
            "--setup-bound 0.25 --promote repro-1 --plan p.plan --controllers 3"
                .split_whitespace()
                .map(String::from)
                .collect();
        let (c, rest) = parse_chaos_args(&args).unwrap();
        assert_eq!(c.setup_bound, Some(0.25));
        assert_eq!(c.promote.as_deref(), Some("repro-1"));
        assert_eq!(c.plan.as_deref(), Some("p.plan"));
        assert_eq!(rest, ["--controllers", "3"]);
    }

    #[test]
    fn chaos_promote_rejects_path_like_names() {
        let args: Vec<String> = vec!["--promote".into(), "../evil".into()];
        assert!(parse_chaos_args(&args).is_err());
    }

    fn parse_sweep(s: &str) -> Result<SweepOptions, String> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        parse_sweep_args(&args)
    }

    #[test]
    fn sweep_defaults() {
        let o = parse_sweep("").unwrap();
        assert_eq!(o, SweepOptions::default());
        // Default grid: 3 scenarios x 3 seeds.
        assert_eq!(sweep_jobs(&o).len(), 9);
    }

    #[test]
    fn sweep_smoke_presets() {
        let o = parse_sweep("--smoke").unwrap();
        assert!(o.smoke);
        assert_eq!(o.seeds, 2);
        assert_eq!(o.duration, 2.0);
        assert_eq!(sweep_jobs(&o).len(), 6);
    }

    #[test]
    fn sweep_scenario_and_seed_flags() {
        let o = parse_sweep("--scenario multirack --seeds 5 --seed-base 10 --threads 2").unwrap();
        assert_eq!(o.scenario.as_deref(), Some("multirack"));
        assert_eq!(o.threads, 2);
        let jobs = sweep_jobs(&o);
        assert_eq!(jobs.len(), 5);
        assert_eq!(jobs[0].id, "multirack/s10");
        assert_eq!(jobs[4].id, "multirack/s14");
    }

    #[test]
    fn sweep_rejects_bad_input() {
        assert!(parse_sweep("--scenario ring").is_err());
        assert!(parse_sweep("--seeds 0").is_err());
        assert!(parse_sweep("--bogus").is_err());
        assert!(parse_sweep("--seeds").is_err());
    }

    fn parse_bench(s: &str) -> Result<BenchOptions, String> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        parse_bench_args(&args)
    }

    #[test]
    fn bench_defaults_and_flags() {
        assert_eq!(parse_bench("").unwrap(), BenchOptions::default());
        let o =
            parse_bench("--out x.json --baseline BENCH_hotpath.json --label ci --iters 1").unwrap();
        assert_eq!(o.out, "x.json");
        assert_eq!(o.baseline.as_deref(), Some("BENCH_hotpath.json"));
        assert_eq!(o.label, "ci");
        assert_eq!(o.iters, 1);
    }

    #[test]
    fn bench_rejects_bad_input() {
        assert!(parse_bench("--iters 0").is_err());
        assert!(parse_bench("--bogus").is_err());
    }

    #[test]
    fn bench_scenarios_build() {
        let scenarios = hotpath_scenarios(1.0 / 64.0);
        for (name, make, horizon) in &scenarios {
            assert!(!name.is_empty());
            assert!(*horizon > SimTime::ZERO);
            let _sim = make().build(HOTPATH_SEED);
        }
        // The monitor pair is present: exhaustive reference + sampled twin.
        let names: Vec<_> = scenarios.iter().map(|(n, _, _)| *n).collect();
        assert!(names.contains(&"monitor_exhaustive_smoke"));
        assert!(names.contains(&"monitor_sampled_smoke"));
    }

    #[test]
    fn baseline_parser_takes_last_run() {
        let text = hotpath_run_json(
            "before",
            &[BenchResult {
                name: "ddos_smoke",
                sim_seconds: 2.0,
                events: 10,
                wall_seconds: 0.5,
                events_per_sec: 20.0,
            }],
        )
        .pretty();
        let doc = format!(
            "{{\n\"runs\": [\n{text},\n{}\n]\n}}\n",
            hotpath_run_json(
                "after",
                &[BenchResult {
                    name: "ddos_smoke",
                    sim_seconds: 2.0,
                    events: 10,
                    wall_seconds: 0.25,
                    events_per_sec: 40.0,
                }],
            )
            .pretty()
        );
        let base = parse_baseline(&doc);
        assert_eq!(base, vec![("ddos_smoke".to_string(), 40.0)]);
    }
}
