//! The Scotch controller application (§4.2, §5).
//!
//! [`ScotchApp`] runs on the controller substrate and implements the
//! paper's mechanisms end to end:
//!
//! * Packet-In attribution through tunnel metadata (§5.2);
//! * ingress-port differentiated admission at the safe budget `R` with
//!   overlay/dropping thresholds (§5.2, Fig. 7);
//! * overlay routing over the vSwitch mesh (§4.1/4.2);
//! * large-flow migration back to physical paths (§5.3);
//! * policy-consistent middlebox traversal with shared green rules and
//!   per-flow red rules (§5.4, Fig. 8);
//! * overlay activation & withdrawal on Packet-In rate (§4.2, §5.5);
//! * vSwitch heartbeat fail-over via group-bucket replacement (§5.6).
//!
//! In [`ControllerMode::Baseline`] the app degenerates to the plain
//! reactive controller of §3 (immediate admission, no overlay), which is
//! the "without Scotch" arm of every comparison.

use crate::config::ScotchConfig;
use crate::migration::ElephantDetector;
use crate::overlay::OverlayManager;
use crate::queues::{EnqueueOutcome, GrantedWork, MigrationJob, PendingFlow, RuleScheduler};
use crate::telemetry::TelemetryCache;
use scotch_controller::baseline::{plan_flow_rules, PHYSICAL_RULE_PRIORITY};
use scotch_controller::flowdb::FlowPath;
use scotch_controller::{
    AddressBook, ClusterConfig, ClusterState, Command, FlowInfoDatabase, HeartbeatTracker,
    PacketInMonitor,
};
use scotch_net::{FlowKey, IpAddr, NodeId, Packet, PortId, Topology, TunnelId};
use scotch_openflow::messages::{GroupModCommand, OfError};
use scotch_openflow::{
    Action, Bucket, ControllerToSwitch, FlowEntry, FlowModCommand, GroupEntry, GroupId,
    Instruction, Match, SwitchToController, TableId,
};
use scotch_sim::journey::{
    JourneyPoint, JourneyRecorder, VERDICT_DIRECT, VERDICT_DROP, VERDICT_DUPLICATE,
    VERDICT_OVERLAY, VERDICT_UNROUTABLE,
};
use scotch_sim::trace::{RebalanceReason, TraceEvent, TraceRecorder};
use scotch_sim::{FxHashMap, FxHashSet};
use scotch_sim::{SimDuration, SimTime};

/// Priority of the pinned keep-on-overlay rules installed during
/// withdrawal (§5.5) — below red physical rules, above the port-labelling
/// default rules.
pub const PIN_RULE_PRIORITY: u16 = 50;
/// Priority of the activation port-labelling rules (table 0).
pub const PORT_RULE_PRIORITY: u16 = 10;
/// Priority of the shared policy "green" rules at middlebox switches.
pub const GREEN_RULE_PRIORITY: u16 = 70;

/// Baseline (plain reactive) or full Scotch behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerMode {
    /// §3's plain reactive controller.
    Baseline,
    /// The Scotch application.
    Scotch,
}

/// A middlebox policy chain for one destination (§5.4). One middlebox per
/// chain in this implementation; `upstream == downstream` models the
/// attached-to-one-switch configuration the paper calls out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyChain {
    /// The middlebox node.
    pub middlebox: NodeId,
    /// S_U: switch feeding the middlebox.
    pub upstream: NodeId,
    /// S_D: switch receiving from the middlebox.
    pub downstream: NodeId,
    /// Aggregation vSwitch on the pre-middlebox side.
    pub agg_in: NodeId,
    /// Aggregation vSwitch on the post-middlebox side.
    pub agg_out: NodeId,
}

/// Controller-application counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppStats {
    /// Packet-Ins handled.
    pub packet_ins: u64,
    /// Packet-Ins for flows already known (setup race duplicates).
    pub duplicate_packet_ins: u64,
    /// Flows admitted onto physical paths.
    pub physical_admitted: u64,
    /// Flows routed over the overlay.
    pub overlay_admitted: u64,
    /// Flows dropped at the dropping threshold.
    pub dropped: u64,
    /// Flows with unresolvable destinations.
    pub unroutable: u64,
    /// Overlay activations.
    pub activations: u64,
    /// Overlay withdrawals.
    pub withdrawals: u64,
    /// Elephants migrated.
    pub migrations: u64,
    /// Migrations deferred because a path switch's control plane was hot.
    pub migrations_deferred: u64,
    /// vSwitch fail-overs executed.
    pub failovers: u64,
    /// FlowMod failures reported by switches.
    pub rule_failures: u64,
    /// Overlay-routed flows whose destination has no host vSwitch.
    pub overlay_undeliverable: u64,
    /// Elephant decisions made (newly flagged flows).
    pub elephant_decisions: u64,
    /// Summed migration-decision latency (ns): for each newly flagged
    /// elephant, the age of its exporting rule at decision time — how
    /// long the flow ran before the monitor called it an elephant.
    /// Divide by `elephant_decisions` for the mean; the sampling-rate
    /// ablation sweep plots exactly this.
    pub decision_latency_ns: u64,
}

impl AppStats {
    /// Register these counters into a [`scotch_sim::MetricsRegistry`] under
    /// `<prefix>.<field>` — the unified export surface for reports and
    /// sweep manifests.
    pub fn register_metrics(&self, prefix: &str, reg: &mut scotch_sim::MetricsRegistry) {
        reg.add(&format!("{prefix}.packet_ins"), self.packet_ins);
        reg.add(
            &format!("{prefix}.duplicate_packet_ins"),
            self.duplicate_packet_ins,
        );
        reg.add(
            &format!("{prefix}.physical_admitted"),
            self.physical_admitted,
        );
        reg.add(&format!("{prefix}.overlay_admitted"), self.overlay_admitted);
        reg.add(&format!("{prefix}.dropped"), self.dropped);
        reg.add(&format!("{prefix}.unroutable"), self.unroutable);
        reg.add(&format!("{prefix}.activations"), self.activations);
        reg.add(&format!("{prefix}.withdrawals"), self.withdrawals);
        reg.add(&format!("{prefix}.migrations"), self.migrations);
        reg.add(
            &format!("{prefix}.migrations_deferred"),
            self.migrations_deferred,
        );
        reg.add(&format!("{prefix}.failovers"), self.failovers);
        reg.add(&format!("{prefix}.rule_failures"), self.rule_failures);
        reg.add(
            &format!("{prefix}.overlay_undeliverable"),
            self.overlay_undeliverable,
        );
        reg.add(
            &format!("{prefix}.elephant_decisions"),
            self.elephant_decisions,
        );
        reg.add(
            &format!("{prefix}.decision_latency_ns"),
            self.decision_latency_ns,
        );
    }
}

#[derive(Debug, Clone)]
struct SwitchCtl {
    scheduler: RuleScheduler,
    active: bool,
    below_since: Option<SimTime>,
    /// Ports labelled at activation (to delete at withdrawal).
    labelled_ports: Vec<PortId>,
    /// Last enqueue outcome was over a threshold (shed or drop) — used to
    /// trace threshold *crossings* rather than every shed flow.
    over_threshold: bool,
}

/// The Scotch controller application.
#[derive(Debug, Clone)]
pub struct ScotchApp {
    /// Operating mode.
    pub mode: ControllerMode,
    /// Tunables.
    pub config: ScotchConfig,
    /// Host directory.
    pub book: AddressBook,
    /// §5.2's Flow Info Database.
    pub flowdb: FlowInfoDatabase,
    /// Packet-In rate monitor (per originating physical switch, including
    /// overlay-borne Packet-Ins — the activation/withdrawal signal).
    pub monitor: PacketInMonitor,
    /// Packet-Ins emitted by physical switches' own OFAs (excluding
    /// overlay-borne ones) — the actual control-path load, used by the
    /// migration hot-path check (§5.3).
    pub direct_monitor: PacketInMonitor,
    /// TableFull errors per switch. §3.3: "A limited amount of TCAM at a
    /// switch can also cause new flows being dropped ... the solution
    /// proposed in this paper is applicable to the TCAM bottleneck
    /// scenario as well" — a sustained TableFull rate activates the
    /// overlay exactly like Packet-In congestion does.
    pub tcam_monitor: PacketInMonitor,
    /// vSwitch liveness.
    pub heartbeats: HeartbeatTracker,
    /// The overlay fabric.
    pub overlay: OverlayManager,
    switches: FxHashMap<NodeId, SwitchCtl>,
    /// Destination-indexed middlebox policies.
    policies: FxHashMap<IpAddr, PolicyChain>,
    detector: ElephantDetector,
    /// NetFlow-style aggregation cache turning stats records into rate
    /// estimates (exact in exhaustive mode, inverse-probability-scaled
    /// under sampling). Public so the composition root can export its
    /// `monitor.*` metrics and cache-size gauge.
    pub telemetry: TelemetryCache,
    /// Flow key per issued cookie. Cookies are handed out sequentially
    /// from 1, so cookie `c` lives at index `c - 1` — a dense `Vec` instead
    /// of a map that grows by one entry per installed flow.
    cookie_keys: Vec<FlowKey>,
    /// Journey id per flow key, for *traced* flows only (populated at
    /// decision time). Lets key-addressed control events — migrations,
    /// perturbed FlowMods — land on the right journey timeline.
    pub(crate) journey_keys: FxHashMap<FlowKey, u64>,
    /// Flows sitting in ingress queues (for duplicate-Packet-In detection).
    pending: FxHashSet<FlowKey>,
    stats: AppStats,
    /// Flight recorder for control-plane decisions. Disabled by default;
    /// a disabled recorder costs one branch per site (DESIGN.md §10).
    pub trace: TraceRecorder,
    /// Causal flow-journey recorder (DESIGN.md §14). Disabled by default;
    /// unlike `trace` it stays enabled on every shard lane — journey marks
    /// are canonical output, merged and re-sorted at report time.
    pub journeys: JourneyRecorder,
    /// Journal of flow-path mutations `(time, key, path after mutation)`.
    /// `None` (and zero-cost) in sequential runs; sharded execution enables
    /// it on the controller shard so the epoch driver, which applies host
    /// deliveries at barriers, can resolve a flow's `served_by` as of its
    /// first delivery time.
    pub flow_journal: Option<Vec<(SimTime, FlowKey, Option<FlowPath>)>>,
    /// Controller-cluster mastership state (DESIGN.md §16). `None` (the
    /// default, `controllers: 1`) keeps the single-controller engine on
    /// exactly its old code path — every cluster hook is gated on this.
    pub cluster: Option<ClusterState>,
}

impl ScotchApp {
    /// Build the app. `overlay` may be empty (baseline mode ignores it).
    pub fn new(
        mode: ControllerMode,
        config: ScotchConfig,
        book: AddressBook,
        overlay: OverlayManager,
    ) -> Self {
        config.validate();
        let detector = ElephantDetector::new(config.elephant_pps);
        let heartbeats =
            HeartbeatTracker::new(config.heartbeat_period, config.heartbeat_miss_limit);
        let cluster = (config.controllers > 1).then(|| {
            ClusterState::new(ClusterConfig {
                replicas: config.controllers,
                sync_latency: config.sync_latency,
            })
        });
        ScotchApp {
            mode,
            monitor: PacketInMonitor::new(SimDuration::from_secs(1)),
            direct_monitor: PacketInMonitor::new(SimDuration::from_secs(1)),
            tcam_monitor: PacketInMonitor::new(SimDuration::from_secs(1)),
            heartbeats,
            detector,
            telemetry: TelemetryCache::new(),
            config,
            book,
            flowdb: FlowInfoDatabase::new(),
            overlay,
            switches: FxHashMap::default(),
            policies: FxHashMap::default(),
            cookie_keys: Vec::new(),
            journey_keys: FxHashMap::default(),
            pending: FxHashSet::default(),
            stats: AppStats::default(),
            trace: TraceRecorder::disabled(),
            journeys: JourneyRecorder::disabled(),
            flow_journal: None,
            cluster,
        }
    }

    /// Append the post-mutation path of `key` to the shard journal. No-op
    /// in sequential runs, where `deliver` reads the flowdb directly.
    fn journal_flow(&mut self, now: SimTime, key: FlowKey) {
        if let Some(journal) = self.flow_journal.as_mut() {
            let path = self.flowdb.get(&key).map(|info| info.path);
            journal.push((now, key, path));
        }
    }

    /// Pre-size the per-flow state for about `flows` concurrent flows
    /// (`expected arrival rate × rule idle timeout`, derived from the
    /// workload spec by `Scenario`). Avoids rehash churn while a surge
    /// grows the flow database.
    pub fn reserve_flow_capacity(&mut self, flows: usize) {
        self.flowdb.reserve(flows);
        self.pending.reserve(flows.min(1 << 16));
        self.cookie_keys.reserve(flows);
    }

    /// Register a physical switch with its safe rule budget `R`.
    pub fn register_switch(&mut self, node: NodeId, rule_budget: f64) {
        let sched = RuleScheduler::new(
            self.config.rule_budget.unwrap_or(rule_budget),
            self.config.overlay_threshold,
            self.config.drop_threshold,
            self.config.effective_fairness(),
        );
        self.switches.insert(
            node,
            SwitchCtl {
                scheduler: sched,
                active: false,
                below_since: None,
                labelled_ports: Vec::new(),
                over_threshold: false,
            },
        );
    }

    /// Register a middlebox policy for destination `dst` and emit the
    /// shared green rules (§5.4) at the sandwich switches. Call once at
    /// configuration time; returns the setup commands.
    pub fn register_policy(
        &mut self,
        topo: &Topology,
        dst: IpAddr,
        chain: PolicyChain,
    ) -> Vec<Command> {
        self.policies.insert(dst, chain);
        self.policy_green_rules(topo, &chain)
    }

    /// The shared green rules for one policy chain (emitted at
    /// registration, and re-emitted after a TCAM-triggered table clear).
    fn policy_green_rules(&self, topo: &Topology, chain: &PolicyChain) -> Vec<Command> {
        let mut cmds = Vec::new();

        // Green rule G1 at S_U: packets arriving on the policy-in tunnel
        // (label still on stack — S_U is the tunnel endpoint) are
        // decapsulated and handed to the middlebox. Shared by all flows.
        if let (Some(&tin), Some(mb_in_port)) = (
            self.overlay
                .policy_in_tunnels
                .get(&(chain.agg_in, chain.upstream)),
            topo.port_towards(chain.upstream, chain.middlebox),
        ) {
            let g1 = FlowEntry::apply(
                Match::ANY.with_top_label(Some(scotch_net::Label::Tunnel(tin))),
                GREEN_RULE_PRIORITY + 10,
                vec![Action::PopLabel, Action::Output(mb_in_port)],
            );
            cmds.push(Command::new(
                chain.upstream,
                ControllerToSwitch::FlowMod {
                    table: TableId(0),
                    command: FlowModCommand::Add(g1),
                },
            ));
        }

        // Green rule G2 at S_D: packets coming back from the middlebox are
        // re-encapsulated toward the aggregation vSwitch. Shared.
        if let (Some(&tout), Some(mb_return_port)) = (
            self.overlay
                .policy_out_tunnels
                .get(&(chain.downstream, chain.agg_out)),
            // The middlebox returns on the switch's *last* link to it (it
            // was entered on the first).
            topo.ports_towards(chain.downstream, chain.middlebox)
                .last()
                .copied(),
        ) {
            if let Some(tunnel) = self.overlay.tunnels.get(tout) {
                if let Some(out_port) =
                    topo.port_towards(chain.downstream, tunnel.next_hop(chain.downstream).unwrap())
                {
                    let g2 = FlowEntry::apply(
                        Match::on_port(mb_return_port).with_top_label(None),
                        GREEN_RULE_PRIORITY,
                        vec![
                            Action::PushLabel(scotch_net::Label::Tunnel(tout)),
                            Action::Output(out_port),
                        ],
                    );
                    cmds.push(Command::new(
                        chain.downstream,
                        ControllerToSwitch::FlowMod {
                            table: TableId(0),
                            command: FlowModCommand::Add(g2),
                        },
                    ));
                }
            }
        }
        cmds
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AppStats {
        self.stats
    }

    /// Is the overlay currently active at `switch`?
    pub fn is_active(&self, switch: NodeId) -> bool {
        self.switches
            .get(&switch)
            .map(|s| s.active)
            .unwrap_or(false)
    }

    /// Scheduler backlog at a switch (diagnostics).
    pub fn ingress_backlog(&self, switch: NodeId) -> usize {
        self.switches
            .get(&switch)
            .map(|s| s.scheduler.ingress_backlog())
            .unwrap_or(0)
    }

    /// Total scheduler backlog summed over every registered switch
    /// (sampled periodically into the metrics registry).
    pub fn total_backlog(&self) -> usize {
        self.switches
            .values()
            .map(|s| s.scheduler.ingress_backlog())
            .sum()
    }

    /// Scheduler statistics at a switch.
    pub fn scheduler_stats(&self, switch: NodeId) -> Option<crate::queues::SchedulerStats> {
        self.switches.get(&switch).map(|s| s.scheduler.stats())
    }

    fn next_cookie(&mut self, key: FlowKey) -> u64 {
        self.cookie_keys.push(key);
        self.cookie_keys.len() as u64
    }

    pub(crate) fn cookie_key(&self, cookie: u64) -> Option<FlowKey> {
        let idx = cookie.checked_sub(1)?;
        self.cookie_keys.get(idx as usize).copied()
    }

    /// Record a `Decision` journey mark for a traced first packet, and
    /// remember its key → journey binding for later key-addressed events
    /// (migration, perturbed FlowMods).
    #[inline]
    fn journey_decision(&mut self, now: SimTime, packet: &Packet, node: NodeId, verdict: u64) {
        if packet.kind == scotch_net::PacketKind::FlowStart && self.journeys.wants(packet.flow_id.0)
        {
            self.journeys.record(
                packet.flow_id.0,
                now,
                JourneyPoint::Decision,
                node.0,
                verdict,
            );
            self.journey_keys.insert(packet.key, packet.flow_id.0);
        }
    }

    /// The policy chain's middlebox waypoints for a destination.
    fn waypoints(&self, dst: IpAddr) -> Vec<NodeId> {
        self.policies
            .get(&dst)
            .map(|c| vec![c.middlebox])
            .unwrap_or_default()
    }

    /// The match used for this flow's rules: the paper's (src, dst) pair
    /// by default, or the full 5-tuple under microflow granularity.
    fn flow_matcher(&self, key: &FlowKey) -> Match {
        if self.config.exact_match_rules {
            Match::exact(*key)
        } else {
            Match::src_dst(key.src, key.dst)
        }
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    /// Process one message from a switch or vSwitch.
    pub fn handle_switch_msg(
        &mut self,
        now: SimTime,
        topo: &Topology,
        from: NodeId,
        msg: SwitchToController,
    ) -> Vec<Command> {
        match msg {
            SwitchToController::PacketIn {
                packet,
                in_port,
                via_tunnel,
                ingress_label,
                ..
            } => self.on_packet_in(now, topo, from, in_port, packet, via_tunnel, ingress_label),
            SwitchToController::FlowStatsReply { stats } => self.on_stats_reply(now, from, &stats),
            SwitchToController::EchoReply { .. } => {
                self.heartbeats.on_reply(from, now);
                Vec::new()
            }
            SwitchToController::FlowRemoved { cookie, .. } => {
                if let Some(key) = self.cookie_key(cookie) {
                    if let Some(info) = self.flowdb.get(&key) {
                        let ends_flow = match info.path {
                            FlowPath::Physical => info.first_hop == from,
                            FlowPath::Overlay => true,
                        };
                        if ends_flow {
                            self.flowdb.remove(&key);
                            self.journal_flow(now, key);
                        }
                    }
                }
                Vec::new()
            }
            SwitchToController::Error { kind } => {
                if matches!(kind, OfError::FlowModOverload | OfError::TableFull) {
                    self.stats.rule_failures += 1;
                }
                if kind == OfError::TableFull && self.switches.contains_key(&from) {
                    self.tcam_monitor.record(from, now);
                }
                Vec::new()
            }
            SwitchToController::BarrierReply { .. } => Vec::new(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_packet_in(
        &mut self,
        now: SimTime,
        topo: &Topology,
        from: NodeId,
        in_port: PortId,
        packet: Packet,
        via_tunnel: Option<TunnelId>,
        ingress_label: Option<u16>,
    ) -> Vec<Command> {
        self.stats.packet_ins += 1;

        // §5.2: recover the originating physical switch and ingress port.
        let (origin, origin_port) = match via_tunnel {
            Some(t) => (
                self.overlay.tunnel_origin.get(&t).copied().unwrap_or(from),
                PortId(ingress_label.unwrap_or(0)),
            ),
            None => (from, in_port),
        };
        self.monitor.record(origin, now);
        if via_tunnel.is_none() && self.switches.contains_key(&origin) {
            self.direct_monitor.record(origin, now);
        }

        // Setup-race duplicate: the flow is known (or waiting in an
        // ingress queue); relay the packet directly — the real controller
        // buffers these.
        let duplicate =
            self.flowdb.get(&packet.key).is_some() || self.pending.contains(&packet.key);
        self.trace.record(
            now,
            TraceEvent::PacketInEmitted {
                switch: origin.0,
                via_overlay: via_tunnel.is_some(),
                duplicate,
            },
        );
        if duplicate {
            self.stats.duplicate_packet_ins += 1;
            self.journey_decision(now, &packet, origin, VERDICT_DUPLICATE);
            return self.deliver_direct(topo, &packet);
        }

        match self.mode {
            ControllerMode::Baseline => {
                let pf = PendingFlow {
                    key: packet.key,
                    packet,
                    punted_by: from,
                    origin,
                    origin_port,
                    enqueued_at: now,
                };
                self.admit_physical(now, topo, pf)
            }
            ControllerMode::Scotch => {
                let pf = PendingFlow {
                    key: packet.key,
                    packet,
                    punted_by: from,
                    origin,
                    origin_port,
                    enqueued_at: now,
                };
                let Some(ctl) = self.switches.get_mut(&origin) else {
                    // Packet-in from an unmanaged switch (e.g. a host
                    // vSwitch acting reactively): admit immediately.
                    return self.admit_physical(now, topo, pf);
                };
                let key = pf.key;
                let journey = (pf.packet.kind == scotch_net::PacketKind::FlowStart)
                    .then_some(pf.packet.flow_id.0);
                let (outcome, shed) = ctl.scheduler.enqueue_flow(pf);
                // Trace threshold *crossings* (not every shed flow): the
                // transition from under-threshold service to shedding or
                // dropping is the interesting control-plane decision.
                let was_over = ctl.over_threshold;
                ctl.over_threshold = !matches!(outcome, EnqueueOutcome::Queued);
                if ctl.over_threshold && !was_over {
                    let backlog = ctl.scheduler.ingress_backlog() as u32;
                    self.trace.record(
                        now,
                        TraceEvent::QueueThresholdCrossed {
                            switch: origin.0,
                            backlog,
                            dropping: matches!(outcome, EnqueueOutcome::Dropped),
                        },
                    );
                }
                match (outcome, shed) {
                    (EnqueueOutcome::Queued, _) => {
                        self.pending.insert(key);
                        Vec::new()
                    }
                    (EnqueueOutcome::RouteOnOverlay, Some(pf)) => {
                        self.route_on_overlay(now, topo, pf)
                    }
                    (EnqueueOutcome::Dropped, _) => {
                        self.stats.dropped += 1;
                        self.trace
                            .record(now, TraceEvent::FlowDropped { switch: origin.0 });
                        if let Some(j) = journey {
                            if self.journeys.wants(j) {
                                self.journeys.record(
                                    j,
                                    now,
                                    JourneyPoint::Decision,
                                    origin.0,
                                    VERDICT_DROP,
                                );
                            }
                        }
                        Vec::new()
                    }
                    (EnqueueOutcome::RouteOnOverlay, None) => unreachable!(),
                }
            }
        }
    }

    /// Relay a packet out of the switch adjacent to its destination
    /// (controller-buffered delivery for setup-race duplicates).
    ///
    /// A policy-bound *first* packet must still traverse the middlebox —
    /// relaying it around the firewall would leave the firewall stateless
    /// and break every later packet of the flow (§5.4) — so those are
    /// injected at the middlebox's upstream switch instead.
    fn deliver_direct(&mut self, topo: &Topology, packet: &Packet) -> Vec<Command> {
        // Only overlay-routed flows are re-injected through the middlebox:
        // their downstream per-flow vSwitch rules are (about to be) in
        // place, so the packet drains. Re-injecting a flow *without* those
        // rules would bounce straight back here as another Packet-In.
        let on_overlay = self
            .flowdb
            .get(&packet.key)
            .map(|i| i.path == FlowPath::Overlay)
            .unwrap_or(false);
        if packet.kind == scotch_net::PacketKind::FlowStart && on_overlay {
            if let Some(chain) = self.policies.get(&packet.key.dst) {
                if let Some(mb_in) = topo.port_towards(chain.upstream, chain.middlebox) {
                    return vec![Command::new(
                        chain.upstream,
                        ControllerToSwitch::PacketOut {
                            packet: *packet,
                            out_port: mb_in,
                        },
                    )];
                }
            }
        }
        let Some(att) = self.book.locate(packet.key.dst) else {
            return Vec::new();
        };
        vec![Command::new(
            att.switch,
            ControllerToSwitch::PacketOut {
                packet: *packet,
                out_port: att.switch_port,
            },
        )]
    }

    // ------------------------------------------------------------------
    // Physical admission
    // ------------------------------------------------------------------

    /// Install the flow on the physical network: per-switch red rules along
    /// the (policy-respecting) path + a PacketOut for the buffered packet.
    fn admit_physical(&mut self, now: SimTime, topo: &Topology, pf: PendingFlow) -> Vec<Command> {
        self.pending.remove(&pf.key);
        let Some(dst_att) = self.book.locate(pf.key.dst) else {
            self.stats.unroutable += 1;
            self.journey_decision(now, &pf.packet, pf.origin, VERDICT_UNROUTABLE);
            return Vec::new();
        };
        let waypoints = self.waypoints(pf.key.dst);
        let start = self
            .book
            .locate(pf.key.src)
            .filter(|s| s.switch == pf.origin)
            .map(|s| s.host)
            .unwrap_or(pf.origin);
        let Some(path) = topo.path_via(start, &waypoints, dst_att.host) else {
            self.stats.unroutable += 1;
            self.journey_decision(now, &pf.packet, pf.origin, VERDICT_UNROUTABLE);
            return Vec::new();
        };

        let cookie = self.next_cookie(pf.key);
        let rules = plan_flow_rules(
            topo,
            &path,
            self.flow_matcher(&pf.key),
            cookie,
            self.config.rule_idle_timeout,
        );
        let mut out = Vec::new();
        let mut origin_rules_sent = 0;
        for cmd in rules {
            if self.mode == ControllerMode::Baseline {
                // Baseline has no budgeting: blast everything (the Fig. 9
                // overload behaviour is exactly what this produces).
                out.push(cmd);
            } else if cmd.to == pf.origin {
                // The granted token covers ONE rule at the origin switch;
                // additional origin rules (middlebox hairpins need two)
                // ride the admitted queue and spend their own tokens.
                if origin_rules_sent == 0 {
                    out.push(cmd);
                } else if let Some(ctl) = self.switches.get_mut(&pf.origin) {
                    ctl.scheduler.push_admitted(cmd);
                } else {
                    out.push(cmd);
                }
                origin_rules_sent += 1;
            } else if let Some(ctl) = self.switches.get_mut(&cmd.to) {
                ctl.scheduler.push_admitted(cmd);
            } else {
                // vSwitches / host vSwitches have ample budget.
                out.push(cmd);
            }
        }
        if self.config.install_reverse {
            let mut rev = path.clone();
            rev.reverse();
            for cmd in plan_flow_rules(
                topo,
                &rev,
                self.flow_matcher(&pf.key.reversed()),
                cookie,
                self.config.rule_idle_timeout,
            ) {
                if cmd.to == pf.origin || self.mode == ControllerMode::Baseline {
                    out.push(cmd);
                } else if let Some(ctl) = self.switches.get_mut(&cmd.to) {
                    ctl.scheduler.push_admitted(cmd);
                } else {
                    out.push(cmd);
                }
            }
        }

        // First packet: policy flows are injected at the origin toward the
        // next path hop so middlebox state is established (§5.4). Under
        // Scotch, plain flows are injected at the destination-adjacent
        // switch, which avoids racing the mid-path rules still waiting in
        // other switches' budgeted admitted queues; the baseline behaves
        // like Ryu and packets-out at the punting switch.
        if waypoints.is_empty() && self.mode == ControllerMode::Scotch {
            out.push(Command::new(
                dst_att.switch,
                ControllerToSwitch::PacketOut {
                    packet: pf.packet,
                    out_port: dst_att.switch_port,
                },
            ));
        } else if let Some(pos) = path.iter().position(|n| *n == pf.origin) {
            if let Some(next) = path.get(pos + 1) {
                if let Some(out_port) = topo.port_towards(pf.origin, *next) {
                    out.push(Command::new(
                        pf.origin,
                        ControllerToSwitch::PacketOut {
                            packet: pf.packet,
                            out_port,
                        },
                    ));
                }
            }
        }

        self.flowdb
            .record(pf.key, pf.origin, pf.origin_port, now, FlowPath::Physical);
        self.journal_flow(now, pf.key);
        self.journey_decision(now, &pf.packet, pf.origin, VERDICT_DIRECT);
        self.stats.physical_admitted += 1;
        self.trace.record(
            now,
            TraceEvent::FlowAdmitted {
                switch: pf.origin.0,
                via_overlay: false,
            },
        );
        out
    }

    // ------------------------------------------------------------------
    // Overlay routing
    // ------------------------------------------------------------------

    /// Route the flow over the vSwitch overlay (§4.2 steps 3–5; §5.4 for
    /// policy-bound destinations).
    fn route_on_overlay(&mut self, now: SimTime, topo: &Topology, pf: PendingFlow) -> Vec<Command> {
        self.pending.remove(&pf.key);
        let Some(dst_att) = self.book.locate(pf.key.dst) else {
            self.stats.unroutable += 1;
            self.journey_decision(now, &pf.packet, pf.origin, VERDICT_UNROUTABLE);
            return Vec::new();
        };
        let Some(w) = self.overlay.host_vswitch_of(dst_att.host) else {
            // Destination not covered by a host vSwitch: cannot deliver on
            // the overlay.
            self.stats.overlay_undeliverable += 1;
            self.journey_decision(now, &pf.packet, pf.origin, VERDICT_UNROUTABLE);
            return Vec::new();
        };
        // V: the vSwitch holding the packet, or the destination's local
        // mesh vSwitch when the physical switch itself punted the flow.
        let v = if self.overlay.bucket_of(pf.punted_by).is_some() {
            pf.punted_by
        } else {
            match self.overlay.local_mesh_of(dst_att.host) {
                Some(m) => m,
                None => {
                    self.stats.overlay_undeliverable += 1;
                    self.journey_decision(now, &pf.packet, pf.origin, VERDICT_UNROUTABLE);
                    return Vec::new();
                }
            }
        };

        // Build the chain of (vSwitch, tunnel-to-next) segments.
        let mut segments: Vec<(NodeId, Option<TunnelId>)> = Vec::new();
        if let Some(chain) = self.policies.get(&pf.key.dst).copied() {
            // V -> agg_in -> S_U -> MB -> S_D -> agg_out -> W -> host.
            if v != chain.agg_in {
                let t = self.overlay.mesh_tunnels.get(&(v, chain.agg_in)).copied();
                segments.push((v, t));
            }
            let tin = self
                .overlay
                .policy_in_tunnels
                .get(&(chain.agg_in, chain.upstream))
                .copied();
            segments.push((chain.agg_in, tin));
            // S_U / S_D carry shared green rules — no per-flow rule there.
            if chain.agg_out != w {
                let t = self
                    .overlay
                    .delivery_tunnels
                    .get(&(chain.agg_out, w))
                    .copied();
                segments.push((chain.agg_out, t));
            }
            segments.push((w, None));
        } else {
            let m2 = self.overlay.local_mesh_of(dst_att.host).unwrap_or(v);
            if v != m2 && v != w {
                let t = self.overlay.mesh_tunnels.get(&(v, m2)).copied();
                segments.push((v, t));
            }
            if m2 != w {
                let t = self.overlay.delivery_tunnels.get(&(m2, w)).copied();
                if v == m2 || v != w {
                    segments.push((m2, t));
                }
            }
            segments.push((w, None));
        }

        // Every non-terminal segment needs its tunnel; a miss means the
        // fabric is mis-wired for this path — count it rather than
        // silently stranding the flow.
        let terminal = segments.len().saturating_sub(1);
        if segments.iter().take(terminal).any(|(_, t)| t.is_none()) {
            self.stats.overlay_undeliverable += 1;
            self.journey_decision(now, &pf.packet, pf.origin, VERDICT_UNROUTABLE);
            return Vec::new();
        }
        let cookie = self.next_cookie(pf.key);
        let mut out = Vec::new();
        let matcher = self.flow_matcher(&pf.key);
        for (node, tunnel) in &segments {
            let actions = match tunnel {
                Some(t) => {
                    let Some(tun) = self.overlay.tunnels.get(*t) else {
                        continue;
                    };
                    let Some(next) = tun.next_hop(*node) else {
                        continue;
                    };
                    let Some(port) = topo.port_towards(*node, next) else {
                        continue;
                    };
                    vec![Action::push_tunnel(*t), Action::Output(port)]
                }
                None => {
                    // Last hop: the host vSwitch delivers to the host.
                    let Some(port) = topo.port_towards(*node, dst_att.host) else {
                        continue;
                    };
                    vec![Action::Output(port)]
                }
            };
            let entry = FlowEntry::apply(matcher, PHYSICAL_RULE_PRIORITY, actions)
                .with_cookie(cookie)
                .with_idle_timeout(self.config.rule_idle_timeout);
            out.push(Command::new(
                *node,
                ControllerToSwitch::FlowMod {
                    table: TableId(0),
                    command: FlowModCommand::Add(entry),
                },
            ));
        }

        // Launch the buffered first packet along the first segment.
        if let Some((first_node, first_tunnel)) = segments.first() {
            let mut pkt = pf.packet;
            let out_port = match first_tunnel {
                Some(t) => {
                    pkt.push_label(scotch_net::Label::Tunnel(*t));
                    self.overlay
                        .tunnels
                        .get(*t)
                        .and_then(|tun| tun.next_hop(*first_node))
                        .and_then(|next| topo.port_towards(*first_node, next))
                }
                None => topo.port_towards(*first_node, dst_att.host),
            };
            if let Some(port) = out_port {
                out.push(Command::new(
                    *first_node,
                    ControllerToSwitch::PacketOut {
                        packet: pkt,
                        out_port: port,
                    },
                ));
            }
        }

        self.flowdb
            .record(pf.key, pf.origin, pf.origin_port, now, FlowPath::Overlay);
        self.journal_flow(now, pf.key);
        self.journey_decision(now, &pf.packet, pf.origin, VERDICT_OVERLAY);
        self.stats.overlay_admitted += 1;
        self.trace.record(
            now,
            TraceEvent::FlowAdmitted {
                switch: pf.origin.0,
                via_overlay: true,
            },
        );
        out
    }

    // ------------------------------------------------------------------
    // Migration (§5.3)
    // ------------------------------------------------------------------

    fn serve_migration(
        &mut self,
        now: SimTime,
        topo: &Topology,
        job: MigrationJob,
    ) -> Vec<Command> {
        let Some(info) = self.flowdb.get(&job.key).copied() else {
            return Vec::new();
        };
        if info.path != FlowPath::Overlay || info.migrated {
            return Vec::new();
        }
        let Some(dst_att) = self.book.locate(job.key.dst) else {
            return Vec::new();
        };
        // "checks the message rate of all switches on the path to make
        // sure their control plane is not overloaded". The relevant load
        // is the switch's own OFA traffic — overlay-borne Packet-Ins are
        // handled by vSwitches and do not burden this switch.
        let hot = self.direct_monitor.rate(info.first_hop, now) > self.config.activation_threshold;
        if hot {
            self.stats.migrations_deferred += 1;
            self.trace.record(
                now,
                TraceEvent::FlowMigrated {
                    switch: info.first_hop.0,
                    deferred: true,
                },
            );
            if let Some(&j) = self.journey_keys.get(&job.key) {
                self.journeys
                    .record(j, now, JourneyPoint::Migration, info.first_hop.0, 1);
            }
            if let Some(ctl) = self.switches.get_mut(&info.first_hop) {
                ctl.scheduler.push_migration(job);
            }
            return Vec::new();
        }

        let waypoints = self.waypoints(job.key.dst);
        let start = self
            .book
            .locate(job.key.src)
            .filter(|s| s.switch == info.first_hop)
            .map(|s| s.host)
            .unwrap_or(info.first_hop);
        let Some(path) = topo.path_via(start, &waypoints, dst_att.host) else {
            return Vec::new();
        };
        let cookie = self.next_cookie(job.key);
        let rules = plan_flow_rules(
            topo,
            &path,
            self.flow_matcher(&job.key),
            cookie,
            self.config.rule_idle_timeout,
        );
        // "the forwarding rule on the first hop switch is added at last":
        // non-origin rules go out immediately; the origin's own rule rides
        // its admitted queue and lands on a later tick.
        let mut out = Vec::new();
        let mut origin_rules = Vec::new();
        for cmd in rules {
            if cmd.to == info.first_hop {
                origin_rules.push(cmd);
            } else {
                out.push(cmd);
            }
        }
        if let Some(ctl) = self.switches.get_mut(&info.first_hop) {
            for cmd in origin_rules {
                ctl.scheduler.push_admitted(cmd);
            }
        } else {
            out.extend(origin_rules);
        }
        self.flowdb.mark_migrated(&job.key);
        self.journal_flow(now, job.key);
        if let Some(&j) = self.journey_keys.get(&job.key) {
            self.journeys
                .record(j, now, JourneyPoint::Migration, info.first_hop.0, 0);
        }
        self.stats.migrations += 1;
        self.trace.record(
            now,
            TraceEvent::FlowMigrated {
                switch: info.first_hop.0,
                deferred: false,
            },
        );
        out
    }

    // ------------------------------------------------------------------
    // Activation & withdrawal (§4.2 / §5.5)
    // ------------------------------------------------------------------

    fn activate(&mut self, now: SimTime, topo: &Topology, switch: NodeId) -> Vec<Command> {
        let mut out = Vec::new();
        let gid = GroupId(switch.0);

        // §3.3 TCAM case: the table is full of per-flow rules, so the
        // activation defaults would be rejected. Clear the per-flow rules
        // first (non-strict delete) — "Scotch can also help reduce the
        // number of routing entries in the physical switches by routing
        // short flows over the overlay" (§2). Evicted flows fall onto the
        // overlay default path installed right below.
        let tcam_triggered =
            self.tcam_monitor.rate(switch, now) > self.config.tcam_activation_threshold;
        if tcam_triggered {
            for t in [TableId(0), TableId(1)] {
                out.push(Command::new(
                    switch,
                    ControllerToSwitch::FlowMod {
                        table: t,
                        command: FlowModCommand::DeleteAll,
                    },
                ));
            }
            // The clear also removed any shared policy green rules at this
            // switch (§5.4); re-install them right away.
            let chains: Vec<PolicyChain> = self
                .policies
                .values()
                .filter(|c| c.upstream == switch || c.downstream == switch)
                .cloned()
                .collect();
            for chain in chains {
                out.extend(self.policy_green_rules(topo, &chain));
            }
        }

        // Select group: one bucket per load-distribution tunnel.
        let mut buckets = Vec::new();
        if let Some(tunnels) = self.overlay.lb_tunnels.get(&switch) {
            for (i, t) in tunnels.iter().enumerate() {
                let Some(tun) = self.overlay.tunnels.get(*t) else {
                    continue;
                };
                let Some(next) = tun.next_hop(switch) else {
                    continue;
                };
                let Some(port) = topo.port_towards(switch, next) else {
                    continue;
                };
                let mut b = Bucket::new(vec![Action::push_tunnel(*t), Action::Output(port)]);
                b.alive = *self.overlay.alive.get(i).unwrap_or(&true);
                buckets.push(b);
            }
        }
        if buckets.is_empty() {
            return out; // no overlay reachable from this switch
        }
        let bucket_count = buckets.len() as u32;
        out.push(Command::new(
            switch,
            ControllerToSwitch::GroupMod {
                group: gid,
                command: GroupModCommand::Install(GroupEntry::select(
                    self.config.lb_policy,
                    buckets,
                )),
            },
        ));

        // Table 0: per-port ingress labelling (skip ports that lead to
        // overlay/host vSwitches' tunnels? No — tunnelled packets transit
        // before tables or match higher-priority label rules).
        let mut labelled = Vec::new();
        for port in topo.ports(switch) {
            let entry = FlowEntry::new(
                Match::on_port(port).with_top_label(None),
                PORT_RULE_PRIORITY,
                vec![
                    Instruction::Apply(vec![Action::push_ingress(port)]),
                    Instruction::GotoTable(TableId(1)),
                ],
            );
            out.push(Command::new(
                switch,
                ControllerToSwitch::FlowMod {
                    table: TableId(0),
                    command: FlowModCommand::Add(entry),
                },
            ));
            labelled.push(port);
        }

        // Table 1: the default load-balancing rule.
        out.push(Command::new(
            switch,
            ControllerToSwitch::FlowMod {
                table: TableId(1),
                command: FlowModCommand::Add(FlowEntry::apply(
                    Match::ANY,
                    0,
                    vec![Action::Group(gid)],
                )),
            },
        ));

        if let Some(ctl) = self.switches.get_mut(&switch) {
            ctl.active = true;
            ctl.below_since = None;
            ctl.labelled_ports = labelled;
        }
        self.stats.activations += 1;
        self.trace.record(
            now,
            TraceEvent::OverlayActivated {
                switch: switch.0,
                buckets: bucket_count,
                tcam_triggered,
            },
        );
        self.trace.record(
            now,
            TraceEvent::GroupRebalanced {
                switch: switch.0,
                buckets: bucket_count,
                reason: RebalanceReason::Activation,
            },
        );
        out
    }

    fn withdraw(&mut self, now: SimTime, _topo: &Topology, switch: NodeId) -> Vec<Command> {
        // Pin rules for flows *currently being routed* over the overlay
        // (§5.5 step 1): keep forwarding them to the overlay after the
        // default rule goes away. Liveness comes from the stats polls —
        // pinning every flow ever seen would flood the rule budget with
        // rules for long-dead one-packet flows. The horizon derives from
        // the telemetry config: under sparse sampling a live flow is only
        // *observed* every ~1/rate polls, so the window stretches
        // accordingly instead of spuriously expiring it.
        let live_horizon = self
            .config
            .telemetry
            .live_horizon(self.config.stats_poll_interval);
        let pins: Vec<(FlowKey, PortId)> = self
            .flowdb
            .overlay_flows()
            .filter(|(_, info)| info.first_hop == switch)
            .filter(|(_, info)| now.duration_since(info.last_active) < live_horizon)
            .map(|(k, info)| (*k, info.ingress_port))
            .collect();
        let ports = self
            .switches
            .get(&switch)
            .map(|c| c.labelled_ports.clone())
            .unwrap_or_default();

        let mut deferred = Vec::new();
        for (key, ingress) in pins {
            let entry = FlowEntry::new(
                self.flow_matcher(&key),
                PIN_RULE_PRIORITY,
                vec![
                    Instruction::Apply(vec![Action::push_ingress(ingress)]),
                    Instruction::GotoTable(TableId(1)),
                ],
            )
            .with_idle_timeout(self.config.rule_idle_timeout);
            deferred.push(Command::new(
                switch,
                ControllerToSwitch::FlowMod {
                    table: TableId(0),
                    command: FlowModCommand::Add(entry),
                },
            ));
        }
        // Step 2: remove the default port-labelling rules (after the pins:
        // the admitted queue preserves order). The table-1 group rule is
        // unreachable once they are gone, but remove it too.
        for port in ports {
            deferred.push(Command::new(
                switch,
                ControllerToSwitch::FlowMod {
                    table: TableId(0),
                    command: FlowModCommand::DeleteExact(Match::on_port(port).with_top_label(None)),
                },
            ));
        }
        deferred.push(Command::new(
            switch,
            ControllerToSwitch::FlowMod {
                table: TableId(1),
                command: FlowModCommand::DeleteExact(Match::ANY),
            },
        ));

        let pinned = deferred
            .iter()
            .filter(|c| {
                matches!(
                    c.msg,
                    ControllerToSwitch::FlowMod {
                        command: FlowModCommand::Add(_),
                        ..
                    }
                )
            })
            .count() as u32;
        if let Some(ctl) = self.switches.get_mut(&switch) {
            for cmd in deferred {
                ctl.scheduler.push_admitted(cmd);
            }
            ctl.active = false;
            ctl.below_since = None;
            ctl.labelled_ports.clear();
        }
        self.stats.withdrawals += 1;
        self.trace.record(
            now,
            TraceEvent::OverlayWithdrawn {
                switch: switch.0,
                pinned,
            },
        );
        Vec::new()
    }

    // ------------------------------------------------------------------
    // Periodic work
    // ------------------------------------------------------------------

    /// One controller tick: serve schedulers, check activation /
    /// withdrawal, handle vSwitch failures.
    pub fn tick(&mut self, now: SimTime, topo: &Topology) -> Vec<Command> {
        let mut out = Vec::new();
        if self.mode == ControllerMode::Baseline {
            return out;
        }

        // Failure handling first: dead vSwitches must leave the buckets
        // before queue service plans more overlay routes.
        for dead in self.heartbeats.dead_nodes(now) {
            if let Some(bucket) = self.overlay.bucket_of(dead) {
                self.heartbeats.unregister(dead);
                let replacement = self.overlay.fail_vswitch(dead);
                if let Some(r) = replacement {
                    // The promoted standby needs its mesh + delivery
                    // tunnels before it can carry overlay flows.
                    self.overlay.wire_mesh_tunnels(topo, r);
                }
                self.stats.failovers += 1;
                self.trace.record(
                    now,
                    TraceEvent::FailoverExecuted {
                        dead: dead.0,
                        replacement: replacement.map(|r| r.0).unwrap_or(u32::MAX),
                    },
                );
                let switches: Vec<NodeId> = self.switches.keys().copied().collect();
                for s in switches {
                    if !self.is_active(s) {
                        continue;
                    }
                    match replacement {
                        Some(_) => {
                            // Rebuild the whole group with the promoted
                            // backup's tunnel. Simplest correct GroupMod.
                            out.extend(self.rebuild_group(now, topo, s, RebalanceReason::Failover));
                        }
                        None => {
                            out.push(Command::new(
                                s,
                                ControllerToSwitch::GroupMod {
                                    group: GroupId(s.0),
                                    command: GroupModCommand::SetBucketAlive {
                                        bucket,
                                        alive: false,
                                    },
                                },
                            ));
                            let live = self.overlay.alive.iter().filter(|a| **a).count() as u32;
                            self.trace.record(
                                now,
                                TraceEvent::GroupRebalanced {
                                    switch: s.0,
                                    buckets: live,
                                    reason: RebalanceReason::Failover,
                                },
                            );
                        }
                    }
                }
                if let Some(r) = replacement {
                    self.heartbeats.register(r, now);
                }
            }
        }

        // Activation / withdrawal state machine per switch.
        let switch_ids: Vec<NodeId> = {
            let mut v: Vec<NodeId> = self.switches.keys().copied().collect();
            v.sort_unstable();
            v
        };
        for s in &switch_ids {
            let rate = self.monitor.rate(*s, now);
            let tcam_rate = self.tcam_monitor.rate(*s, now);
            let (active, below_since) = {
                let ctl = self.switches.get(s).unwrap();
                (ctl.active, ctl.below_since)
            };
            if !active
                && (rate > self.config.activation_threshold
                    || tcam_rate > self.config.tcam_activation_threshold)
            {
                out.extend(self.activate(now, topo, *s));
            } else if active {
                if rate < self.config.withdrawal_threshold {
                    match below_since {
                        None => {
                            self.switches.get_mut(s).unwrap().below_since = Some(now);
                        }
                        Some(t) if now.duration_since(t) >= self.config.withdrawal_hold => {
                            out.extend(self.withdraw(now, topo, *s));
                        }
                        Some(_) => {}
                    }
                } else {
                    self.switches.get_mut(s).unwrap().below_since = None;
                }
            }
        }

        // Serve the schedulers.
        for s in &switch_ids {
            let work = self.switches.get_mut(s).unwrap().scheduler.service(now);
            for item in work {
                match item {
                    GrantedWork::Admitted(cmd) => out.push(cmd),
                    GrantedWork::Migrate(job) => out.extend(self.serve_migration(now, topo, job)),
                    GrantedWork::Admit(pf) => {
                        // §3.3 TCAM case: while the switch keeps rejecting
                        // inserts with TableFull, physical admission is
                        // futile — route the flow over the overlay instead
                        // ("the solution proposed in this paper is
                        // applicable to the TCAM bottleneck scenario").
                        if self.tcam_monitor.rate(pf.origin, now)
                            > self.config.tcam_activation_threshold
                        {
                            out.extend(self.route_on_overlay(now, topo, pf));
                        } else {
                            out.extend(self.admit_physical(now, topo, pf));
                        }
                    }
                }
            }
        }

        self.detector.expire(now, SimDuration::from_secs(60));
        self.telemetry.expire(now, SimDuration::from_secs(60));
        out
    }

    fn rebuild_group(
        &mut self,
        now: SimTime,
        topo: &Topology,
        switch: NodeId,
        reason: RebalanceReason,
    ) -> Vec<Command> {
        // Rebuild LB tunnels for the new mesh membership, then re-install
        // the group.
        let mesh = self.overlay.mesh.clone();
        let mut tunnels = Vec::new();
        for &v in &mesh {
            // Reuse an existing tunnel when present; otherwise lay a new
            // one (the promoted backup).
            let existing = self.overlay.lb_tunnels.get(&switch).and_then(|ts| {
                ts.iter()
                    .find(|t| self.overlay.tunnels.endpoint(**t) == Some(v))
                    .copied()
            });
            let t = match existing {
                Some(t) => t,
                None => match self.overlay.tunnels.add_shortest(topo, switch, v) {
                    Some(t) => {
                        self.overlay.tunnel_origin.insert(t, switch);
                        t
                    }
                    None => continue,
                },
            };
            tunnels.push(t);
        }
        self.overlay.lb_tunnels.insert(switch, tunnels.clone());

        let mut buckets = Vec::new();
        for (i, t) in tunnels.iter().enumerate() {
            let Some(tun) = self.overlay.tunnels.get(*t) else {
                continue;
            };
            let Some(next) = tun.next_hop(switch) else {
                continue;
            };
            let Some(port) = topo.port_towards(switch, next) else {
                continue;
            };
            let mut b = Bucket::new(vec![Action::push_tunnel(*t), Action::Output(port)]);
            b.alive = *self.overlay.alive.get(i).unwrap_or(&true);
            buckets.push(b);
        }
        self.trace.record(
            now,
            TraceEvent::GroupRebalanced {
                switch: switch.0,
                buckets: buckets.len() as u32,
                reason,
            },
        );
        vec![Command::new(
            switch,
            ControllerToSwitch::GroupMod {
                group: GroupId(switch.0),
                command: GroupModCommand::Install(GroupEntry::select(
                    self.config.lb_policy,
                    buckets,
                )),
            },
        )]
    }

    /// Elastic scale-out (§5.6): join a new vSwitch to the overlay mesh.
    /// Lays its tunnels, starts heartbeating it, and re-installs the
    /// load-balancing group at every switch whose overlay is active so the
    /// new bucket takes traffic immediately.
    pub fn join_vswitch(&mut self, now: SimTime, topo: &Topology, v: NodeId) -> Vec<Command> {
        if self.mode == ControllerMode::Baseline {
            return Vec::new();
        }
        self.overlay.add_mesh_vswitch(topo, v);
        self.heartbeats.register(v, now);
        self.trace
            .record(now, TraceEvent::VSwitchJoined { node: v.0 });
        let mut out = Vec::new();
        let switches: Vec<NodeId> = self.switches.keys().copied().collect();
        for s in switches {
            // Rebuilding lays the switch's tunnel to the new vSwitch either
            // way; only active switches need the GroupMod sent now (an
            // inactive switch gets a fresh group at its next activation).
            let cmds = self.rebuild_group(now, topo, s, RebalanceReason::Join);
            if self.is_active(s) {
                out.extend(cmds);
            }
        }
        out
    }

    /// §5.6: "When recovered, the failed vSwitch can join back Scotch as
    /// a new or backup vSwitch." A recovered node that is not currently a
    /// mesh member becomes a standby backup for the next fail-over.
    pub fn recover_vswitch(&mut self, now: SimTime, node: NodeId) {
        if self.mode == ControllerMode::Baseline {
            return;
        }
        self.trace
            .record(now, TraceEvent::VSwitchRecovered { node: node.0 });
        if let Some(idx) = self.overlay.bucket_of(node) {
            // Still holds its bucket (it failed with no backup available):
            // revive it in place.
            self.overlay.alive[idx] = true;
            self.heartbeats.register(node, now);
        } else if !self.overlay.backups.contains(&node) {
            self.overlay.backups.push(node);
        }
    }

    /// Emit FlowStats polls to all live mesh vSwitches (§5.3).
    pub fn poll_stats(&mut self) -> Vec<Command> {
        if self.mode == ControllerMode::Baseline || !self.config.migration_enabled {
            return Vec::new();
        }
        self.overlay
            .live_mesh()
            .into_iter()
            .map(|v| Command::new(v, ControllerToSwitch::FlowStatsRequest))
            .collect()
    }

    fn on_stats_reply(
        &mut self,
        now: SimTime,
        from: NodeId,
        stats: &[scotch_openflow::messages::FlowStat],
    ) -> Vec<Command> {
        if !self.config.migration_enabled {
            return Vec::new();
        }
        // Aggregate the records into rate estimates (exact in exhaustive
        // mode; Horvitz–Thompson-scaled under sampling), then touch the
        // liveness clock of every active flow *before* judging elephants —
        // the migration path below reads flow state the touches update.
        let scale = self.config.telemetry.scale();
        let cookie_keys = &self.cookie_keys;
        let estimates = self.telemetry.ingest(now, from, stats, scale, |st| {
            let idx = st.cookie.checked_sub(1)?;
            cookie_keys.get(idx as usize).copied()
        });
        for est in &estimates {
            if est.active {
                self.flowdb.touch(&est.key, now);
            }
        }
        for est in &estimates {
            if !self.detector.observe(now, est) {
                continue;
            }
            self.stats.elephant_decisions += 1;
            self.stats.decision_latency_ns += est.duration.0;
            let key = est.key;
            if let Some(info) = self.flowdb.get(&key) {
                if info.path == FlowPath::Overlay && !info.migrated {
                    let first_hop = info.first_hop;
                    if let Some(ctl) = self.switches.get_mut(&first_hop) {
                        ctl.scheduler.push_migration(MigrationJob { key });
                    }
                }
            }
        }
        Vec::new()
    }

    /// Emit heartbeat probes to all live mesh vSwitches (§5.6). Registers
    /// first-time targets.
    pub fn heartbeat(&mut self, now: SimTime) -> Vec<Command> {
        if self.mode == ControllerMode::Baseline {
            return Vec::new();
        }
        let mut out = Vec::new();
        for v in self.overlay.live_mesh() {
            if !self.heartbeats.tracked().contains(&v) {
                self.heartbeats.register(v, now);
            }
            let nonce = self.heartbeats.next_nonce();
            out.push(Command::new(v, ControllerToSwitch::EchoRequest { nonce }));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_net::{FlowId, LinkSpec, NodeKind, Packet};
    use scotch_openflow::PacketInReason;

    /// attacker, client - ps - {mesh0, mesh1} + server behind hostvsw.
    struct Fixture {
        topo: Topology,
        app: ScotchApp,
        ps: NodeId,
        mesh: Vec<NodeId>,
        server_ip: IpAddr,
    }

    fn fixture(mode: ControllerMode) -> Fixture {
        let mut topo = Topology::new();
        let ps = topo.add_node(NodeKind::PhysicalSwitch, "ps");
        let attacker = topo.add_node(NodeKind::Host, "attacker");
        let client = topo.add_node(NodeKind::Host, "client");
        topo.add_duplex_link(attacker, ps, LinkSpec::tengig());
        topo.add_duplex_link(client, ps, LinkSpec::tengig());
        let w = topo.add_node(NodeKind::VSwitch, "hostvsw0");
        topo.add_duplex_link(ps, w, LinkSpec::gig());
        let server = topo.add_node(NodeKind::Host, "server");
        topo.add_duplex_link(w, server, LinkSpec::gig());
        let mesh: Vec<NodeId> = (0..2)
            .map(|i| {
                let v = topo.add_node(NodeKind::VSwitch, format!("mesh{i}"));
                topo.add_duplex_link(ps, v, LinkSpec::gig());
                v
            })
            .collect();

        let server_ip = IpAddr::new(10, 0, 1, 0);
        let mut book = AddressBook::new();
        book.register(&topo, IpAddr::new(10, 0, 0, 1), client, ps);
        book.register(&topo, server_ip, server, w);
        let overlay = crate::overlay::OverlayManager::build(&topo, &[ps], &mesh, &[(server, w)]);
        let mut app = ScotchApp::new(mode, ScotchConfig::default(), book, overlay);
        app.register_switch(ps, 200.0);
        Fixture {
            topo,
            app,
            ps,
            mesh,
            server_ip,
        }
    }

    fn packet_in(key: FlowKey, port: u16) -> SwitchToController {
        SwitchToController::PacketIn {
            packet: Packet::flow_start(key, FlowId(1), SimTime::ZERO),
            in_port: PortId(port),
            reason: PacketInReason::NoMatch,
            via_tunnel: None,
            ingress_label: None,
        }
    }

    fn key(sport: u16, dst: IpAddr) -> FlowKey {
        FlowKey::tcp(IpAddr::new(10, 0, 0, 1), sport, dst, 80)
    }

    #[test]
    fn baseline_mode_admits_immediately() {
        let mut f = fixture(ControllerMode::Baseline);
        let cmds = f.app.handle_switch_msg(
            SimTime::ZERO,
            &f.topo,
            f.ps,
            packet_in(key(1, f.server_ip), 1),
        );
        // FlowMods along ps -> hostvsw + PacketOut.
        assert!(cmds.len() >= 2, "{cmds:?}");
        assert!(cmds
            .iter()
            .any(|c| matches!(c.msg, ControllerToSwitch::PacketOut { .. })));
        assert_eq!(f.app.stats().physical_admitted, 1);
    }

    #[test]
    fn scotch_mode_queues_until_tick() {
        let mut f = fixture(ControllerMode::Scotch);
        let cmds = f.app.handle_switch_msg(
            SimTime::ZERO,
            &f.topo,
            f.ps,
            packet_in(key(1, f.server_ip), 1),
        );
        assert!(cmds.is_empty(), "queued, not admitted: {cmds:?}");
        assert_eq!(f.app.ingress_backlog(f.ps), 1);
        // Tick with budget grants admission.
        let cmds = f.app.tick(SimTime::from_millis(100), &f.topo);
        assert!(!cmds.is_empty());
        assert_eq!(f.app.stats().physical_admitted, 1);
        assert_eq!(f.app.ingress_backlog(f.ps), 0);
    }

    #[test]
    fn activation_installs_group_port_rules_and_default() {
        let mut f = fixture(ControllerMode::Scotch);
        // Drive the monitor over the activation threshold.
        for i in 0..200u64 {
            f.app.monitor.record(f.ps, SimTime::from_millis(i * 5));
        }
        let cmds = f.app.tick(SimTime::from_secs(1), &f.topo);
        assert!(f.app.is_active(f.ps));
        assert_eq!(f.app.stats().activations, 1);
        let group_mods = cmds
            .iter()
            .filter(|c| matches!(c.msg, ControllerToSwitch::GroupMod { .. }))
            .count();
        assert_eq!(group_mods, 1);
        // One labelling rule per connected port + the table-1 default.
        let flow_mods = cmds
            .iter()
            .filter(|c| matches!(c.msg, ControllerToSwitch::FlowMod { .. }))
            .count();
        assert_eq!(flow_mods, f.topo.ports(f.ps).len() + 1);
        // All addressed to the activated switch.
        assert!(cmds.iter().all(|c| c.to == f.ps));
    }

    #[test]
    fn overlay_packet_in_attributes_to_origin_switch() {
        let mut f = fixture(ControllerMode::Scotch);
        let tunnel = f.app.overlay.lb_tunnels[&f.ps][0];
        let v = f.mesh[0];
        let msg = SwitchToController::PacketIn {
            packet: Packet::flow_start(key(7, f.server_ip), FlowId(9), SimTime::ZERO),
            in_port: PortId(0),
            reason: PacketInReason::NoMatch,
            via_tunnel: Some(tunnel),
            ingress_label: Some(3),
        };
        f.app
            .handle_switch_msg(SimTime::from_millis(1), &f.topo, v, msg);
        // Attributed to ps (not the vSwitch), on the labelled port.
        assert!(f.app.monitor.rate(f.ps, SimTime::from_millis(2)) > 0.0);
        assert_eq!(f.app.ingress_backlog(f.ps), 1);
        // Direct-OFA monitor must NOT see overlay-borne Packet-Ins.
        assert_eq!(
            f.app.direct_monitor.rate(f.ps, SimTime::from_millis(2)),
            0.0
        );
    }

    #[test]
    fn duplicate_packet_in_is_relayed_to_destination_edge() {
        let mut f = fixture(ControllerMode::Scotch);
        let k = key(2, f.server_ip);
        f.app
            .handle_switch_msg(SimTime::ZERO, &f.topo, f.ps, packet_in(k, 1));
        // Same flow again while pending.
        let cmds = f
            .app
            .handle_switch_msg(SimTime::from_millis(1), &f.topo, f.ps, packet_in(k, 1));
        assert_eq!(f.app.stats().duplicate_packet_ins, 1);
        assert_eq!(cmds.len(), 1);
        assert!(matches!(cmds[0].msg, ControllerToSwitch::PacketOut { .. }));
    }

    #[test]
    fn unroutable_destination_counts() {
        let mut f = fixture(ControllerMode::Baseline);
        let cmds = f.app.handle_switch_msg(
            SimTime::ZERO,
            &f.topo,
            f.ps,
            packet_in(key(1, IpAddr::new(99, 9, 9, 9)), 1),
        );
        assert!(cmds.is_empty());
        assert_eq!(f.app.stats().unroutable, 1);
    }

    #[test]
    fn heartbeat_probes_live_mesh_and_failure_disables_bucket() {
        let mut f = fixture(ControllerMode::Scotch);
        let cmds = f.app.heartbeat(SimTime::ZERO);
        assert_eq!(cmds.len(), 2); // two mesh vSwitches
        assert!(cmds
            .iter()
            .all(|c| matches!(c.msg, ControllerToSwitch::EchoRequest { .. })));
        // Activate so failure handling issues GroupMods.
        for i in 0..200u64 {
            f.app
                .monitor
                .record(f.ps, SimTime::from_millis(900 + i.min(5)));
        }
        f.app.tick(SimTime::from_secs(1), &f.topo);
        assert!(f.app.is_active(f.ps));
        // mesh0 keeps answering heartbeats; mesh1 goes silent.
        for sec in 1..=4u64 {
            f.app.handle_switch_msg(
                SimTime::from_secs(sec),
                &f.topo,
                f.mesh[0],
                SwitchToController::EchoReply { nonce: sec },
            );
        }
        // Keep the monitor hot so no withdrawal interferes.
        for i in 0..200u64 {
            f.app.monitor.record(f.ps, SimTime::from_millis(4400 + i));
        }
        // mesh1 is now well past the miss limit.
        let cmds = f.app.tick(SimTime::from_millis(4600), &f.topo);
        assert!(f.app.stats().failovers >= 1);
        assert!(
            cmds.iter().any(|c| matches!(
                c.msg,
                ControllerToSwitch::GroupMod {
                    command: scotch_openflow::messages::GroupModCommand::SetBucketAlive {
                        alive: false,
                        ..
                    },
                    ..
                }
            )),
            "expected a bucket disable: {cmds:?}"
        );
    }

    #[test]
    fn stats_poll_targets_live_mesh_only() {
        let mut f = fixture(ControllerMode::Scotch);
        assert_eq!(f.app.poll_stats().len(), 2);
        f.app.overlay.fail_vswitch(f.mesh[0]);
        assert_eq!(f.app.poll_stats().len(), 1);
        // Baseline mode never polls.
        let b = fixture(ControllerMode::Baseline);
        let mut b = b;
        assert!(b.app.poll_stats().is_empty());
    }

    #[test]
    fn flow_matcher_respects_granularity_config() {
        let f = fixture(ControllerMode::Scotch);
        let k = key(5, f.server_ip);
        let m = f.app.flow_matcher(&k);
        assert_eq!(m, Match::src_dst(k.src, k.dst));
        let mut f2 = fixture(ControllerMode::Scotch);
        f2.app.config.exact_match_rules = true;
        assert_eq!(f2.app.flow_matcher(&k), Match::exact(k));
    }

    #[test]
    fn error_messages_count_rule_failures() {
        let mut f = fixture(ControllerMode::Scotch);
        f.app.handle_switch_msg(
            SimTime::ZERO,
            &f.topo,
            f.ps,
            SwitchToController::Error {
                kind: OfError::FlowModOverload,
            },
        );
        f.app.handle_switch_msg(
            SimTime::ZERO,
            &f.topo,
            f.ps,
            SwitchToController::Error {
                kind: OfError::TableFull,
            },
        );
        assert_eq!(f.app.stats().rule_failures, 2);
    }

    #[test]
    fn withdrawal_pins_live_overlay_flows_then_removes_defaults() {
        let mut f = fixture(ControllerMode::Scotch);
        // Activate.
        for i in 0..200u64 {
            f.app
                .monitor
                .record(f.ps, SimTime::from_millis(900 + i.min(5)));
        }
        f.app.tick(SimTime::from_secs(1), &f.topo);
        assert!(f.app.is_active(f.ps));
        // One overlay flow, kept alive via stats-poll touches.
        let k = key(77, f.server_ip);
        let tunnel = f.app.overlay.lb_tunnels[&f.ps][0];
        let msg = SwitchToController::PacketIn {
            packet: Packet::flow_start(k, FlowId(1), SimTime::from_secs(1)),
            in_port: PortId(0),
            reason: PacketInReason::NoMatch,
            via_tunnel: Some(tunnel),
            ingress_label: Some(2),
        };
        f.app
            .handle_switch_msg(SimTime::from_millis(1100), &f.topo, f.mesh[0], msg);
        // Force it onto the overlay via the scheduler path: shed directly.
        // (Simpler: mark it in flowdb as an overlay flow.)
        f.app.flowdb.record(
            k,
            f.ps,
            PortId(2),
            SimTime::from_millis(1100),
            FlowPath::Overlay,
        );
        f.app.flowdb.touch(&k, SimTime::from_secs(10));

        // Silence: rate decays below the withdrawal threshold; hold for 2s.
        let mut cmds = Vec::new();
        for t in [9_000u64, 9_010, 11_020, 11_030] {
            cmds.extend(f.app.tick(SimTime::from_millis(t), &f.topo));
        }
        assert!(!f.app.is_active(f.ps));
        assert_eq!(f.app.stats().withdrawals, 1);
        // Pins + deletions ride the admitted queue: service a later tick.
        let cmds2 = f.app.tick(SimTime::from_millis(12_000), &f.topo);
        let all: Vec<&Command> = cmds.iter().chain(cmds2.iter()).collect();
        let pins = all
            .iter()
            .filter(|c| {
                matches!(
                    &c.msg,
                    ControllerToSwitch::FlowMod {
                        command: FlowModCommand::Add(e),
                        ..
                    } if e.priority == PIN_RULE_PRIORITY
                )
            })
            .count();
        let deletes = all
            .iter()
            .filter(|c| {
                matches!(
                    &c.msg,
                    ControllerToSwitch::FlowMod {
                        command: FlowModCommand::DeleteExact(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(pins, 1, "one live overlay flow -> one pin");
        // Port-label rules + the table-1 default.
        assert!(deletes >= 2, "default rules must be deleted: {deletes}");
        // Order within the queue: pin precedes the deletions.
        let order: Vec<u16> = all
            .iter()
            .filter_map(|c| match &c.msg {
                ControllerToSwitch::FlowMod {
                    command: FlowModCommand::Add(e),
                    ..
                } if e.priority == PIN_RULE_PRIORITY => Some(0),
                ControllerToSwitch::FlowMod {
                    command: FlowModCommand::DeleteExact(_),
                    ..
                } => Some(1),
                _ => None,
            })
            .collect();
        assert!(
            order.windows(2).all(|w| w[0] <= w[1]),
            "pins first: {order:?}"
        );
    }

    /// Drive activation, park one overlay flow last-touched at t=10 s,
    /// then withdraw around t=50 s; returns how many pin rules were
    /// installed for it.
    fn pins_after_late_withdrawal(telemetry: crate::config::TelemetryConfig) -> usize {
        let mut f = fixture(ControllerMode::Scotch);
        f.app.config.telemetry = telemetry;
        for i in 0..200u64 {
            f.app
                .monitor
                .record(f.ps, SimTime::from_millis(900 + i.min(5)));
        }
        f.app.tick(SimTime::from_secs(1), &f.topo);
        assert!(f.app.is_active(f.ps));
        let k = key(78, f.server_ip);
        f.app.flowdb.record(
            k,
            f.ps,
            PortId(2),
            SimTime::from_millis(1100),
            FlowPath::Overlay,
        );
        // Last observed activity: a stats sighting at t = 10 s. Under
        // sparse sampling the flow may simply not have been sampled since.
        f.app.flowdb.touch(&k, SimTime::from_secs(10));
        let mut cmds = Vec::new();
        for t in [48_000u64, 48_010, 50_020, 50_030] {
            cmds.extend(f.app.tick(SimTime::from_millis(t), &f.topo));
        }
        assert_eq!(f.app.stats().withdrawals, 1);
        cmds.extend(f.app.tick(SimTime::from_millis(51_000), &f.topo));
        cmds.iter()
            .filter(|c| {
                matches!(
                    &c.msg,
                    ControllerToSwitch::FlowMod {
                        command: FlowModCommand::Add(e),
                        ..
                    } if e.priority == PIN_RULE_PRIORITY
                )
            })
            .count()
    }

    #[test]
    fn sparse_sampling_stretches_withdrawal_liveness_horizon() {
        use crate::config::TelemetryConfig;
        // ~40 s since the last sighting. Exhaustive polling would have
        // observed a live flow every second, so 40 s of silence means
        // dead: no pin. At rate 1/64 a live-but-slow flow is only
        // *observed* every ~64 polls — the horizon stretches to 128 s and
        // the flow must still be pinned, not spuriously expired.
        assert_eq!(pins_after_late_withdrawal(TelemetryConfig::Exhaustive), 0);
        assert_eq!(
            pins_after_late_withdrawal(TelemetryConfig::Sampled { rate: 1.0 / 64.0 }),
            1,
            "sparsely-sampled live overlay flow was spuriously expired"
        );
    }

    #[test]
    fn baseline_tick_is_inert() {
        let mut f = fixture(ControllerMode::Baseline);
        assert!(f.app.tick(SimTime::from_secs(1), &f.topo).is_empty());
        assert!(f.app.heartbeat(SimTime::from_secs(1)).is_empty());
    }
}
