//! Chaos harness: invariant checking over fault-injected runs, random
//! fault-plan generation, and delta-debugging shrinking.
//!
//! A chaos run is a `(scenario, seed, plan)` triple: the
//! [`FaultPlan`] is attached with [`Scenario::with_fault_plan`], the run
//! replays bit-identically, and [`check`] reconciles the resulting
//! [`Report`] against four invariants after the fact:
//!
//! * **I1 — no silent flow loss.** Every emitted-but-undelivered packet is
//!   accounted for by a drop counter, a chaos perturbation counter, or the
//!   in-flight ledger. Faults may destroy packets, but never invisibly.
//! * **I2 — bounded failover.** Every injected vSwitch crash is answered by
//!   a `FailoverExecuted` trace event within the configured bound (the
//!   heartbeat detection latency plus slack).
//! * **I3 — no stranded overlay flows.** Overlay withdrawal never routes a
//!   flow to a destination with no delivery tunnel
//!   (`AppStats::overlay_undeliverable` stays within its budget).
//! * **I4 — message conservation.** Packet-In and FlowMod-Add counts
//!   balance *exactly*: every message is received, dropped by an injected
//!   fault, absorbed by a dead device, or still in flight at the horizon.
//! * **I5 — no flow setup lost across failover.** Every switch→controller
//!   message parked during a mastership migration is released to the new
//!   master or still parked at the horizon: the cluster's pending ledger
//!   balances exactly (cluster runs only).
//! * **I6 — bounded mastership handoff.** Every handoff settles within the
//!   configured inter-replica sync delay of becoming due (cluster runs
//!   only).
//! * **I7 — bounded setup latency.** Optional: every flow that completes
//!   setup under faults does so within `setup_latency_bound` of its first
//!   emission.
//!
//! Violations carry the flight-recorder trace window around them, so a
//! failing run reads as a story, not a boolean. [`generate_plan`] draws
//! random plans from a seed and [`shrink`] reduces a failing plan to a
//! (locally) minimal one by delta debugging — the `scotch-cli chaos`
//! subcommand wires these into a search loop.

use crate::config::ScotchConfig;
use crate::report::Report;
use crate::scenario::Scenario;
use proptest::Gen;
use scotch_sim::fault::{FaultKind, FaultPlan};
use scotch_sim::trace::{TraceEvent, TraceRecord};
use scotch_sim::{SimDuration, SimTime};

/// Tunables for the invariant checker.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Maximum time from an injected vSwitch crash to its
    /// `FailoverExecuted` trace event (I2). Derive it from the scenario's
    /// heartbeat settings with [`ChaosConfig::for_scotch`]; set it to
    /// [`SimDuration::ZERO`] to deliberately break I2 (regression tests).
    pub failover_bound: SimDuration,
    /// Maximum tolerated `overlay_undeliverable` count (I3). Default 0.
    pub max_undeliverable: u64,
    /// Per-flow setup-latency bound (I7): a flow whose first packet *is*
    /// delivered must have been delivered within this much of its first
    /// emission. `None` (the default) disables the check — faults may
    /// legitimately delay setup arbitrarily unless the scenario promises a
    /// bound.
    pub setup_latency_bound: Option<SimDuration>,
    /// Trace records captured on each side of a violation.
    pub window: usize,
}

impl ChaosConfig {
    /// Derive the failover bound from a scenario's heartbeat settings:
    /// detection takes `heartbeat_period × (miss_limit + 1)` in the worst
    /// phase, plus one period of slack for the tick that executes the
    /// promotion.
    pub fn for_scotch(config: &ScotchConfig) -> Self {
        let detect = config
            .heartbeat_period
            .mul(u64::from(config.heartbeat_miss_limit) + 1);
        ChaosConfig {
            failover_bound: detect + SimDuration::from_secs(1),
            max_undeliverable: 0,
            setup_latency_bound: None,
            window: 8,
        }
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::for_scotch(&ScotchConfig::default())
    }
}

/// One invariant violation, with the trace context around it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Short invariant identifier (`"I1-flow-loss"`, ...).
    pub invariant: &'static str,
    /// Sim-time anchor of the violation.
    pub at: SimTime,
    /// Human-readable account of what failed to reconcile.
    pub detail: String,
    /// Rendered flight-recorder records around the anchor.
    pub trace_window: Vec<String>,
}

impl Violation {
    /// Multi-line rendering: the claim, then the trace window indented.
    pub fn render(&self) -> String {
        let mut s = format!(
            "violation {} at t={}ns: {}\n",
            self.invariant,
            self.at.as_nanos(),
            self.detail
        );
        for line in &self.trace_window {
            s.push_str("    ");
            s.push_str(line);
            s.push('\n');
        }
        s
    }
}

/// Render a full violation report (deterministic; empty string when clean).
pub fn render_violations(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&v.render());
    }
    out
}

fn render_record(r: &TraceRecord) -> String {
    let mut s = format!(
        "[{}] t={}ns {}/{}",
        r.seq,
        r.at.as_nanos(),
        r.event.category().name(),
        r.event.kind_name()
    );
    for (k, v) in r.event.fields() {
        s.push_str(&format!(" {k}={v}"));
    }
    s
}

/// Up to `w` rendered trace records on each side of `at`.
fn window_around(records: &[TraceRecord], at: SimTime, w: usize) -> Vec<String> {
    let pos = records.partition_point(|r| r.at < at);
    let lo = pos.saturating_sub(w);
    let hi = (pos + w).min(records.len());
    records[lo..hi].iter().map(render_record).collect()
}

fn metric(report: &Report, name: &str) -> u64 {
    report.metrics.get(name).unwrap_or(0.0) as u64
}

/// Check all chaos invariants over a finished run. Empty result = clean.
///
/// `plan` is consulted for crash restart delays (a vSwitch that restarts
/// before the detection bound legitimately needs no failover).
pub fn check(report: &Report, plan: &FaultPlan, cfg: &ChaosConfig) -> Vec<Violation> {
    let mut violations = Vec::new();
    let records = report.trace.records();
    let horizon = SimTime::ZERO + report.duration;

    // I1 — no silent flow loss. Sum every emitted-but-undelivered packet
    // and demand the loss be covered by known causes. Causes may overlap
    // (link_queue double-counts by construction), which only ever makes the
    // bound looser — the invariant catches packets that vanish with *no*
    // cause, not over-attribution.
    let mut emitted: u64 = 0;
    let mut lost: u64 = 0;
    for f in &report.flows {
        emitted += u64::from(f.emitted);
        lost += u64::from(f.emitted.saturating_sub(f.delivered));
    }
    let d = &report.drops;
    let accounted = d.ofa_overload
        + d.dataplane
        + d.policy
        + d.no_route
        + d.link_queue
        + d.link_faults
        + report.misrouted
        + report.controller_dropped
        + report.middlebox_rejections
        + metric(report, "chaos.rx_dropped.packet_in")
        + metric(report, "chaos.tx_dropped.packet_out")
        + metric(report, "chaos.absorbed.packet_out")
        + metric(report, "chaos.in_flight_rx.packet_in")
        + metric(report, "chaos.in_flight_tx.packet_out")
        + metric(report, "chaos.in_flight.packets")
        + metric(report, "controller.backlog.last")
        // Messages still parked behind an unsettled mastership migration at
        // the horizon are held, not lost.
        + metric(report, "ctrl.cluster.pending");
    let slack = 1000.max(emitted / 100);
    if lost > accounted + slack {
        violations.push(Violation {
            invariant: "I1-flow-loss",
            at: horizon,
            detail: format!(
                "{lost} of {emitted} emitted packets undelivered but only \
                 {accounted} accounted for (slack {slack})"
            ),
            trace_window: window_around(&records, horizon, cfg.window),
        });
    }

    // I2 — bounded failover. Every VSwitchCrash injection must be answered
    // by a FailoverExecuted for the same node within the bound, unless the
    // plan restarts the vSwitch before detection could complete or the run
    // ended inside the bound.
    for rec in &records {
        let TraceEvent::FaultInjected { kind: 0, target } = rec.event else {
            continue;
        };
        let deadline = rec.at + cfg.failover_bound;
        if deadline > horizon {
            continue; // bound extends past the run: not judgeable
        }
        let restarts_early = plan.events.iter().any(|e| {
            e.at == rec.at
                && matches!(e.kind,
                    FaultKind::VSwitchCrash { restart_after: Some(r), .. }
                        if r < cfg.failover_bound)
        });
        if restarts_early {
            continue;
        }
        let answered = records.iter().any(|r2| {
            r2.at > rec.at
                && r2.at <= deadline
                && matches!(r2.event,
                    TraceEvent::FailoverExecuted { dead, .. } if dead == target)
        });
        if !answered {
            violations.push(Violation {
                invariant: "I2-failover-bound",
                at: rec.at,
                detail: format!(
                    "vSwitch node {} crashed at t={}ns; no FailoverExecuted \
                     within {}ns",
                    target,
                    rec.at.as_nanos(),
                    cfg.failover_bound.as_nanos()
                ),
                trace_window: window_around(&records, rec.at, cfg.window),
            });
        }
    }

    // I3 — overlay withdrawal never strands flows.
    if report.app.overlay_undeliverable > cfg.max_undeliverable {
        violations.push(Violation {
            invariant: "I3-overlay-stranded",
            at: horizon,
            detail: format!(
                "{} overlay flows had no delivery tunnel (budget {})",
                report.app.overlay_undeliverable, cfg.max_undeliverable
            ),
            trace_window: window_around(&records, horizon, cfg.window),
        });
    }

    // I4a — Packet-In conservation (exact). Every Packet-In an OFA sent is
    // either received by the controller, dropped by injected loss, or still
    // in flight; injected duplication adds receptions.
    let pi_sent: u64 = report
        .switches
        .iter()
        .map(|s| s.ofa.packet_in_sent)
        .chain(report.vswitches.iter().map(|v| v.ofa.packet_in_sent))
        .sum();
    let pi_rx = metric(report, "controller.rx.packet_in");
    let pi_expected = pi_sent + metric(report, "chaos.duplicated.packet_in")
        - metric(report, "chaos.rx_dropped.packet_in")
        - metric(report, "chaos.in_flight_rx.packet_in");
    if pi_rx != pi_expected {
        violations.push(Violation {
            invariant: "I4-packet-in-conservation",
            at: horizon,
            detail: format!(
                "controller received {pi_rx} Packet-Ins, expected {pi_expected} \
                 (sent {pi_sent} - dropped {} + duplicated {} - in-flight {})",
                metric(report, "chaos.rx_dropped.packet_in"),
                metric(report, "chaos.duplicated.packet_in"),
                metric(report, "chaos.in_flight_rx.packet_in"),
            ),
            trace_window: window_around(&records, horizon, cfg.window),
        });
    }

    // I4b — FlowMod-Add conservation (exact). Every Add the controller sent
    // (including bootstrap rules) reached an OFA as an insertion attempt,
    // was dropped by injected loss, was absorbed by a dead/absent device,
    // or is still in flight.
    let fm_sent = metric(report, "chaos.flowmod_add.sent");
    let fm_attempted: u64 = report
        .switches
        .iter()
        .map(|s| s.ofa.rules_attempted)
        .chain(report.vswitches.iter().map(|v| v.ofa.rules_attempted))
        .sum();
    let fm_expected = fm_attempted
        + metric(report, "chaos.flowmod_add.dropped")
        + metric(report, "chaos.flowmod_add.absorbed")
        + metric(report, "chaos.flowmod_add.in_flight");
    if fm_sent != fm_expected {
        violations.push(Violation {
            invariant: "I4-flowmod-conservation",
            at: horizon,
            detail: format!(
                "{fm_sent} FlowMod-Adds sent but {fm_expected} accounted for \
                 (attempted {fm_attempted} + dropped {} + absorbed {} + in-flight {})",
                metric(report, "chaos.flowmod_add.dropped"),
                metric(report, "chaos.flowmod_add.absorbed"),
                metric(report, "chaos.flowmod_add.in_flight"),
            ),
            trace_window: window_around(&records, horizon, cfg.window),
        });
    }

    // I5 — no flow setup lost across failover (cluster runs only). Every
    // switch→controller message parked during a mastership migration must be
    // released to the new master or still parked at the horizon: the
    // pending ledger balances *exactly*, like I4.
    if metric(report, "ctrl.cluster.replicas") >= 2 {
        let enq = metric(report, "ctrl.cluster.pending_enq");
        let rel = metric(report, "ctrl.cluster.pending_rel");
        let held = metric(report, "ctrl.cluster.pending");
        if enq != rel + held {
            violations.push(Violation {
                invariant: "I5-failover-loss",
                at: horizon,
                detail: format!(
                    "{enq} messages parked during mastership migrations but \
                     only {rel} released + {held} still parked"
                ),
                trace_window: window_around(&records, horizon, cfg.window),
            });
        }

        // I6 — bounded mastership handoff. The engine stamps
        // `handoff_exceeded` for any handoff that settled later than its
        // sync-delay deadline; a clean run has none. Each late handoff is
        // anchored at its trace record for the window.
        if metric(report, "ctrl.cluster.handoff_exceeded") > 0 {
            let mut anchored = false;
            for rec in &records {
                if let TraceEvent::MastershipHandoff {
                    switch, from, to, ..
                } = rec.event
                {
                    anchored = true;
                    violations.push(Violation {
                        invariant: "I6-handoff-bound",
                        at: rec.at,
                        detail: format!(
                            "mastership of switch {switch} moved {from}->{to} in a run \
                             where {} handoff(s) exceeded the sync-delay bound",
                            metric(report, "ctrl.cluster.handoff_exceeded")
                        ),
                        trace_window: window_around(&records, rec.at, cfg.window),
                    });
                    break;
                }
            }
            if !anchored {
                violations.push(Violation {
                    invariant: "I6-handoff-bound",
                    at: horizon,
                    detail: format!(
                        "{} mastership handoff(s) exceeded the sync-delay bound",
                        metric(report, "ctrl.cluster.handoff_exceeded")
                    ),
                    trace_window: window_around(&records, horizon, cfg.window),
                });
            }
        }
    }

    // I7 — bounded setup latency (opt-in). A flow whose first packet was
    // delivered must have completed setup within the bound; flows that
    // never deliver are I1's concern, and attack flows are policed by
    // design.
    if let Some(bound) = cfg.setup_latency_bound {
        for f in &report.flows {
            let Some(first) = f.first_delivered else {
                continue;
            };
            if f.is_attack {
                continue;
            }
            let setup = first.duration_since(f.started_at);
            if setup > bound {
                violations.push(Violation {
                    invariant: "I7-setup-latency",
                    at: first,
                    detail: format!(
                        "flow {} completed setup in {}ns, over the {}ns bound",
                        f.id.0,
                        setup.as_nanos(),
                        bound.as_nanos()
                    ),
                    trace_window: window_around(&records, first, cfg.window),
                });
            }
        }
    }

    violations
}

/// Draw a random fault plan: `n_events` faults uniformly placed over
/// `[0, horizon)`, kinds and parameters drawn from ranges wide enough to
/// stress every subsystem but bounded so a single fault cannot trivially
/// exceed the run. Deterministic in `(seed, horizon, n_events)`.
pub fn generate_plan(seed: u64, horizon: SimDuration, n_events: usize) -> FaultPlan {
    let mut g = Gen::new(seed);
    let mut plan = FaultPlan::new();
    let span = horizon.as_nanos().max(1);
    for _ in 0..n_events {
        let at = SimTime::ZERO + SimDuration::from_nanos(g.below(span));
        let dur = SimDuration::from_millis(50 + g.below(1950));
        let p = 0.05 + 0.45 * g.f64();
        let target = g.below(u64::from(u32::MAX)) as u32;
        let kind = match g.below(11) {
            0 => FaultKind::VSwitchCrash {
                target,
                restart_after: if g.below(2) == 0 {
                    None
                } else {
                    Some(SimDuration::from_millis(100 + g.below(4900)))
                },
            },
            1 => FaultKind::LinkDown {
                target,
                duration: dur,
            },
            2 => FaultKind::LinkFlap {
                target,
                cycles: 1 + g.below(4) as u32,
                period: SimDuration::from_millis(10 + g.below(190)),
            },
            3 => FaultKind::LinkDegrade {
                target,
                extra_latency: SimDuration::from_micros(100 + g.below(9900)),
                duration: dur,
            },
            4 => FaultKind::CtrlLoss { p, duration: dur },
            5 => FaultKind::CtrlDup { p, duration: dur },
            6 => FaultKind::CtrlReorder {
                p,
                jitter: SimDuration::from_micros(100 + g.below(49_900)),
                duration: dur,
            },
            7 => FaultKind::OfaSlowdown {
                target,
                factor: 2.0 + 18.0 * g.f64(),
                duration: dur,
            },
            8 => FaultKind::ControllerStall {
                duration: SimDuration::from_millis(50 + g.below(950)),
            },
            9 => FaultKind::ReplicaCrash {
                target,
                restart_after: if g.below(2) == 0 {
                    None
                } else {
                    Some(SimDuration::from_millis(100 + g.below(4900)))
                },
            },
            _ => FaultKind::CtrlPartition { duration: dur },
        };
        plan.push(at, kind);
    }
    plan.sort();
    plan
}

/// Halved-parameter simplification of one fault, or `None` when the fault
/// is already minimal. Shrinking never changes a fault's time or kind —
/// only its magnitude — so a shrunk plan stays within the original's shape.
fn simplify(kind: FaultKind) -> Option<FaultKind> {
    let half = |d: SimDuration| SimDuration::from_nanos(d.as_nanos() / 2);
    match kind {
        FaultKind::VSwitchCrash {
            target,
            restart_after: Some(_),
        } => Some(FaultKind::VSwitchCrash {
            target,
            restart_after: None,
        }),
        FaultKind::LinkDown { target, duration } if duration > SimDuration::from_millis(10) => {
            Some(FaultKind::LinkDown {
                target,
                duration: half(duration),
            })
        }
        FaultKind::LinkFlap {
            target,
            cycles,
            period,
        } if cycles > 1 => Some(FaultKind::LinkFlap {
            target,
            cycles: cycles / 2,
            period,
        }),
        FaultKind::LinkDegrade {
            target,
            extra_latency,
            duration,
        } if duration > SimDuration::from_millis(10) => Some(FaultKind::LinkDegrade {
            target,
            extra_latency: half(extra_latency),
            duration: half(duration),
        }),
        FaultKind::CtrlLoss { p, duration } if p > 0.02 => Some(FaultKind::CtrlLoss {
            p: p / 2.0,
            duration,
        }),
        FaultKind::CtrlDup { p, duration } if p > 0.02 => Some(FaultKind::CtrlDup {
            p: p / 2.0,
            duration,
        }),
        FaultKind::CtrlReorder {
            p,
            jitter,
            duration,
        } if p > 0.02 => Some(FaultKind::CtrlReorder {
            p: p / 2.0,
            jitter: half(jitter),
            duration,
        }),
        FaultKind::OfaSlowdown {
            target,
            factor,
            duration,
        } if factor > 2.0 => Some(FaultKind::OfaSlowdown {
            target,
            factor: factor / 2.0,
            duration,
        }),
        FaultKind::ControllerStall { duration } if duration > SimDuration::from_millis(10) => {
            Some(FaultKind::ControllerStall {
                duration: half(duration),
            })
        }
        FaultKind::ReplicaCrash {
            target,
            restart_after: Some(_),
        } => Some(FaultKind::ReplicaCrash {
            target,
            restart_after: None,
        }),
        FaultKind::CtrlPartition { duration } if duration > SimDuration::from_millis(10) => {
            Some(FaultKind::CtrlPartition {
                duration: half(duration),
            })
        }
        _ => None,
    }
}

/// Delta-debugging shrink: reduce a failing plan to a locally minimal one.
///
/// `still_fails` re-runs the candidate plan and reports whether it still
/// violates an invariant; it is called at most `max_runs` times. Two loops
/// alternate to a fixpoint: drop event subsets (halving granularity, the
/// classic ddmin sweep), then halve individual fault magnitudes. Returns
/// the smallest failing plan found and the number of runs spent.
pub fn shrink<F>(plan: &FaultPlan, mut still_fails: F, max_runs: usize) -> (FaultPlan, usize)
where
    F: FnMut(&FaultPlan) -> bool,
{
    let mut best = plan.clone();
    let mut runs = 0usize;
    let mut try_candidate = |cand: &FaultPlan, runs: &mut usize| -> bool {
        if *runs >= max_runs {
            return false;
        }
        *runs += 1;
        still_fails(cand)
    };

    let mut progress = true;
    while progress && runs < max_runs {
        progress = false;

        // Pass 1: ddmin over the event list.
        let mut chunk = best.len().div_ceil(2).max(1);
        while chunk >= 1 && best.len() > 1 && runs < max_runs {
            let mut removed_any = false;
            let mut start = 0;
            while start < best.len() && runs < max_runs {
                let mut cand = FaultPlan::new();
                for (i, ev) in best.events.iter().enumerate() {
                    if i < start || i >= start + chunk {
                        cand.push(ev.at, ev.kind);
                    }
                }
                if !cand.is_empty() && try_candidate(&cand, &mut runs) {
                    best = cand;
                    progress = true;
                    removed_any = true;
                    // Retry the same offset: the list shifted left.
                } else {
                    start += chunk;
                }
            }
            if !removed_any {
                if chunk == 1 {
                    break;
                }
                chunk /= 2;
            }
        }

        // Pass 2: halve individual fault magnitudes.
        for i in 0..best.len() {
            while runs < max_runs {
                let Some(simpler) = simplify(best.events[i].kind) else {
                    break;
                };
                let mut cand = best.clone();
                cand.events[i].kind = simpler;
                if try_candidate(&cand, &mut runs) {
                    best = cand;
                    progress = true;
                } else {
                    break;
                }
            }
        }
    }
    (best, runs)
}

/// Outcome of one chaos run: the full report plus its violations.
pub struct ChaosOutcome {
    /// The run's report (trace, metrics, flows).
    pub report: Report,
    /// Invariant violations (empty = clean run).
    pub violations: Vec<Violation>,
}

/// Run `plan` against a scenario and check every invariant.
pub fn run_plan(
    make: &dyn Fn() -> Scenario,
    seed: u64,
    until: SimTime,
    plan: &FaultPlan,
    cfg: &ChaosConfig,
) -> ChaosOutcome {
    let report = make().with_fault_plan(plan.clone()).run(until, seed);
    let violations = check(&report, plan, cfg);
    ChaosOutcome { report, violations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_plan_is_deterministic_and_sorted() {
        let horizon = SimDuration::from_secs(10);
        let a = generate_plan(7, horizon, 12);
        let b = generate_plan(7, horizon, 12);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.len(), 12);
        let times: Vec<u64> = a.events.iter().map(|e| e.at.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        let c = generate_plan(8, horizon, 12);
        assert_ne!(a.render(), c.render());
    }

    #[test]
    fn shrink_drops_irrelevant_events() {
        // Failure depends only on the presence of a ControllerStall; the
        // shrinker should strip everything else and halve the stall.
        let horizon = SimDuration::from_secs(10);
        let plan = generate_plan(3, horizon, 16);
        assert!(plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::ControllerStall { .. })));
        let fails = |p: &FaultPlan| {
            p.events
                .iter()
                .any(|e| matches!(e.kind, FaultKind::ControllerStall { .. }))
        };
        let (small, runs) = shrink(&plan, fails, 500);
        assert!(runs > 0);
        assert_eq!(small.len(), 1, "minimal plan is a single stall");
        assert!(matches!(
            small.events[0].kind,
            FaultKind::ControllerStall { duration } if duration <= SimDuration::from_millis(10)
        ));
    }

    #[test]
    fn simplify_reaches_fixpoint() {
        // Every fault kind must stop shrinking eventually (no infinite
        // shrink loops).
        let plan = generate_plan(11, SimDuration::from_secs(5), 40);
        for ev in &plan.events {
            let mut k = ev.kind;
            let mut steps = 0;
            while let Some(next) = simplify(k) {
                k = next;
                steps += 1;
                assert!(steps < 100, "simplify({:?}) does not terminate", ev.kind);
            }
        }
    }
}
