//! NetFlow-style flow-telemetry aggregation (monitor side).
//!
//! The §5.3 monitor originally ingested exhaustive `FlowStatsReply`
//! payloads straight into the elephant detector. With sampled telemetry
//! (DESIGN.md §13) the vSwitches export *sampled* counters instead, so
//! the monitor needs an aggregation stage: the [`TelemetryCache`] keeps
//! one slot per `(vSwitch, cookie)`, scales each incoming record by the
//! inverse sampling probability (Horvitz–Thompson), and turns successive
//! sightings into per-flow **rate estimates** — the
//! [`FlowEstimate`] stream that the elephant detector and the
//! withdrawal liveness filter consume.
//!
//! In exhaustive mode the same cache runs with `scale = 1.0` and exact
//! counts, and its arithmetic is engineered to be bit-identical to the
//! pre-sampling detector: estimates are `count as f64 × 1.0` (exact),
//! deltas are `max(est − prev, 0)` (equals the old `saturating_sub` for
//! integer-valued estimates), and first sightings are judged by lifetime
//! rate exactly as before. That is what lets `sampled { rate: 1.0 }`
//! reproduce exhaustive-mode canonical reports byte-for-byte.

use scotch_net::{FlowKey, NodeId};
use scotch_openflow::messages::FlowStat;
use scotch_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// One per-flow observation derived from a stats record: the monitor's
/// estimate of the flow's recent packet rate, plus the liveness signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEstimate {
    /// The flow.
    pub key: FlowKey,
    /// Estimated traffic since the previous sighting (feeds the §5.5
    /// withdrawal liveness filter via `flowdb.touch`).
    pub active: bool,
    /// Estimated packets/second: delta-rate between sightings, or
    /// lifetime rate on a first sighting old enough to judge (0.0 for a
    /// just-installed rule — one sampled packet is not a 1000 pps
    /// elephant).
    pub pps: f64,
    /// Age of the exporting rule at observation time — the flow's time
    /// from installation to *this* observation, i.e. the
    /// migration-decision latency if the detector flags it now.
    pub duration: SimDuration,
}

/// Aggregates sampled (or exhaustive) flow records into rate estimates.
#[derive(Debug, Clone, Default)]
pub struct TelemetryCache {
    /// Last sighting per `(vSwitch, cookie)`: time and scaled estimate.
    entries: HashMap<(NodeId, u64), (SimTime, f64)>,
    /// When the last full expiry sweep ran (sweeps are throttled to once
    /// per TTL — see [`TelemetryCache::expire`]).
    last_sweep: SimTime,
    /// FlowStatsReply messages ingested.
    pub stats_msgs: u64,
    /// Flow records ingested (exported by vSwitches and received here).
    pub records: u64,
}

impl TelemetryCache {
    /// An empty cache.
    pub fn new() -> Self {
        TelemetryCache::default()
    }

    /// Ingest one FlowStatsReply from vSwitch `from`, producing one
    /// estimate per resolvable record, in record order. `scale` is the
    /// inverse sampling probability (`TelemetryConfig::scale()`); `key_of`
    /// recovers the flow key from a record (cookie-indexed; infra rules
    /// resolve to `None` and are skipped).
    pub fn ingest(
        &mut self,
        now: SimTime,
        from: NodeId,
        stats: &[FlowStat],
        scale: f64,
        key_of: impl Fn(&FlowStat) -> Option<FlowKey>,
    ) -> Vec<FlowEstimate> {
        self.stats_msgs += 1;
        self.records += stats.len() as u64;
        let mut out = Vec::with_capacity(stats.len());
        for st in stats {
            let Some(key) = key_of(st) else { continue };
            let est = st.packet_count as f64 * scale;
            let slot = (from, st.cookie);
            let (prev_t, prev_est) = self.entries.insert(slot, (now, est)).unwrap_or((now, 0.0));
            let dt = now.duration_since(prev_t).as_secs_f64();
            if dt <= 0.0 {
                // First sighting within this poll round: judge by the
                // estimated rate over the entry's lifetime — but only
                // once it has lived long enough for a meaningful rate.
                let life = st.duration.as_secs_f64();
                out.push(FlowEstimate {
                    key,
                    active: est > 0.0,
                    pps: if life >= 0.5 { est / life } else { 0.0 },
                    duration: st.duration,
                });
                continue;
            }
            out.push(FlowEstimate {
                key,
                active: est > prev_est,
                pps: (est - prev_est).max(0.0) / dt,
                duration: st.duration,
            });
        }
        out
    }

    /// Drop slots not sighted within `ttl` (their rules idled out at the
    /// vSwitch, or — under sparse sampling — the flow went quiet long
    /// enough that a fresh sighting should be judged as new). Cookies are
    /// never reused, so an expired slot can only "return" via the
    /// first-sighting path, which is exactly the conservative judgement.
    ///
    /// Called from the controller tick, so the full sweep is throttled to
    /// once per TTL: walking every slot each tick is measurable on the
    /// bench hot path, and a slot lingering up to `2*ttl` only makes its
    /// next delta *more* accurate (the previous sighting is still the
    /// same flow — cookies are never reused). Expiry bounds memory; it is
    /// not load-bearing for estimates.
    pub fn expire(&mut self, now: SimTime, ttl: SimDuration) {
        if now.duration_since(self.last_sweep) < ttl {
            return;
        }
        self.last_sweep = now;
        self.entries
            .retain(|_, (t, _)| now.duration_since(*t) < ttl);
    }

    /// Number of tracked `(vSwitch, cookie)` slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no slots are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_net::IpAddr;
    use scotch_openflow::{Match, TableId};

    fn key(sport: u16) -> FlowKey {
        FlowKey::tcp(IpAddr::new(1, 1, 1, 1), sport, IpAddr::new(2, 2, 2, 2), 80)
    }

    fn stat(cookie: u64, packets: u64, secs: u64) -> FlowStat {
        FlowStat {
            table: TableId(0),
            matcher: Match::ANY,
            cookie,
            packet_count: packets,
            byte_count: packets * 1000,
            duration: SimDuration::from_secs(secs),
        }
    }

    fn key_of_cookie(st: &FlowStat) -> Option<FlowKey> {
        Some(key(st.cookie as u16))
    }

    #[test]
    fn delta_rate_between_sightings() {
        let mut c = TelemetryCache::new();
        let e1 = c.ingest(
            SimTime::from_secs(1),
            NodeId(5),
            &[stat(1, 100, 1)],
            1.0,
            key_of_cookie,
        );
        // First sighting, 100 pkts over 1 s of life.
        assert_eq!(e1[0].pps, 100.0);
        assert!(e1[0].active);
        let e2 = c.ingest(
            SimTime::from_secs(2),
            NodeId(5),
            &[stat(1, 600, 2)],
            1.0,
            key_of_cookie,
        );
        // +500 pkts in 1 s.
        assert_eq!(e2[0].pps, 500.0);
        assert!(e2[0].active);
    }

    #[test]
    fn inverse_probability_scaling_applies() {
        let mut c = TelemetryCache::new();
        // 10 sampled packets at rate 1/64 ⇒ estimate 640 over 2 s = 320/s.
        let e = c.ingest(
            SimTime::from_secs(5),
            NodeId(5),
            &[stat(1, 10, 2)],
            64.0,
            key_of_cookie,
        );
        assert_eq!(e[0].pps, 320.0);
    }

    #[test]
    fn young_first_sighting_has_zero_rate() {
        let mut c = TelemetryCache::new();
        let e = c.ingest(
            SimTime::from_secs(1),
            NodeId(5),
            &[FlowStat {
                duration: SimDuration::from_millis(100),
                ..stat(1, 50, 0)
            }],
            1.0,
            key_of_cookie,
        );
        assert_eq!(e[0].pps, 0.0, "a just-installed rule has no rate yet");
        assert!(e[0].active);
    }

    #[test]
    fn idle_flow_is_inactive() {
        let mut c = TelemetryCache::new();
        c.ingest(
            SimTime::from_secs(1),
            NodeId(5),
            &[stat(1, 100, 1)],
            1.0,
            key_of_cookie,
        );
        let e = c.ingest(
            SimTime::from_secs(2),
            NodeId(5),
            &[stat(1, 100, 2)],
            1.0,
            key_of_cookie,
        );
        assert!(!e[0].active);
        assert_eq!(e[0].pps, 0.0);
    }

    #[test]
    fn slots_are_per_vswitch() {
        let mut c = TelemetryCache::new();
        c.ingest(
            SimTime::from_secs(1),
            NodeId(5),
            &[stat(1, 50, 1)],
            1.0,
            key_of_cookie,
        );
        // Same cookie on another vSwitch gets its own first-sighting
        // baseline, not a delta continuation.
        let e = c.ingest(
            SimTime::from_secs(1),
            NodeId(6),
            &[stat(1, 50, 1)],
            1.0,
            key_of_cookie,
        );
        assert_eq!(e[0].pps, 50.0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn unresolvable_records_are_skipped_but_counted() {
        let mut c = TelemetryCache::new();
        let e = c.ingest(
            SimTime::from_secs(1),
            NodeId(5),
            &[stat(0, 10_000, 1)],
            1.0,
            |_| None,
        );
        assert!(e.is_empty());
        assert_eq!(c.records, 1);
        assert_eq!(c.stats_msgs, 1);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn expiry_drops_stale_slots() {
        let mut c = TelemetryCache::new();
        c.ingest(
            SimTime::from_secs(1),
            NodeId(5),
            &[stat(1, 100, 1)],
            1.0,
            key_of_cookie,
        );
        c.expire(SimTime::from_secs(30), SimDuration::from_secs(60));
        assert_eq!(c.len(), 1);
        c.expire(SimTime::from_secs(100), SimDuration::from_secs(60));
        assert!(c.is_empty());
    }

    #[test]
    fn expiry_sweeps_are_throttled_to_once_per_ttl() {
        let mut c = TelemetryCache::new();
        let ttl = SimDuration::from_secs(60);
        c.ingest(
            SimTime::from_secs(2),
            NodeId(5),
            &[stat(1, 100, 1)],
            1.0,
            key_of_cookie,
        );
        // First sweep: the slot is 59 s old, kept.
        c.expire(SimTime::from_secs(61), ttl);
        assert_eq!(c.len(), 1);
        // The slot is now stale, but we are within one TTL of the last
        // sweep — the walk is skipped entirely (the tick-path hot case).
        c.expire(SimTime::from_secs(63), ttl);
        assert_eq!(c.len(), 1);
        // The next due sweep drops it.
        c.expire(SimTime::from_secs(121), ttl);
        assert!(c.is_empty());
    }
}
