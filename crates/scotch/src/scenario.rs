//! Canned scenarios mirroring the paper's testbeds.
//!
//! * [`Scenario::single_switch`] — Fig. 2: attacker, client, and server on
//!   the data ports of one switch under test, controller on the management
//!   port. Used by the Fig. 3/4/9/10 experiments.
//! * [`Scenario::overlay_datacenter`] — §6's Scotch testbed: one Pica8
//!   switch, a pool of mesh vSwitches, servers behind host vSwitches, all
//!   tunnelled together; optionally a middlebox with policy routing.

use crate::app::{ControllerMode, PolicyChain, ScotchApp};
use crate::config::{ScotchConfig, TelemetryConfig};
use crate::overlay::OverlayManager;
use crate::report::Report;
use crate::sim::Simulation;
use scotch_controller::AddressBook;
use scotch_net::{FlowKey, IpAddr, LinkSpec, NodeId, NodeKind, Topology};
use scotch_sim::fault::FaultPlan;
use scotch_sim::journey::{JourneyConfig, JourneyRecorder};
use scotch_sim::trace::{TraceConfig, TraceRecorder};
use scotch_sim::{SimDuration, SimRng, SimTime};
use scotch_switch::middlebox::{Middlebox, StatefulFirewall};
use scotch_switch::{PhysicalSwitch, SwitchProfile, VSwitch};
use scotch_workload::clients::{ClientWorkload, FlowSize};
use scotch_workload::ddos::DdosAttacker;
use scotch_workload::flash::{FlashCrowd, RateProfile};
use scotch_workload::trace::TraceWorkload;
use scotch_workload::{FlowArrival, FlowIdAllocator, FlowSource, FlowSpec};
use std::collections::VecDeque;

/// A source that replays a pre-computed list of arrivals (elephant
/// injection and tests).
pub struct ScriptedSource {
    arrivals: VecDeque<FlowArrival>,
}

impl ScriptedSource {
    /// Wrap a list of arrivals (must be time-sorted).
    pub fn new(arrivals: Vec<FlowArrival>) -> Self {
        ScriptedSource {
            arrivals: arrivals.into(),
        }
    }
}

impl FlowSource for ScriptedSource {
    fn next_arrival(&mut self) -> Option<FlowArrival> {
        self.arrivals.pop_front()
    }
}

#[derive(Debug, Clone, Copy)]
struct AttackSpec {
    rate: f64,
    start: SimTime,
    end: SimTime,
}

#[derive(Debug, Clone)]
struct ClientSpec {
    rate: f64,
    size: FlowSize,
    packet_interval: SimDuration,
    packet_size: u32,
}

#[derive(Debug, Clone, Copy)]
struct ElephantSpec {
    count: usize,
    pps: f64,
    packets: u32,
    start: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TopoKind {
    SingleSwitch,
    Datacenter,
    /// Leaf-spine: one spine + per-rack ToR switches, hosts and mesh
    /// vSwitches distributed across racks.
    MultiRack {
        racks: usize,
        mesh_per_rack: usize,
    },
}

/// Scenario builder.
pub struct Scenario {
    kind: TopoKind,
    profile: SwitchProfile,
    mode: ControllerMode,
    config: ScotchConfig,
    n_mesh: usize,
    n_backups: usize,
    n_servers: usize,
    attack: Option<AttackSpec>,
    clients: Option<ClientSpec>,
    flash: Option<RateProfile>,
    trace_rate: Option<f64>,
    elephants: Option<ElephantSpec>,
    middlebox: bool,
    fail_vswitch: Option<(usize, SimTime)>,
    join_vswitch: Option<(usize, SimTime)>,
    link_loss: f64,
    horizon: SimTime,
    tracing: Option<TraceConfig>,
    journeys: Option<JourneyConfig>,
    chaos_plan: Option<FaultPlan>,
    interrack_propagation: Option<SimDuration>,
    rack_clients: Option<f64>,
}

impl Scenario {
    /// The Fig. 2 testbed: one switch under test, baseline controller.
    pub fn single_switch(profile: SwitchProfile) -> Self {
        Scenario {
            kind: TopoKind::SingleSwitch,
            profile,
            mode: ControllerMode::Baseline,
            config: ScotchConfig::default(),
            n_mesh: 0,
            n_backups: 0,
            n_servers: 1,
            attack: None,
            clients: None,
            flash: None,
            trace_rate: None,
            elephants: None,
            middlebox: false,
            fail_vswitch: None,
            join_vswitch: None,
            link_loss: 0.0,
            horizon: SimTime::from_secs(3600),
            tracing: None,
            journeys: None,
            chaos_plan: None,
            interrack_propagation: None,
            rack_clients: None,
        }
    }

    /// §6's Scotch testbed: one Pica8 switch + `n_mesh` mesh vSwitches +
    /// servers behind host vSwitches, Scotch controller.
    pub fn overlay_datacenter(n_mesh: usize) -> Self {
        Scenario {
            kind: TopoKind::Datacenter,
            profile: SwitchProfile::pica8_pronto_3780(),
            mode: ControllerMode::Scotch,
            config: ScotchConfig::default(),
            n_mesh,
            n_backups: 0,
            n_servers: 2,
            attack: None,
            clients: None,
            flash: None,
            trace_rate: None,
            elephants: None,
            middlebox: false,
            fail_vswitch: None,
            join_vswitch: None,
            link_loss: 0.0,
            horizon: SimTime::from_secs(3600),
            tracing: None,
            journeys: None,
            chaos_plan: None,
            interrack_propagation: None,
            rack_clients: None,
        }
    }

    /// A leaf-spine network (Fig. 5's "distributed across different
    /// racks"): one Pica8 spine, `racks` Pica8 ToR switches, one server
    /// per rack behind a host vSwitch, `mesh_per_rack` mesh vSwitches per
    /// rack, attacker + client in rack 0, victim server in the last rack —
    /// so attack traffic crosses three physical switches.
    pub fn multirack(racks: usize, mesh_per_rack: usize) -> Self {
        assert!(racks >= 2, "need at least two racks for cross-rack paths");
        let mut s = Scenario::overlay_datacenter(0);
        s.kind = TopoKind::MultiRack {
            racks,
            mesh_per_rack,
        };
        s.n_servers = racks;
        s
    }

    /// The same data-center topology with the plain reactive controller
    /// (the "without Scotch" arm).
    pub fn baseline_datacenter() -> Self {
        let mut s = Scenario::overlay_datacenter(0);
        s.mode = ControllerMode::Baseline;
        s
    }

    /// Builder: spoofed-source attack at `rate` flows/s for the whole run.
    pub fn with_attack(mut self, rate: f64) -> Self {
        self.attack = Some(AttackSpec {
            rate,
            start: SimTime::ZERO,
            end: self.horizon,
        });
        self
    }

    /// Builder: attack only within `[start, end)` (withdrawal experiments).
    pub fn with_attack_window(mut self, rate: f64, start: SimTime, end: SimTime) -> Self {
        self.attack = Some(AttackSpec { rate, start, end });
        self
    }

    /// Builder: legitimate clients at `rate` single-packet flows/s (the
    /// paper's probe traffic).
    pub fn with_clients(mut self, rate: f64) -> Self {
        self.clients = Some(ClientSpec {
            rate,
            size: FlowSize::Fixed(1),
            packet_interval: SimDuration::from_millis(1),
            packet_size: 64,
        });
        self
    }

    /// Builder: clients with heavy-tailed multi-packet flows.
    pub fn with_client_flows(
        mut self,
        rate: f64,
        size: FlowSize,
        packet_interval: SimDuration,
    ) -> Self {
        self.clients = Some(ClientSpec {
            rate,
            size,
            packet_interval,
            packet_size: 1000,
        });
        self
    }

    /// Builder: a flash-crowd rate profile toward server 0.
    pub fn with_flash_crowd(mut self, profile: RateProfile) -> Self {
        self.flash = Some(profile);
        self
    }

    /// Builder: a Poisson/Pareto trace over all hosts at `rate` flows/s.
    pub fn with_trace(mut self, rate: f64) -> Self {
        self.trace_rate = Some(rate);
        self
    }

    /// Builder: inject `count` elephant flows of `packets` packets at
    /// `pps` each, starting at `start` (client → server 0, tracked in the
    /// report).
    pub fn with_elephants(mut self, count: usize, pps: f64, packets: u32, start: SimTime) -> Self {
        self.elephants = Some(ElephantSpec {
            count,
            pps,
            packets,
            start,
        });
        self
    }

    /// Builder: attach a stateful firewall to the switch and bind it to
    /// server 0's address (§5.4 policy routing).
    pub fn with_middlebox(mut self) -> Self {
        self.middlebox = true;
        self
    }

    /// Builder: override the Scotch configuration.
    pub fn with_config(mut self, config: ScotchConfig) -> Self {
        self.config = config;
        self
    }

    /// Builder: sampled flow telemetry at per-packet probability `rate`
    /// (DESIGN.md §13). Every vSwitch gets a deterministic sampler stream
    /// forked from the scenario seed, and the monitor scales counts by
    /// `1/rate`. `rate: 1.0` reproduces exhaustive-mode reports
    /// byte-for-byte.
    pub fn with_sampling_rate(mut self, rate: f64) -> Self {
        self.config.telemetry = TelemetryConfig::Sampled { rate };
        self
    }

    /// Builder: override the controller mode.
    pub fn with_mode(mut self, mode: ControllerMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder: override the switch profile (Fig. 3's device sweep).
    pub fn with_profile(mut self, profile: SwitchProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Builder: number of servers (each behind its own host vSwitch).
    pub fn with_servers(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.n_servers = n;
        self
    }

    /// Builder: standby vSwitches for fail-over (§5.6).
    pub fn with_backups(mut self, n: usize) -> Self {
        self.n_backups = n;
        self
    }

    /// Builder: kill mesh vSwitch `idx` at `at`.
    pub fn with_vswitch_failure(mut self, idx: usize, at: SimTime) -> Self {
        self.fail_vswitch = Some((idx, at));
        self
    }

    /// Builder: elastically join backup vSwitch `idx` to the mesh at `at`
    /// (§5.6 scale-out). Requires `with_backups(idx + 1)` or more.
    pub fn with_vswitch_join(mut self, idx: usize, at: SimTime) -> Self {
        self.join_vswitch = Some((idx, at));
        self
    }

    /// Builder: inject random per-packet loss `p` on every link
    /// (smoltcp-style fault injection; robustness testing).
    pub fn with_link_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.link_loss = p;
        self
    }

    /// Builder: enable the flight-recorder trace with `config` (levels +
    /// ring capacity). Timestamps are sim-time, so the trace is
    /// bit-reproducible per `(scenario, seed)`. Distinct from
    /// [`Scenario::with_trace`], which attaches a trace-replay *workload*.
    pub fn with_tracing(mut self, config: TraceConfig) -> Self {
        self.tracing = Some(config);
        self
    }

    /// Builder: enable causal journey tracing with an explicit
    /// [`JourneyConfig`] (sampling rate, always-trace flow set, mark
    /// capacity). Journey marks are canonical output: selection is a pure
    /// hash of `(flow_id, seed)`, so the mark stream is bit-identical for
    /// any shard count.
    pub fn with_journeys(mut self, config: JourneyConfig) -> Self {
        self.journeys = Some(config);
        self
    }

    /// Builder: enable causal journey tracing at sampling `rate` in
    /// `(0, 1]` with default capacity and no always-trace set.
    pub fn with_journey_rate(mut self, rate: f64) -> Self {
        self.journeys = Some(JourneyConfig {
            rate,
            ..JourneyConfig::default()
        });
        self
    }

    /// Builder (multi-rack only): set the ToR–spine propagation delay.
    /// Physically this models racks in different rooms or buildings; for
    /// sharded runs it widens the conservative lookahead window (which is
    /// bounded by the minimum cross-rack link latency), letting shards
    /// advance further between synchronization barriers.
    pub fn with_interrack_propagation(mut self, p: SimDuration) -> Self {
        self.interrack_propagation = Some(p);
        self
    }

    /// Builder (multi-rack only): attach one client host per rack, each
    /// sending single-packet probe flows at `rate` flows/s to its own
    /// rack's server. This gives every rack locally-sourced traffic, so a
    /// sharded run has real work on every shard instead of funnelling all
    /// flows through rack 0.
    pub fn with_rack_clients(mut self, rate: f64) -> Self {
        self.rack_clients = Some(rate);
        self
    }

    /// Builder: attach a declarative fault plan (chaos harness). The plan's
    /// probabilistic faults draw from a dedicated RNG stream forked from the
    /// scenario seed, so `(scenario, seed, plan)` replays bit-identically.
    /// Implies flight-recorder tracing (at the default config if none was
    /// set) — the invariant checker needs the trace to window violations.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.chaos_plan = Some(plan);
        self
    }

    /// Builder: run a controller cluster of `n` replicas behind per-switch
    /// mastership (DESIGN.md §16). `n = 1` is the single-controller engine,
    /// byte-for-byte. Mutates the current config, so it composes after
    /// [`Scenario::with_config`].
    pub fn with_controllers(mut self, n: u32) -> Self {
        assert!(n >= 1, "need at least one controller");
        self.config.controllers = n;
        self
    }

    /// Builder: override the inter-replica state-sync latency — the bound
    /// on every mastership handoff (invariant I6). Composes after
    /// [`Scenario::with_config`].
    pub fn with_sync_latency(mut self, d: SimDuration) -> Self {
        assert!(d > SimDuration::ZERO, "sync latency must be positive");
        self.config.sync_latency = d;
        self
    }

    /// Builder: scripted failover — crash replica `replica` at `at`, with
    /// no restart. Appends to the scenario's fault plan (creating one if
    /// absent), so it rides the same deterministic injection machinery as
    /// chaos plans and composes with [`Scenario::with_fault_plan`].
    pub fn with_failover_at(mut self, replica: u32, at: SimTime) -> Self {
        let plan = self.chaos_plan.get_or_insert_with(FaultPlan::default);
        plan.events.push(scotch_sim::fault::FaultEvent {
            at,
            kind: scotch_sim::fault::FaultKind::ReplicaCrash {
                target: replica,
                restart_after: None,
            },
        });
        self
    }

    /// Expected concurrent flowdb population: total arrival rate times the
    /// entry lifetime — the rule idle timeout (entries live until their
    /// rules idle out), clamped by the run horizon when known so short
    /// smoke runs don't reserve a table several times larger than they can
    /// ever fill (an oversized map costs cache misses on every lookup).
    /// Used to pre-size the controller's flow state (capped — the hint is
    /// an optimization, not a commitment).
    fn expected_flow_count(&self, horizon_secs: f64) -> usize {
        let mut rate = 0.0;
        if let Some(a) = &self.attack {
            rate += a.rate;
        }
        if let Some(c) = &self.clients {
            rate += c.rate;
        }
        if let Some(r) = self.trace_rate {
            rate += r;
        }
        let lifetime = self
            .config
            .rule_idle_timeout
            .as_secs_f64()
            .min(horizon_secs);
        let expected = rate * lifetime;
        let elephants = self.elephants.map(|e| e.count).unwrap_or(0);
        ((expected as usize) + elephants).min(1 << 22)
    }

    /// Client address.
    pub fn client_ip() -> IpAddr {
        IpAddr::new(10, 0, 0, 1)
    }

    /// Attacker address (its own; attack sources are spoofed).
    pub fn attacker_ip() -> IpAddr {
        IpAddr::new(10, 0, 0, 3)
    }

    /// Address of server `i`.
    pub fn server_ip(i: usize) -> IpAddr {
        IpAddr::new(10, 0, 1, i as u8)
    }

    /// Address of rack `r`'s local client (multi-rack topologies with
    /// [`Scenario::with_rack_clients`]).
    pub fn rack_client_ip(r: usize) -> IpAddr {
        IpAddr::new(10, 0, 2, r as u8)
    }

    /// Build the simulation. Deterministic in `(self, seed)`.
    pub fn build(self, seed: u64) -> Simulation {
        self.build_for(seed, f64::INFINITY)
    }

    /// Build the simulation for a run that will stop at `until`: identical
    /// to [`Scenario::build`] except the flowdb capacity hint is clamped by
    /// the horizon (a 2 s smoke run should not reserve 10 s worth of
    /// flows).
    pub fn build_until(self, seed: u64, until: SimTime) -> Simulation {
        let horizon = until.as_nanos() as f64 / 1e9;
        self.build_for(seed, horizon)
    }

    fn build_for(self, seed: u64, horizon_secs: f64) -> Simulation {
        let tracing = self.tracing.clone();
        let journeys = self.journeys.clone();
        let chaos_plan = self.chaos_plan.clone();
        let flow_hint = self.expected_flow_count(horizon_secs);
        let mut sim = match self.kind {
            TopoKind::SingleSwitch => self.build_single_switch(seed),
            TopoKind::Datacenter => self.build_datacenter(seed),
            TopoKind::MultiRack {
                racks,
                mesh_per_rack,
            } => self.build_multirack(racks, mesh_per_rack, seed),
        };
        match tracing {
            Some(config) => sim.app.trace = TraceRecorder::new(config),
            // Chaos runs always trace: the invariant checker reports each
            // violation with the trace window around it.
            None if chaos_plan.is_some() => {
                sim.app.trace = TraceRecorder::new(TraceConfig::default());
            }
            None => {}
        }
        if let Some(config) = journeys {
            sim.app.journeys = JourneyRecorder::new(&config, seed);
        }
        if let Some(plan) = chaos_plan {
            let mut rng = SimRng::new(seed);
            sim.apply_fault_plan(&plan, rng.fork(0xC4A05));
        }
        if flow_hint > 0 {
            sim.app.reserve_flow_capacity(flow_hint);
        }
        sim
    }

    /// Build and run until `until` (via [`Scenario::build_until`], so the
    /// flowdb capacity hint is horizon-clamped).
    pub fn run(self, until: SimTime, seed: u64) -> Report {
        self.build_until(seed, until).run(until)
    }

    /// Build and run partitioned across up to `shards` shards on `threads`
    /// worker threads (0 = one per shard). Produces the identical canonical
    /// report for every `(shards, threads)` — see the `shard` module.
    /// Scenarios the partitioner cannot handle (single-rack topologies,
    /// per-packet link faults, the multi-host trace workload) fall back to
    /// the sequential engine, which is always equivalent.
    pub fn run_sharded(self, until: SimTime, seed: u64, shards: usize, threads: usize) -> Report {
        // TraceWorkload emits flows whose source addresses span every host
        // in the network, but a flow source is pinned to one default host;
        // shard-partitioning by host would misplace its emissions.
        if self.trace_rate.is_some() {
            return self.run(until, seed);
        }
        self.build_until(seed, until)
            .run_sharded(until, shards, threads)
    }

    /// Enable the telemetry sampler on a freshly built vSwitch when the
    /// config asks for sampled telemetry. The sampler stream is derived
    /// from `(scenario seed, node id)` with the same golden-ratio mixing
    /// the chaos engine and shard lanes use: every vSwitch's pick
    /// sequence is independent of construction order and of which shard
    /// it lands on, so sampled runs stay bit-identical across shard
    /// counts.
    fn telemetered(&self, mut v: VSwitch, seed: u64) -> VSwitch {
        if let Some(rate) = self.config.telemetry.sampling_rate() {
            const SAMPLER_STREAM: u64 = 0x7E1E_4E7F_1035;
            let stream =
                (seed ^ SAMPLER_STREAM) ^ (v.node.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            v.enable_sampling(rate, SimRng::new(stream));
        }
        v
    }

    fn data_link(&self) -> LinkSpec {
        let base = if self.profile.dataplane_pps.is_none() && self.profile.name.contains("Pica8") {
            LinkSpec::tengig()
        } else {
            LinkSpec::gig()
        };
        base.with_loss(self.link_loss)
    }

    fn edge_link(&self) -> LinkSpec {
        LinkSpec::gig().with_loss(self.link_loss)
    }

    fn build_single_switch(self, seed: u64) -> Simulation {
        let mut rng = SimRng::new(seed);
        let mut topo = Topology::new();
        let dut_is_vswitch = self.profile.dataplane_pps.is_some();
        let dut = topo.add_node(
            if dut_is_vswitch {
                NodeKind::VSwitch
            } else {
                NodeKind::PhysicalSwitch
            },
            "dut",
        );
        let attacker = topo.add_node(NodeKind::Host, "attacker");
        let client = topo.add_node(NodeKind::Host, "client");
        let server = topo.add_node(NodeKind::Host, "server");
        let link = self.data_link();
        topo.add_duplex_link(attacker, dut, link);
        topo.add_duplex_link(client, dut, link);
        topo.add_duplex_link(server, dut, link);

        let mut book = AddressBook::new();
        book.register(&topo, Self::client_ip(), client, dut);
        book.register(&topo, Self::server_ip(0), server, dut);
        book.register(&topo, Self::attacker_ip(), attacker, dut);

        let mut app = ScotchApp::new(
            self.mode,
            self.config.clone(),
            book,
            OverlayManager::default(),
        );
        if self.mode == ControllerMode::Scotch {
            app.register_switch(dut, self.profile.safe_rule_budget());
        }

        if self.link_loss > 0.0 {
            topo.enable_fault_injection(rng.fork(0xFA));
        }
        let mut sim = Simulation::new(topo, app);
        if dut_is_vswitch {
            sim.add_vswitch(self.telemetered(
                VSwitch::with_profile(dut, self.profile.clone(), rng.fork(1)),
                seed,
            ));
        } else {
            sim.add_physical(PhysicalSwitch::new(dut, self.profile.clone(), rng.fork(1)));
        }
        sim.add_host(client, Self::client_ip());
        sim.add_host(server, Self::server_ip(0));
        sim.add_host(attacker, Self::attacker_ip());

        self.attach_workloads(&mut sim, attacker, client, &mut rng);
        sim
    }

    fn build_datacenter(self, seed: u64) -> Simulation {
        let mut rng = SimRng::new(seed);
        let mut topo = Topology::new();
        let ps = topo.add_node(NodeKind::PhysicalSwitch, "pica8");
        let attacker = topo.add_node(NodeKind::Host, "attacker");
        let client = topo.add_node(NodeKind::Host, "client");
        let data = self.data_link();
        topo.add_duplex_link(attacker, ps, data);
        topo.add_duplex_link(client, ps, data);

        let mut servers = Vec::new();
        let mut host_vswitches = Vec::new();
        for i in 0..self.n_servers {
            let w = topo.add_node(NodeKind::VSwitch, format!("hostvsw{i}"));
            topo.add_duplex_link(ps, w, self.edge_link());
            let srv = topo.add_node(NodeKind::Host, format!("server{i}"));
            topo.add_duplex_link(w, srv, self.edge_link());
            servers.push(srv);
            host_vswitches.push(w);
        }
        let mesh: Vec<NodeId> = (0..self.n_mesh)
            .map(|i| {
                let v = topo.add_node(NodeKind::VSwitch, format!("mesh{i}"));
                topo.add_duplex_link(ps, v, self.edge_link());
                v
            })
            .collect();
        let backups: Vec<NodeId> = (0..self.n_backups)
            .map(|i| {
                let v = topo.add_node(NodeKind::VSwitch, format!("backup{i}"));
                topo.add_duplex_link(ps, v, self.edge_link());
                v
            })
            .collect();
        let mb = if self.middlebox {
            let mb = topo.add_node(NodeKind::Middlebox, "firewall");
            topo.add_duplex_link(ps, mb, self.edge_link()); // mb in
            topo.add_duplex_link(ps, mb, self.edge_link()); // mb out
            Some(mb)
        } else {
            None
        };

        let mut book = AddressBook::new();
        book.register(&topo, Self::client_ip(), client, ps);
        book.register(&topo, Self::attacker_ip(), attacker, ps);
        for (i, srv) in servers.iter().enumerate() {
            book.register(&topo, Self::server_ip(i), *srv, host_vswitches[i]);
        }

        let pairs: Vec<(NodeId, NodeId)> = servers
            .iter()
            .copied()
            .zip(host_vswitches.iter().copied())
            .collect();
        let mut overlay = OverlayManager::build(&topo, &[ps], &mesh, &pairs);
        overlay.backups = backups.clone();
        let policy_chain = mb.filter(|_| self.n_mesh >= 1).map(|mb| PolicyChain {
            middlebox: mb,
            upstream: ps,
            downstream: ps,
            agg_in: mesh[0],
            agg_out: mesh[1 % mesh.len()],
        });
        if let Some(chain) = &policy_chain {
            overlay.add_policy_tunnels(&topo, chain.agg_in, ps, ps, chain.agg_out);
        }

        let mut app = ScotchApp::new(self.mode, self.config.clone(), book, overlay);
        app.register_switch(ps, self.profile.safe_rule_budget());
        let policy_cmds = match &policy_chain {
            Some(chain) => app.register_policy(&topo, Self::server_ip(0), *chain),
            None => Vec::new(),
        };

        if self.link_loss > 0.0 {
            topo.enable_fault_injection(rng.fork(0xFA));
        }
        let mut sim = Simulation::new(topo, app);
        sim.add_physical(PhysicalSwitch::new(ps, self.profile.clone(), rng.fork(1)));
        for (i, w) in host_vswitches.iter().enumerate() {
            sim.add_vswitch(self.telemetered(VSwitch::new(*w, rng.fork(100 + i as u64)), seed));
        }
        for (i, v) in mesh.iter().enumerate() {
            sim.add_vswitch(self.telemetered(VSwitch::new(*v, rng.fork(200 + i as u64)), seed));
        }
        for (i, b) in backups.iter().enumerate() {
            sim.add_vswitch(self.telemetered(VSwitch::new(*b, rng.fork(300 + i as u64)), seed));
        }
        if let Some(mb) = mb {
            sim.add_middlebox(mb, Middlebox::Firewall(StatefulFirewall::new()));
        }
        sim.add_host(client, Self::client_ip());
        sim.add_host(attacker, Self::attacker_ip());
        for (i, srv) in servers.iter().enumerate() {
            sim.add_host(*srv, Self::server_ip(i));
        }
        sim.bootstrap_commands(policy_cmds);

        if let Some((idx, at)) = self.fail_vswitch {
            if idx < mesh.len() {
                sim.fail_vswitch_at(mesh[idx], at);
            }
        }
        if let Some((idx, at)) = self.join_vswitch {
            assert!(
                idx < backups.len(),
                "with_vswitch_join requires enough backups"
            );
            sim.join_vswitch_at(backups[idx], at);
        }

        self.attach_workloads(&mut sim, attacker, client, &mut rng);
        sim
    }

    /// The address attacks and clients aim at: the last rack's server in
    /// multi-rack topologies (cross-fabric paths), server 0 otherwise.
    fn victim_ip(&self) -> IpAddr {
        match self.kind {
            TopoKind::MultiRack { racks, .. } => Self::server_ip(racks - 1),
            _ => Self::server_ip(0),
        }
    }

    fn build_multirack(self, racks: usize, mesh_per_rack: usize, seed: u64) -> Simulation {
        let mut rng = SimRng::new(seed);
        let mut topo = Topology::new();
        let spine = topo.add_node(NodeKind::PhysicalSwitch, "spine");
        let mut tors = Vec::new();
        let mut servers = Vec::new();
        let mut host_vswitches = Vec::new();
        let mut mesh: Vec<NodeId> = Vec::new();
        let mut rack_mesh: Vec<Vec<NodeId>> = Vec::new();
        let uplink = {
            let mut l = LinkSpec::tengig();
            if let Some(p) = self.interrack_propagation {
                l.propagation = p;
            }
            l
        };
        for r in 0..racks {
            let tor = topo.add_node(NodeKind::PhysicalSwitch, format!("tor{r}"));
            topo.add_duplex_link(tor, spine, uplink);
            tors.push(tor);
            let w = topo.add_node(NodeKind::VSwitch, format!("hostvsw{r}"));
            topo.add_duplex_link(tor, w, self.edge_link());
            let srv = topo.add_node(NodeKind::Host, format!("server{r}"));
            topo.add_duplex_link(w, srv, self.edge_link());
            servers.push(srv);
            host_vswitches.push(w);
            let mut local = Vec::new();
            for m in 0..mesh_per_rack {
                let v = topo.add_node(NodeKind::VSwitch, format!("mesh{r}_{m}"));
                topo.add_duplex_link(tor, v, self.edge_link());
                mesh.push(v);
                local.push(v);
            }
            rack_mesh.push(local);
        }
        let attacker = topo.add_node(NodeKind::Host, "attacker");
        let client = topo.add_node(NodeKind::Host, "client");
        topo.add_duplex_link(attacker, tors[0], LinkSpec::tengig());
        topo.add_duplex_link(client, tors[0], LinkSpec::tengig());
        let mut rack_client_hosts = Vec::new();
        if self.rack_clients.is_some() {
            for (r, tor) in tors.iter().enumerate() {
                let h = topo.add_node(NodeKind::Host, format!("rackclient{r}"));
                topo.add_duplex_link(h, *tor, LinkSpec::tengig());
                rack_client_hosts.push(h);
            }
        }

        let mut book = AddressBook::new();
        book.register(&topo, Self::client_ip(), client, tors[0]);
        book.register(&topo, Self::attacker_ip(), attacker, tors[0]);
        for (r, srv) in servers.iter().enumerate() {
            book.register(&topo, Self::server_ip(r), *srv, host_vswitches[r]);
        }
        for (r, h) in rack_client_hosts.iter().enumerate() {
            book.register(&topo, Self::rack_client_ip(r), *h, tors[r]);
        }

        let mut physical = vec![spine];
        physical.extend(&tors);
        let pairs: Vec<(NodeId, NodeId)> = servers
            .iter()
            .copied()
            .zip(host_vswitches.iter().copied())
            .collect();
        let mut overlay = OverlayManager::build(&topo, &physical, &mesh, &pairs);
        // Location-aware host partition (§4.1): each server's local mesh
        // vSwitch lives in its own rack.
        if mesh_per_rack > 0 {
            for (r, srv) in servers.iter().enumerate() {
                overlay.local_mesh.insert(*srv, rack_mesh[r][0]);
            }
        }

        let mut app = ScotchApp::new(self.mode, self.config.clone(), book, overlay);
        for &ps in &physical {
            app.register_switch(ps, self.profile.safe_rule_budget());
        }

        if self.link_loss > 0.0 {
            topo.enable_fault_injection(rng.fork(0xFA));
        }
        let mut sim = Simulation::new(topo, app);
        sim.add_physical(PhysicalSwitch::new(
            spine,
            self.profile.clone(),
            rng.fork(1),
        ));
        for (i, tor) in tors.iter().enumerate() {
            sim.add_physical(PhysicalSwitch::new(
                *tor,
                self.profile.clone(),
                rng.fork(2 + i as u64),
            ));
        }
        for (i, w) in host_vswitches.iter().enumerate() {
            sim.add_vswitch(self.telemetered(VSwitch::new(*w, rng.fork(100 + i as u64)), seed));
        }
        for (i, v) in mesh.iter().enumerate() {
            sim.add_vswitch(self.telemetered(VSwitch::new(*v, rng.fork(200 + i as u64)), seed));
        }
        sim.add_host(client, Self::client_ip());
        sim.add_host(attacker, Self::attacker_ip());
        for (r, srv) in servers.iter().enumerate() {
            sim.add_host(*srv, Self::server_ip(r));
        }
        for (r, h) in rack_client_hosts.iter().enumerate() {
            sim.add_host(*h, Self::rack_client_ip(r));
        }

        // Shard partition map: rack r's subtree (ToR, host vSwitch, server,
        // local mesh, local client) is region r. The spine — and with it
        // the controller — stays on the hub shard. Attacker and client hang
        // off ToR 0, so they ride in rack 0's region; their uplinks are
        // then intra-shard and only the ToR–spine links are cut.
        let mut regions: Vec<Vec<NodeId>> = (0..racks)
            .map(|r| {
                let mut v = vec![tors[r], host_vswitches[r], servers[r]];
                v.extend(&rack_mesh[r]);
                if let Some(h) = rack_client_hosts.get(r) {
                    v.push(*h);
                }
                v
            })
            .collect();
        regions[0].push(attacker);
        regions[0].push(client);
        sim.regions = regions;

        if let Some((idx, at)) = self.fail_vswitch {
            if idx < mesh.len() {
                sim.fail_vswitch_at(mesh[idx], at);
            }
        }

        let rack: Vec<(NodeId, IpAddr, IpAddr)> = rack_client_hosts
            .iter()
            .enumerate()
            .map(|(r, h)| (*h, Self::rack_client_ip(r), Self::server_ip(r)))
            .collect();
        self.attach_workloads_with(&mut sim, attacker, client, &rack, &mut rng);
        sim
    }

    fn attach_workloads(
        &self,
        sim: &mut Simulation,
        attacker: NodeId,
        client: NodeId,
        rng: &mut SimRng,
    ) {
        self.attach_workloads_with(sim, attacker, client, &[], rng);
    }

    fn attach_workloads_with(
        &self,
        sim: &mut Simulation,
        attacker: NodeId,
        client: NodeId,
        rack: &[(NodeId, IpAddr, IpAddr)],
        rng: &mut SimRng,
    ) {
        let mut alloc = FlowIdAllocator::new();
        let target = self.victim_ip();
        if let Some(a) = &self.attack {
            // Poisson spacing: hping3's constant `-i` interval still jitters
            // at OS granularity; exact periodicity would phase-lock with the
            // OFA service period and let probe packets sneak into the queue.
            let src =
                DdosAttacker::new(a.rate, target, a.start, a.end, alloc.stream(), rng.fork(11))
                    .poisson();
            sim.add_source(attacker, Box::new(src));
        }
        if let Some(c) = &self.clients {
            let src = ClientWorkload::new(
                c.rate,
                Self::client_ip(),
                target,
                SimTime::ZERO,
                self.horizon,
                alloc.stream(),
                rng.fork(12),
            )
            .with_size(c.size)
            .with_packet_interval(c.packet_interval)
            .with_packet_size(c.packet_size)
            .poisson();
            // Single-packet probes replicate the paper's methodology:
            // every probe is a fresh (src, dst) pair.
            let src = if matches!(c.size, FlowSize::Fixed(1)) {
                src.with_spoofed_sources(1 << 20)
            } else {
                src
            };
            sim.add_source(client, Box::new(src));
        }
        if let Some(profile) = &self.flash {
            let src = FlashCrowd::new(
                *profile,
                target,
                SimTime::ZERO,
                self.horizon,
                alloc.stream(),
                rng.fork(13),
            );
            sim.add_source(client, Box::new(src));
        }
        if let Some(rate) = self.trace_rate {
            let mut hosts = vec![Self::client_ip()];
            for i in 0..self.n_servers {
                hosts.push(Self::server_ip(i));
            }
            // Cap flow sizes so flows can complete within experiment
            // horizons (2000 pkts at 1 ms pacing = 2 s max duration).
            let src = TraceWorkload::new(
                rate,
                hosts,
                SimTime::ZERO,
                self.horizon,
                alloc.stream(),
                rng.fork(14),
            )
            .with_sizes(1, 2000, 1.2);
            sim.add_source(client, Box::new(src));
        }
        if let Some(e) = &self.elephants {
            // Elephants share the attacker's ingress port, so during the
            // surge they are shed to the overlay and become migration
            // candidates (§5.3's scenario: large flows start on the
            // overlay while the control path is congested).
            let mut ids = alloc.stream();
            let mut arrivals = Vec::new();
            for i in 0..e.count {
                let id = ids.next_id();
                sim.track_flow(id);
                // Distinct per-elephant sources so each elephant has its
                // own (src, dst) rule set.
                let key = FlowKey::tcp(
                    IpAddr(Self::attacker_ip().0 + 10 + i as u32),
                    20_000 + i as u16,
                    target,
                    5001,
                );
                // Stagger offsets avoid the controller's 10 ms tick grid:
                // arriving right after a tick would catch the ingress
                // queue momentarily below the overlay threshold.
                arrivals.push(FlowArrival {
                    at: e.start + SimDuration::from_micros(237_300 * i as u64 + 3_700),
                    flow: FlowSpec {
                        id,
                        key,
                        packets: e.packets,
                        packet_size: 1500,
                        packet_interval: SimDuration::from_secs_f64(1.0 / e.pps),
                        is_attack: false,
                    },
                });
            }
            sim.add_source(attacker, Box::new(ScriptedSource::new(arrivals)));
        }
        if let Some(rate) = self.rack_clients {
            // Per-rack probe clients (multi-rack only): each rack's client
            // targets its own rack's server, so the traffic stays mostly
            // rack-local and every shard of a partitioned run has its own
            // flow sources. Distinct RNG forks keep each rack's arrival
            // process independent of rack count.
            for (r, (host, src_ip, dst_ip)) in rack.iter().enumerate() {
                let src = ClientWorkload::new(
                    rate,
                    *src_ip,
                    *dst_ip,
                    SimTime::ZERO,
                    self.horizon,
                    alloc.stream(),
                    rng.fork(40 + r as u64),
                )
                .poisson();
                sim.add_source(*host, Box::new(src));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_switch::SwitchProfile;

    #[test]
    fn single_switch_topology_shape() {
        let sim = Scenario::single_switch(SwitchProfile::pica8_pronto_3780())
            .with_clients(10.0)
            .build(1);
        // dut + attacker + client + server.
        assert_eq!(sim.topo.node_count(), 4);
        assert_eq!(sim.topo.nodes_of_kind(NodeKind::PhysicalSwitch).len(), 1);
        assert_eq!(sim.topo.nodes_of_kind(NodeKind::Host).len(), 3);
    }

    #[test]
    fn ovs_dut_is_a_vswitch_node() {
        let sim = Scenario::single_switch(SwitchProfile::open_vswitch())
            .with_clients(10.0)
            .build(1);
        assert_eq!(sim.topo.nodes_of_kind(NodeKind::VSwitch).len(), 1);
        assert_eq!(sim.topo.nodes_of_kind(NodeKind::PhysicalSwitch).len(), 0);
    }

    #[test]
    fn datacenter_topology_shape() {
        let sim = Scenario::overlay_datacenter(3).with_servers(2).build(1);
        // 3 mesh + 2 host vswitches.
        assert_eq!(sim.topo.nodes_of_kind(NodeKind::VSwitch).len(), 5);
        assert_eq!(sim.topo.nodes_of_kind(NodeKind::PhysicalSwitch).len(), 1);
        // attacker + client + 2 servers.
        assert_eq!(sim.topo.nodes_of_kind(NodeKind::Host).len(), 4);
        assert_eq!(sim.app.overlay.mesh.len(), 3);
        // LB (3) + mesh full-mesh (6) + delivery (3 mesh x 2 hostvsw = 6).
        assert_eq!(sim.app.overlay.tunnel_count(), 15);
    }

    #[test]
    fn middlebox_adds_firewall_and_policy_tunnels() {
        let sim = Scenario::overlay_datacenter(2).with_middlebox().build(1);
        assert_eq!(sim.topo.nodes_of_kind(NodeKind::Middlebox).len(), 1);
        assert_eq!(sim.app.overlay.policy_in_tunnels.len(), 1);
        assert_eq!(sim.app.overlay.policy_out_tunnels.len(), 1);
        // The middlebox hangs off the switch with two parallel links.
        let mb = sim.topo.nodes_of_kind(NodeKind::Middlebox)[0];
        let ps = sim.topo.nodes_of_kind(NodeKind::PhysicalSwitch)[0];
        assert_eq!(sim.topo.ports_towards(ps, mb).len(), 2);
    }

    #[test]
    fn multirack_topology_shape() {
        let sim = Scenario::multirack(3, 2).build(1);
        // spine + 3 ToRs.
        assert_eq!(sim.topo.nodes_of_kind(NodeKind::PhysicalSwitch).len(), 4);
        // 3 racks x (1 hostvsw + 2 mesh) = 9 vswitches.
        assert_eq!(sim.topo.nodes_of_kind(NodeKind::VSwitch).len(), 9);
        // attacker + client + 3 servers.
        assert_eq!(sim.topo.nodes_of_kind(NodeKind::Host).len(), 5);
        assert_eq!(sim.app.overlay.mesh.len(), 6);
    }

    #[test]
    fn multirack_victim_is_in_the_last_rack() {
        let s = Scenario::multirack(3, 1);
        assert_eq!(s.victim_ip(), Scenario::server_ip(2));
        let s = Scenario::overlay_datacenter(2);
        assert_eq!(s.victim_ip(), Scenario::server_ip(0));
    }

    #[test]
    fn multirack_local_mesh_is_rack_local() {
        let sim = Scenario::multirack(2, 1).build(1);
        // Each server's local mesh vSwitch shares its rack (adjacent to the
        // same ToR).
        for (host, mesh) in &sim.app.overlay.local_mesh {
            let host_vsw = sim.app.overlay.host_vswitch[host];
            let tor_of = |n: NodeId| {
                sim.topo
                    .neighbors(n)
                    .into_iter()
                    .find(|x| sim.topo.kind(*x) == NodeKind::PhysicalSwitch)
                    .unwrap()
            };
            assert_eq!(tor_of(host_vsw), tor_of(*mesh));
        }
    }

    #[test]
    #[should_panic(expected = "two racks")]
    fn multirack_requires_two_racks() {
        let _ = Scenario::multirack(1, 1);
    }

    #[test]
    fn scripted_source_replays_in_order() {
        use scotch_workload::FlowSpec;
        let key = FlowKey::tcp(IpAddr::new(1, 1, 1, 1), 1, IpAddr::new(2, 2, 2, 2), 80);
        let arrivals: Vec<FlowArrival> = (0..3)
            .map(|i| FlowArrival {
                at: SimTime::from_secs(i),
                flow: FlowSpec {
                    id: scotch_net::FlowId(i),
                    key,
                    packets: 1,
                    packet_size: 64,
                    packet_interval: SimDuration::from_millis(1),
                    is_attack: false,
                },
            })
            .collect();
        let mut src = ScriptedSource::new(arrivals.clone());
        for want in arrivals {
            assert_eq!(src.next_arrival().unwrap(), want);
        }
        assert!(src.next_arrival().is_none());
    }
}
