//! The controller's per-switch rule scheduler (§5.2–5.3, Fig. 7).
//!
//! Three priority classes, served within the switch's rule budget `R`:
//!
//! 1. **Admitted-flow queue** — FlowMods already planned (path segments of
//!    admitted or migrated flows). Highest priority: "the OpenFlow
//!    controller gives the highest priority to the admitted flow queue".
//! 2. **Large-flow migration queue** — elephants awaiting migration.
//! 3. **Ingress-port differentiation queues** — one FIFO per ingress port,
//!    served round-robin: "the controller serves the different queues in a
//!    round-robin fashion so as to share the available service rate evenly
//!    among ingress ports". Lowest priority, "such a priority order causes
//!    small flows to be forwarded on physical paths only after all large
//!    flows are accommodated".
//!
//! Queue-length thresholds (checked on enqueue): beyond the *overlay
//! threshold* flows are shed to the overlay; beyond the *dropping
//! threshold* they are dropped.

use crate::config::FairnessPolicy;
use scotch_net::{FlowKey, NodeId, Packet, PortId};
use scotch_sim::SimTime;
use std::collections::VecDeque;

/// The fair-share queue a pending flow belongs to under a policy (§5.2's
/// flow grouping).
pub fn group_key(policy: &FairnessPolicy, flow: &PendingFlow) -> u64 {
    match policy {
        FairnessPolicy::None => 0,
        FairnessPolicy::IngressPort => flow.origin_port.0 as u64,
        FairnessPolicy::SourcePrefix(bits) => {
            let bits = (*bits).min(32) as u32;
            if bits == 0 {
                0
            } else {
                (flow.key.src.0 >> (32 - bits)) as u64
            }
        }
        FairnessPolicy::Customers(blocks) => {
            for (i, (net, bits)) in blocks.iter().enumerate() {
                let bits = (*bits).min(32) as u32;
                let shift = 32 - bits;
                if bits > 0 && (flow.key.src.0 >> shift) == (net.0 >> shift) {
                    return i as u64 + 1;
                }
            }
            0 // the default queue for unknown sources
        }
    }
}

/// A new flow waiting for admission to the physical network.
#[derive(Debug, Clone)]
pub struct PendingFlow {
    /// The 5-tuple.
    pub key: FlowKey,
    /// The buffered first packet (full packet per Scotch's vSwitch
    /// configuration).
    pub packet: Packet,
    /// Node whose Packet-In carried the flow (physical switch or mesh
    /// vSwitch).
    pub punted_by: NodeId,
    /// The flow's first-hop physical switch.
    pub origin: NodeId,
    /// Ingress port at the origin switch.
    pub origin_port: PortId,
    /// When the Packet-In reached the controller.
    pub enqueued_at: SimTime,
}

/// A planned migration awaiting budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationJob {
    /// The elephant's key.
    pub key: FlowKey,
}

/// Where an enqueued flow ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Queued for physical admission.
    Queued,
    /// Beyond the overlay threshold: route over the overlay now.
    RouteOnOverlay,
    /// Beyond the dropping threshold: discard.
    Dropped,
}

/// What the scheduler hands back when granted a token.
#[derive(Debug, Clone)]
pub enum GrantedWork {
    /// Send this pre-planned FlowMod (admitted queue).
    Admitted(scotch_controller::Command),
    /// Plan and launch this migration.
    Migrate(MigrationJob),
    /// Plan physical admission for this flow.
    Admit(PendingFlow),
}

/// Scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Flows queued for physical admission.
    pub queued: u64,
    /// Flows shed to the overlay at enqueue.
    pub shed_to_overlay: u64,
    /// Flows dropped beyond the dropping threshold.
    pub dropped: u64,
    /// Tokens spent.
    pub served: u64,
}

/// The per-switch scheduler.
#[derive(Debug, Clone)]
pub struct RuleScheduler {
    rate: f64,
    tokens: f64,
    last_refill: SimTime,
    admitted: VecDeque<scotch_controller::Command>,
    migration: VecDeque<MigrationJob>,
    /// (port, queue) pairs in first-seen order; round-robin cursor walks
    /// this list.
    ingress: Vec<(u64, VecDeque<PendingFlow>)>,
    rr_cursor: usize,
    overlay_threshold: usize,
    drop_threshold: usize,
    /// Flow-grouping policy (§5.2).
    policy: FairnessPolicy,
    stats: SchedulerStats,
}

impl RuleScheduler {
    /// A scheduler draining `rate` rules/s with the given thresholds.
    pub fn new(
        rate: f64,
        overlay_threshold: usize,
        drop_threshold: usize,
        policy: FairnessPolicy,
    ) -> Self {
        assert!(rate > 0.0);
        assert!(overlay_threshold < drop_threshold);
        RuleScheduler {
            rate,
            tokens: 0.0,
            last_refill: SimTime::ZERO,
            admitted: VecDeque::new(),
            migration: VecDeque::new(),
            ingress: Vec::new(),
            rr_cursor: 0,
            overlay_threshold,
            drop_threshold,
            policy,
            stats: SchedulerStats::default(),
        }
    }

    /// The configured budget `R`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Enqueue a pre-planned FlowMod for this switch (admitted class).
    pub fn push_admitted(&mut self, cmd: scotch_controller::Command) {
        self.admitted.push_back(cmd);
    }

    /// Enqueue a migration job.
    pub fn push_migration(&mut self, job: MigrationJob) {
        self.migration.push_back(job);
    }

    fn queue_for(&mut self, key: u64) -> &mut VecDeque<PendingFlow> {
        if let Some(idx) = self.ingress.iter().position(|(p, _)| *p == key) {
            &mut self.ingress[idx].1
        } else {
            self.ingress.push((key, VecDeque::new()));
            &mut self.ingress.last_mut().unwrap().1
        }
    }

    /// Offer a new flow into its ingress queue, applying the thresholds.
    pub fn enqueue_flow(&mut self, flow: PendingFlow) -> (EnqueueOutcome, Option<PendingFlow>) {
        let overlay_threshold = self.overlay_threshold;
        let drop_threshold = self.drop_threshold;
        let key = group_key(&self.policy, &flow);
        let q = self.queue_for(key);
        if q.len() >= drop_threshold {
            self.stats.dropped += 1;
            return (EnqueueOutcome::Dropped, None);
        }
        if q.len() >= overlay_threshold {
            self.stats.shed_to_overlay += 1;
            return (EnqueueOutcome::RouteOnOverlay, Some(flow));
        }
        q.push_back(flow);
        self.stats.queued += 1;
        (EnqueueOutcome::Queued, None)
    }

    /// Total flows waiting in ingress queues.
    pub fn ingress_backlog(&self) -> usize {
        self.ingress.iter().map(|(_, q)| q.len()).sum()
    }

    /// Backlog of one ingress port's queue (under the ingress-port
    /// policy; other policies key differently).
    pub fn port_backlog(&self, port: PortId) -> usize {
        self.ingress
            .iter()
            .find(|(p, _)| *p == port.0 as u64)
            .map(|(_, q)| q.len())
            .unwrap_or(0)
    }

    fn pop_ingress_rr(&mut self) -> Option<PendingFlow> {
        if self.ingress.is_empty() {
            return None;
        }
        let n = self.ingress.len();
        for _ in 0..n {
            let idx = self.rr_cursor % n;
            self.rr_cursor = (self.rr_cursor + 1) % n.max(1);
            if let Some(flow) = self.ingress[idx].1.pop_front() {
                return Some(flow);
            }
        }
        None
    }

    /// Refill tokens and drain up to the available budget, in priority
    /// order. Each returned item costs one token.
    pub fn service(&mut self, now: SimTime) -> Vec<GrantedWork> {
        let dt = now.duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        // Cap the bucket at one second of budget — idle periods must not
        // bank unbounded bursts (that would blow past the lossless rate).
        self.tokens = (self.tokens + dt * self.rate).min(self.rate);

        let mut work = Vec::new();
        while self.tokens >= 1.0 {
            let item = if let Some(cmd) = self.admitted.pop_front() {
                GrantedWork::Admitted(cmd)
            } else if let Some(job) = self.migration.pop_front() {
                GrantedWork::Migrate(job)
            } else if let Some(flow) = self.pop_ingress_rr() {
                GrantedWork::Admit(flow)
            } else {
                break;
            };
            self.tokens -= 1.0;
            self.stats.served += 1;
            work.push(item);
        }
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_controller::Command;
    use scotch_net::{FlowId, FlowKey, IpAddr};
    use scotch_openflow::ControllerToSwitch;

    fn flow(port: u16, sport: u16) -> PendingFlow {
        let key = FlowKey::tcp(IpAddr::new(1, 1, 1, 1), sport, IpAddr::new(2, 2, 2, 2), 80);
        PendingFlow {
            key,
            packet: Packet::flow_start(key, FlowId(sport as u64), SimTime::ZERO),
            punted_by: NodeId(9),
            origin: NodeId(1),
            origin_port: PortId(port),
            enqueued_at: SimTime::ZERO,
        }
    }

    fn cmd() -> Command {
        Command::new(NodeId(1), ControllerToSwitch::FlowStatsRequest)
    }

    #[test]
    fn thresholds_shed_then_drop() {
        let mut s = RuleScheduler::new(100.0, 2, 4, FairnessPolicy::IngressPort);
        assert_eq!(s.enqueue_flow(flow(0, 1)).0, EnqueueOutcome::Queued);
        assert_eq!(s.enqueue_flow(flow(0, 2)).0, EnqueueOutcome::Queued);
        // Queue is at the overlay threshold: shed.
        assert_eq!(s.enqueue_flow(flow(0, 3)).0, EnqueueOutcome::RouteOnOverlay);
        assert_eq!(s.port_backlog(PortId(0)), 2);
        let st = s.stats();
        assert_eq!((st.queued, st.shed_to_overlay, st.dropped), (2, 1, 0));
    }

    #[test]
    fn dropping_threshold_drops() {
        // With differentiation off and service never called, fill one
        // shared queue to the dropping threshold.
        let mut s = RuleScheduler::new(100.0, 1, 2, FairnessPolicy::None);
        assert_eq!(s.enqueue_flow(flow(0, 1)).0, EnqueueOutcome::Queued);
        assert_eq!(s.enqueue_flow(flow(1, 2)).0, EnqueueOutcome::RouteOnOverlay);
        // Force the queue longer to hit the drop threshold.
        s.queue_for(0).push_back(flow(0, 3));
        assert_eq!(s.enqueue_flow(flow(2, 4)).0, EnqueueOutcome::Dropped);
        assert_eq!(s.stats().dropped, 1);
    }

    #[test]
    fn service_respects_rate() {
        let mut s = RuleScheduler::new(100.0, 50, 100, FairnessPolicy::IngressPort);
        for i in 0..200 {
            s.enqueue_flow(flow(0, i));
        }
        // 100 ms at 100/s -> 10 tokens.
        let work = s.service(SimTime::from_millis(100));
        assert_eq!(work.len(), 10);
        // Immediately again: no tokens accrued.
        assert_eq!(s.service(SimTime::from_millis(100)).len(), 0);
    }

    #[test]
    fn token_bank_is_capped() {
        let mut s = RuleScheduler::new(100.0, 500, 1000, FairnessPolicy::IngressPort);
        for i in 0..500 {
            s.enqueue_flow(flow(0, i));
        }
        // One hour idle must not bank 360k tokens: cap is 1 s of budget.
        let work = s.service(SimTime::from_secs(3600));
        assert_eq!(work.len(), 100);
    }

    #[test]
    fn priority_order_admitted_migration_ingress() {
        let mut s = RuleScheduler::new(1000.0, 50, 100, FairnessPolicy::IngressPort);
        s.enqueue_flow(flow(0, 1));
        s.push_migration(MigrationJob {
            key: flow(0, 9).key,
        });
        s.push_admitted(cmd());
        let work = s.service(SimTime::from_secs(1));
        assert!(matches!(work[0], GrantedWork::Admitted(_)));
        assert!(matches!(work[1], GrantedWork::Migrate(_)));
        assert!(matches!(work[2], GrantedWork::Admit(_)));
    }

    #[test]
    fn round_robin_shares_across_ports() {
        let mut s = RuleScheduler::new(1000.0, 50, 100, FairnessPolicy::IngressPort);
        // Port 1 floods, port 2 trickles.
        for i in 0..40 {
            s.enqueue_flow(flow(1, i));
        }
        for i in 100..104 {
            s.enqueue_flow(flow(2, i));
        }
        // Grant 8 tokens: with RR, port 2's four flows must all be served.
        s.tokens = 0.0;
        let work = s.service(SimTime::from_millis(8));
        let port2_served = work
            .iter()
            .filter(|w| matches!(w, GrantedWork::Admit(f) if f.origin_port == PortId(2)))
            .count();
        assert_eq!(work.len(), 8);
        assert_eq!(port2_served, 4, "RR must not starve the quiet port");
    }

    #[test]
    fn undifferentiated_mode_is_fifo_across_ports() {
        let mut s = RuleScheduler::new(1000.0, 50, 100, FairnessPolicy::None);
        for i in 0..40 {
            s.enqueue_flow(flow(1, i));
        }
        for i in 100..104 {
            s.enqueue_flow(flow(2, i));
        }
        let work = s.service(SimTime::from_millis(8));
        let port2_served = work
            .iter()
            .filter(|w| matches!(w, GrantedWork::Admit(f) if f.origin_port == PortId(2)))
            .count();
        // FIFO: the flood (enqueued first) hogs all 8 grants.
        assert_eq!(port2_served, 0, "shared queue starves the quiet port");
    }

    #[test]
    fn rr_cursor_survives_empty_queues() {
        let mut s = RuleScheduler::new(1000.0, 50, 100, FairnessPolicy::IngressPort);
        s.enqueue_flow(flow(3, 1));
        let w1 = s.service(SimTime::from_secs(1));
        assert_eq!(w1.len(), 1);
        // Port 3's queue now empty; new arrivals on port 5 still served.
        s.enqueue_flow(flow(5, 2));
        let w2 = s.service(SimTime::from_secs(2));
        assert_eq!(w2.len(), 1);
    }
}

#[cfg(test)]
mod fairness_tests {
    use super::*;
    use scotch_net::{FlowId, IpAddr};

    fn flow_from(src: IpAddr, port: u16, sport: u16) -> PendingFlow {
        let key = FlowKey::tcp(src, sport, IpAddr::new(9, 9, 9, 9), 80);
        PendingFlow {
            key,
            packet: Packet::flow_start(key, FlowId(sport as u64), SimTime::ZERO),
            punted_by: NodeId(5),
            origin: NodeId(1),
            origin_port: PortId(port),
            enqueued_at: SimTime::ZERO,
        }
    }

    #[test]
    fn source_prefix_groups_by_customer_block() {
        // Two "customers": 10.1.0.0/16 and 10.2.0.0/16.
        let cust_a = IpAddr::new(10, 1, 0, 7);
        let cust_b = IpAddr::new(10, 2, 0, 7);
        let policy = FairnessPolicy::SourcePrefix(16);
        let ka = group_key(&policy, &flow_from(cust_a, 0, 1));
        let kb = group_key(&policy, &flow_from(cust_b, 0, 2));
        assert_ne!(ka, kb);
        // Same block, different host and even different ingress port:
        // same queue.
        let ka2 = group_key(&policy, &flow_from(IpAddr::new(10, 1, 4, 4), 3, 5));
        assert_eq!(ka, ka2);
    }

    #[test]
    fn customer_fairness_protects_the_quiet_customer() {
        // Customer A floods (both ports!), customer B trickles; per-prefix
        // queues give B its fair share even though the flood shares B's
        // ingress port.
        let mut s = RuleScheduler::new(1000.0, 50, 100, FairnessPolicy::SourcePrefix(16));
        for i in 0..40 {
            // Flood from 10.1/16, alternating ingress ports.
            s.enqueue_flow(flow_from(IpAddr::new(10, 1, 0, i as u8), i % 2, i));
        }
        for i in 100..104 {
            s.enqueue_flow(flow_from(IpAddr::new(10, 2, 0, 1), 1, i));
        }
        s.tokens = 0.0;
        let work = s.service(SimTime::from_millis(8));
        let b_served = work
            .iter()
            .filter(|w| matches!(w, GrantedWork::Admit(f) if f.key.src.0 >> 16 == (10 << 8) | 2))
            .count();
        assert_eq!(work.len(), 8);
        assert_eq!(b_served, 4, "customer B's flows must all be served");
        // Under ingress-port fairness the flood shares B's port queue and
        // starves it.
        let mut s2 = RuleScheduler::new(1000.0, 50, 100, FairnessPolicy::IngressPort);
        for i in 0..40 {
            s2.enqueue_flow(flow_from(IpAddr::new(10, 1, 0, i as u8), i % 2, i));
        }
        for i in 100..104 {
            s2.enqueue_flow(flow_from(IpAddr::new(10, 2, 0, 1), 1, i));
        }
        s2.tokens = 0.0;
        let work2 = s2.service(SimTime::from_millis(8));
        let b_served2 = work2
            .iter()
            .filter(|w| matches!(w, GrantedWork::Admit(f) if f.key.src.0 >> 16 == (10 << 8) | 2))
            .count();
        assert!(
            b_served2 < b_served,
            "port fairness cannot isolate a same-port flood: {b_served2} vs {b_served}"
        );
    }

    #[test]
    fn prefix_zero_is_one_shared_queue() {
        let policy = FairnessPolicy::SourcePrefix(0);
        let ka = group_key(&policy, &flow_from(IpAddr::new(10, 1, 0, 1), 0, 1));
        let kb = group_key(&policy, &flow_from(IpAddr::new(200, 9, 9, 9), 5, 2));
        assert_eq!(ka, kb);
    }
}
