//! libpcap captures of simulated traffic.
//!
//! smoltcp-style debugging parity: any node can be tapped and every packet
//! arriving there is appended — serialized with the real OpenFlow-adjacent
//! wire encoding from [`scotch_openflow::wire`] — to a standard libpcap
//! byte stream that Wireshark/tcpdump open directly.
//!
//! ```no_run
//! use scotch::scenario::Scenario;
//! use scotch_sim::SimTime;
//!
//! let mut sim = Scenario::overlay_datacenter(2).with_clients(50.0).build(1);
//! let server = sim.topo.nodes_of_kind(scotch_net::NodeKind::Host)[2];
//! sim.capture_at(server);
//! let report = sim.run(SimTime::from_secs(3));
//! std::fs::write("server.pcap", report.captures[&server].bytes()).unwrap();
//! ```

use scotch_net::Packet;
use scotch_openflow::wire::encode_packet;
use scotch_sim::SimTime;

/// libpcap little-endian magic.
pub const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// Link type: Ethernet.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// An in-memory libpcap capture.
#[derive(Debug, Clone)]
pub struct PcapCapture {
    buf: Vec<u8>,
    records: u64,
}

impl Default for PcapCapture {
    fn default() -> Self {
        Self::new()
    }
}

impl PcapCapture {
    /// An empty capture with the global header written.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&PCAP_MAGIC.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes()); // version major
        buf.extend_from_slice(&4u16.to_le_bytes()); // version minor
        buf.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        buf.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        PcapCapture { buf, records: 0 }
    }

    /// Append one packet observed at `at`.
    ///
    /// Packets our wire codec cannot represent (e.g. out-of-range tunnel
    /// labels) are skipped — captures are diagnostics, not ground truth
    /// for accounting.
    pub fn record(&mut self, at: SimTime, packet: &Packet) {
        let Ok(data) = encode_packet(packet) else {
            return;
        };
        let nanos = at.as_nanos();
        let secs = (nanos / 1_000_000_000) as u32;
        let usecs = ((nanos % 1_000_000_000) / 1_000) as u32;
        self.buf.extend_from_slice(&secs.to_le_bytes());
        self.buf.extend_from_slice(&usecs.to_le_bytes());
        self.buf
            .extend_from_slice(&(data.len() as u32).to_le_bytes());
        // Original length: the simulated on-wire size (payload included).
        self.buf
            .extend_from_slice(&packet.size.max(data.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&data);
        self.records += 1;
    }

    /// The capture as libpcap bytes (global header + records).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of recorded packets.
    pub fn records(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_net::{FlowId, FlowKey, IpAddr};

    fn pkt(sport: u16) -> Packet {
        Packet::flow_start(
            FlowKey::tcp(IpAddr::new(1, 0, 0, 1), sport, IpAddr::new(2, 0, 0, 2), 80),
            FlowId(1),
            SimTime::from_millis(1500),
        )
    }

    #[test]
    fn global_header_is_valid_libpcap() {
        let cap = PcapCapture::new();
        let b = cap.bytes();
        assert_eq!(b.len(), 24);
        assert_eq!(u32::from_le_bytes(b[0..4].try_into().unwrap()), PCAP_MAGIC);
        assert_eq!(u16::from_le_bytes(b[4..6].try_into().unwrap()), 2);
        assert_eq!(u16::from_le_bytes(b[6..8].try_into().unwrap()), 4);
        assert_eq!(
            u32::from_le_bytes(b[20..24].try_into().unwrap()),
            LINKTYPE_ETHERNET
        );
    }

    #[test]
    fn records_carry_timestamps_and_lengths() {
        let mut cap = PcapCapture::new();
        cap.record(SimTime::from_millis(1_234), &pkt(1));
        assert_eq!(cap.records(), 1);
        let b = cap.bytes();
        let rec = &b[24..];
        let secs = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let usecs = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        assert_eq!(secs, 1);
        assert_eq!(usecs, 234_000);
        let incl = u32::from_le_bytes(rec[8..12].try_into().unwrap()) as usize;
        assert_eq!(rec.len(), 16 + incl);
    }

    #[test]
    fn recorded_bytes_decode_back() {
        let mut cap = PcapCapture::new();
        let p = pkt(9);
        cap.record(SimTime::ZERO, &p);
        let rec = &cap.bytes()[24..];
        let incl = u32::from_le_bytes(rec[8..12].try_into().unwrap()) as usize;
        let data = &rec[16..16 + incl];
        let back = scotch_openflow::wire::decode_packet(data, p.size).unwrap();
        assert_eq!(back.key, p.key);
    }

    #[test]
    fn multiple_records_append() {
        let mut cap = PcapCapture::new();
        for i in 0..10 {
            cap.record(SimTime::from_millis(i), &pkt(i as u16));
        }
        assert_eq!(cap.records(), 10);
        assert!(cap.bytes().len() > 24 + 10 * 16);
    }
}
