//! Large-flow identification (§5.3).
//!
//! "The controller sends the flow-stats query messages to the vSwitches,
//! and collects the flow stats including packet counts. The large flow
//! identifier selects the flows with high packet counts, and puts the large
//! flow migration requests into the large flow migration queue."
//!
//! Detection is rate-based: a flow whose packet count grew by more than
//! `elephant_pps × poll_interval` since the previous poll is an elephant.

use scotch_net::{FlowKey, NodeId};
use scotch_openflow::messages::FlowStat;
use scotch_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// Detects elephants from successive FlowStats snapshots.
#[derive(Debug, Clone)]
pub struct ElephantDetector {
    /// Packets/second above which a flow is an elephant.
    pub threshold_pps: f64,
    /// Last seen cumulative packet count per (vSwitch, cookie).
    last_counts: HashMap<(NodeId, u64), (SimTime, u64)>,
    /// Flows already flagged (do not flag twice).
    flagged: HashMap<FlowKey, SimTime>,
}

impl ElephantDetector {
    /// A detector with the given rate threshold.
    pub fn new(threshold_pps: f64) -> Self {
        assert!(threshold_pps > 0.0);
        ElephantDetector {
            threshold_pps,
            last_counts: HashMap::new(),
            flagged: HashMap::new(),
        }
    }

    /// Ingest a FlowStatsReply from vSwitch `from`; returns
    /// `(newly detected elephants, keys with recent activity)`. `key_of`
    /// recovers the flow key from a stat record's matcher (installed
    /// vSwitch rules match on src/dst, so the key is embedded in the
    /// match). The activity list feeds withdrawal's liveness filter
    /// (§5.5).
    pub fn ingest(
        &mut self,
        now: SimTime,
        from: NodeId,
        stats: &[FlowStat],
        key_of: impl Fn(&FlowStat) -> Option<FlowKey>,
    ) -> (Vec<FlowKey>, Vec<FlowKey>) {
        let mut elephants = Vec::new();
        let mut active = Vec::new();
        for st in stats {
            let Some(key) = key_of(st) else { continue };
            let slot = (from, st.cookie);
            let (prev_t, prev_n) = self
                .last_counts
                .insert(slot, (now, st.packet_count))
                .unwrap_or((now, 0));
            let dt = now.duration_since(prev_t).as_secs_f64();
            if st.packet_count > prev_n || (dt <= 0.0 && st.packet_count > 0) {
                active.push(key);
            }
            if dt <= 0.0 {
                // First sighting within this poll round: judge by total
                // count over the entry's lifetime — but only once the
                // entry has lived long enough for a meaningful rate (a
                // just-installed rule with one packet is not a 1000 pps
                // elephant).
                let life = st.duration.as_secs_f64();
                if life >= 0.5
                    && st.packet_count as f64 / life >= self.threshold_pps
                    && !self.flagged.contains_key(&key)
                {
                    self.flagged.insert(key, now);
                    elephants.push(key);
                }
                continue;
            }
            let pps = st.packet_count.saturating_sub(prev_n) as f64 / dt;
            if pps >= self.threshold_pps && !self.flagged.contains_key(&key) {
                self.flagged.insert(key, now);
                elephants.push(key);
            }
        }
        (elephants, active)
    }

    /// Forget flows flagged more than `ttl` ago (their rules have expired;
    /// a returning flow may be flagged again).
    pub fn expire(&mut self, now: SimTime, ttl: SimDuration) {
        self.flagged.retain(|_, t| now.duration_since(*t) < ttl);
    }

    /// Number of flows currently flagged.
    pub fn flagged_count(&self) -> usize {
        self.flagged.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_net::IpAddr;
    use scotch_openflow::{Match, TableId};

    fn key(sport: u16) -> FlowKey {
        FlowKey::tcp(IpAddr::new(1, 1, 1, 1), sport, IpAddr::new(2, 2, 2, 2), 80)
    }

    fn stat(cookie: u64, packets: u64, secs: u64) -> FlowStat {
        FlowStat {
            table: TableId(0),
            matcher: Match::ANY,
            cookie,
            packet_count: packets,
            byte_count: packets * 1000,
            duration: SimDuration::from_secs(secs),
        }
    }

    fn key_of_cookie(st: &FlowStat) -> Option<FlowKey> {
        Some(key(st.cookie as u16))
    }

    #[test]
    fn steady_elephant_is_detected_on_second_poll() {
        let mut d = ElephantDetector::new(300.0);
        // Poll 1: entry just installed, 100 pkts over 1 s of life — mouse.
        let (e1, _) = d.ingest(
            SimTime::from_secs(1),
            NodeId(5),
            &[stat(1, 100, 1)],
            key_of_cookie,
        );
        assert!(e1.is_empty());
        // Poll 2: +500 pkts in 1 s -> 500 pps elephant.
        let (e2, _) = d.ingest(
            SimTime::from_secs(2),
            NodeId(5),
            &[stat(1, 600, 2)],
            key_of_cookie,
        );
        assert_eq!(e2, vec![key(1)]);
        // Poll 3: still fast, but already flagged.
        let (e3, _) = d.ingest(
            SimTime::from_secs(3),
            NodeId(5),
            &[stat(1, 1200, 3)],
            key_of_cookie,
        );
        assert!(e3.is_empty());
        assert_eq!(d.flagged_count(), 1);
    }

    #[test]
    fn first_sighting_with_high_lifetime_rate_flags_immediately() {
        let mut d = ElephantDetector::new(300.0);
        // 2000 pkts over a 2 s lifetime = 1000 pps on first sighting.
        let (e, _) = d.ingest(
            SimTime::from_secs(5),
            NodeId(5),
            &[stat(2, 2000, 2)],
            key_of_cookie,
        );
        assert_eq!(e, vec![key(2)]);
    }

    #[test]
    fn mice_are_never_flagged() {
        let mut d = ElephantDetector::new(300.0);
        for poll in 1..10u64 {
            let (e, _) = d.ingest(
                SimTime::from_secs(poll),
                NodeId(5),
                &[stat(3, poll * 10, poll)], // 10 pps
                key_of_cookie,
            );
            assert!(e.is_empty(), "poll {poll} flagged a mouse");
        }
    }

    #[test]
    fn counts_are_tracked_per_vswitch() {
        let mut d = ElephantDetector::new(300.0);
        d.ingest(
            SimTime::from_secs(1),
            NodeId(5),
            &[stat(1, 50, 1)],
            key_of_cookie,
        );
        // Same cookie on a different vSwitch: its own baseline (50 pkts
        // lifetime 1s = mouse), not a 0-delta continuation.
        let (e, _) = d.ingest(
            SimTime::from_secs(1),
            NodeId(6),
            &[stat(1, 50, 1)],
            key_of_cookie,
        );
        assert!(e.is_empty());
    }

    #[test]
    fn expiry_allows_reflagging() {
        let mut d = ElephantDetector::new(300.0);
        d.ingest(
            SimTime::from_secs(1),
            NodeId(5),
            &[stat(1, 0, 1)],
            key_of_cookie,
        );
        let (e, _) = d.ingest(
            SimTime::from_secs(2),
            NodeId(5),
            &[stat(1, 1000, 2)],
            key_of_cookie,
        );
        assert_eq!(e.len(), 1);
        d.expire(SimTime::from_secs(100), SimDuration::from_secs(30));
        assert_eq!(d.flagged_count(), 0);
        let (e2, _) = d.ingest(
            SimTime::from_secs(101),
            NodeId(5),
            &[stat(1, 2000, 101)],
            key_of_cookie,
        );
        // Delta 1000 pkts over 99 s ≈ 10 pps: not an elephant now.
        assert!(e2.is_empty());
    }

    #[test]
    fn unresolvable_keys_are_skipped() {
        let mut d = ElephantDetector::new(1.0);
        let (e, _) = d.ingest(
            SimTime::from_secs(1),
            NodeId(5),
            &[stat(1, 10_000, 1)],
            |_| None,
        );
        assert!(e.is_empty());
    }
}
