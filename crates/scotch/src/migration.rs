//! Large-flow identification (§5.3).
//!
//! "The controller sends the flow-stats query messages to the vSwitches,
//! and collects the flow stats including packet counts. The large flow
//! identifier selects the flows with high packet counts, and puts the large
//! flow migration requests into the large flow migration queue."
//!
//! Detection is rate-based and consumes the monitor's estimated-rate
//! stream ([`crate::telemetry::TelemetryCache`]): a flow whose *estimated*
//! rate — delta between sightings, or lifetime rate on first sighting —
//! reaches `elephant_pps` is an elephant. Under sampled telemetry the
//! estimates are inverse-probability-scaled sampled counts, so the same
//! threshold applies unchanged at any sampling rate; in exhaustive mode
//! the estimates are exact and the decisions are bit-identical to the
//! original count-based detector.

use crate::telemetry::FlowEstimate;
use scotch_net::FlowKey;
use scotch_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// Flags elephants from the monitor's [`FlowEstimate`] stream.
#[derive(Debug, Clone)]
pub struct ElephantDetector {
    /// Estimated packets/second above which a flow is an elephant.
    pub threshold_pps: f64,
    /// Flows already flagged (do not flag twice).
    flagged: HashMap<FlowKey, SimTime>,
}

impl ElephantDetector {
    /// A detector with the given rate threshold.
    pub fn new(threshold_pps: f64) -> Self {
        assert!(threshold_pps > 0.0);
        ElephantDetector {
            threshold_pps,
            flagged: HashMap::new(),
        }
    }

    /// Judge one estimate; `true` means the flow is a *newly* flagged
    /// elephant (the caller queues the migration).
    pub fn observe(&mut self, now: SimTime, est: &FlowEstimate) -> bool {
        if est.pps >= self.threshold_pps && !self.flagged.contains_key(&est.key) {
            self.flagged.insert(est.key, now);
            true
        } else {
            false
        }
    }

    /// Forget flows flagged more than `ttl` ago (their rules have expired;
    /// a returning flow may be flagged again).
    pub fn expire(&mut self, now: SimTime, ttl: SimDuration) {
        self.flagged.retain(|_, t| now.duration_since(*t) < ttl);
    }

    /// Number of flows currently flagged.
    pub fn flagged_count(&self) -> usize {
        self.flagged.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TelemetryCache;
    use scotch_net::{IpAddr, NodeId};
    use scotch_openflow::messages::FlowStat;
    use scotch_openflow::{Match, TableId};

    fn key(sport: u16) -> FlowKey {
        FlowKey::tcp(IpAddr::new(1, 1, 1, 1), sport, IpAddr::new(2, 2, 2, 2), 80)
    }

    fn stat(cookie: u64, packets: u64, secs: u64) -> FlowStat {
        FlowStat {
            table: TableId(0),
            matcher: Match::ANY,
            cookie,
            packet_count: packets,
            byte_count: packets * 1000,
            duration: SimDuration::from_secs(secs),
        }
    }

    fn key_of_cookie(st: &FlowStat) -> Option<FlowKey> {
        Some(key(st.cookie as u16))
    }

    /// Run one poll round through cache + detector, as the app does.
    fn poll(
        cache: &mut TelemetryCache,
        det: &mut ElephantDetector,
        now: SimTime,
        from: NodeId,
        stats: &[FlowStat],
        scale: f64,
    ) -> Vec<FlowKey> {
        cache
            .ingest(now, from, stats, scale, key_of_cookie)
            .iter()
            .filter(|e| det.observe(now, e))
            .map(|e| e.key)
            .collect()
    }

    #[test]
    fn steady_elephant_is_detected_on_second_poll() {
        let mut c = TelemetryCache::new();
        let mut d = ElephantDetector::new(300.0);
        // Poll 1: entry just installed, 100 pkts over 1 s of life — mouse.
        let e1 = poll(
            &mut c,
            &mut d,
            SimTime::from_secs(1),
            NodeId(5),
            &[stat(1, 100, 1)],
            1.0,
        );
        assert!(e1.is_empty());
        // Poll 2: +500 pkts in 1 s -> 500 pps elephant.
        let e2 = poll(
            &mut c,
            &mut d,
            SimTime::from_secs(2),
            NodeId(5),
            &[stat(1, 600, 2)],
            1.0,
        );
        assert_eq!(e2, vec![key(1)]);
        // Poll 3: still fast, but already flagged.
        let e3 = poll(
            &mut c,
            &mut d,
            SimTime::from_secs(3),
            NodeId(5),
            &[stat(1, 1200, 3)],
            1.0,
        );
        assert!(e3.is_empty());
        assert_eq!(d.flagged_count(), 1);
    }

    #[test]
    fn first_sighting_with_high_lifetime_rate_flags_immediately() {
        let mut c = TelemetryCache::new();
        let mut d = ElephantDetector::new(300.0);
        // 2000 pkts over a 2 s lifetime = 1000 pps on first sighting.
        let e = poll(
            &mut c,
            &mut d,
            SimTime::from_secs(5),
            NodeId(5),
            &[stat(2, 2000, 2)],
            1.0,
        );
        assert_eq!(e, vec![key(2)]);
    }

    #[test]
    fn sampled_estimates_cross_the_same_threshold() {
        let mut c = TelemetryCache::new();
        let mut d = ElephantDetector::new(300.0);
        // At rate 1/64 the vSwitch exports *sampled* counts; 16 sampled
        // pkts over a 2 s lifetime estimate to 16·64/2 = 512 pps.
        let e = poll(
            &mut c,
            &mut d,
            SimTime::from_secs(5),
            NodeId(5),
            &[stat(2, 16, 2)],
            64.0,
        );
        assert_eq!(e, vec![key(2)]);
        // A mouse with 1 sampled packet estimates to 64/2 = 32 pps.
        let m = poll(
            &mut c,
            &mut d,
            SimTime::from_secs(5),
            NodeId(5),
            &[stat(3, 1, 2)],
            64.0,
        );
        assert!(m.is_empty());
    }

    #[test]
    fn mice_are_never_flagged() {
        let mut c = TelemetryCache::new();
        let mut d = ElephantDetector::new(300.0);
        for round in 1..10u64 {
            let e = poll(
                &mut c,
                &mut d,
                SimTime::from_secs(round),
                NodeId(5),
                &[stat(3, round * 10, round)], // 10 pps
                1.0,
            );
            assert!(e.is_empty(), "poll {round} flagged a mouse");
        }
    }

    #[test]
    fn expiry_allows_reflagging() {
        let mut c = TelemetryCache::new();
        let mut d = ElephantDetector::new(300.0);
        poll(
            &mut c,
            &mut d,
            SimTime::from_secs(1),
            NodeId(5),
            &[stat(1, 0, 1)],
            1.0,
        );
        let e = poll(
            &mut c,
            &mut d,
            SimTime::from_secs(2),
            NodeId(5),
            &[stat(1, 1000, 2)],
            1.0,
        );
        assert_eq!(e.len(), 1);
        d.expire(SimTime::from_secs(100), SimDuration::from_secs(30));
        assert_eq!(d.flagged_count(), 0);
        let e2 = poll(
            &mut c,
            &mut d,
            SimTime::from_secs(101),
            NodeId(5),
            &[stat(1, 2000, 101)],
            1.0,
        );
        // Delta 1000 pkts over 99 s ≈ 10 pps: not an elephant now.
        assert!(e2.is_empty());
    }
}
