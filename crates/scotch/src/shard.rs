//! Conservative sharded execution of a [`Simulation`].
//!
//! The topology is partitioned by region (rack) into per-shard *lanes* —
//! each lane owns a slice of the device maps, its own timing-wheel event
//! queue, and the workload sources whose hosts live there. Lanes advance in
//! lockstep epochs whose length is bounded by the partition *lookahead*:
//! the minimum over (a) the propagation delay of every link crossing the
//! cut and (b) the control latency of every attached device. No event
//! generated inside an epoch can be due at another shard before the epoch
//! ends, so each lane runs its epoch with no locks and no peeking.
//!
//! ## Bit-determinism across shard counts
//!
//! The non-negotiable invariant: `(scenario, seed)` produces the identical
//! canonical report for every shard count, including the sequential run.
//! Three mechanisms carry it:
//!
//! 1. **Canonical inter-shard ordering.** Every cross-lane event (and every
//!    control-plane event, even shard-local ones) is captured in an outbox
//!    instead of being pushed directly. At each barrier the driver
//!    concatenates all outboxes, stable-sorts on
//!    `(deliver, gen, class, origin)` — a key that never mentions the shard
//!    — and pushes entries into the destination queues in that order, so
//!    the timing wheel's insertion-order tie-break is reproduced exactly.
//! 2. **Per-origin chaos streams.** Probabilistic fault draws come from
//!    per-origin RNG streams forked from one seed (see
//!    [`Simulation::apply_fault_plan`]), so a node's draw sequence does not
//!    depend on which shard it runs on.
//! 3. **Centralized accounting.** Flow delivery, the latency histogram, and
//!    the flow-creation order are global, order-sensitive state; lanes
//!    defer them (delivery buffers, `(source, seq)` labels, the hub's
//!    flowdb journal) and the driver replays them in global time order.
//!
//! Scenarios that cannot shard deterministically — no regions, random link
//! loss (the topology clone would fork the loss RNG), or a fault-plan entry
//! at t=0 racing the seed events — transparently fall back to the
//! sequential run.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::report::Report;
use crate::sim::{Event, FlowRecord, OutboxEntry, ShardCtx, Simulation};
use scotch_controller::flowdb::FlowPath;
use scotch_net::{FlowId, FlowKey, IpAddr, NodeId, NodeMap, Packet, Partition};
use scotch_sim::fault::{FaultEvent, FaultKind};
use scotch_sim::metrics::Histogram;
use scotch_sim::trace::{TraceEvent, TraceRecorder};
use scotch_sim::{EpochProfiler, FxHashMap, SimDuration, SimTime};

impl Simulation {
    /// Run until `until` on up to `shards` conservative shards, using up to
    /// `threads` worker threads (`0` means one per shard), returning the
    /// same canonical report as [`Simulation::run`] byte-for-byte.
    ///
    /// Falls back to the sequential run when the scenario cannot shard
    /// (no regions, effective shard count 1, random link loss, or a
    /// fault-plan entry at t=0).
    ///
    /// # Panics
    ///
    /// Panics if an inter-shard link's propagation is below
    /// [`scotch_net::partition::MIN_LOOKAHEAD`] — a scenario construction
    /// error (see [`Partition::validate_lookahead`]).
    pub fn run_sharded(self, until: SimTime, shards: usize, threads: usize) -> Report {
        run(self, until, shards, threads)
    }
}

/// Delivery accounting accumulated by the driver per flow, joined onto the
/// merged flow records at the end of the run.
#[derive(Default)]
struct DeliveryStub {
    delivered: u32,
    delivered_bytes: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
    served_by: Option<FlowPath>,
}

/// The driver's own schedule of *central* events — scripted faults, plan
/// injections, and their follow-ups. These mutate cross-lane state (the
/// hub's controller app, device flags on owning lanes, broadcast fault
/// windows), so the driver applies them at barriers instead of letting any
/// single lane race ahead with them. Ties at one instant apply in insertion
/// order, mirroring the sequential timing wheel.
#[derive(Default)]
struct Timeline {
    entries: Vec<(SimTime, u64, Event)>,
    next_seq: u64,
}

impl Timeline {
    fn push(&mut self, at: SimTime, ev: Event) {
        self.entries.push((at, self.next_seq, ev));
        self.next_seq += 1;
    }

    fn peek(&self) -> Option<SimTime> {
        self.entries.iter().map(|e| e.0).min()
    }

    /// Remove and return the lowest-seq entry due exactly at `t`.
    fn pop_at(&mut self, t: SimTime) -> Option<Event> {
        let mut best: Option<(usize, u64)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if e.0 == t && best.is_none_or(|(_, s)| e.1 < s) {
                best = Some((i, e.1));
            }
        }
        best.map(|(i, _)| self.entries.swap_remove(i).2)
    }
}

struct Driver {
    part: Arc<Partition>,
    lookahead: SimDuration,
    until: SimTime,
    node_count: usize,
    fault_plan: Vec<FaultEvent>,
    timeline: Timeline,
    /// Authoritative host → address map for misroute checks.
    host_ip: NodeMap<IpAddr>,
    /// Global end-to-end latency histogram (f64 sums are order-sensitive,
    /// so deliveries feed it in global time order).
    latency: Histogram,
    tracked: FxHashMap<FlowId, Vec<(SimTime, SimDuration)>>,
    misrouted: u64,
    ledger: FxHashMap<FlowId, DeliveryStub>,
    /// Chronological flowdb state per key, drained from the hub lane's
    /// journal — replays `served_by` resolution without a live flowdb.
    journal: FxHashMap<FlowKey, Vec<(SimTime, Option<FlowPath>)>>,
    overlay_version: u64,
    /// No lane has any event earlier than this; flushed outbox entries are
    /// asserted against it (a violation means the lookahead bound was
    /// unsound).
    watermark: SimTime,
    /// Central events applied (they count toward `events_processed` exactly
    /// like their sequential pops).
    centrals: u64,
    /// Epochs granted so far (each `Some(end)` from [`Driver::barrier`]).
    epochs: u64,
    /// Sim-time width of each granted epoch, ns. Deterministic per
    /// `(scenario, seed, shard count)` — folded into the metrics registry.
    epoch_width: Histogram,
    /// Inter-shard message matrix, `src * shards + dst`, counting outbox
    /// entries generated on one shard and delivered to another (diagonal
    /// entries — shard-local canonical re-enqueues — are not counted).
    xmsgs: Vec<u64>,
    /// Total lane pops at the last closed epoch (for per-epoch deltas).
    last_pops: u64,
    /// Wall-clock per-lane busy/stall profile, present only under
    /// `--profile-shards`. Never touches simulation state.
    profiler: Option<EpochProfiler>,
}

impl Driver {
    /// The barrier: exchange everything, then either apply due central
    /// events (and re-barrier) or name the next epoch bound. `None` ends
    /// the run.
    fn barrier(&mut self, lanes: &mut [Simulation]) -> Option<SimTime> {
        if self.epochs > 0 {
            self.close_epoch(lanes);
        }
        loop {
            self.flush_outboxes(lanes);
            self.drain_journal(lanes);
            self.apply_deliveries(lanes);
            self.refresh_overlay(lanes);

            let lane_min = lanes.iter().filter_map(|l| l.events.peek_time()).min();
            let central = self.timeline.peek();
            let t = match (lane_min, central) {
                (None, None) => return None,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            if t > self.until {
                return None;
            }
            if central == Some(t) && lane_min.is_none_or(|lm| t <= lm) {
                // Central events due now and no lane event earlier: apply
                // them all (insertion order), then re-barrier — they may
                // have scheduled more work or emitted control traffic.
                self.watermark = t;
                while let Some(ev) = self.timeline.pop_at(t) {
                    self.apply_central(lanes, t, ev);
                    self.centrals += 1;
                }
                continue;
            }
            let lm = lane_min.expect("epoch start requires a lane event");
            let mut end = lm + self.lookahead;
            if let Some(c) = central {
                end = end.min(c);
            }
            end = end.min(self.until + SimDuration::from_nanos(1));
            self.watermark = end;
            let width = end.duration_since(lm);
            self.epoch_width.record(width.as_nanos() as f64);
            lanes[0].app.trace.record(
                lm,
                TraceEvent::EpochOpened {
                    epoch: self.epochs as u32,
                    width: width.as_nanos(),
                },
            );
            self.epochs += 1;
            return Some(end);
        }
    }

    /// Book-keeping for the epoch that ended at the current watermark:
    /// a per-epoch event-count trace record, and (under `--profile-shards`)
    /// one wall-clock busy sample per lane.
    fn close_epoch(&mut self, lanes: &mut [Simulation]) {
        let pops: u64 = lanes
            .iter()
            .map(|l| l.shard.as_ref().expect("lane has shard ctx").pops)
            .sum();
        let delta = pops - self.last_pops;
        self.last_pops = pops;
        lanes[0].app.trace.record(
            self.watermark,
            TraceEvent::EpochClosed {
                epoch: (self.epochs - 1) as u32,
                events: delta,
            },
        );
        if let Some(p) = self.profiler.as_mut() {
            let busy: Vec<f64> = lanes
                .iter_mut()
                .map(|l| {
                    let ctx = l.shard.as_mut().expect("lane has shard ctx");
                    std::mem::replace(&mut ctx.epoch_busy_ns, 0.0)
                })
                .collect();
            p.record_epoch(&busy);
        }
    }

    /// Concatenate all lanes' outboxes, order canonically, and push into
    /// the destination queues. The sort key omits the shard, and a stable
    /// sort preserves each origin's generation order, so the resulting
    /// insertion order is identical for every shard count.
    fn flush_outboxes(&mut self, lanes: &mut [Simulation]) {
        let mut entries: Vec<OutboxEntry> = Vec::new();
        for lane in lanes.iter_mut() {
            let ctx = lane.shard.as_mut().expect("lane has shard ctx");
            entries.append(&mut ctx.outbox);
        }
        entries.sort_by(|a, b| {
            (a.deliver, a.gen, a.class, a.origin).cmp(&(b.deliver, b.gen, b.class, b.origin))
        });
        let m = self.part.shards() as usize;
        // Per-flush (src, dst) handoff tallies, recorded as Verbose trace
        // events only when the hub recorder wants them.
        let trace_handoffs = lanes[0].app.trace.wants(
            scotch_sim::trace::TraceCategory::Shard,
            scotch_sim::trace::TraceLevel::Verbose,
        );
        let mut flush_matrix = vec![0u32; if trace_handoffs { m * m } else { 0 }];
        for e in entries {
            debug_assert!(
                e.deliver >= self.watermark,
                "outbox entry due {:?} before watermark {:?}: lookahead unsound",
                e.deliver,
                self.watermark
            );
            let dest = match &e.ev {
                Event::Arrive { node, .. } => self.part.shard_of(*node),
                // All control traffic terminates at the hub's controller.
                Event::CtrlFromSwitch { .. } => 0,
                Event::CtrlToSwitch { to, .. } => self.part.shard_of(*to),
                _ => unreachable!("only packet/control events cross shards"),
            } as usize;
            let src = if e.origin == u32::MAX {
                0
            } else {
                self.part.shard_of(NodeId(e.origin)) as usize
            };
            if src != dest {
                self.xmsgs[src * m + dest] += 1;
                if trace_handoffs {
                    flush_matrix[src * m + dest] += 1;
                }
            }
            lanes[dest].events.push(e.deliver, e.ev);
        }
        if trace_handoffs {
            for src in 0..m {
                for dst in 0..m {
                    let events = flush_matrix[src * m + dst];
                    if events > 0 {
                        lanes[0].app.trace.record(
                            self.watermark,
                            TraceEvent::ShardHandoff {
                                src: src as u32,
                                dst: dst as u32,
                                events,
                            },
                        );
                    }
                }
            }
        }
    }

    fn drain_journal(&mut self, lanes: &mut [Simulation]) {
        let journal = lanes[0]
            .app
            .flow_journal
            .as_mut()
            .expect("hub lane journals flowdb mutations");
        for (t, key, path) in journal.drain(..) {
            self.journal.entry(key).or_default().push((t, path));
        }
    }

    /// Apply all lanes' deferred host deliveries in global time order
    /// against the single accounting state. Within one barrier all
    /// deliveries fall inside the same epoch window, so sorting the batch
    /// by time yields the global order across barriers too.
    fn apply_deliveries(&mut self, lanes: &mut [Simulation]) {
        let mut batch: Vec<(SimTime, NodeId, Packet)> = Vec::new();
        for lane in lanes.iter_mut() {
            let ctx = lane.shard.as_mut().expect("lane has shard ctx");
            batch.append(&mut ctx.deliveries);
        }
        batch.sort_by_key(|d| d.0);
        for (now, host, packet) in batch {
            self.apply_delivery(now, host, packet);
        }
    }

    /// Mirror of the sequential `Simulation::deliver` accounting.
    fn apply_delivery(&mut self, now: SimTime, host: NodeId, packet: Packet) {
        if self.host_ip.get(host) != Some(&packet.key.dst) {
            self.misrouted += 1;
            return;
        }
        let stub = self.ledger.entry(packet.flow_id).or_default();
        stub.delivered += 1;
        stub.delivered_bytes += packet.size as u64;
        if stub.first.is_none() {
            stub.first = Some(now);
            stub.served_by = resolve_path(&self.journal, &packet.key, now);
        }
        stub.last = Some(now);
        if !packet.is_attack {
            self.latency
                .record(now.duration_since(packet.born_at).as_nanos() as f64);
        }
        if !self.tracked.is_empty() {
            if let Some(ts) = self.tracked.get_mut(&packet.flow_id) {
                ts.push((now, now.duration_since(packet.born_at)));
            }
        }
    }

    /// Re-clone the hub's overlay onto the other lanes when it changed.
    /// Overlay mutations happen at the hub's controller; their effects
    /// cannot reach a remote device in under one lookahead, so refreshing
    /// replicas at the next barrier is exact.
    fn refresh_overlay(&mut self, lanes: &mut [Simulation]) {
        let v = lanes[0].app.overlay.version;
        if v != self.overlay_version {
            self.overlay_version = v;
            let (hub, rest) = lanes.split_first_mut().expect("at least one lane");
            for lane in rest {
                lane.app.overlay = hub.app.overlay.clone();
            }
        }
    }

    /// Apply one central event. Mirrors the matching `process_event` arms,
    /// split across lanes: device flags mutate on the owning lane,
    /// controller/trace/counter state on the hub, topology link state and
    /// fault windows on every lane (broadcast replicas).
    fn apply_central(&mut self, lanes: &mut [Simulation], now: SimTime, ev: Event) {
        match ev {
            Event::FailVSwitch { node } => {
                let lane = &mut lanes[self.part.shard_of(node) as usize];
                if let Some(vs) = lane.vswitches.get_mut(node) {
                    vs.failed = true;
                }
            }
            Event::JoinVSwitch { .. } => {
                // Pure controller-side work: the hub processes it verbatim
                // (its commands leave through the hub's outbox).
                lanes[0].process_event(now, ev);
            }
            Event::RecoverVSwitch { node } => {
                let lane = &mut lanes[self.part.shard_of(node) as usize];
                if let Some(vs) = lane.vswitches.get_mut(node) {
                    vs.failed = false;
                }
                lanes[0].app.recover_vswitch(now, node);
                if lanes[0].chaos_seed.is_some() {
                    lanes[0].app.trace.record(
                        now,
                        TraceEvent::FaultCleared {
                            kind: 0,
                            target: node.0,
                        },
                    );
                }
            }
            Event::InjectFault { idx } => self.inject_fault(lanes, now, idx),
            Event::SetLinkUp {
                link,
                up,
                kind,
                finale,
            } => {
                for lane in lanes.iter_mut() {
                    lane.topo.set_link_up(link, up);
                }
                if finale {
                    lanes[0].app.trace.record(
                        now,
                        TraceEvent::FaultCleared {
                            kind: u32::from(kind),
                            target: link.0,
                        },
                    );
                }
            }
            Event::ClearLinkDegrade { link } => {
                for lane in lanes.iter_mut() {
                    lane.topo.set_link_extra_delay(link, SimDuration::ZERO);
                }
                lanes[0].app.trace.record(
                    now,
                    TraceEvent::FaultCleared {
                        kind: 3,
                        target: link.0,
                    },
                );
            }
            Event::ClearOfaSlowdown { node } => {
                let lane = self.part.shard_of(node) as usize;
                lanes[lane].set_ofa_slowdown(node, 1.0);
                lanes[0].app.trace.record(
                    now,
                    TraceEvent::FaultCleared {
                        kind: 7,
                        target: node.0,
                    },
                );
            }
            Event::ClearControllerStall => {
                if now >= lanes[0].chaos.stall_until {
                    lanes[0].app.trace.record(
                        now,
                        TraceEvent::FaultCleared {
                            kind: 8,
                            target: u32::MAX,
                        },
                    );
                }
            }
            Event::ClusterHandoffDone | Event::ClearCtrlPartition => {
                // Pure controller-side work: the hub processes it verbatim
                // (released messages leave through the hub's outbox).
                lanes[0].process_event(now, ev);
            }
            Event::RecoverReplica { replica } => {
                // Mirrors the sequential arm, but the handoff completion is
                // a central follow-up (the timeline, not a lane wheel).
                if let Some(at) = lanes[0]
                    .app
                    .cluster
                    .as_mut()
                    .and_then(|c| c.recover(now, replica))
                {
                    self.timeline.push(at, Event::ClusterHandoffDone);
                }
                lanes[0]
                    .app
                    .trace
                    .record(now, TraceEvent::ReplicaRecovered { replica });
                lanes[0].app.trace.record(
                    now,
                    TraceEvent::FaultCleared {
                        kind: 9,
                        target: replica,
                    },
                );
            }
            _ => unreachable!("not a central event"),
        }
    }

    /// Sharded mirror of the sequential `on_inject_fault`.
    fn inject_fault(&mut self, lanes: &mut [Simulation], now: SimTime, idx: u32) {
        let kind = self.fault_plan[idx as usize].kind;
        let kind_idx = kind.index();
        let trace_injected = |lanes: &mut [Simulation], target: u32| {
            lanes[0].chaos.injected[kind_idx] += 1;
            lanes[0].app.trace.record(
                now,
                TraceEvent::FaultInjected {
                    kind: kind_idx as u32,
                    target,
                },
            );
        };
        match kind {
            FaultKind::VSwitchCrash {
                target,
                restart_after,
            } => {
                let candidates: Vec<NodeId> = lanes[0]
                    .app
                    .overlay
                    .live_mesh()
                    .into_iter()
                    .filter(|&n| {
                        lanes[self.part.shard_of(n) as usize]
                            .vswitches
                            .get(n)
                            .map(|v| !v.failed)
                            .unwrap_or(false)
                    })
                    .collect();
                if candidates.is_empty() {
                    lanes[0].chaos.skipped += 1;
                    return;
                }
                let node = candidates[target as usize % candidates.len()];
                let lane = &mut lanes[self.part.shard_of(node) as usize];
                if let Some(vs) = lane.vswitches.get_mut(node) {
                    vs.failed = true;
                }
                trace_injected(lanes, node.0);
                if let Some(delay) = restart_after {
                    self.timeline
                        .push(now + delay, Event::RecoverVSwitch { node });
                }
            }
            FaultKind::LinkDown { target, duration } => {
                let n = lanes[0].topo.link_count();
                if n == 0 {
                    lanes[0].chaos.skipped += 1;
                    return;
                }
                let link = scotch_net::LinkId(target % n as u32);
                for lane in lanes.iter_mut() {
                    lane.topo.set_link_up(link, false);
                }
                trace_injected(lanes, link.0);
                self.timeline.push(
                    now + duration,
                    Event::SetLinkUp {
                        link,
                        up: true,
                        kind: kind_idx as u8,
                        finale: true,
                    },
                );
            }
            FaultKind::LinkFlap {
                target,
                cycles,
                period,
            } => {
                let n = lanes[0].topo.link_count();
                if n == 0 || cycles == 0 {
                    lanes[0].chaos.skipped += 1;
                    return;
                }
                let link = scotch_net::LinkId(target % n as u32);
                for lane in lanes.iter_mut() {
                    lane.topo.set_link_up(link, false);
                }
                trace_injected(lanes, link.0);
                for k in 0..cycles {
                    let last = k + 1 == cycles;
                    self.timeline.push(
                        now + period.mul(u64::from(2 * k + 1)),
                        Event::SetLinkUp {
                            link,
                            up: true,
                            kind: kind_idx as u8,
                            finale: last,
                        },
                    );
                    if !last {
                        self.timeline.push(
                            now + period.mul(u64::from(2 * k + 2)),
                            Event::SetLinkUp {
                                link,
                                up: false,
                                kind: kind_idx as u8,
                                finale: false,
                            },
                        );
                    }
                }
            }
            FaultKind::LinkDegrade {
                target,
                extra_latency,
                duration,
            } => {
                let n = lanes[0].topo.link_count();
                if n == 0 {
                    lanes[0].chaos.skipped += 1;
                    return;
                }
                let link = scotch_net::LinkId(target % n as u32);
                for lane in lanes.iter_mut() {
                    lane.topo.set_link_extra_delay(link, extra_latency);
                }
                trace_injected(lanes, link.0);
                self.timeline
                    .push(now + duration, Event::ClearLinkDegrade { link });
            }
            FaultKind::CtrlLoss { p, duration } => {
                for lane in lanes.iter_mut() {
                    lane.chaos.loss_p = p;
                    lane.chaos.loss_until = now + duration;
                }
                trace_injected(lanes, u32::MAX);
            }
            FaultKind::CtrlDup { p, duration } => {
                for lane in lanes.iter_mut() {
                    lane.chaos.dup_p = p;
                    lane.chaos.dup_until = now + duration;
                }
                trace_injected(lanes, u32::MAX);
            }
            FaultKind::CtrlReorder {
                p,
                jitter,
                duration,
            } => {
                for lane in lanes.iter_mut() {
                    lane.chaos.reorder_p = p;
                    lane.chaos.reorder_jitter = jitter;
                    lane.chaos.reorder_until = now + duration;
                }
                trace_injected(lanes, u32::MAX);
            }
            FaultKind::OfaSlowdown {
                target,
                factor,
                duration,
            } => {
                // Global candidate order: physical switches then vSwitches,
                // ascending node id — identical to the sequential scan over
                // the unpartitioned device maps.
                let mut candidates: Vec<NodeId> = Vec::new();
                for i in 0..self.node_count as u32 {
                    let n = NodeId(i);
                    if lanes[self.part.shard_of(n) as usize]
                        .physical
                        .get(n)
                        .is_some()
                    {
                        candidates.push(n);
                    }
                }
                for i in 0..self.node_count as u32 {
                    let n = NodeId(i);
                    if lanes[self.part.shard_of(n) as usize]
                        .vswitches
                        .get(n)
                        .is_some()
                    {
                        candidates.push(n);
                    }
                }
                if candidates.is_empty() {
                    lanes[0].chaos.skipped += 1;
                    return;
                }
                let node = candidates[target as usize % candidates.len()];
                let factor = if factor.is_finite() {
                    factor.max(1e-3)
                } else {
                    1.0
                };
                lanes[self.part.shard_of(node) as usize].set_ofa_slowdown(node, factor);
                trace_injected(lanes, node.0);
                self.timeline
                    .push(now + duration, Event::ClearOfaSlowdown { node });
            }
            FaultKind::ControllerStall { duration } => {
                let stall_until = lanes[0].chaos.stall_until.max(now + duration);
                for lane in lanes.iter_mut() {
                    lane.chaos.stall_until = stall_until;
                }
                trace_injected(lanes, u32::MAX);
                self.timeline.push(stall_until, Event::ClearControllerStall);
            }
            FaultKind::ReplicaCrash {
                target,
                restart_after,
            } => {
                let Some(replica) = lanes[0]
                    .app
                    .cluster
                    .as_ref()
                    .and_then(|c| c.resolve_target(target))
                else {
                    lanes[0].chaos.skipped += 1;
                    return;
                };
                trace_injected(lanes, replica);
                let switches = lanes[0].topo.switch_ids();
                let (moved, deadline) = lanes[0]
                    .app
                    .cluster
                    .as_mut()
                    .expect("resolve_target implies a cluster")
                    .crash(now, replica, &switches);
                lanes[0].app.trace.record(
                    now,
                    TraceEvent::ReplicaCrashed {
                        replica,
                        switches: moved,
                    },
                );
                if let Some(at) = deadline {
                    self.timeline.push(at, Event::ClusterHandoffDone);
                }
                if let Some(delay) = restart_after {
                    self.timeline
                        .push(now + delay, Event::RecoverReplica { replica });
                }
            }
            FaultKind::CtrlPartition { duration } => {
                let Some(cluster) = lanes[0].app.cluster.as_mut() else {
                    lanes[0].chaos.skipped += 1;
                    return;
                };
                let heal = cluster.partition(now, duration);
                trace_injected(lanes, u32::MAX);
                lanes[0].app.trace.record(
                    now,
                    TraceEvent::ClusterPartitioned {
                        duration_ns: duration.as_nanos(),
                    },
                );
                self.timeline.push(heal, Event::ClearCtrlPartition);
            }
        }
    }
}

/// Last journaled flowdb state for `key` at or before `now`.
fn resolve_path(
    journal: &FxHashMap<FlowKey, Vec<(SimTime, Option<FlowPath>)>>,
    key: &FlowKey,
    now: SimTime,
) -> Option<FlowPath> {
    let entries = journal.get(key)?;
    entries
        .iter()
        .rev()
        .find(|(t, _)| *t <= now)
        .and_then(|(_, p)| *p)
}

/// Sharded run entry point (see [`Simulation::run_sharded`]).
fn run(mut sim: Simulation, until: SimTime, shards: usize, threads: usize) -> Report {
    // Clamps: scenarios that cannot shard deterministically run sequentially.
    if shards <= 1
        || sim.regions.is_empty()
        || sim.topo.has_fault_injection()
        || sim.fault_plan.iter().any(|e| e.at == SimTime::ZERO)
    {
        return sim.run(until);
    }
    let part = Partition::by_regions(sim.topo.node_count(), &sim.regions, shards);
    if part.is_trivial() {
        return sim.run(until);
    }
    let cut = part
        .validate_lookahead(&sim.topo)
        .unwrap_or_else(|e| panic!("sharded run rejected: {e}"));
    let mut lookahead = cut;
    for (_, s) in sim.physical.iter() {
        let l = s.control_latency();
        lookahead = Some(lookahead.map_or(l, |m| m.min(l)));
    }
    for (_, v) in sim.vswitches.iter() {
        let l = v.control_latency();
        lookahead = Some(lookahead.map_or(l, |m| m.min(l)));
    }
    let Some(lookahead) = lookahead else {
        return sim.run(until);
    };
    if lookahead == SimDuration::ZERO {
        return sim.run(until);
    }

    // Snapshot every node's control-channel latency while the full device
    // set is still in one place: after partitioning, the controller lane
    // must schedule command deliveries to switches it does not own.
    let ctrl_latency: Arc<Vec<SimDuration>> = Arc::new(
        (0..sim.topo.node_count() as u32)
            .map(|i| sim.control_latency(NodeId(i)))
            .collect(),
    );

    // Drain the pre-run queue: bootstrap control deliveries go straight to
    // their destination lanes (before `start()`, preserving the t=0 tie
    // order); scripted faults become the driver's central timeline.
    let mut timeline = Timeline::default();
    let mut bootstraps: Vec<(SimTime, NodeId, Event)> = Vec::new();
    while let Some((at, ev)) = sim.events.pop() {
        match ev {
            Event::CtrlToSwitch { to, msg } => {
                bootstraps.push((at, to, Event::CtrlToSwitch { to, msg }));
            }
            Event::FailVSwitch { .. }
            | Event::JoinVSwitch { .. }
            | Event::RecoverVSwitch { .. }
            | Event::InjectFault { .. } => timeline.push(at, ev),
            _ => unreachable!("unexpected pre-run event kind"),
        }
    }

    // Dismantle the simulation into per-shard lanes.
    let m = part.shards() as usize;
    let part = Arc::new(part);
    let node_count = sim.topo.node_count();
    let topo = sim.topo;
    let mut app = sim.app;
    let host_ip = sim.host_ip;
    let ip_host = sim.ip_host;
    let physical = sim.physical;
    let vswitches = sim.vswitches;
    let middleboxes = sim.middleboxes;
    let sources = sim.sources;
    let tracked = sim.tracked;
    let captures = sim.captures;
    let chaos = sim.chaos;
    let chaos_seed = sim.chaos_seed;
    let fault_plan = sim.fault_plan;
    let sweep_interval = sim.sweep_interval;
    let registry = sim.registry;
    let profiler = sim.profiler;
    let shard_profiling = sim.shard_profiling;
    let latency = sim.latency;

    let mut clones = Vec::with_capacity(m - 1);
    for _ in 1..m {
        let mut a = app.clone();
        // Trace and flow journal are hub-only: the trace recorder is not
        // canonical output and device-side records from remote lanes are
        // deliberately dropped; the journal exists to feed the driver.
        // The journey recorder stays ENABLED on every lane — journey marks
        // are canonical output, absorbed into the hub and re-sorted before
        // the report is built.
        a.trace = TraceRecorder::disabled();
        a.flow_journal = None;
        clones.push(a);
    }
    app.flow_journal = Some(Vec::new());

    let mut lanes: Vec<Simulation> = Vec::with_capacity(m);
    for (s, a) in std::iter::once(app).chain(clones).enumerate() {
        let mut lane = Simulation::new(topo.clone(), a);
        lane.app.journeys.set_shard(s as u16);
        lane.host_ip = host_ip.clone();
        lane.ip_host = ip_host.clone();
        lane.sweep_interval = sweep_interval;
        lane.chaos_seed = chaos_seed;
        lane.shard = Some(ShardCtx {
            shard: s as u32,
            part: part.clone(),
            outbox: Vec::new(),
            deliveries: Vec::new(),
            sweep_pops: 0,
            pops: 0,
            ctrl_latency: ctrl_latency.clone(),
            epoch_busy_ns: 0.0,
            profile: shard_profiling,
        });
        lanes.push(lane);
    }
    lanes[0].chaos = chaos;
    lanes[0].fault_plan = fault_plan.clone();
    lanes[0].registry = registry;
    lanes[0].profiler = profiler;

    for (n, d) in physical.into_iter() {
        lanes[part.shard_of(n) as usize].physical.insert(n, d);
    }
    for (n, d) in vswitches.into_iter() {
        lanes[part.shard_of(n) as usize].vswitches.insert(n, d);
    }
    for (n, d) in middleboxes.into_iter() {
        lanes[part.shard_of(n) as usize].middleboxes.insert(n, d);
    }
    for (n, c) in captures.into_iter() {
        lanes[part.shard_of(n) as usize].captures.insert(n, c);
    }
    for (gid, (host, src)) in sources.into_iter().enumerate() {
        let lane = &mut lanes[part.shard_of(host) as usize];
        lane.source_ids.push(gid as u32);
        lane.source_seq.push(0);
        lane.sources.push((host, src));
    }
    for (at, to, ev) in bootstraps {
        lanes[part.shard_of(to) as usize].events.push(at, ev);
    }
    for lane in &mut lanes {
        lane.start();
    }

    let mut driver = Driver {
        part: part.clone(),
        lookahead,
        until,
        node_count,
        fault_plan,
        timeline,
        host_ip,
        latency,
        tracked,
        misrouted: 0,
        ledger: FxHashMap::default(),
        journal: FxHashMap::default(),
        overlay_version: lanes[0].app.overlay.version,
        watermark: SimTime::ZERO,
        centrals: 0,
        epochs: 0,
        epoch_width: Histogram::new(),
        xmsgs: vec![0u64; m * m],
        last_pops: 0,
        profiler: shard_profiling.then(|| EpochProfiler::new(m)),
    };

    let threads = if threads == 0 { m } else { threads.min(m) };
    let (mut lanes, stats) = scotch_runner::lockstep_timed(
        lanes,
        threads,
        |lanes| driver.barrier(lanes),
        |_, lane, bound| {
            let t0 = lane
                .shard
                .as_ref()
                .is_some_and(|c| c.profile)
                .then(std::time::Instant::now);
            let n = lane.run_epoch(bound);
            if let Some(ctx) = lane.shard.as_mut() {
                ctx.pops += n;
                if let Some(t0) = t0 {
                    ctx.epoch_busy_ns += t0.elapsed().as_nanos() as f64;
                }
            }
        },
    );
    if let Some(p) = driver.profiler.as_mut() {
        p.set_walls(
            stats.barrier_wall.as_nanos() as f64,
            (stats.barrier_wall + stats.epoch_wall).as_nanos() as f64,
        );
    }

    // End of run: reconcile chaos in-flight tallies, then fold every lane
    // back into the hub and emit the canonical report from there.
    if !driver.fault_plan.is_empty() {
        for lane in lanes.iter_mut() {
            lane.tally_remaining();
        }
    }
    let mut lane_pops = 0u64;
    let mut dup_sweeps = 0u64;
    let mut lane_events = vec![0u64; m];
    for (s, lane) in lanes.iter().enumerate() {
        let ctx = lane.shard.as_ref().expect("lane has shard ctx");
        lane_pops += ctx.pops;
        lane_events[s] = ctx.pops;
        if s > 0 {
            dup_sweeps += ctx.sweep_pops;
        }
    }
    let events_processed = lane_pops - dup_sweeps + driver.centrals;

    let rest = lanes.split_off(1);
    let mut hub = lanes.pop().expect("hub lane");
    let mut all_flows: Vec<FlowRecord> = std::mem::take(&mut hub.flows);
    for (i, mut lane) in rest.into_iter().enumerate() {
        let s = (i + 1) as u32;
        hub.app.journeys.absorb(&mut lane.app.journeys);
        hub.chaos.absorb_counters(&lane.chaos);
        hub.topo
            .adopt_link_states(&lane.topo, |n| driver.part.shard_of(n) == s);
        hub.drops.ofa_overload += lane.drops.ofa_overload;
        hub.drops.dataplane += lane.drops.dataplane;
        hub.drops.policy += lane.drops.policy;
        hub.drops.no_route += lane.drops.no_route;
        hub.drops.link_queue += lane.drops.link_queue;
        hub.drops.link_faults += lane.drops.link_faults;
        hub.controller_dropped += lane.controller_dropped;
        for k in 0..6 {
            hub.ctrl_tx[k] += lane.ctrl_tx[k];
            hub.ctrl_rx[k] += lane.ctrl_rx[k];
        }
        all_flows.append(&mut lane.flows);
        for (n, d) in lane.physical.into_iter() {
            hub.physical.insert(n, d);
        }
        for (n, d) in lane.vswitches.into_iter() {
            hub.vswitches.insert(n, d);
        }
        for (n, d) in lane.middleboxes.into_iter() {
            hub.middleboxes.insert(n, d);
        }
        for (n, c) in lane.captures.into_iter() {
            hub.captures.insert(n, c);
        }
    }

    sort_flows_into_creation_order(&mut all_flows);
    for r in &mut all_flows {
        if let Some(stub) = driver.ledger.remove(&r.spec.id) {
            r.delivered = stub.delivered;
            r.delivered_bytes = stub.delivered_bytes;
            r.first_delivered = stub.first;
            r.last_delivered = stub.last;
            r.served_by = stub.served_by;
        }
    }
    hub.flows = all_flows;
    hub.latency = driver.latency;
    hub.tracked = driver.tracked;
    hub.misrouted += driver.misrouted;
    hub.shard = None;

    // Execution-plane telemetry: sim-time shard accounting, deterministic
    // per `(scenario, seed, shard count)`. Folded only here, so sequential
    // runs never export `shard.*` keys (mirroring the `chaos.*` gating) and
    // the canonical report — which excludes the registry — is untouched.
    {
        let reg = &mut hub.registry;
        reg.add("shard.lanes", m as u64);
        reg.add("shard.epochs", driver.epochs);
        reg.add("shard.centrals", driver.centrals);
        // Hub-shard control-work share, in parts per million of all lane
        // pops (the hub runs the controller, so this is the serial-bottleneck
        // indicator of a scaling report).
        if let Some(ppm) = (lane_events[0] * 1_000_000).checked_div(lane_pops) {
            reg.add("shard.hub_share_ppm", ppm);
        }
        for (s, &ev) in lane_events.iter().enumerate() {
            reg.add(&format!("shard.lane.{s}.events"), ev);
        }
        let mut handoffs = 0u64;
        for src in 0..m {
            for dst in 0..m {
                let n = driver.xmsgs[src * m + dst];
                if src != dst && n > 0 {
                    handoffs += n;
                    reg.add(&format!("shard.xmsgs.{src}.{dst}"), n);
                }
            }
        }
        reg.add("shard.handoffs", handoffs);
        let h = reg.histogram("shard.epoch_width_ns");
        *reg.histogram_mut(h) = driver.epoch_width;
        // Cluster placement plan: replica `r` is assigned lane `r % lanes`
        // (round-robin off the hub), and each lane's share of controller
        // decisions under that plan. Today every replica still executes on
        // the hub; these keys quantify how much control work the placement
        // would move off lane 0 — the sizing input for hub offload.
        if let Some(cluster) = &hub.app.cluster {
            let mut lane_decisions = vec![0u64; m];
            for (r, &n) in cluster.decisions().iter().enumerate() {
                let lane = r % m;
                reg.add(&format!("ctrl.cluster.replica_lane.{r}"), lane as u64);
                lane_decisions[lane] += n;
            }
            for (lane, &n) in lane_decisions.iter().enumerate() {
                reg.add(&format!("ctrl.cluster.lane_decisions.{lane}"), n);
            }
        }
    }
    hub.epoch_profiler = driver.profiler;
    hub.into_report(until, events_processed)
}

/// Reorder per-lane flow lists into the sequential creation order.
///
/// A flow `(source s, ordinal j)` is created when the `SourceNext` event
/// scheduled at `fire(s, j)` pops, where `fire(s, j)` is the previous
/// flow's `started_at` (`t=0` for `j = 0`: the seeds planted by `start()`).
/// Two flows order by those pop times; a tie recurses into the *parents'*
/// creation order (the timing wheel breaks ties by insertion order, and the
/// tied `SourceNext` events were inserted while their parent flows were
/// being created). At the ground, seeds were inserted in global source
/// order, before any mid-run insertion.
fn sort_flows_into_creation_order(flows: &mut [FlowRecord]) {
    let mut history: FxHashMap<u32, Vec<SimTime>> = FxHashMap::default();
    for r in flows.iter() {
        let h = history.entry(r.source).or_default();
        let idx = r.seq as usize;
        if h.len() <= idx {
            h.resize(idx + 1, SimTime::ZERO);
        }
        h[idx] = r.started_at;
    }
    let fire = |source: u32, seq: u32| -> SimTime {
        if seq == 0 {
            SimTime::ZERO
        } else {
            history[&source][(seq - 1) as usize]
        }
    };
    flows.sort_by(|a, b| {
        if a.source == b.source {
            return a.seq.cmp(&b.seq);
        }
        let (mut ja, mut jb) = (a.seq, b.seq);
        loop {
            match fire(a.source, ja).cmp(&fire(b.source, jb)) {
                Ordering::Equal => {}
                o => return o,
            }
            match (ja, jb) {
                (0, 0) => return a.source.cmp(&b.source),
                (0, _) => return Ordering::Less,
                (_, 0) => return Ordering::Greater,
                _ => {
                    ja -= 1;
                    jb -= 1;
                }
            }
        }
    });
}
