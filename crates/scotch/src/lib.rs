#![warn(missing_docs)]

//! # scotch
//!
//! A full reproduction of **"Scotch: Elastically Scaling up SDN
//! Control-Plane using vSwitch based Overlay"** (Wang, Guo, Hao, Lakshman,
//! Chen — CoNEXT 2014) as a deterministic discrete-event simulation.
//!
//! The paper's problem: the OpenFlow Agent (OFA) on hardware switches
//! saturates at a few hundred Packet-In messages per second, so a reactive
//! SDN network collapses under new-flow surges (flash crowds, spoofed-source
//! DDoS) even while its data plane idles. Scotch's answer: tunnel new flows
//! *in the data plane* to a mesh of Open vSwitches whose software control
//! agents are 1–2 orders of magnitude faster, let those emit the Packet-Ins,
//! forward small flows entirely over the vSwitch overlay, and migrate
//! elephants back to physical paths.
//!
//! ## Crate layout
//!
//! * [`config`] — all tunables ([`config::ScotchConfig`]), paper-calibrated
//!   defaults.
//! * [`overlay`] — the overlay fabric: load-balancing, mesh, and delivery
//!   tunnels ([`overlay::OverlayManager`], §4.1, §5.6).
//! * [`queues`] — the controller's per-switch rule scheduler: admitted >
//!   migration > ingress-port round-robin, served at the safe budget `R`
//!   ([`queues::RuleScheduler`], §5.2–5.3, Fig. 7).
//! * [`migration`] — elephant detection from vSwitch flow stats
//!   ([`migration::ElephantDetector`], §5.3).
//! * [`app`] — the Scotch controller application ([`app::ScotchApp`]):
//!   activation/withdrawal, overlay routing, policy-consistent middlebox
//!   traversal (§5.4), vSwitch fail-over (§5.6).
//! * [`scenario`] — topology builders for the paper's testbed shapes.
//! * [`sim`] — the composition root: [`sim::Simulation`] wires topology,
//!   devices, controller, and workloads into one event loop and produces a
//!   [`report::Report`].
//!
//! ## Quickstart
//!
//! ```
//! use scotch::scenario::Scenario;
//! use scotch_sim::SimTime;
//!
//! // The paper's headline experiment: a DDoS flood against one Pica8
//! // switch, with and without the Scotch overlay.
//! let report = Scenario::overlay_datacenter(4)     // 4 mesh vSwitches
//!     .with_attack(2_000.0)                        // 2000 spoofed flows/s
//!     .with_clients(100.0)                         // the paper's client rate
//!     .run(SimTime::from_secs(10), 42);
//! // With Scotch, legitimate flows survive the flood (measured after the
//! // one-second activation transient).
//! let steady = report.client_failure_fraction_between(
//!     SimTime::from_secs(1),
//!     SimTime::from_secs(9),
//! );
//! assert!(steady < 0.05, "steady-state failure {steady}");
//! ```

pub mod app;
pub mod chaos;
pub mod config;
pub mod migration;
pub mod overlay;
pub mod pcap;
pub mod queues;
pub mod report;
pub mod scenario;
mod shard;
pub mod sim;
pub mod slo;
pub mod telemetry;

pub use app::ScotchApp;
pub use chaos::{ChaosConfig, ChaosOutcome, Violation};
pub use config::{ScotchConfig, TelemetryConfig};
pub use overlay::OverlayManager;
pub use report::Report;
pub use scenario::Scenario;
pub use sim::Simulation;
pub use slo::{SloOutcome, SloTable};
