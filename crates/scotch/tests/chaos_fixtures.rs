//! Replay every promoted chaos fixture (`scotch-cli chaos --promote`)
//! committed under `tests/fixtures/`. A fixture is a minimal failing plan
//! plus a comment header recording how to reproduce it; the regression
//! contract is that the replay still produces exactly the recorded
//! invariant violations, bit-identically.

use std::collections::BTreeSet;

use scotch::chaos;
use scotch::scenario::Scenario;
use scotch::{ChaosConfig, ScotchConfig};
use scotch_sim::fault::FaultPlan;
use scotch_sim::{SimDuration, SimTime};

/// A fixture's parsed comment header.
#[derive(Debug)]
struct Header {
    seed: u64,
    duration_s: f64,
    scenario: String,
    controllers: u32,
    sync_latency_us: Option<u64>,
    failover_bound_s: Option<f64>,
    max_undeliverable: u64,
    violations: BTreeSet<String>,
}

fn parse_header(text: &str) -> Header {
    let mut h = Header {
        seed: 1,
        duration_s: 10.0,
        scenario: "datacenter".into(),
        controllers: 1,
        sync_latency_us: None,
        failover_bound_s: None,
        max_undeliverable: 0,
        violations: BTreeSet::new(),
    };
    for line in text.lines().take_while(|l| l.starts_with('#')) {
        let line = line.trim_start_matches('#').trim();
        if let Some(rest) = line.strip_prefix("violations:") {
            h.violations = rest.split_whitespace().map(String::from).collect();
        } else if let Some((k, v)) = line.split_once('=') {
            match k {
                "seed" => h.seed = v.parse().unwrap(),
                "duration_s" => h.duration_s = v.parse().unwrap(),
                "scenario" => h.scenario = v.into(),
                "controllers" => h.controllers = v.parse().unwrap(),
                "sync_latency_us" => h.sync_latency_us = Some(v.parse().unwrap()),
                "failover_bound_s" => h.failover_bound_s = Some(v.parse().unwrap()),
                "max_undeliverable" => h.max_undeliverable = v.parse().unwrap(),
                _ => {}
            }
        }
    }
    h
}

/// Rebuild the scenario a fixture was promoted from. Mirrors the CLI's
/// `build_scenario` for the shapes `--promote` records.
fn build(h: &Header) -> Scenario {
    let mut s = match h.scenario.as_str() {
        "single" => Scenario::single_switch(scotch_switch::SwitchProfile::pica8_pronto_3780()),
        "multirack" => Scenario::multirack(3, 1),
        _ => Scenario::overlay_datacenter(4).with_servers(2),
    };
    s = s.with_clients(100.0);
    if h.controllers > 1 {
        s = s.with_controllers(h.controllers);
    }
    if let Some(us) = h.sync_latency_us {
        s = s.with_sync_latency(SimDuration::from_micros(us));
    }
    s
}

fn fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn promoted_fixtures_still_reproduce_their_violations() {
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(fixture_dir())
        .expect("tests/fixtures/ exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "plan"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        let h = parse_header(&text);
        assert!(
            !h.violations.is_empty(),
            "{}: fixture header records no violations",
            path.display()
        );
        let plan =
            FaultPlan::parse(&text).unwrap_or_else(|e| panic!("{}: bad plan: {e}", path.display()));
        let mut cfg = ChaosConfig::for_scotch(&ScotchConfig::default());
        if let Some(secs) = h.failover_bound_s {
            cfg.failover_bound = SimDuration::from_secs_f64(secs);
        }
        cfg.max_undeliverable = h.max_undeliverable;
        let horizon = SimTime::from_secs_f64(h.duration_s);
        let run = || chaos::run_plan(&|| build(&h), h.seed, horizon, &plan, &cfg);
        let outcome = run();
        let got: BTreeSet<String> = outcome
            .violations
            .iter()
            .map(|v| v.invariant.to_string())
            .collect();
        assert_eq!(
            got,
            h.violations,
            "{}: replay produced different violations:\n{}",
            path.display(),
            chaos::render_violations(&outcome.violations)
        );
        // The replay itself must be deterministic.
        let again = run();
        assert_eq!(
            outcome.report.canonical_json(),
            again.report.canonical_json(),
            "{}: fixture replay is not byte-identical",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 1, "no fixtures found under tests/fixtures/");
}
