//! Cross-crate property-based tests: invariants of the full simulation and
//! of the composition of its parts.

use proptest::prelude::*;
use scotch::scenario::Scenario;
use scotch_sim::SimTime;
use scotch_switch::SwitchProfile;

/// Short, cheap simulation runs for property testing.
fn short_run(attack: f64, clients: f64, n_mesh: usize, seed: u64) -> scotch::Report {
    Scenario::overlay_datacenter(n_mesh)
        .with_clients(clients)
        .with_attack(attack)
        .run(SimTime::from_secs(3), seed)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case is a full simulation
        .. ProptestConfig::default()
    })]

    /// Conservation: no flow delivers more packets than were emitted, and
    /// emissions never exceed the intended flow size.
    #[test]
    fn prop_packet_conservation(
        attack in 200.0f64..3000.0,
        clients in 20.0f64..150.0,
        seed in 0u64..1000,
    ) {
        let report = short_run(attack, clients, 3, seed);
        for f in &report.flows {
            prop_assert!(f.emitted <= f.intended, "{} emitted>intended", f.key);
            prop_assert!(
                f.delivered <= f.emitted,
                "{} delivered {} > emitted {}",
                f.key, f.delivered, f.emitted
            );
        }
    }

    /// Causality: deliveries never precede flow start.
    #[test]
    fn prop_delivery_causality(seed in 0u64..1000) {
        let report = short_run(1000.0, 50.0, 3, seed);
        for f in &report.flows {
            if let Some(first) = f.first_delivered {
                prop_assert!(first >= f.started_at);
            }
            if let (Some(first), Some(last)) = (f.first_delivered, f.last_delivered) {
                prop_assert!(last >= first);
            }
        }
    }

    /// Accounting: controller admission counters cover every flow outcome
    /// (each flow is admitted at most once; dropped + admitted ≤ flows).
    #[test]
    fn prop_admission_accounting(seed in 0u64..1000) {
        let report = short_run(1500.0, 60.0, 4, seed);
        let admitted = report.app.physical_admitted + report.app.overlay_admitted;
        let handled = admitted + report.app.dropped + report.app.unroutable
            + report.app.overlay_undeliverable;
        // Flows can also be lost before the controller sees them (OFA
        // drops) or still be pending at the end, so `handled` is a lower
        // bound on flow count, never more than flows + duplicates.
        prop_assert!(
            handled <= report.flows.len() as u64 + report.app.duplicate_packet_ins,
            "handled {handled} flows {}",
            report.flows.len()
        );
    }

    /// Determinism across the whole parameter space.
    #[test]
    fn prop_determinism(
        attack in 200.0f64..2500.0,
        n_mesh in 1usize..6,
        seed in 0u64..50,
    ) {
        let a = short_run(attack, 40.0, n_mesh, seed);
        let b = short_run(attack, 40.0, n_mesh, seed);
        prop_assert_eq!(a.events_processed, b.events_processed);
        prop_assert_eq!(a.app, b.app);
        prop_assert_eq!(a.flows.len(), b.flows.len());
    }

    /// The data plane is never the bottleneck in control-plane attacks
    /// (the paper's core observation): hardware switch interaction drops
    /// stay zero because the controller keeps inserts below the knee.
    #[test]
    fn prop_no_dataplane_collapse_under_scotch(
        attack in 500.0f64..3000.0,
        seed in 0u64..200,
    ) {
        let report = short_run(attack, 50.0, 4, seed);
        for s in &report.switches {
            prop_assert_eq!(
                s.dataplane.dropped_interaction, 0,
                "budgeted inserts must not trip the Fig. 10 knee"
            );
        }
    }

    /// Monotone overlay benefit: with enough vSwitches, the steady-state
    /// client failure under attack is always small.
    #[test]
    fn prop_overlay_protects(seed in 0u64..100) {
        let report = Scenario::overlay_datacenter(4)
            .with_clients(50.0)
            .with_attack(2000.0)
            .run(SimTime::from_secs(5), seed);
        let steady = report.client_failure_fraction_between(
            SimTime::from_secs(1),
            SimTime::from_secs(4),
        );
        prop_assert!(steady < 0.05, "steady failure {steady}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Fig. 3 monotonicity: on the baseline single switch, client failure
    /// is (weakly) increasing in attack rate.
    #[test]
    fn prop_baseline_failure_monotone_in_attack(seed in 0u64..100) {
        let run = |attack: f64| {
            Scenario::single_switch(SwitchProfile::pica8_pronto_3780())
                .with_clients(100.0)
                .with_attack(attack)
                .run(SimTime::from_secs(4), seed)
                .client_failure_fraction()
        };
        let low = run(150.0);
        let high = run(3000.0);
        // Allow a little sampling noise at the low end.
        prop_assert!(high + 0.05 >= low, "low={low} high={high}");
        prop_assert!(high > 0.5, "high attack must hurt: {high}");
    }

    /// Device ordering from Fig. 3 holds for any seed: OVS < HP < Pica8
    /// failure under identical load.
    #[test]
    fn prop_device_ordering(seed in 0u64..100) {
        let run = |profile: SwitchProfile| {
            Scenario::single_switch(profile)
                .with_clients(100.0)
                .with_attack(1500.0)
                .run(SimTime::from_secs(4), seed)
                .client_failure_fraction()
        };
        let pica = run(SwitchProfile::pica8_pronto_3780());
        let hp = run(SwitchProfile::hp_procurve_6600());
        let ovs = run(SwitchProfile::open_vswitch());
        prop_assert!(ovs <= hp + 0.02, "ovs={ovs} hp={hp}");
        prop_assert!(hp < pica, "hp={hp} pica={pica}");
    }
}
