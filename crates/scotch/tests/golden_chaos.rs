//! Golden chaos run: the committed pinned plan must replay bit-identically,
//! exercise every fault kind, and pass every invariant — plus regression
//! coverage for the invariant checker itself and for standby exhaustion.

use scotch::chaos;
use scotch::scenario::Scenario;
use scotch::{ChaosConfig, Report, ScotchConfig};
use scotch_sim::fault::{FaultPlan, FAULT_KIND_COUNT, FAULT_KIND_NAMES};
use scotch_sim::trace::TraceEvent;
use scotch_sim::{SimDuration, SimTime};

const PINNED_PLAN: &str = include_str!("golden/chaos_pinned.plan");
const SEED: u64 = 42;

fn golden_scenario() -> Scenario {
    // Mirrors `scotch-cli chaos --duration 10 --seed 42 --controllers 3
    // --sync-latency-us 500 --plan …` on the default datacenter scenario.
    // The cluster is what gives the replica_crash / ctrl_partition entries
    // of the pinned plan a live target.
    Scenario::overlay_datacenter(4)
        .with_servers(2)
        .with_clients(100.0)
        .with_controllers(3)
        .with_sync_latency(SimDuration::from_micros(500))
}

fn run_pinned() -> Report {
    let plan = FaultPlan::parse(PINNED_PLAN).expect("pinned plan parses");
    golden_scenario()
        .with_fault_plan(plan)
        .run(SimTime::from_secs(10), SEED)
}

#[test]
fn pinned_chaos_plan_replays_bit_identically() {
    let a = run_pinned();
    let b = run_pinned();
    assert_eq!(
        a.canonical_json(),
        b.canonical_json(),
        "chaos replay must be byte-identical"
    );
    assert_eq!(
        a.trace_jsonl(),
        b.trace_jsonl(),
        "chaos trace must be byte-identical"
    );
    assert_eq!(a.metrics, b.metrics, "chaos metrics must be identical");
}

#[test]
fn pinned_chaos_plan_exercises_every_fault_kind() {
    let report = run_pinned();
    assert_eq!(FAULT_KIND_NAMES.len(), FAULT_KIND_COUNT);
    for name in FAULT_KIND_NAMES {
        let n = report
            .metrics
            .get(&format!("chaos.injected.{name}"))
            .unwrap_or(0.0);
        assert!(n >= 1.0, "fault kind {name} never injected (got {n})");
    }
    assert_eq!(report.metrics.get("chaos.skipped"), Some(0.0));
}

/// The pinned plan's replica crashes actually migrate mastership: the run
/// records handoffs, conserves pending Packet-Ins across them (the metric
/// form of I5), and every handoff lands within the sync-delay bound (I6).
#[test]
fn pinned_chaos_plan_exercises_the_cluster() {
    let report = run_pinned();
    assert_eq!(report.metrics.get("ctrl.cluster.replicas"), Some(3.0));
    assert!(
        report.metrics.get("ctrl.cluster.handoffs").unwrap_or(0.0) >= 1.0,
        "replica crashes must trigger mastership handoffs"
    );
    assert_eq!(
        report.metrics.get("ctrl.cluster.handoff_exceeded"),
        Some(0.0),
        "I6: every handoff must finish within the sync-delay bound"
    );
    let enq = report
        .metrics
        .get("ctrl.cluster.pending_enq")
        .unwrap_or(0.0);
    let rel = report
        .metrics
        .get("ctrl.cluster.pending_rel")
        .unwrap_or(0.0);
    let held = report.metrics.get("ctrl.cluster.pending").unwrap_or(0.0);
    assert_eq!(enq, rel + held, "I5: parked Packet-Ins must be conserved");
    assert_eq!(report.metrics.get("ctrl.cluster.crashes"), Some(2.0));
    assert_eq!(report.metrics.get("ctrl.cluster.recoveries"), Some(1.0));
    assert_eq!(report.metrics.get("ctrl.cluster.partitions"), Some(1.0));
}

#[test]
fn pinned_chaos_plan_passes_all_invariants() {
    let plan = FaultPlan::parse(PINNED_PLAN).expect("pinned plan parses");
    let report = run_pinned();
    let cfg = ChaosConfig::for_scotch(&ScotchConfig::default());
    let violations = chaos::check(&report, &plan, &cfg);
    assert!(
        violations.is_empty(),
        "golden chaos run violated invariants:\n{}",
        chaos::render_violations(&violations)
    );
}

/// Regression: a deliberately impossible failover bound must be *caught* —
/// the checker itself is under test here, not the simulator.
#[test]
fn zero_failover_bound_is_reported() {
    let plan = FaultPlan::parse(PINNED_PLAN).expect("pinned plan parses");
    let report = run_pinned();
    let cfg = ChaosConfig {
        failover_bound: SimDuration::ZERO,
        ..ChaosConfig::for_scotch(&ScotchConfig::default())
    };
    let violations = chaos::check(&report, &plan, &cfg);
    assert!(
        !violations.is_empty(),
        "failover bound 0 must produce violations"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == "I2-failover-bound"),
        "expected an I2 violation, got:\n{}",
        chaos::render_violations(&violations)
    );
    // The report carries enough trace context to debug from the artifact
    // alone.
    assert!(violations.iter().all(|v| !v.trace_window.is_empty()));
}

/// Regression for the per-flow setup-latency invariant (I7): an impossible
/// bound must be caught, with trace-window context, while the default
/// (unchecked) config stays clean on the same run.
#[test]
fn impossible_setup_bound_is_reported() {
    let plan = FaultPlan::parse(PINNED_PLAN).expect("pinned plan parses");
    let report = run_pinned();
    let cfg = ChaosConfig {
        setup_latency_bound: Some(SimDuration::from_nanos(1)),
        ..ChaosConfig::for_scotch(&ScotchConfig::default())
    };
    let violations = chaos::check(&report, &plan, &cfg);
    assert!(
        violations.iter().any(|v| v.invariant == "I7-setup-latency"),
        "expected I7 violations under a 1ns setup bound, got:\n{}",
        chaos::render_violations(&violations)
    );
    assert!(violations
        .iter()
        .filter(|v| v.invariant == "I7-setup-latency")
        .all(|v| !v.trace_window.is_empty()));
    // A generous bound on the same report is clean.
    let cfg = ChaosConfig {
        setup_latency_bound: Some(SimDuration::from_secs(60)),
        ..ChaosConfig::for_scotch(&ScotchConfig::default())
    };
    assert!(chaos::check(&report, &plan, &cfg)
        .iter()
        .all(|v| v.invariant != "I7-setup-latency"));
}

/// Satellite: crash more vSwitches than there are standbys. The mesh must
/// degrade to dropping — failovers still execute (with no replacement),
/// the run completes, and nothing panics or stalls.
#[test]
fn standby_exhaustion_degrades_to_dropping() {
    let mut plan = FaultPlan::new();
    // Three crashes against a 2-mesh with a single standby: the first
    // promotion drains the pool, the rest must come up empty.
    plan.push(
        SimTime::from_secs(1),
        scotch_sim::fault::FaultKind::VSwitchCrash {
            target: 0,
            restart_after: None,
        },
    );
    plan.push(
        SimTime::from_millis(1500),
        scotch_sim::fault::FaultKind::VSwitchCrash {
            target: 1,
            restart_after: None,
        },
    );
    plan.push(
        SimTime::from_secs(7),
        scotch_sim::fault::FaultKind::VSwitchCrash {
            target: 0,
            restart_after: None,
        },
    );
    let report = Scenario::overlay_datacenter(2)
        .with_backups(1)
        .with_clients(200.0)
        .with_fault_plan(plan)
        .run(SimTime::from_secs(20), 7);

    let failovers: Vec<(u32, u32)> = report
        .trace
        .records()
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::FailoverExecuted { dead, replacement } => Some((dead, replacement)),
            _ => None,
        })
        .collect();
    assert!(
        failovers.len() >= 2,
        "expected at least two failovers, got {failovers:?}"
    );
    assert!(
        failovers.iter().any(|(_, r)| *r == u32::MAX),
        "expected an exhausted-pool failover (replacement=MAX), got {failovers:?}"
    );
    assert!(
        failovers.iter().any(|(_, r)| *r != u32::MAX),
        "expected the lone standby to be promoted first, got {failovers:?}"
    );
    // All three injections found a live target.
    assert_eq!(
        report.metrics.get("chaos.injected.vswitch_crash"),
        Some(3.0)
    );
    // With the whole mesh dead the overlay degrades to dropping rather
    // than wedging: packets for unrouteable flows are counted as drops and
    // late client flows fail, while the run still reaches the horizon.
    let no_route = report.metrics.get("drops.no_route").unwrap_or(0.0);
    assert!(
        no_route > 0.0,
        "expected no-route drops after mesh exhaustion"
    );
    let late_failure =
        report.client_failure_fraction_between(SimTime::from_secs(12), SimTime::from_secs(19));
    assert!(
        late_failure > 0.25,
        "expected degraded late-flow delivery, got failure fraction {late_failure}"
    );
}
