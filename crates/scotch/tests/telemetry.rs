//! Sampled-telemetry equivalence and determinism (DESIGN.md §13).
//!
//! The two contracts this file pins:
//!
//! 1. `sampled { rate: 1.0 }` reproduces exhaustive-mode canonical
//!    reports **byte-for-byte**, sequentially and at every shard count —
//!    so all golden fixtures and the determinism matrix carry over to the
//!    sampled pipeline unchanged.
//! 2. sampled runs at any rate are bit-deterministic per
//!    `(scenario, seed, rate, shard count)`.
//!
//! Plus the accuracy floor: at rate 1/64 the detector still finds the
//! injected elephants on the DDoS scenario (fixed-seed recall bound).

use scotch::scenario::Scenario;
use scotch_sim::{SimDuration, SimTime};

fn canonical(report: scotch::Report) -> String {
    report.canonical_json()
}

/// Overlay DDoS scenario with elephants — stats polling, migration and
/// withdrawal all engage, so the telemetry pipeline is fully exercised.
fn overlay_scenario() -> Scenario {
    Scenario::overlay_datacenter(4)
        .with_clients(50.0)
        .with_attack(2_000.0)
        .with_elephants(3, 1_000.0, 6_000, SimTime::from_secs(2))
}

/// Multi-rack shape for sharded runs (mirrors shard_determinism.rs).
fn parallel_scenario(racks: usize) -> Scenario {
    Scenario::multirack(racks, 1)
        .with_interrack_propagation(SimDuration::from_micros(200))
        .with_rack_clients(150.0)
        .with_attack(400.0)
        .with_clients(80.0)
}

#[test]
fn rate_one_is_byte_identical_to_exhaustive() {
    let until = SimTime::from_secs(8);
    let seed = 20141202;
    let exhaustive = canonical(overlay_scenario().run(until, seed));
    let sampled = canonical(overlay_scenario().with_sampling_rate(1.0).run(until, seed));
    assert_eq!(
        sampled, exhaustive,
        "sampled {{ rate: 1.0 }} diverged from exhaustive mode"
    );
}

#[test]
fn rate_one_matches_exhaustive_across_shard_counts() {
    let until = SimTime::from_millis(400);
    let seed = 20141202;
    let exhaustive = canonical(parallel_scenario(4).run(until, seed));
    for shards in [1usize, 2, 4, 8] {
        let got = canonical(
            parallel_scenario(4)
                .with_sampling_rate(1.0)
                .run_sharded(until, seed, shards, 1),
        );
        assert_eq!(
            got, exhaustive,
            "rate-1.0 sampled run diverged from sequential exhaustive at --shards {shards}"
        );
    }
}

#[test]
fn sampled_runs_are_bit_deterministic() {
    let until = SimTime::from_secs(5);
    let seed = 7;
    let a = canonical(
        overlay_scenario()
            .with_sampling_rate(1.0 / 64.0)
            .run(until, seed),
    );
    let b = canonical(
        overlay_scenario()
            .with_sampling_rate(1.0 / 64.0)
            .run(until, seed),
    );
    assert_eq!(a, b, "same (scenario, seed, rate) must replay identically");
    // A different rate is a different experiment — the sampler streams
    // advance differently, so liveness/migration decisions may shift.
    let c = canonical(
        overlay_scenario()
            .with_sampling_rate(1.0 / 8.0)
            .run(until, seed),
    );
    assert!(!c.is_empty());
}

#[test]
fn sampled_mode_is_shard_count_invariant() {
    let until = SimTime::from_millis(400);
    let seed = 42;
    let scenario = || parallel_scenario(3).with_sampling_rate(1.0 / 64.0);
    let base = canonical(scenario().run(until, seed));
    for shards in [2usize, 4, 8] {
        let got = canonical(scenario().run_sharded(until, seed, shards, 0));
        assert_eq!(
            got, base,
            "sampled canonical report diverged at --shards {shards}"
        );
    }
}

#[test]
fn elephant_recall_at_rate_64_on_ddos() {
    // 3 elephants at 1000 pps under a 2000 flows/s spoofed flood. At rate
    // 1/64 an elephant yields ~15.6 sampled pkts/s — estimates of ~1000
    // pps against the 300 pps threshold, so all three should be flagged
    // (fixed seed keeps this exact run pinned).
    let report = overlay_scenario()
        .with_sampling_rate(1.0 / 64.0)
        .run(SimTime::from_secs(12), 6);
    assert!(
        report.app.elephant_decisions >= 3,
        "recall below 3/3 elephants at rate 1/64: {} decisions\n{}",
        report.app.elephant_decisions,
        report.summary()
    );
    assert!(
        report.app.migrations >= 1,
        "sampled detection should still drive migrations: {}",
        report.summary()
    );
}
