//! Golden-report regression tests.
//!
//! The engine's contract is that a `(scenario, seed)` pair reproduces a
//! bit-identical report. These tests pin that contract across refactors of
//! the hot path (event queue, packet layout, table internals): each runs
//! one fixed scenario and compares the canonical-JSON rendering of the
//! full report byte-for-byte against a committed fixture.
//!
//! Regenerate fixtures (after an *intended* behaviour change only) with:
//!
//! ```text
//! SCOTCH_UPDATE_GOLDEN=1 cargo test -p scotch --test golden_report
//! ```

use scotch::scenario::Scenario;
use scotch_sim::SimTime;
use scotch_switch::SwitchProfile;

/// Matches the bench crate's `DEFAULT_SEED`.
const SEED: u64 = 20141202;

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Compare `got` against the committed fixture, or rewrite the fixture when
/// `SCOTCH_UPDATE_GOLDEN` is set. On mismatch the actual bytes are saved
/// next to the fixture as `<name>.actual.json` for diffing.
fn check_golden(name: &str, got: &str) {
    let path = fixture_path(name);
    if std::env::var_os("SCOTCH_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             run `SCOTCH_UPDATE_GOLDEN=1 cargo test -p scotch --test golden_report`",
            path.display()
        )
    });
    if want != got {
        let actual = path.with_extension("actual.json");
        std::fs::write(&actual, got).unwrap();
        let line = want
            .lines()
            .zip(got.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| want.lines().count().min(got.lines().count()) + 1);
        panic!(
            "{name}: report is not byte-identical to fixture {} \
             (first difference at line {line}; actual saved to {})",
            path.display(),
            actual.display()
        );
    }
}

/// Fig. 3 point: one hardware switch under a spoofed-source flood plus
/// probe clients, baseline controller.
#[test]
fn fig3_single_switch_report_is_bit_identical() {
    let report = Scenario::single_switch(SwitchProfile::pica8_pronto_3780())
        .with_clients(100.0)
        .with_attack(1000.0)
        .run(SimTime::from_secs(2), SEED);
    check_golden("fig3_single_switch", &report.canonical_json());
}

/// Scotch-eval point (Fig. 11/13 regime): the overlay datacenter under
/// flood, Scotch controller with activation/withdrawal running.
#[test]
fn scotch_eval_overlay_report_is_bit_identical() {
    let report = Scenario::overlay_datacenter(2)
        .with_clients(80.0)
        .with_attack(1000.0)
        .run(SimTime::from_secs(2), SEED);
    check_golden("scotch_eval_overlay", &report.canonical_json());
}
