//! Cross-crate integration tests: full simulations through the public API.

use scotch::app::ControllerMode;
use scotch::scenario::Scenario;
use scotch::ScotchConfig;
use scotch_sim::SimTime;
use scotch_switch::SwitchProfile;

#[test]
fn quiet_network_delivers_all_client_flows() {
    // 50 flows/s is well within the Pica8 OFA capacity: everything works
    // even without Scotch.
    let report = Scenario::single_switch(SwitchProfile::pica8_pronto_3780())
        .with_clients(50.0)
        .run(SimTime::from_secs(5), 1);
    assert!(report.client_flows() >= 240, "{}", report.summary());
    assert!(
        report.client_failure_fraction() < 0.02,
        "{}",
        report.summary()
    );
}

#[test]
fn ddos_breaks_baseline_single_switch() {
    // The paper's §3.2 finding: at high attack rates the client flows fail
    // because the OFA saturates, even though the data plane is idle.
    let report = Scenario::single_switch(SwitchProfile::pica8_pronto_3780())
        .with_clients(100.0)
        .with_attack(2_000.0)
        .run(SimTime::from_secs(5), 2);
    assert!(
        report.client_failure_fraction() > 0.5,
        "attack should break the baseline: {}",
        report.summary()
    );
    // And the bottleneck is the control plane, not the data plane.
    assert!(report.drops.ofa_overload > 0);
    assert_eq!(report.drops.dataplane, 0);
}

#[test]
fn open_vswitch_dut_survives_the_same_attack() {
    // Fig. 3's third curve: the software switch's agent absorbs the load.
    let report = Scenario::single_switch(SwitchProfile::open_vswitch())
        .with_clients(100.0)
        .with_attack(2_000.0)
        .run(SimTime::from_secs(5), 3);
    assert!(
        report.client_failure_fraction() < 0.05,
        "{}",
        report.summary()
    );
}

#[test]
fn scotch_overlay_protects_clients_under_ddos() {
    // The headline result: same attack, Scotch on -> clients survive.
    let report = Scenario::overlay_datacenter(4)
        .with_clients(100.0)
        .with_attack(2_000.0)
        .run(SimTime::from_secs(10), 4);
    assert!(report.app.activations >= 1, "{}", report.summary());
    // Steady state (post-activation, pre-cutoff): clients unharmed.
    assert!(
        report.client_failure_fraction_between(SimTime::from_secs(1), SimTime::from_secs(9)) < 0.02,
        "{}",
        report.summary()
    );
    // Including the activation transient, losses stay modest.
    assert!(
        report.client_failure_fraction() < 0.15,
        "{}",
        report.summary()
    );
    // The overlay carried the surge.
    assert!(report.app.overlay_admitted > 0, "{}", report.summary());
}

#[test]
fn scotch_withdraws_after_attack_stops() {
    let report = Scenario::overlay_datacenter(4)
        .with_clients(50.0)
        .with_attack_window(2_000.0, SimTime::from_secs(1), SimTime::from_secs(4))
        .run(SimTime::from_secs(12), 5);
    assert!(report.app.activations >= 1, "{}", report.summary());
    assert!(report.app.withdrawals >= 1, "{}", report.summary());
    // Clients keep working after withdrawal too.
    assert!(
        report.client_failure_fraction_between(SimTime::from_secs(7), SimTime::from_secs(11))
            < 0.05,
        "{}",
        report.summary()
    );
}

#[test]
fn elephants_migrate_to_physical_paths() {
    let report = Scenario::overlay_datacenter(4)
        .with_clients(50.0)
        .with_attack(2_000.0)
        .with_elephants(3, 1000.0, 8000, SimTime::from_secs(2))
        .run(SimTime::from_secs(12), 6);
    assert!(
        report.app.migrations >= 1,
        "elephants should migrate: {}",
        report.summary()
    );
    // Elephants complete (mostly) despite the attack.
    let eleph: Vec<_> = report.flows.iter().filter(|f| f.intended >= 8000).collect();
    assert_eq!(eleph.len(), 3);
    for e in eleph {
        assert!(
            e.delivered as f64 >= 0.9 * e.intended as f64,
            "elephant delivered only {}/{}",
            e.delivered,
            e.intended
        );
    }
}

#[test]
fn middlebox_policy_is_consistent_across_migration() {
    // Flows to server 0 must cross the stateful firewall on both overlay
    // and physical paths; migration must not bypass or break it.
    let report = Scenario::overlay_datacenter(4)
        .with_middlebox()
        .with_clients(50.0)
        .with_attack(2_000.0)
        .with_elephants(2, 800.0, 5000, SimTime::from_secs(2))
        .run(SimTime::from_secs(10), 7);
    assert!(report.app.migrations >= 1, "{}", report.summary());
    assert_eq!(
        report.middlebox_rejections,
        0,
        "no mid-flow packet may hit the firewall without state: {}",
        report.summary()
    );
    let eleph: Vec<_> = report.flows.iter().filter(|f| f.intended >= 5000).collect();
    for e in eleph {
        assert!(
            e.delivered as f64 >= 0.9 * e.intended as f64,
            "elephant through firewall delivered {}/{}",
            e.delivered,
            e.intended
        );
    }
}

#[test]
fn vswitch_failure_heals_via_heartbeats() {
    let report = Scenario::overlay_datacenter(3)
        .with_backups(1)
        .with_clients(100.0)
        .with_attack(2_000.0)
        .with_vswitch_failure(1, SimTime::from_secs(4))
        .run(SimTime::from_secs(12), 8);
    assert!(report.app.failovers >= 1, "{}", report.summary());
    // Flows arriving well after the failover must still succeed.
    let late: Vec<_> = report
        .flows
        .iter()
        .filter(|f| !f.is_attack && f.started_at > SimTime::from_secs(9))
        .collect();
    let late_fail = late.iter().filter(|f| !f.succeeded()).count();
    assert!(late.len() > 50);
    assert!(
        (late_fail as f64) < 0.1 * late.len() as f64,
        "late failures {late_fail}/{}: {}",
        late.len(),
        report.summary()
    );
}

#[test]
fn ingress_differentiation_protects_the_client_port() {
    use scotch_controller::flowdb::FlowPath;
    // §5.2: per-ingress-port queues give the client port its fair share of
    // the switch's rule budget R, so client flows reach the *physical*
    // network; a shared queue lets the flood starve them onto the overlay.
    let run = |differentiated: bool| {
        let config = ScotchConfig {
            ingress_differentiation: differentiated,
            ..Default::default()
        };
        Scenario::overlay_datacenter(4)
            .with_config(config)
            .with_clients(80.0)
            .with_attack(2_000.0)
            .run(SimTime::from_secs(10), 9)
    };
    let physical_fraction = |r: &scotch::Report| {
        let legit: Vec<_> = r.flows.iter().filter(|f| !f.is_attack).collect();
        let phys = legit
            .iter()
            .filter(|f| f.served_by == Some(FlowPath::Physical))
            .count();
        phys as f64 / legit.len().max(1) as f64
    };
    let with_diff = run(true);
    let without = run(false);
    // Clients survive either way (the overlay absorbs the surge)...
    let settled = |r: &scotch::Report| {
        r.client_failure_fraction_between(SimTime::from_secs(1), SimTime::from_secs(9))
    };
    assert!(settled(&with_diff) < 0.05, "{}", with_diff.summary());
    assert!(settled(&without) < 0.05, "{}", without.summary());
    // ...but only differentiation gives them fair physical access.
    let f_with = physical_fraction(&with_diff);
    let f_without = physical_fraction(&without);
    assert!(
        f_with > 0.6,
        "with differentiation most client flows should be physical, got {f_with:.2}"
    );
    assert!(
        f_without < f_with / 2.0,
        "shared queue should starve clients off the physical net: {f_without:.2} vs {f_with:.2}"
    );
}

#[test]
fn determinism_same_seed_same_report() {
    let run = || {
        Scenario::overlay_datacenter(3)
            .with_clients(100.0)
            .with_attack(1_500.0)
            .run(SimTime::from_secs(5), 1234)
    };
    let a = run();
    let b = run();
    assert_eq!(a.flows.len(), b.flows.len());
    assert_eq!(a.client_failure_fraction(), b.client_failure_fraction());
    assert_eq!(a.app, b.app);
    assert_eq!(a.events_processed, b.events_processed);
}

#[test]
fn different_seeds_differ() {
    let run = |seed| {
        Scenario::overlay_datacenter(3)
            .with_clients(100.0)
            .with_attack(1_500.0)
            .run(SimTime::from_secs(3), seed)
    };
    let a = run(1);
    let b = run(2);
    // Spoofed addresses differ, so flow keys differ.
    assert_ne!(
        a.flows.iter().map(|f| f.key).collect::<Vec<_>>(),
        b.flows.iter().map(|f| f.key).collect::<Vec<_>>()
    );
}

#[test]
fn baseline_mode_in_datacenter_topology_still_fails() {
    // Same topology, Scotch off: the attack wins. This is the paper's
    // with/without comparison on identical hardware.
    let report = Scenario::overlay_datacenter(4)
        .with_mode(ControllerMode::Baseline)
        .with_clients(100.0)
        .with_attack(2_000.0)
        .run(SimTime::from_secs(10), 10);
    assert!(
        report.client_failure_fraction() > 0.5,
        "{}",
        report.summary()
    );
}

#[test]
fn flash_crowd_triggers_and_releases_overlay() {
    use scotch_workload::flash::RateProfile;
    let profile = RateProfile {
        base: 20.0,
        peak: 1_500.0,
        surge_start: SimTime::from_secs(2),
        peak_start: SimTime::from_secs(3),
        peak_end: SimTime::from_secs(6),
        surge_end: SimTime::from_secs(7),
    };
    let report = Scenario::overlay_datacenter(4)
        .with_flash_crowd(profile)
        .run(SimTime::from_secs(15), 11);
    assert!(report.app.activations >= 1, "{}", report.summary());
    assert!(report.app.withdrawals >= 1, "{}", report.summary());
    // A flash crowd is legitimate traffic: it must be served, not dropped
    // (a small transient loss during the activation ramp is expected —
    // the monitor's 1 s window lags the surge).
    assert!(
        report.client_failure_fraction() < 0.10,
        "{}",
        report.summary()
    );
}

#[test]
fn elastic_scale_out_absorbs_growing_attack() {
    // §5.6: "We may also need to add new vSwitches to increase the Scotch
    // overlay capacity." One mesh vSwitch (~10k Packet-In/s) cannot absorb
    // a 15k flows/s flood; joining a second at t=4s fixes it live.
    let run = |join: bool| {
        let s = Scenario::overlay_datacenter(1)
            .with_backups(1)
            .with_clients(100.0)
            .with_attack(15_000.0);
        let s = if join {
            s.with_vswitch_join(0, SimTime::from_secs(4))
        } else {
            s
        };
        s.run(SimTime::from_secs(8), 13)
    };
    let without = run(false);
    let with_join = run(true);
    let late = |r: &scotch::Report| {
        r.client_failure_fraction_between(SimTime::from_secs(5), SimTime::from_secs(7))
    };
    // Undersized overlay: a meaningful share of clients still fail late.
    assert!(
        late(&without) > 0.2,
        "one vSwitch should be overloaded: {:.3}",
        late(&without)
    );
    // After the join, client failure collapses.
    assert!(
        late(&with_join) < late(&without) / 3.0,
        "join should fix it: {:.3} vs {:.3}",
        late(&with_join),
        late(&without)
    );
}

#[test]
fn multirack_scotch_protects_cross_fabric_traffic() {
    // Leaf-spine: attacker + client in rack 0, victim server in rack 2;
    // attack flows cross tor0 -> spine -> tor2. Scotch activates at the
    // congested ingress ToR and the overlay carries the surge.
    let report = Scenario::multirack(3, 2)
        .with_clients(100.0)
        .with_attack(2_000.0)
        .run(SimTime::from_secs(10), 21);
    assert!(report.app.activations >= 1, "{}", report.summary());
    assert!(
        report.client_failure_fraction_between(SimTime::from_secs(1), SimTime::from_secs(9)) < 0.05,
        "{}",
        report.summary()
    );
    // The overlay carries flows across racks (mesh vSwitches in several
    // racks see traffic).
    let active_mesh = report
        .vswitches
        .iter()
        .filter(|v| v.name.starts_with("mesh") && v.dataplane.forwarded > 0)
        .count();
    assert!(active_mesh >= 3, "overlay should span racks: {active_mesh}");
}

#[test]
fn multirack_baseline_collapses() {
    let report = Scenario::multirack(3, 2)
        .with_mode(ControllerMode::Baseline)
        .with_clients(100.0)
        .with_attack(2_000.0)
        .run(SimTime::from_secs(8), 21);
    assert!(
        report.client_failure_fraction() > 0.5,
        "{}",
        report.summary()
    );
}

#[test]
fn overlay_forwarding_avoids_destination_rule_hotspot() {
    // §1: "even if we spread the new flows arriving at the first hop
    // hardware switch to multiple vswitches, the switch close to the
    // destination will still be overloaded since rules have to be inserted
    // there for each new flow. To alleviate this problem, Scotch forwards
    // new flows on the overlay so that new rules are initially only
    // inserted at the vSwitches."
    //
    // The strawman ("spread Packet-Ins but admit everything physically")
    // is Scotch with an effectively infinite overlay threshold: flows
    // queue for physical admission at rate R instead of riding the
    // overlay.
    // The paper's §4 strawman (a dedicated data-plane port to the
    // controller) has no ingress fairness either, so differentiation is
    // off.
    let strawman_cfg = ScotchConfig {
        overlay_threshold: 1_000_000,
        drop_threshold: 2_000_000,
        ingress_differentiation: false,
        ..Default::default()
    };
    let strawman = Scenario::multirack(2, 2)
        .with_config(strawman_cfg)
        .with_clients(100.0)
        .with_attack(2_000.0)
        .run(SimTime::from_secs(8), 22);
    let scotch = Scenario::multirack(2, 2)
        .with_clients(100.0)
        .with_attack(2_000.0)
        .run(SimTime::from_secs(8), 22);

    // With overlay forwarding, hardware switches hold few rules (shared
    // default rules + the budgeted physical admissions); the strawman
    // pushes every admitted flow's rules into the fabric and still leaves
    // a huge backlog waiting.
    let late = |r: &scotch::Report| {
        r.client_failure_fraction_between(SimTime::from_secs(4), SimTime::from_secs(7))
    };
    assert!(late(&scotch) < 0.05, "scotch: {}", scotch.summary());
    assert!(
        late(&strawman) > 0.5,
        "physical-only admission must drown in the queue: {:.3} — {}",
        late(&strawman),
        strawman.summary()
    );
}

#[test]
fn scotch_tolerates_lossy_links() {
    // smoltcp-style fault injection: 0.5% random loss on every link. The
    // control-plane machinery (rule installs ride the lossless management
    // channel, as in the testbed) keeps working; only a loss-proportional
    // share of single-packet probes disappears.
    let report = Scenario::overlay_datacenter(4)
        .with_clients(100.0)
        .with_attack(1_500.0)
        .with_link_loss(0.005)
        .run(SimTime::from_secs(8), 31);
    assert!(report.drops.link_faults > 0, "faults must fire");
    let steady =
        report.client_failure_fraction_between(SimTime::from_secs(1), SimTime::from_secs(7));
    // A probe crosses at most ~8 links on the overlay path; failure stays
    // within a small multiple of the per-link loss.
    assert!(
        steady < 0.05,
        "lossy-link failure {steady}: {}",
        report.summary()
    );
}

#[test]
fn recovered_vswitch_rejoins_as_backup() {
    // §5.6: fail a vSwitch (no backup available -> its bucket goes dead),
    // recover it later, then fail another one: the recovered node must be
    // promoted into the dead bucket.
    let mut sim = Scenario::overlay_datacenter(3)
        .with_clients(100.0)
        .with_attack(2_000.0)
        .build(33);
    let mesh = sim.app.overlay.mesh.clone();
    sim.fail_vswitch_at(mesh[0], SimTime::from_secs(2));
    sim.recover_vswitch_at(mesh[0], SimTime::from_secs(5));
    sim.fail_vswitch_at(mesh[1], SimTime::from_secs(7));
    let report = sim.run(SimTime::from_secs(12));
    assert!(report.app.failovers >= 2, "{}", report.summary());
    // Clients still fine at the end.
    let late =
        report.client_failure_fraction_between(SimTime::from_secs(9), SimTime::from_secs(11));
    assert!(late < 0.1, "late failure {late}: {}", report.summary());
}

#[test]
fn pcap_capture_records_delivered_traffic() {
    use scotch::pcap::PCAP_MAGIC;
    let mut sim = Scenario::overlay_datacenter(2)
        .with_clients(100.0)
        .build(55);
    let server = sim
        .topo
        .nodes_of_kind(scotch_net::NodeKind::Host)
        .into_iter()
        .find(|n| sim.topo.name(*n) == "server0")
        .unwrap();
    sim.capture_at(server);
    let report = sim.run(SimTime::from_secs(3));
    let cap = &report.captures[&server];
    // Every delivered packet to server0 was captured.
    let delivered: u64 = report
        .flows
        .iter()
        .filter(|f| f.key.dst == scotch::scenario::Scenario::server_ip(0))
        .map(|f| f.delivered as u64)
        .sum();
    assert!(delivered > 100);
    assert_eq!(cap.records(), delivered);
    assert_eq!(
        u32::from_le_bytes(cap.bytes()[0..4].try_into().unwrap()),
        PCAP_MAGIC
    );
}

#[test]
fn undersized_controller_gate_drops_messages() {
    // §2's assumption quantified (A5 in the harness): cap the controller
    // at 1k Packet-In/s under an 8k flood and it becomes the bottleneck.
    let choked = Scenario::overlay_datacenter(4)
        .with_config(ScotchConfig {
            controller_capacity: Some(1_000.0),
            ..Default::default()
        })
        .with_clients(100.0)
        .with_attack(8_000.0)
        .run(SimTime::from_secs(5), 17);
    assert!(choked.controller_dropped > 0, "{}", choked.summary());
    assert!(
        choked.client_failure_fraction_between(SimTime::from_secs(1), SimTime::from_secs(4)) > 0.3,
        "{}",
        choked.summary()
    );
    // The default (unbounded, per the paper) never drops.
    let ample = Scenario::overlay_datacenter(4)
        .with_clients(100.0)
        .with_attack(8_000.0)
        .run(SimTime::from_secs(5), 17);
    assert_eq!(ample.controller_dropped, 0);
    assert!(
        ample.client_failure_fraction_between(SimTime::from_secs(1), SimTime::from_secs(4)) < 0.05,
        "{}",
        ample.summary()
    );
}

#[test]
fn customer_blocks_fairness_isolates_a_spoofing_flood() {
    // §5.2's customer grouping, done right: known customer blocks get
    // their own queues; a whole-address-space spoofing flood lands in the
    // shared default queue and can only starve its own share. This works
    // even though the flood's random sources touch every /8 (which is why
    // plain SourcePrefix grouping would degenerate here).
    use scotch::config::FairnessPolicy;
    use scotch_controller::flowdb::FlowPath;
    use scotch_net::IpAddr;

    let customers = FairnessPolicy::Customers(vec![(IpAddr::new(10, 0, 0, 0), 8)]);
    let report = Scenario::overlay_datacenter(4)
        .with_config(ScotchConfig {
            fairness: customers,
            ..Default::default()
        })
        .with_clients(80.0) // probes spoof within 10/8
        .with_attack(2_000.0)
        .run(SimTime::from_secs(8), 19);

    let settled =
        report.client_failure_fraction_between(SimTime::from_secs(1), SimTime::from_secs(7));
    assert!(settled < 0.05, "{}", report.summary());
    let legit: Vec<_> = report.flows.iter().filter(|f| !f.is_attack).collect();
    let phys = legit
        .iter()
        .filter(|f| f.served_by == Some(FlowPath::Physical))
        .count() as f64
        / legit.len().max(1) as f64;
    assert!(
        phys > 0.6,
        "the customer's block must keep its physical share: {phys:.2}"
    );
}

#[test]
fn tcam_clear_preserves_middlebox_policy() {
    // TCAM-triggered activation clears the switch's tables to make room
    // for the overlay defaults — the shared policy green rules must be
    // re-installed or every overlay-routed policy flow would bypass (and
    // be rejected by) the stateful firewall.
    let mut profile = scotch_switch::SwitchProfile::pica8_pronto_3780();
    profile.flow_table_capacity = 300;
    let report = Scenario::overlay_datacenter(4)
        .with_profile(profile)
        .with_middlebox()
        .with_config(ScotchConfig {
            exact_match_rules: true,
            ..Default::default()
        })
        .with_client_flows(
            80.0,
            scotch_workload::clients::FlowSize::Fixed(5),
            scotch_sim::SimDuration::from_millis(50),
        )
        .run(SimTime::from_secs(10), 23);
    assert!(report.app.activations >= 1, "{}", report.summary());
    assert_eq!(
        report.middlebox_rejections,
        0,
        "policy must hold across the table clear: {}",
        report.summary()
    );
    let late = report
        .flows
        .iter()
        .filter(|f| !f.is_attack && f.started_at >= SimTime::from_secs(5))
        .collect::<Vec<_>>();
    let completed = late.iter().filter(|f| f.completed()).count();
    assert!(
        completed as f64 > 0.9 * late.len() as f64,
        "flows must complete after the clear: {completed}/{}",
        late.len()
    );
}

#[test]
#[should_panic(expected = "has no uplink port")]
fn host_without_uplink_is_a_scenario_error() {
    // A registered host with no attached link used to silently fall back to
    // PortId(0); it is now rejected up front as a scenario-construction bug.
    use scotch::app::ScotchApp;
    use scotch::{OverlayManager, Simulation};
    use scotch_controller::AddressBook;
    use scotch_net::{IpAddr, NodeKind, Topology};

    let mut topo = Topology::new();
    let stranded = topo.add_node(NodeKind::Host, "stranded");
    let app = ScotchApp::new(
        ControllerMode::Scotch,
        ScotchConfig::default(),
        AddressBook::default(),
        OverlayManager::default(),
    );
    let mut sim = Simulation::new(topo, app);
    sim.add_host(stranded, IpAddr::new(10, 0, 0, 1));
    sim.run(SimTime::from_secs(1));
}
