//! Journey-stream invariants: the exported flow-journey timeline must be
//! byte-identical across shard counts, every reconstructed timeline must
//! telescope exactly to its end-to-end latency, and no journey may leak an
//! open span — even under the pinned chaos plan.

use proptest::prelude::*;
use scotch::scenario::Scenario;
use scotch_sim::fault::FaultPlan;
use scotch_sim::journey::{JourneyConfig, JourneyPoint, Span};
use scotch_sim::{SimDuration, SimTime};

/// The sharding-friendly multi-rack shape used by the determinism matrix,
/// with journey tracing switched on at a rate high enough to exercise
/// cross-shard handoff on many flows.
fn parallel_scenario(racks: usize) -> Scenario {
    Scenario::multirack(racks, 1)
        .with_interrack_propagation(SimDuration::from_micros(200))
        .with_rack_clients(150.0)
        .with_attack(400.0)
        .with_clients(80.0)
        .with_journey_rate(0.25)
}

fn overlay_scenario() -> Scenario {
    Scenario::overlay_datacenter(4)
        .with_attack(800.0)
        .with_clients(100.0)
        .with_journey_rate(0.25)
}

#[test]
fn journey_stream_is_shard_invariant() {
    let until = SimTime::from_millis(400);
    let seed = 20141202;
    let base = parallel_scenario(4).run(until, seed);
    assert!(
        !base.journeys.is_empty(),
        "scenario traced no journeys; the invariance check would be vacuous"
    );
    let golden = base.journeys_jsonl();
    for shards in [2usize, 4, 8] {
        let got = parallel_scenario(4)
            .run_sharded(until, seed, shards, 1)
            .journeys_jsonl();
        assert_eq!(got, golden, "journey JSONL diverged at --shards {shards}");
    }
}

#[test]
fn overlay_journey_stream_is_shard_invariant() {
    // Rackless scenario: sharding falls back to the sequential engine, and
    // the journey stream must still come out byte-identical.
    let until = SimTime::from_secs(2);
    let base = overlay_scenario().run(until, 7);
    let golden = base.journeys_jsonl();
    assert!(!base.journeys.is_empty());
    let got = overlay_scenario()
        .run_sharded(until, 7, 8, 4)
        .journeys_jsonl();
    assert_eq!(got, golden, "rackless journey JSONL diverged when sharded");
}

#[test]
fn segments_telescope_exactly_to_setup_latency() {
    let report = overlay_scenario().run(SimTime::from_secs(2), 42);
    let views = report.journey_views();
    assert!(!views.is_empty());
    let mut delivered = 0usize;
    for view in &views {
        let segments = view.segments();
        let sum: SimDuration = segments
            .iter()
            .map(Span::duration)
            .fold(SimDuration::ZERO, |acc, d| acc + d);
        assert_eq!(
            sum,
            view.total(),
            "journey {:#x}: stage spans do not telescope to the total",
            view.id
        );
        // Spans must partition the timeline: each closes where the next
        // opens, starting at the first mark.
        let mut cursor = view.start();
        for span in &segments {
            assert_eq!(span.open, cursor, "journey {:#x}: gap in spans", view.id);
            cursor = span.close;
        }
        if view.is_delivered() {
            delivered += 1;
            assert!(
                !segments.is_empty(),
                "delivered journey {:#x} has no spans",
                view.id
            );
        }
    }
    assert!(delivered > 0, "no delivered journeys to check");
}

#[test]
fn every_journey_opens_with_emit_and_marks_are_canonical() {
    let report = overlay_scenario().run(SimTime::from_secs(2), 11);
    for view in report.journey_views() {
        assert_eq!(
            view.marks[0].point,
            JourneyPoint::Emit,
            "journey {:#x} does not open with an emit mark",
            view.id
        );
        for pair in view.marks.windows(2) {
            assert!(
                (pair[0].at, pair[0].point as u8) <= (pair[1].at, pair[1].point as u8),
                "journey {:#x}: marks out of canonical order",
                view.id
            );
        }
    }
}

/// Shared postcondition: every journey is closed — it carries at least one
/// terminal mark (deliver, drop, or the horizon-synthesized cancel). A
/// journey may terminate more than once only when control-plane chaos
/// duplicated or delayed its Packet-In, and such journeys must carry the
/// inline fault annotation explaining the extra tail; unperturbed journeys
/// must end in exactly one terminal with nothing recorded after it.
fn assert_no_leaked_spans(report: &scotch::Report, label: &str) {
    let views = report.journey_views();
    assert!(!views.is_empty(), "{label}: no journeys traced");
    for view in &views {
        let terminals = view.marks.iter().filter(|m| m.point.is_terminal()).count();
        assert!(
            terminals >= 1,
            "{label}: journey {:#x} was opened but never closed",
            view.id
        );
        let perturbed = view.annotations().any(|m| m.point == JourneyPoint::Fault);
        if !perturbed {
            assert_eq!(
                terminals, 1,
                "{label}: unperturbed journey {:#x} has {terminals} terminal marks",
                view.id
            );
            let last = view.marks.last().unwrap();
            assert!(
                last.point.is_terminal(),
                "{label}: journey {:#x} records {:?} after its terminal mark",
                view.id,
                last.point
            );
        }
    }
}

fn pinned_plan() -> FaultPlan {
    FaultPlan::parse(include_str!("golden/chaos_pinned.plan")).expect("pinned chaos plan parses")
}

#[test]
fn pinned_chaos_plan_closes_every_journey() {
    let report = Scenario::overlay_datacenter(4)
        .with_attack(800.0)
        .with_clients(100.0)
        .with_journey_rate(0.25)
        .with_fault_plan(pinned_plan())
        .run(SimTime::from_secs(6), 42);
    assert_no_leaked_spans(&report, "pinned chaos");
    // The plan kills vSwitches and links while journeys are in flight, so
    // at least one traced journey should carry an inline fault annotation.
    let annotated = report
        .journey_views()
        .iter()
        .filter(|v| v.annotations().next().is_some())
        .count();
    assert!(annotated > 0, "chaos run produced no fault annotations");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 5, // each case is a full chaos simulation run
        .. ProptestConfig::default()
    })]

    /// Randomized span-hygiene property: under the pinned chaos plan, for
    /// arbitrary seeds and sampling rates, every opened journey is closed
    /// or cancelled — no leaked spans, ever.
    #[test]
    fn prop_chaos_never_leaks_spans(
        seed in 0u64..1_000_000,
        rate_steps in 1u32..16,
    ) {
        let rate = f64::from(rate_steps) / 16.0;
        let report = Scenario::overlay_datacenter(3)
            .with_attack(600.0)
            .with_clients(80.0)
            .with_journeys(JourneyConfig { rate, ..JourneyConfig::default() })
            .with_fault_plan(pinned_plan())
            .run(SimTime::from_secs(3), seed);
        let views = report.journey_views();
        prop_assert!(!views.is_empty(), "seed {seed} rate {rate}: nothing traced");
        for view in &views {
            let terminals = view.marks.iter().filter(|m| m.point.is_terminal()).count();
            prop_assert!(
                terminals >= 1,
                "seed {} rate {}: journey {:#x} was opened but never closed",
                seed, rate, view.id
            );
            if view.annotations().all(|m| m.point != JourneyPoint::Fault) {
                prop_assert_eq!(
                    terminals, 1,
                    "seed {} rate {}: unperturbed journey {:#x} has {} terminals",
                    seed, rate, view.id, terminals
                );
                prop_assert!(
                    view.marks.last().unwrap().point.is_terminal(),
                    "seed {} rate {}: journey {:#x} has marks after its terminal",
                    seed, rate, view.id
                );
            }
        }
    }
}
