//! Controller-cluster determinism: a replicated control plane must not
//! cost the engine its core contract. A 3-replica cluster under the
//! golden failover plan replays byte-identically at every shard count,
//! and a cluster of size 1 degenerates byte-for-byte to the
//! single-controller engine on the golden scenario shapes.

use scotch::scenario::Scenario;
use scotch_sim::fault::{FaultKind, FaultPlan};
use scotch_sim::journey::JourneyPoint;
use scotch_sim::{SimDuration, SimTime};
use scotch_switch::SwitchProfile;

/// The determinism matrix's multi-rack shape, with a 3-replica cluster.
fn cluster_scenario(racks: usize) -> Scenario {
    Scenario::multirack(racks, 1)
        .with_interrack_propagation(SimDuration::from_micros(200))
        .with_rack_clients(150.0)
        .with_attack(400.0)
        .with_clients(80.0)
        .with_controllers(3)
        .with_sync_latency(SimDuration::from_micros(500))
}

/// The golden failover plan: crash a replica (with restart), partition the
/// coordination channel, then crash a second replica for good.
fn failover_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    plan.push(
        SimTime::from_millis(80),
        FaultKind::ReplicaCrash {
            target: 0,
            restart_after: Some(SimDuration::from_millis(120)),
        },
    );
    plan.push(
        SimTime::from_millis(150),
        FaultKind::CtrlPartition {
            duration: SimDuration::from_millis(40),
        },
    );
    plan.push(
        SimTime::from_millis(260),
        FaultKind::ReplicaCrash {
            target: 1,
            restart_after: None,
        },
    );
    plan
}

#[test]
fn cluster_failover_is_shard_invariant() {
    let until = SimTime::from_millis(400);
    let seed = 20141202;
    let build = || cluster_scenario(4).with_fault_plan(failover_plan());
    let base = build().run(until, seed);
    assert!(
        base.metrics.get("ctrl.cluster.handoffs").unwrap_or(0.0) >= 1.0,
        "failover plan produced no handoffs; the invariance check would be vacuous"
    );
    let golden = base.canonical_json();
    for shards in [2usize, 4, 8] {
        let got = build().run_sharded(until, seed, shards, 0).canonical_json();
        assert_eq!(
            got, golden,
            "cluster canonical report diverged at --shards {shards}"
        );
    }
}

#[test]
fn cluster_journey_stream_is_shard_invariant() {
    // Handoff annotations and replica attribution ride the journey stream,
    // which is excluded from the canonical report — pin it separately.
    let until = SimTime::from_millis(400);
    let seed = 20141202;
    let build = || {
        cluster_scenario(4)
            .with_fault_plan(failover_plan())
            .with_journey_rate(0.25)
    };
    let base = build().run(until, seed);
    assert!(!base.journeys.is_empty());
    let golden = base.journeys_jsonl();
    for shards in [2usize, 4] {
        let got = build().run_sharded(until, seed, shards, 1).journeys_jsonl();
        assert_eq!(
            got, golden,
            "cluster journey JSONL diverged at --shards {shards}"
        );
    }
}

#[test]
fn failover_marks_handoffs_and_replicas_in_journeys() {
    // A deliberately slow coordination channel: the replica crash lands
    // mid-partition, so mastership stays in flux for tens of
    // milliseconds and in-flight Packet-Ins park (and journey-annotate)
    // across the handoff.
    let mut plan = FaultPlan::new();
    plan.push(
        SimTime::from_millis(100),
        FaultKind::CtrlPartition {
            duration: SimDuration::from_millis(50),
        },
    );
    plan.push(
        // Replica 1 masters the busy ingress switches in this shape —
        // crashing it is what actually strands Packet-Ins mid-flight.
        SimTime::from_millis(110),
        FaultKind::ReplicaCrash {
            target: 1,
            restart_after: None,
        },
    );
    let report = Scenario::multirack(4, 1)
        .with_interrack_propagation(SimDuration::from_micros(200))
        .with_rack_clients(150.0)
        .with_attack(400.0)
        .with_clients(80.0)
        .with_controllers(3)
        .with_sync_latency(SimDuration::from_millis(25))
        .with_fault_plan(plan)
        .with_journey_rate(1.0)
        .run(SimTime::from_millis(400), 20141202);
    let views = report.journey_views();
    assert!(!views.is_empty());
    // Every settled control decision is attributed: `CtrlRx` marks carry
    // `replica + 1`, and at least one mid-flight flow crosses a handoff.
    let attributed = views
        .iter()
        .flat_map(|v| v.marks.iter())
        .filter(|m| m.point == JourneyPoint::CtrlRx && m.info > 0)
        .count();
    assert!(attributed > 0, "no journey attributed to a replica");
    let handoffs: Vec<u64> = views
        .iter()
        .flat_map(|v| v.marks.iter())
        .filter(|m| m.point == JourneyPoint::Handoff)
        .map(|m| m.info)
        .collect();
    assert!(
        !handoffs.is_empty(),
        "no journey recorded a mastership handoff annotation"
    );
    for info in handoffs {
        let (from, to) = (info >> 32, info & 0xffff_ffff);
        assert_ne!(from, to, "handoff annotation must change the master");
        assert!(from < 3 && to < 3, "replica ids out of range: {from}->{to}");
    }
}

/// A cluster of size 1 is the single-controller engine, byte-for-byte:
/// same canonical report, same trace, on the golden scenario shapes.
#[test]
fn single_replica_cluster_degenerates_to_the_engine() {
    let seed = 20141202;
    type Shape = (&'static str, Box<dyn Fn() -> Scenario>, SimTime);
    let shapes: Vec<Shape> = vec![
        (
            "fig3_single_switch",
            Box::new(|| {
                Scenario::single_switch(SwitchProfile::pica8_pronto_3780())
                    .with_clients(100.0)
                    .with_attack(1000.0)
            }),
            SimTime::from_secs(2),
        ),
        (
            "scotch_eval_overlay",
            Box::new(|| {
                Scenario::overlay_datacenter(2)
                    .with_clients(80.0)
                    .with_attack(1000.0)
            }),
            SimTime::from_secs(2),
        ),
        (
            "multirack_parallel",
            Box::new(|| {
                Scenario::multirack(4, 1)
                    .with_interrack_propagation(SimDuration::from_micros(200))
                    .with_rack_clients(150.0)
                    .with_clients(80.0)
                    .with_attack(400.0)
            }),
            SimTime::from_millis(400),
        ),
    ];
    for (name, make, until) in shapes {
        let plain = make().run(until, seed);
        let one = make().with_controllers(1).run(until, seed);
        assert_eq!(
            one.canonical_json(),
            plain.canonical_json(),
            "{name}: --controllers 1 changed the canonical report"
        );
        assert_eq!(
            one.trace_jsonl(),
            plain.trace_jsonl(),
            "{name}: --controllers 1 changed the trace"
        );
        assert!(
            one.metrics.get("ctrl.cluster.replicas").is_none(),
            "{name}: a size-1 cluster must not publish cluster metrics"
        );
    }
}
