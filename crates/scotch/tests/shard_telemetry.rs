//! Execution-plane telemetry contracts (DESIGN.md §15): the deterministic
//! `shard.*` metrics must be byte-identical run to run, must never leak
//! into the canonical report, and the inter-shard message matrix must
//! account for exactly the handoffs the barrier delivered.

use scotch::scenario::Scenario;
use scotch_sim::{SimDuration, SimTime};

const SEED: u64 = 20141202;

fn parallel_scenario() -> Scenario {
    Scenario::multirack(4, 1)
        .with_interrack_propagation(SimDuration::from_micros(200))
        .with_rack_clients(150.0)
        .with_attack(400.0)
        .with_clients(80.0)
}

/// Two sharded runs of the same (scenario, seed, shard count) must emit a
/// byte-identical metrics snapshot — lane events, xmsgs matrix, epoch
/// histogram and all.
#[test]
fn shard_metrics_snapshot_is_reproducible() {
    let until = SimTime::from_millis(400);
    let run = || parallel_scenario().run_sharded(until, SEED, 4, 1).metrics;
    let a = run();
    let b = run();
    assert_eq!(
        format!("{:?}", a.entries),
        format!("{:?}", b.entries),
        "shard telemetry diverged between identical runs"
    );
    assert!(
        a.get("shard.lanes").is_some(),
        "sharded run exported no shard.* telemetry"
    );
}

/// `--profile-shards` is observability-only: enabling the wall-clock epoch
/// profiler must not move a single byte of the canonical report, at any
/// shard count.
#[test]
fn shard_profiling_does_not_perturb_canonical_report() {
    let until = SimTime::from_millis(400);
    let base = parallel_scenario().run(until, SEED).canonical_json();
    for shards in [2usize, 4] {
        let mut sim = parallel_scenario().build_until(SEED, until);
        sim.enable_shard_profiling();
        let report = sim.run_sharded(until, shards, 1);
        assert!(
            report.shard_profile.is_some(),
            "profiler enabled but no shard profile attached at --shards {shards}"
        );
        assert_eq!(
            report.canonical_json(),
            base,
            "--profile-shards perturbed the canonical report at --shards {shards}"
        );
    }
}

/// The xmsgs matrix counts only cross-shard routings, so its total must
/// equal `shard.handoffs` — the number of events the barriers actually
/// moved between lanes.
#[test]
fn xmsgs_matrix_sums_to_handoffs() {
    let until = SimTime::from_millis(400);
    let report = parallel_scenario().run_sharded(until, SEED, 4, 1);
    let m = report.metrics;
    let matrix_total: f64 = m
        .entries
        .iter()
        .filter(|(name, _)| name.starts_with("shard.xmsgs."))
        .map(|(_, v)| *v)
        .sum();
    let handoffs = m.get("shard.handoffs").expect("shard.handoffs missing");
    assert!(handoffs > 0.0, "scenario produced no inter-shard traffic");
    assert_eq!(
        matrix_total, handoffs,
        "xmsgs matrix does not account for every handoff"
    );
}

/// Hub-share is derived from the exported lane counters: the ppm figure
/// must equal lane 0's share of total lane events, and the per-lane
/// counters must cover every lane the partition produced.
#[test]
fn hub_share_matches_lane_counters() {
    let until = SimTime::from_millis(400);
    let report = parallel_scenario().run_sharded(until, SEED, 4, 1);
    let m = report.metrics;
    let lanes = m.get("shard.lanes").expect("shard.lanes missing") as usize;
    assert_eq!(lanes, 4);
    let events: Vec<u64> = (0..lanes)
        .map(|s| {
            m.get(&format!("shard.lane.{s}.events"))
                .unwrap_or_else(|| panic!("shard.lane.{s}.events missing")) as u64
        })
        .collect();
    let total: u64 = events.iter().sum();
    assert!(total > 0);
    let expect_ppm = events[0] * 1_000_000 / total;
    assert_eq!(
        m.get("shard.hub_share_ppm").expect("hub share missing") as u64,
        expect_ppm
    );
}

/// Sequential runs must not export any `shard.*` telemetry — the keys are
/// the signature of a genuinely sharded execution.
#[test]
fn sequential_run_exports_no_shard_telemetry() {
    let until = SimTime::from_millis(400);
    let report = parallel_scenario().run(until, SEED);
    assert!(
        !report
            .metrics
            .entries
            .iter()
            .any(|(name, _)| name.starts_with("shard.")),
        "sequential run leaked shard.* telemetry"
    );
    assert!(report.shard_profile.is_none());
}
