//! Shard-count invariance: the canonical report of a sharded run must be
//! byte-identical to the sequential run's, for every shard count and
//! thread count. These tests are the local mirror of CI's
//! `determinism-matrix` job.

use proptest::prelude::*;
use scotch::scenario::Scenario;
use scotch_sim::fault::{FaultKind, FaultPlan};
use scotch_sim::{SimDuration, SimTime};

/// A multi-rack scenario with per-rack traffic — the shape sharding is
/// built for. Inter-rack propagation is raised so the conservative
/// lookahead window is wide enough for shards to batch real work.
fn parallel_scenario(racks: usize) -> Scenario {
    Scenario::multirack(racks, 1)
        .with_interrack_propagation(SimDuration::from_micros(200))
        .with_rack_clients(150.0)
        .with_attack(400.0)
        .with_clients(80.0)
}

fn canonical(report: scotch::Report) -> String {
    report.canonical_json()
}

#[test]
fn multirack_sharded_matches_sequential() {
    let until = SimTime::from_millis(400);
    let seed = 20141202;
    let base = canonical(parallel_scenario(4).run(until, seed));
    for shards in [2usize, 3, 4, 8] {
        let got = canonical(parallel_scenario(4).run_sharded(until, seed, shards, 1));
        assert_eq!(
            got, base,
            "canonical report diverged at --shards {shards} (sequential lockstep)"
        );
    }
}

#[test]
fn threaded_lockstep_matches_single_threaded() {
    let until = SimTime::from_millis(400);
    let seed = 7;
    let single = canonical(parallel_scenario(3).run_sharded(until, seed, 4, 1));
    let threaded = canonical(parallel_scenario(3).run_sharded(until, seed, 4, 4));
    assert_eq!(
        threaded, single,
        "thread count changed the canonical report"
    );
}

#[test]
fn sharded_chaos_plan_matches_sequential() {
    let mut plan = FaultPlan::new();
    plan.push(
        SimTime::from_millis(40),
        FaultKind::VSwitchCrash {
            target: 1,
            restart_after: Some(SimDuration::from_millis(60)),
        },
    );
    plan.push(
        SimTime::from_millis(90),
        FaultKind::OfaSlowdown {
            target: 0,
            factor: 4.0,
            duration: SimDuration::from_millis(50),
        },
    );
    plan.push(
        SimTime::from_millis(140),
        FaultKind::ControllerStall {
            duration: SimDuration::from_millis(15),
        },
    );
    let scenario = || parallel_scenario(3).with_fault_plan(plan.clone());
    let until = SimTime::from_millis(300);
    let base = canonical(scenario().run(until, 42));
    for shards in [2usize, 4] {
        let got = canonical(scenario().run_sharded(until, 42, shards, 0));
        assert_eq!(
            got, base,
            "chaos canonical report diverged at --shards {shards}"
        );
    }
}

#[test]
fn rackless_scenarios_fall_back_to_sequential() {
    // No rack regions → the partitioner is trivial and the sharded entry
    // point must produce exactly the sequential engine's output.
    let until = SimTime::from_millis(200);
    let scenario = || {
        Scenario::overlay_datacenter(2)
            .with_attack(500.0)
            .with_clients(50.0)
    };
    let base = canonical(scenario().run(until, 9));
    let got = canonical(scenario().run_sharded(until, 9, 8, 4));
    assert_eq!(got, base);
}

#[test]
#[should_panic(expected = "lookahead floor")]
fn interrack_link_below_lookahead_floor_is_rejected() {
    // A cross-shard link faster than the minimum lookahead bound would
    // force zero-width epochs; scenario construction must reject it.
    parallel_scenario(2)
        .with_interrack_propagation(SimDuration::from_nanos(200))
        .run_sharded(SimTime::from_millis(50), 1, 2, 1);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case is two full simulation runs
        .. ProptestConfig::default()
    })]

    /// Randomized cross-shard property: arbitrary rack topologies, seeds,
    /// and shard counts all reproduce the sequential canonical report.
    #[test]
    fn prop_random_topologies_shard_invariant(
        racks in 2usize..6,
        mesh in 1usize..3,
        shards in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        let until = SimTime::from_millis(150);
        let build = || {
            Scenario::multirack(racks, mesh)
                .with_interrack_propagation(SimDuration::from_micros(150))
                .with_rack_clients(120.0)
                .with_attack(300.0)
        };
        let base = canonical(build().run(until, seed));
        let got = canonical(build().run_sharded(until, seed, shards, 0));
        prop_assert_eq!(
            got, base,
            "racks={} mesh={} shards={} seed={}", racks, mesh, shards, seed
        );
    }
}
