//! Golden-trace regression tests.
//!
//! The flight recorder's contract is that a `(scenario, seed)` pair
//! reproduces a bit-identical trace: every event, in order, with sim-time
//! timestamps. These tests pin that contract the same way the golden
//! reports pin the canonical report — byte-for-byte against a committed
//! JSONL fixture — and additionally check trace/metrics determinism across
//! two independent runs in the same process.
//!
//! Regenerate the fixture (after an *intended* behaviour change only) with:
//!
//! ```text
//! SCOTCH_UPDATE_GOLDEN=1 cargo test -p scotch --test golden_trace
//! ```

use scotch::scenario::Scenario;
use scotch::Report;
use scotch_sim::trace::{TraceConfig, TraceLevel};
use scotch_sim::SimTime;

/// Matches the bench crate's `DEFAULT_SEED` and the golden reports.
const SEED: u64 = 20141202;

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, got: &str) {
    let path = fixture_path(name);
    if std::env::var_os("SCOTCH_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             run `SCOTCH_UPDATE_GOLDEN=1 cargo test -p scotch --test golden_trace`",
            path.display()
        )
    });
    if want != got {
        let actual = path.with_extension("actual.jsonl");
        std::fs::write(&actual, got).unwrap();
        let line = want
            .lines()
            .zip(got.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| want.lines().count().min(got.lines().count()) + 1);
        panic!(
            "{name}: trace is not byte-identical to fixture {} \
             (first difference at line {line}; actual saved to {})",
            path.display(),
            actual.display()
        );
    }
}

/// The small fixed scenario every trace test runs: overlay datacenter
/// under a flood strong enough to activate the overlay, verbose tracing so
/// per-flow events are pinned too.
fn traced_run() -> Report {
    Scenario::overlay_datacenter(2)
        .with_clients(80.0)
        .with_attack(1000.0)
        .with_tracing(TraceConfig::verbose())
        .run(SimTime::from_secs(2), SEED)
}

/// Pin the exact event sequence (kind, order, timestamps, payloads) of the
/// small overlay scenario.
#[test]
fn overlay_trace_is_bit_identical_to_fixture() {
    let report = traced_run();
    assert!(
        report.trace.total_recorded() > 0,
        "scenario produced no trace events"
    );
    check_golden("scotch_eval_overlay.trace.jsonl", &report.trace_jsonl());
}

/// Two runs of the same `(scenario, seed)` must produce byte-identical
/// traces AND byte-identical metrics snapshots.
#[test]
fn trace_and_metrics_are_deterministic_across_runs() {
    let a = traced_run();
    let b = traced_run();
    assert_eq!(a.trace_jsonl(), b.trace_jsonl());
    assert_eq!(a.metrics.entries, b.metrics.entries);
    assert_eq!(a.metrics_json(), b.metrics_json());
}

/// Tracing must not perturb the simulation: the canonical report of a
/// traced run is byte-identical to the untraced golden run.
#[test]
fn tracing_does_not_change_the_canonical_report() {
    let traced = traced_run();
    let untraced = Scenario::overlay_datacenter(2)
        .with_clients(80.0)
        .with_attack(1000.0)
        .run(SimTime::from_secs(2), SEED);
    assert_eq!(traced.canonical_json(), untraced.canonical_json());
}

/// Brief-level tracing records state transitions but not per-flow events.
#[test]
fn brief_level_omits_per_flow_events() {
    let report = Scenario::overlay_datacenter(2)
        .with_clients(80.0)
        .with_attack(1000.0)
        .with_tracing(TraceConfig::default())
        .run(SimTime::from_secs(2), SEED);
    let records = report.trace.records();
    assert!(!records.is_empty());
    for rec in &records {
        assert!(
            rec.event.level() <= TraceLevel::Brief,
            "brief trace contains verbose event {:?}",
            rec.event
        );
    }
}

/// The registry snapshot cross-checks the per-component stats structs it
/// was populated from.
#[test]
fn metrics_snapshot_matches_report_counters() {
    let report = traced_run();
    let m = &report.metrics;
    assert_eq!(
        m.get("app.packet_ins"),
        Some(report.app.packet_ins as f64),
        "registry and AppStats disagree"
    );
    assert_eq!(
        m.get("app.activations"),
        Some(report.app.activations as f64)
    );
    assert_eq!(
        m.get("flow.latency_ns.count"),
        Some(report.latency.count() as f64)
    );
    let tx_total: f64 = [
        "flow_mod",
        "group_mod",
        "packet_out",
        "flow_stats_request",
        "echo_request",
        "barrier",
    ]
    .iter()
    .map(|k| m.get(&format!("controller.tx.{k}")).unwrap_or(0.0))
    .sum();
    assert!(tx_total > 0.0, "no controller commands counted");
    // Periodic gauges were sampled (2 s horizon, 1 Hz sweep).
    assert!(m.get("controller.flowdb.size.samples").unwrap_or(0.0) >= 1.0);
}
