#![warn(missing_docs)]

//! A dependency-free shim with the subset of the `proptest` API this
//! workspace uses.
//!
//! The real `proptest` crate cannot be vendored here (the build is
//! intentionally offline), so this crate re-implements the macro surface the
//! tests rely on: the [`proptest!`] block macro, `prop_assert*` assertions,
//! range / tuple / `vec` / `option` / [`any`] strategies, and
//! [`ProptestConfig`] with a `cases` knob.
//!
//! Differences from upstream, by design:
//!
//! * Case generation is **deterministic**: case `i` of every test draws from
//!   a generator seeded with a fixed function of `i`. Reruns are exactly
//!   reproducible, so there is no failure-persistence file.
//! * There is no shrinking. A failing case panics with the generated inputs
//!   visible in the assertion message.

use std::ops::{Range, RangeInclusive};

/// Configuration block accepted by `#![proptest_config(..)]`.
///
/// Only `cases` is honoured; construct the rest with
/// `..ProptestConfig::default()` exactly as with the real crate.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property test.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 1024,
        }
    }
}

/// Deterministic value source handed to [`Strategy::sample`].
///
/// SplitMix64: tiny, full-period, and plenty uniform for test-case
/// generation.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// A generator seeded for one test case.
    pub fn new(seed: u64) -> Self {
        Gen { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift bound; bias is < 2^-64 per draw, irrelevant for
        // test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A source of values of one type. The only operation the shim needs.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn sample(&self, g: &mut Gen) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + g.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, g: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain u64/i64 inclusive range.
                    return g.next_u64() as $t;
                }
                (lo as i128 + g.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, g: &mut Gen) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + g.f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, g: &mut Gen) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (g.f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+);)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, g: &mut Gen) -> Self::Value {
                ($(self.$i.sample(g),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Types with a whole-domain default strategy (the shim's `any::<T>()`).
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(g: &mut Gen) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(g: &mut Gen) -> $t {
                g.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(g: &mut Gen) -> bool {
        g.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(g: &mut Gen) -> f64 {
        g.f64()
    }
}

/// Whole-domain strategy marker returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The strategy generating any value of `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, g: &mut Gen) -> T {
        T::arbitrary(g)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Gen, Strategy};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 0..256)`: a vector of `element` draws.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, g: &mut Gen) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                Strategy::sample(&self.len, g)
            };
            (0..n).map(|_| self.element.sample(g)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Gen, Strategy};

    /// Strategy for `Option<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(inner)`: `None` a quarter of the time, `Some(draw)` otherwise
    /// (matching upstream's default 75 % `Some` bias).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, g: &mut Gen) -> Option<S::Value> {
            if g.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(g))
            }
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Property assertion; the shim maps it to a plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; maps to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion; maps to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Discard the current case when the condition is false.
///
/// The shim does not redraw a replacement: it simply moves on to the next
/// case index, so heavy filtering thins the effective case count. Must be
/// used at the top level of a `proptest!` body (it expands to `continue` on
/// the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// The `proptest!` block: zero or more `#[test]` functions whose parameters
/// are either `name in strategy` or `name: Type` (sugar for `any::<Type>()`).
///
/// Each function expands to a loop over `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each property function in the block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases as u64 {
                let mut __gen = $crate::Gen::new(
                    0x5eed_0000u64 ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $crate::__proptest_bind!(__gen, $($params)*);
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Internal: bind one parameter list entry, then recurse.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($g:ident $(,)?) => {};
    ($g:ident, $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strategy), &mut $g);
        $crate::__proptest_bind!($g, $($rest)*);
    };
    ($g:ident, $name:ident in $strategy:expr) => {
        let $name = $crate::Strategy::sample(&($strategy), &mut $g);
    };
    ($g:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $g);
        $crate::__proptest_bind!($g, $($rest)*);
    };
    ($g:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $g);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_is_deterministic() {
        let mut a = Gen::new(7);
        let mut b = Gen::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut g = Gen::new(1);
        for _ in 0..1000 {
            let x = (10u64..20).sample(&mut g);
            assert!((10..20).contains(&x));
            let f = (0.5f64..3.0).sample(&mut g);
            assert!((0.5..3.0).contains(&f));
            let i = (-5i32..5).sample(&mut g);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_len_in_range() {
        let mut g = Gen::new(2);
        for _ in 0..200 {
            let v = collection::vec(any::<u8>(), 3..9).sample(&mut g);
            assert!((3..9).contains(&v.len()));
        }
    }

    #[test]
    fn option_of_mixes_none_and_some() {
        let mut g = Gen::new(3);
        let draws: Vec<Option<u16>> = (0..200)
            .map(|_| option::of(0u16..48).sample(&mut g))
            .collect();
        assert!(draws.iter().any(|d| d.is_none()));
        assert!(draws.iter().any(|d| d.is_some()));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: mixed `in` and `:` parameters bind.
        #[test]
        fn macro_binds_parameters(a in 0u64..100, b: u8, pair in (0u16..4, 1usize..3)) {
            prop_assert!(a < 100);
            let _ = b;
            prop_assert!(pair.0 < 4);
            prop_assert!((1..3).contains(&pair.1));
        }

        /// `prop_assume!` discards cases instead of failing them.
        #[test]
        fn assume_discards_cases(a in 0u64..100) {
            prop_assume!(a % 2 == 0);
            prop_assert!(a % 2 == 0);
        }
    }
}
