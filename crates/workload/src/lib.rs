#![warn(missing_docs)]

//! # scotch-workload
//!
//! Traffic generators reproducing the paper's workloads:
//!
//! * [`ddos::DdosAttacker`] — the hping3 spoofed-source SYN flood of §3.2:
//!   every packet is a fresh flow ("the flow rate … is equivalent to the
//!   packet rate").
//! * [`clients::ClientWorkload`] — the legitimate client initiating new
//!   flows at a fixed rate (100 flows/s in the paper's experiments).
//! * [`flash::FlashCrowd`] — a legitimate load surge: the arrival rate
//!   ramps up to a peak and back down.
//! * [`trace::TraceWorkload`] — a synthetic data-center trace with Poisson
//!   flow arrivals and bounded-Pareto flow sizes, matching the measurement
//!   the paper leans on ("the majority of link capacity is consumed by a
//!   small fraction of large flows", paper reference 1).
//!
//! All generators implement [`FlowSource`]: a pull-based iterator of
//! [`FlowArrival`]s, so the composition root can lazily interleave any
//! number of sources in one deterministic event stream.

pub mod clients;
pub mod ddos;
pub mod flash;
pub mod trace;

use scotch_net::{FlowId, FlowKey};
use scotch_sim::{SimDuration, SimTime};

/// A flow to be injected by a source host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpec {
    /// Accounting id (unique across generators).
    pub id: FlowId,
    /// The 5-tuple.
    pub key: FlowKey,
    /// Number of packets in the flow (≥ 1; the first is the
    /// `FlowStart`).
    pub packets: u32,
    /// Size of each packet in bytes.
    pub packet_size: u32,
    /// Inter-packet gap within the flow.
    pub packet_interval: SimDuration,
    /// True for attack traffic (metrics-only marker).
    pub is_attack: bool,
}

impl FlowSpec {
    /// Total bytes the flow will carry.
    pub fn total_bytes(&self) -> u64 {
        self.packets as u64 * self.packet_size as u64
    }

    /// Duration from first to last packet emission.
    pub fn duration(&self) -> SimDuration {
        SimDuration(self.packet_interval.0 * self.packets.saturating_sub(1) as u64)
    }
}

/// One flow arrival produced by a generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowArrival {
    /// When the flow's first packet is emitted.
    pub at: SimTime,
    /// The flow.
    pub flow: FlowSpec,
}

/// A pull-based stream of flow arrivals with non-decreasing timestamps.
///
/// `Send` is a supertrait so boxed sources can migrate with their shard
/// when the simulation runs sharded across worker threads.
pub trait FlowSource: Send {
    /// The next arrival, or `None` when the source is exhausted.
    fn next_arrival(&mut self) -> Option<FlowArrival>;
}

/// Allocates globally unique flow ids to generators.
///
/// Each generator gets a distinct 16-bit stream id; the low 48 bits count
/// flows within the stream.
#[derive(Debug, Clone, Default)]
pub struct FlowIdAllocator {
    next_stream: u16,
}

impl FlowIdAllocator {
    /// A fresh allocator.
    pub fn new() -> Self {
        FlowIdAllocator::default()
    }

    /// Reserve the next stream id.
    pub fn stream(&mut self) -> FlowIdStream {
        let s = self.next_stream;
        self.next_stream += 1;
        FlowIdStream {
            base: (s as u64) << 48,
            next: 0,
        }
    }
}

/// Per-generator flow id counter.
#[derive(Debug, Clone)]
pub struct FlowIdStream {
    base: u64,
    next: u64,
}

impl FlowIdStream {
    /// The next unique flow id.
    pub fn next_id(&mut self) -> FlowId {
        let id = FlowId(self.base | self.next);
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_net::IpAddr;

    #[test]
    fn flow_spec_accounting() {
        let f = FlowSpec {
            id: FlowId(1),
            key: FlowKey::tcp(IpAddr::new(1, 1, 1, 1), 1, IpAddr::new(2, 2, 2, 2), 80),
            packets: 10,
            packet_size: 1500,
            packet_interval: SimDuration::from_millis(1),
            is_attack: false,
        };
        assert_eq!(f.total_bytes(), 15_000);
        assert_eq!(f.duration(), SimDuration::from_millis(9));
    }

    #[test]
    fn allocator_streams_do_not_collide() {
        let mut alloc = FlowIdAllocator::new();
        let mut a = alloc.stream();
        let mut b = alloc.stream();
        let ids: std::collections::HashSet<_> =
            (0..100).flat_map(|_| [a.next_id(), b.next_id()]).collect();
        assert_eq!(ids.len(), 200);
    }

    #[test]
    fn single_packet_flow_duration_is_zero() {
        let f = FlowSpec {
            id: FlowId(1),
            key: FlowKey::tcp(IpAddr::new(1, 1, 1, 1), 1, IpAddr::new(2, 2, 2, 2), 80),
            packets: 1,
            packet_size: 64,
            packet_interval: SimDuration::from_millis(1),
            is_attack: true,
        };
        assert_eq!(f.duration(), SimDuration::ZERO);
    }
}
