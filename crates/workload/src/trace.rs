//! Synthetic data-center trace.
//!
//! Substitute for the paper's trace-driven experiment input (we have no
//! production traces): Poisson flow arrivals over a host population with
//! bounded-Pareto flow sizes, reproducing the two properties the
//! evaluation depends on — most flows are mice, most *bytes* ride a few
//! elephants (paper reference 1, Benson et al.).

use crate::{FlowArrival, FlowIdStream, FlowSource, FlowSpec};
use scotch_net::{FlowKey, IpAddr};
use scotch_sim::{SimDuration, SimRng, SimTime};

/// A Poisson all-to-all workload over a set of hosts.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    /// Aggregate flow arrival rate, flows/s.
    pub rate: f64,
    /// Participating host addresses (flows pick distinct src/dst pairs).
    pub hosts: Vec<IpAddr>,
    /// Flow size bounds, packets.
    pub size_lo: u32,
    /// Upper bound, packets.
    pub size_hi: u32,
    /// Pareto tail index.
    pub alpha: f64,
    /// Packet size, bytes.
    pub packet_size: u32,
    /// Intra-flow packet gap.
    pub packet_interval: SimDuration,
    /// Activation start (kept for introspection; arrivals begin here).
    #[allow(dead_code)]
    start: SimTime,
    end: SimTime,
    next_at: Option<SimTime>,
    next_sport: u16,
    ids: FlowIdStream,
    rng: SimRng,
}

impl TraceWorkload {
    /// A trace over `hosts` at `rate` flows/s, active `[start, end)`.
    /// Needs at least two hosts.
    pub fn new(
        rate: f64,
        hosts: Vec<IpAddr>,
        start: SimTime,
        end: SimTime,
        ids: FlowIdStream,
        rng: SimRng,
    ) -> Self {
        assert!(hosts.len() >= 2, "need at least two hosts");
        assert!(rate > 0.0);
        TraceWorkload {
            rate,
            hosts,
            size_lo: 1,
            size_hi: 10_000,
            alpha: 1.2,
            packet_size: 1000,
            packet_interval: SimDuration::from_millis(1),
            start,
            end,
            next_at: Some(start),
            next_sport: 1024,
            ids,
            rng,
        }
    }

    /// Builder: flow size distribution parameters.
    pub fn with_sizes(mut self, lo: u32, hi: u32, alpha: f64) -> Self {
        self.size_lo = lo;
        self.size_hi = hi;
        self.alpha = alpha;
        self
    }

    /// Builder: intra-flow pacing.
    pub fn with_packet_interval(mut self, gap: SimDuration) -> Self {
        self.packet_interval = gap;
        self
    }
}

impl FlowSource for TraceWorkload {
    fn next_arrival(&mut self) -> Option<FlowArrival> {
        let at = self.next_at?;
        if at >= self.end {
            self.next_at = None;
            return None;
        }
        self.next_at = Some(at + SimDuration::from_secs_f64(self.rng.exp(1.0 / self.rate)));

        let si = self.rng.index(self.hosts.len());
        let mut di = self.rng.index(self.hosts.len() - 1);
        if di >= si {
            di += 1;
        }
        let sport = self.next_sport;
        self.next_sport = if sport == u16::MAX { 1024 } else { sport + 1 };
        let packets = self
            .rng
            .bounded_pareto(self.size_lo as f64, self.size_hi as f64, self.alpha)
            .round() as u32;
        Some(FlowArrival {
            at,
            flow: FlowSpec {
                id: self.ids.next_id(),
                key: FlowKey::tcp(self.hosts[si], sport, self.hosts[di], 80),
                packets: packets.max(1),
                packet_size: self.packet_size,
                packet_interval: self.packet_interval,
                is_attack: false,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowIdAllocator;

    fn hosts(n: u32) -> Vec<IpAddr> {
        (0..n)
            .map(|i| IpAddr(IpAddr::new(10, 0, 1, 0).0 + i))
            .collect()
    }

    fn trace(rate: f64, n_hosts: u32, secs: u64) -> TraceWorkload {
        let mut alloc = FlowIdAllocator::new();
        TraceWorkload::new(
            rate,
            hosts(n_hosts),
            SimTime::ZERO,
            SimTime::from_secs(secs),
            alloc.stream(),
            SimRng::new(21),
        )
    }

    #[test]
    fn rate_is_approximately_right() {
        let mut t = trace(500.0, 8, 10);
        let n = std::iter::from_fn(|| t.next_arrival()).count();
        assert!((4500..5500).contains(&n), "n={n}");
    }

    #[test]
    fn src_and_dst_differ_and_are_in_population() {
        let mut t = trace(200.0, 4, 2);
        let pop = hosts(4);
        while let Some(f) = t.next_arrival() {
            assert_ne!(f.flow.key.src, f.flow.key.dst);
            assert!(pop.contains(&f.flow.key.src));
            assert!(pop.contains(&f.flow.key.dst));
        }
    }

    #[test]
    fn sizes_respect_bounds() {
        let mut t = trace(1000.0, 4, 2).with_sizes(5, 500, 1.1);
        while let Some(f) = t.next_arrival() {
            assert!((5..=500).contains(&f.flow.packets), "{}", f.flow.packets);
        }
    }

    #[test]
    #[should_panic(expected = "two hosts")]
    fn rejects_single_host() {
        let mut alloc = FlowIdAllocator::new();
        let _ = TraceWorkload::new(
            10.0,
            hosts(1),
            SimTime::ZERO,
            SimTime::from_secs(1),
            alloc.stream(),
            SimRng::new(1),
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let collect = || {
            let mut t = trace(100.0, 4, 2);
            std::iter::from_fn(move || t.next_arrival())
                .map(|f| (f.at, f.flow.key, f.flow.packets))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }
}
