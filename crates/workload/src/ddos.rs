//! The spoofed-source DDoS attacker.
//!
//! §3.2: "a DDoS attacker generates SYN attack packets using spoofed
//! source IP addresses. The switch treats each spoofed packet as a new
//! flow … in our experiment, the flow rate, i.e., the number of new flows
//! per second, is equivalent to the packet rate." Generated with hping3 at
//! constant rate in the paper; we default to constant spacing with an
//! optional Poisson mode.

use crate::{FlowArrival, FlowIdStream, FlowSource, FlowSpec};
use scotch_net::{FlowKey, IpAddr};
use scotch_sim::{SimDuration, SimRng, SimTime};

/// Packet spacing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spacing {
    /// Constant inter-arrival (hping3 `-i` style).
    Constant,
    /// Poisson process at the same mean rate.
    Poisson,
}

/// A spoofed-source flood towards one victim.
#[derive(Debug, Clone)]
pub struct DdosAttacker {
    /// Attack rate: new flows (= packets) per second.
    pub rate: f64,
    /// Victim address.
    pub target: IpAddr,
    /// Victim port.
    pub target_port: u16,
    /// Attack packet size (64 B SYNs by default; the paper notes even
    /// 1.5 KB packets leave the data plane idle).
    pub packet_size: u32,
    spacing: Spacing,
    /// Activation start (kept for introspection; arrivals begin here).
    #[allow(dead_code)]
    start: SimTime,
    end: SimTime,
    next_at: Option<SimTime>,
    ids: FlowIdStream,
    rng: SimRng,
}

impl DdosAttacker {
    /// A flood of `rate` flows/s against `target`, active `[start, end)`.
    pub fn new(
        rate: f64,
        target: IpAddr,
        start: SimTime,
        end: SimTime,
        ids: FlowIdStream,
        rng: SimRng,
    ) -> Self {
        assert!(rate > 0.0, "attack rate must be positive");
        DdosAttacker {
            rate,
            target,
            target_port: 80,
            packet_size: 64,
            spacing: Spacing::Constant,
            start,
            end,
            next_at: Some(start),
            ids,
            rng,
        }
    }

    /// Builder: Poisson spacing instead of constant.
    pub fn poisson(mut self) -> Self {
        self.spacing = Spacing::Poisson;
        self
    }

    fn gap(&mut self) -> SimDuration {
        match self.spacing {
            Spacing::Constant => SimDuration::from_secs_f64(1.0 / self.rate),
            Spacing::Poisson => SimDuration::from_secs_f64(self.rng.exp(1.0 / self.rate)),
        }
    }
}

impl FlowSource for DdosAttacker {
    fn next_arrival(&mut self) -> Option<FlowArrival> {
        let at = self.next_at?;
        if at >= self.end {
            self.next_at = None;
            return None;
        }
        let gap = self.gap();
        self.next_at = Some(at + gap.max(SimDuration::from_nanos(1)));

        // Spoofed source: uniform over the IPv4 space; the ephemeral port
        // varies too, as hping3 does.
        let src = IpAddr(self.rng.u32());
        let sport = 1024 + (self.rng.u32() % 60_000) as u16;
        let key = FlowKey::tcp(src, sport, self.target, self.target_port);
        Some(FlowArrival {
            at,
            flow: FlowSpec {
                id: self.ids.next_id(),
                key,
                packets: 1,
                packet_size: self.packet_size,
                packet_interval: SimDuration::from_millis(1),
                is_attack: true,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowIdAllocator;

    fn attacker(rate: f64) -> DdosAttacker {
        let mut alloc = FlowIdAllocator::new();
        DdosAttacker::new(
            rate,
            IpAddr::new(10, 0, 0, 2),
            SimTime::ZERO,
            SimTime::from_secs(1),
            alloc.stream(),
            SimRng::new(5),
        )
    }

    #[test]
    fn constant_rate_produces_expected_count() {
        let mut a = attacker(1000.0);
        let flows: Vec<_> = std::iter::from_fn(|| a.next_arrival()).collect();
        assert_eq!(flows.len(), 1000);
        // Evenly spaced by 1 ms.
        assert_eq!(flows[1].at - flows[0].at, SimDuration::from_millis(1));
    }

    #[test]
    fn every_packet_is_a_new_flow() {
        let mut a = attacker(500.0);
        let mut keys = std::collections::HashSet::new();
        let mut n = 0;
        while let Some(f) = a.next_arrival() {
            assert_eq!(f.flow.packets, 1);
            assert!(f.flow.is_attack);
            keys.insert(f.flow.key);
            n += 1;
        }
        // Spoofed sources: virtually all keys distinct.
        assert!(keys.len() as f64 > 0.99 * n as f64);
    }

    #[test]
    fn arrivals_are_monotone_and_bounded() {
        let mut a = attacker(2000.0).poisson();
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some(f) = a.next_arrival() {
            assert!(f.at >= last);
            assert!(f.at < SimTime::from_secs(1));
            last = f.at;
            count += 1;
        }
        // Poisson at 2000/s over 1 s: expect ~2000 ± 5σ.
        assert!((1700..2300).contains(&count), "count={count}");
    }

    #[test]
    fn targets_the_victim() {
        let mut a = attacker(100.0);
        let f = a.next_arrival().unwrap();
        assert_eq!(f.flow.key.dst, IpAddr::new(10, 0, 0, 2));
        assert_eq!(f.flow.key.dport, 80);
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut a = attacker(300.0);
            std::iter::from_fn(move || a.next_arrival())
                .map(|f| (f.at, f.flow.key))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }
}
