//! Legitimate client traffic.
//!
//! §3.2's client "attempts to initiate new flows to the server" at a fixed
//! rate (100 flows/s in the paper, each new flow one spoof-free packet —
//! "we simulate the new flows by spoofing each packet's source IP address"
//! applies to both client and attacker in the testbed; we keep the client's
//! source fixed and vary its ephemeral port, which creates a fresh 5-tuple
//! per flow all the same).

use crate::{FlowArrival, FlowIdStream, FlowSource, FlowSpec};
use scotch_net::{FlowKey, IpAddr};
use scotch_sim::{SimDuration, SimRng, SimTime};

/// How many packets a generated flow carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowSize {
    /// Every flow has exactly `n` packets (the paper's new-flow-per-packet
    /// probes are `Fixed(1)`).
    Fixed(u32),
    /// Bounded Pareto over `[lo, hi]` packets with shape `alpha` — the
    /// heavy-tailed mice/elephants mix.
    Pareto {
        /// Minimum packets.
        lo: u32,
        /// Maximum packets.
        hi: u32,
        /// Tail index (1.1–1.3 is typical of DC measurements).
        alpha: f64,
    },
}

impl FlowSize {
    /// Draw a flow size.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        match self {
            FlowSize::Fixed(n) => (*n).max(1),
            FlowSize::Pareto { lo, hi, alpha } => {
                rng.bounded_pareto(*lo as f64, *hi as f64, *alpha).round() as u32
            }
        }
    }
}

/// A client opening flows to one server at a constant rate.
#[derive(Debug, Clone)]
pub struct ClientWorkload {
    /// New-flow rate, flows/s.
    pub rate: f64,
    /// Client address.
    pub src: IpAddr,
    /// Server address.
    pub dst: IpAddr,
    /// Server port.
    pub dport: u16,
    /// Flow size distribution.
    pub size: FlowSize,
    /// Packet size within flows.
    pub packet_size: u32,
    /// Intra-flow packet gap.
    pub packet_interval: SimDuration,
    /// When set, each flow's source address is drawn from
    /// `src + [0, spoof_range)` — the paper's probe methodology: "we
    /// simulate the new flows by spoofing each packet's source IP
    /// address" (§3.2), which applies to the client as well as the
    /// attacker, so every probe is a fresh (src, dst) rule.
    pub spoof_range: Option<u32>,
    poisson: bool,
    /// Activation start (kept for introspection; arrivals begin here).
    #[allow(dead_code)]
    start: SimTime,
    end: SimTime,
    next_at: Option<SimTime>,
    next_sport: u16,
    next_spoof: u32,
    ids: FlowIdStream,
    rng: SimRng,
}

impl ClientWorkload {
    /// A client sending `rate` new flows/s from `src` to `dst`, active
    /// `[start, end)`. Defaults: single-packet 64 B flows (the paper's
    /// probe traffic).
    pub fn new(
        rate: f64,
        src: IpAddr,
        dst: IpAddr,
        start: SimTime,
        end: SimTime,
        ids: FlowIdStream,
        rng: SimRng,
    ) -> Self {
        assert!(rate > 0.0, "client rate must be positive");
        ClientWorkload {
            rate,
            src,
            dst,
            dport: 80,
            size: FlowSize::Fixed(1),
            packet_size: 64,
            packet_interval: SimDuration::from_millis(1),
            spoof_range: None,
            poisson: false,
            start,
            end,
            next_at: Some(start),
            next_sport: 1024,
            next_spoof: 0,
            ids,
            rng,
        }
    }

    /// Builder: spoof the source address over a range of `n` addresses
    /// starting at `src` (round-robin, so flow keys stay deterministic).
    pub fn with_spoofed_sources(mut self, n: u32) -> Self {
        assert!(n >= 1);
        self.spoof_range = Some(n);
        self
    }

    /// Builder: Poisson flow inter-arrivals instead of constant spacing.
    /// Constant spacing phase-locks with deterministic service periods in
    /// the switch models (an artifact a real client's OS jitter destroys),
    /// so measurement scenarios should prefer this.
    pub fn poisson(mut self) -> Self {
        self.poisson = true;
        self
    }

    /// Builder: flow size distribution.
    pub fn with_size(mut self, size: FlowSize) -> Self {
        self.size = size;
        self
    }

    /// Builder: packet size.
    pub fn with_packet_size(mut self, bytes: u32) -> Self {
        self.packet_size = bytes;
        self
    }

    /// Builder: intra-flow packet interval.
    pub fn with_packet_interval(mut self, gap: SimDuration) -> Self {
        self.packet_interval = gap;
        self
    }
}

impl FlowSource for ClientWorkload {
    fn next_arrival(&mut self) -> Option<FlowArrival> {
        let at = self.next_at?;
        if at >= self.end {
            self.next_at = None;
            return None;
        }
        let gap = if self.poisson {
            self.rng.exp(1.0 / self.rate)
        } else {
            1.0 / self.rate
        };
        self.next_at = Some(at + SimDuration::from_secs_f64(gap).max(SimDuration::from_nanos(1)));

        let sport = self.next_sport;
        // Walk the ephemeral range, skipping the reserved low ports on
        // wrap.
        self.next_sport = if sport == u16::MAX { 1024 } else { sport + 1 };
        let src = match self.spoof_range {
            Some(n) => {
                let s = IpAddr(self.src.0 + self.next_spoof);
                self.next_spoof = (self.next_spoof + 1) % n;
                s
            }
            None => self.src,
        };
        let key = FlowKey::tcp(src, sport, self.dst, self.dport);
        let packets = self.size.sample(&mut self.rng);
        Some(FlowArrival {
            at,
            flow: FlowSpec {
                id: self.ids.next_id(),
                key,
                packets,
                packet_size: self.packet_size,
                packet_interval: self.packet_interval,
                is_attack: false,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowIdAllocator;

    fn client(rate: f64, secs: u64) -> ClientWorkload {
        let mut alloc = FlowIdAllocator::new();
        ClientWorkload::new(
            rate,
            IpAddr::new(10, 0, 0, 1),
            IpAddr::new(10, 0, 0, 2),
            SimTime::ZERO,
            SimTime::from_secs(secs),
            alloc.stream(),
            SimRng::new(11),
        )
    }

    #[test]
    fn paper_rate_100_flows_per_second() {
        let mut c = client(100.0, 2);
        let flows: Vec<_> = std::iter::from_fn(|| c.next_arrival()).collect();
        assert_eq!(flows.len(), 200);
        assert!(flows.iter().all(|f| !f.flow.is_attack));
    }

    #[test]
    fn each_flow_has_fresh_five_tuple() {
        let mut c = client(500.0, 1);
        let keys: std::collections::HashSet<_> = std::iter::from_fn(|| c.next_arrival())
            .map(|f| f.flow.key)
            .collect();
        assert_eq!(keys.len(), 500);
    }

    #[test]
    fn pareto_sizes_are_heavy_tailed() {
        let mut c = client(2000.0, 5).with_size(FlowSize::Pareto {
            lo: 1,
            hi: 100_000,
            alpha: 1.2,
        });
        let mut sizes: Vec<u64> = std::iter::from_fn(|| c.next_arrival())
            .map(|f| f.flow.packets as u64)
            .collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sizes.iter().sum();
        let top10: u64 = sizes.iter().take(sizes.len() / 10).sum();
        assert!(
            top10 as f64 / total as f64 > 0.5,
            "top-10% flows carry {:.2} of bytes",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn sport_wraps_into_ephemeral_range() {
        let mut c = client(10.0, 1);
        c.next_sport = u16::MAX;
        let a = c.next_arrival().unwrap();
        let b = c.next_arrival().unwrap();
        assert_eq!(a.flow.key.sport, u16::MAX);
        assert_eq!(b.flow.key.sport, 1024);
    }

    #[test]
    fn fixed_size_zero_clamps_to_one() {
        let mut rng = SimRng::new(1);
        assert_eq!(FlowSize::Fixed(0).sample(&mut rng), 1);
    }
}
