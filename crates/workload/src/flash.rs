//! Flash crowds: a *legitimate* control-plane overload.
//!
//! The paper stresses throughout that Scotch handles "normal (e.g., flash
//! crowds) or abnormal (e.g., DDoS attacks) traffic surge" alike. A flash
//! crowd differs from the flood in two ways that matter to Scotch: the
//! sources are real (flows complete and are not droppable as malicious)
//! and the surge is transient — which is what exercises the §5.5
//! withdrawal path.

use crate::{FlowArrival, FlowIdStream, FlowSource, FlowSpec};
use scotch_net::{FlowKey, IpAddr};
use scotch_sim::{SimDuration, SimRng, SimTime};

/// A trapezoidal arrival-rate profile: `base` → ramp up → `peak` → ramp
/// down → `base`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateProfile {
    /// Baseline rate, flows/s.
    pub base: f64,
    /// Peak rate, flows/s.
    pub peak: f64,
    /// Ramp-up starts.
    pub surge_start: SimTime,
    /// Peak reached.
    pub peak_start: SimTime,
    /// Peak ends.
    pub peak_end: SimTime,
    /// Back to baseline.
    pub surge_end: SimTime,
}

impl RateProfile {
    /// Instantaneous arrival rate at `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let lerp = |a: f64, b: f64, t0: SimTime, t1: SimTime| -> f64 {
            let span = t1.duration_since(t0).as_secs_f64();
            if span <= 0.0 {
                return b;
            }
            let frac = (t.duration_since(t0).as_secs_f64() / span).clamp(0.0, 1.0);
            a + (b - a) * frac
        };
        if t < self.surge_start {
            self.base
        } else if t < self.peak_start {
            lerp(self.base, self.peak, self.surge_start, self.peak_start)
        } else if t < self.peak_end {
            self.peak
        } else if t < self.surge_end {
            lerp(self.peak, self.base, self.peak_end, self.surge_end)
        } else {
            self.base
        }
    }
}

/// Many clients hitting one service at a time-varying rate.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    /// The rate profile.
    pub profile: RateProfile,
    /// Service (destination) address.
    pub dst: IpAddr,
    /// Client population: sources are drawn uniformly from this many
    /// distinct addresses (they are *real* hosts, unlike the flood's
    /// spoofed space).
    pub client_pool: u32,
    /// Base of the client address range.
    pub client_base: IpAddr,
    /// Packets per flow.
    pub packets_per_flow: u32,
    /// Packet size in bytes.
    pub packet_size: u32,
    /// Activation start (kept for introspection; arrivals begin here).
    #[allow(dead_code)]
    start: SimTime,
    end: SimTime,
    next_at: Option<SimTime>,
    ids: FlowIdStream,
    rng: SimRng,
}

impl FlashCrowd {
    /// A crowd active `[start, end)` following `profile`.
    pub fn new(
        profile: RateProfile,
        dst: IpAddr,
        start: SimTime,
        end: SimTime,
        ids: FlowIdStream,
        rng: SimRng,
    ) -> Self {
        FlashCrowd {
            profile,
            dst,
            client_pool: 1000,
            client_base: IpAddr::new(172, 16, 0, 0),
            packets_per_flow: 3,
            packet_size: 512,
            start,
            end,
            next_at: Some(start),
            ids,
            rng,
        }
    }
}

impl FlowSource for FlashCrowd {
    fn next_arrival(&mut self) -> Option<FlowArrival> {
        let at = self.next_at?;
        if at >= self.end {
            self.next_at = None;
            return None;
        }
        let rate = self.profile.rate_at(at).max(0.1);
        self.next_at = Some(at + SimDuration::from_secs_f64(self.rng.exp(1.0 / rate)));

        let src = IpAddr(self.client_base.0 + self.rng.u32() % self.client_pool);
        let sport = 1024 + (self.rng.u32() % 60_000) as u16;
        Some(FlowArrival {
            at,
            flow: FlowSpec {
                id: self.ids.next_id(),
                key: FlowKey::tcp(src, sport, self.dst, 80),
                packets: self.packets_per_flow,
                packet_size: self.packet_size,
                packet_interval: SimDuration::from_millis(1),
                is_attack: false,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowIdAllocator;

    fn profile() -> RateProfile {
        RateProfile {
            base: 50.0,
            peak: 2000.0,
            surge_start: SimTime::from_secs(2),
            peak_start: SimTime::from_secs(4),
            peak_end: SimTime::from_secs(8),
            surge_end: SimTime::from_secs(10),
        }
    }

    #[test]
    fn rate_profile_shape() {
        let p = profile();
        assert_eq!(p.rate_at(SimTime::from_secs(0)), 50.0);
        assert_eq!(p.rate_at(SimTime::from_secs(3)), 1025.0); // midway up
        assert_eq!(p.rate_at(SimTime::from_secs(5)), 2000.0);
        assert_eq!(p.rate_at(SimTime::from_secs(9)), 1025.0); // midway down
        assert_eq!(p.rate_at(SimTime::from_secs(20)), 50.0);
    }

    #[test]
    fn surge_produces_more_flows_than_baseline() {
        let mut alloc = FlowIdAllocator::new();
        let mut fc = FlashCrowd::new(
            profile(),
            IpAddr::new(10, 0, 0, 2),
            SimTime::ZERO,
            SimTime::from_secs(12),
            alloc.stream(),
            SimRng::new(3),
        );
        let mut before = 0u32; // [0, 2): baseline
        let mut during = 0u32; // [4, 8): peak
        while let Some(f) = fc.next_arrival() {
            let t = f.at.as_secs_f64();
            if t < 2.0 {
                before += 1;
            } else if (4.0..8.0).contains(&t) {
                during += 1;
            }
        }
        // Peak is 40x the baseline rate over twice the window.
        assert!(during > 20 * before, "before={before} during={during}");
    }

    #[test]
    fn sources_are_a_finite_population() {
        let mut alloc = FlowIdAllocator::new();
        let mut fc = FlashCrowd::new(
            profile(),
            IpAddr::new(10, 0, 0, 2),
            SimTime::ZERO,
            SimTime::from_secs(12),
            alloc.stream(),
            SimRng::new(3),
        );
        let base = fc.client_base.0;
        let pool = fc.client_pool;
        while let Some(f) = fc.next_arrival() {
            assert!(f.flow.key.src.0 >= base && f.flow.key.src.0 < base + pool);
            assert!(!f.flow.is_attack);
        }
    }
}
