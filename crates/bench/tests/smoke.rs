//! Smoke test: every experiment runs end to end at smoke scale, produces a
//! well-formed table, and reproduces its headline shape.

use scotch_bench::{experiments, Scale, Table, DEFAULT_SEED};

fn by_id(tables: &[Table], id: &str) -> Table {
    tables
        .iter()
        .find(|t| t.id == id)
        .unwrap_or_else(|| panic!("missing table {id}"))
        .clone()
}

#[test]
fn all_experiments_run_and_have_rows() {
    let tables = experiments::run_matching("all", Scale::Smoke, DEFAULT_SEED);
    assert_eq!(tables.len(), experiments::all().len());
    for t in &tables {
        assert!(!t.rows.is_empty(), "{} produced no rows", t.id);
        assert!(!t.columns.is_empty());
        for row in &t.rows {
            assert_eq!(row.len(), t.columns.len(), "{} ragged row", t.id);
            for v in row {
                assert!(v.is_finite(), "{} non-finite cell", t.id);
            }
        }
    }

    // Headline shapes, one assertion per paper claim.

    // Fig. 3: Pica8 collapses at high attack rates, OVS does not.
    let fig3 = by_id(&tables, "fig3");
    let last = fig3.rows.last().unwrap();
    assert!(last[fig3.col("pica8_pronto")] > 0.8);
    assert!(last[fig3.col("open_vswitch")] < 0.1);

    // Fig. 4: the three control-path rates saturate together (~200/s).
    let fig4 = by_id(&tables, "fig4");
    let top = fig4.rows.last().unwrap();
    assert!((top[fig4.col("packet_in_rate")] - 200.0).abs() < 45.0);

    // Fig. 9: insertion success plateaus near 1000/s.
    let fig9 = by_id(&tables, "fig9");
    let plateau = fig9.rows.last().unwrap()[fig9.col("successful_rate")];
    assert!((850.0..1100.0).contains(&plateau), "plateau {plateau}");

    // Fig. 10: loss jumps past the 1300 rules/s knee.
    let fig10 = by_id(&tables, "fig10");
    for row in &fig10.rows {
        let loss = row[fig10.col("loss_1000pps")];
        if row[0] < 1300.0 {
            assert!(loss < 0.05, "rate {} loss {loss}", row[0]);
        } else {
            assert!(loss > 0.9, "rate {} loss {loss}", row[0]);
        }
    }

    // Fig. 11: differentiation keeps clients on the physical network.
    let fig11 = by_id(&tables, "fig11");
    for row in &fig11.rows {
        assert!(
            row[fig11.col("client_phys_frac_differentiated")]
                > 2.0 * row[fig11.col("client_phys_frac_shared")]
        );
    }

    // Fig. 12: after migration completes, migrated elephants run at lower
    // latency than the pinned-overlay arm.
    let fig12 = by_id(&tables, "fig12");
    let late_rows: Vec<_> = fig12
        .rows
        .iter()
        .filter(|r| r[0] >= 5.0 && r[fig12.col("latency_us_migration_off")] > 0.0)
        .collect();
    assert!(!late_rows.is_empty());
    for row in late_rows {
        assert!(
            row[fig12.col("latency_us_migration_on")] < row[fig12.col("latency_us_migration_off")],
            "t={} on={} off={}",
            row[0],
            row[1],
            row[2]
        );
    }

    // Fig. 13: capacity grows with the vSwitch pool.
    let fig13 = by_id(&tables, "fig13");
    let rates = fig13.column_values("vswitch_packet_in_rate");
    assert!(rates.last().unwrap() > &(2.0 * rates[0]));

    // Fig. 14: overlay path latency is a small multiple of physical.
    let fig14 = by_id(&tables, "fig14");
    assert!(fig14.rows[1][1] > 1.5 * fig14.rows[0][1]);

    // Fig. 15: Scotch beats baseline on flow success AND completion under
    // attack.
    let fig15 = by_id(&tables, "fig15");
    let success = fig15.column_values("flow_success");
    let completion = fig15.column_values("flow_completion");
    assert!(
        success[1] > success[0] + 0.3,
        "baseline {} scotch {}",
        success[0],
        success[1]
    );
    assert!(
        completion[1] > completion[0] + 0.4,
        "completion: baseline {} scotch {}",
        completion[0],
        completion[1]
    );

    // A1: without migration the mesh carries far more elephant traffic.
    let a1 = by_id(&tables, "ablation_migration");
    let fwd = a1.column_values("mesh_forwarded_pkts");
    assert!(fwd[1] > fwd[0], "migration should offload the mesh");

    // A2: round-robin buckets cause duplicate Packet-In storms.
    let a2 = by_id(&tables, "ablation_lb");
    let dups = a2.column_values("duplicate_packet_ins");
    assert!(
        dups[1] > 2.0 * dups[0].max(1.0),
        "hash {} rr {}",
        dups[0],
        dups[1]
    );

    // A3: a threshold below the residual client rate never withdraws.
    let a3 = by_id(&tables, "ablation_withdrawal");
    assert_eq!(a3.rows[0][a3.col("withdrawals")], 0.0);
    assert!(a3.rows[1][a3.col("withdrawals")] >= 1.0);
}
