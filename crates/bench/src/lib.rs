#![warn(missing_docs)]

//! # scotch-bench
//!
//! The experiment harness: one module per paper figure/table, each
//! producing the same rows/series the paper plots, plus the ablations
//! called out in DESIGN.md. The `figures` binary runs them and writes CSV
//! + JSON artifacts under `results/`.
//!
//! Experiment ids follow DESIGN.md §5: F3/F4/F9/F10 are the paper's
//! measurement figures; E11–E15 are the Scotch evaluation experiments the
//! paper's §6 describes; A1–A3 are design-choice ablations.

pub mod experiments;
pub mod output;

pub use output::{write_artifacts, Table};

/// Default per-experiment simulation seed; every experiment is
/// deterministic in it.
pub const DEFAULT_SEED: u64 = 20141202; // CoNEXT'14 presentation date

/// Scale knob: `Full` reproduces the paper's ranges; `Smoke` shrinks
/// sweeps and horizons so the whole suite runs in seconds (CI / tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale sweeps (seconds of simulated time per point).
    Full,
    /// Miniature sweeps for smoke testing.
    Smoke,
}

impl Scale {
    /// Pick `full` or `smoke` value.
    pub fn pick<T>(self, full: T, smoke: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Smoke => smoke,
        }
    }
}
