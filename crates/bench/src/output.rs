//! Result tables and artifact emission.

use scotch_runner::Json;
use std::fs;
use std::path::Path;

/// A rectangular result table: named columns, `f64` cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. `"fig3"`.
    pub id: String,
    /// Human title (printed as a header).
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows, each `columns.len()` long.
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    /// An empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut s = self.columns.join(",");
        s.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            s.push_str(&line.join(","));
            s.push('\n');
        }
        s
    }

    /// Render as an aligned text table for the terminal.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| format_num(*v)).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        for row in &cells {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Column index by name. Panics if absent (test helper).
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no column {name}"))
    }

    /// All values of one column.
    pub fn column_values(&self, name: &str) -> Vec<f64> {
        let i = self.col(name);
        self.rows.iter().map(|r| r[i]).collect()
    }

    /// Render as a JSON document (same layout the serde derive produced:
    /// `id`, `title`, `columns`, `rows`).
    pub fn to_json(&self) -> String {
        Json::obj()
            .set("id", self.id.as_str())
            .set("title", self.title.as_str())
            .set(
                "columns",
                Json::Arr(self.columns.iter().map(|c| Json::Str(c.clone())).collect()),
            )
            .set(
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| Json::Arr(r.iter().map(|v| Json::Num(*v)).collect()))
                        .collect(),
                ),
            )
            .pretty()
    }
}

fn format_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e9 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

/// Write `table` as `<dir>/<id>.csv` and `<dir>/<id>.json`.
pub fn write_artifacts(dir: &Path, table: &Table) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{}.csv", table.id)), table.to_csv())?;
    fs::write(dir.join(format!("{}.json", table.id)), table.to_json())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("t1", "Test", &["x", "y"]);
        t.push(vec![1.0, 2.5]);
        t.push(vec![2.0, 3.5]);
        t
    }

    #[test]
    fn csv_round() {
        let csv = table().to_csv();
        assert_eq!(csv, "x,y\n1,2.5\n2,3.5\n");
    }

    #[test]
    fn text_renders_header_and_rows() {
        let txt = table().to_text();
        assert!(txt.contains("t1"));
        assert!(txt.lines().count() >= 4);
    }

    #[test]
    fn column_access() {
        let t = table();
        assert_eq!(t.col("y"), 1);
        assert_eq!(t.column_values("x"), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = table();
        t.push(vec![1.0]);
    }

    #[test]
    fn artifacts_written() {
        let dir = std::env::temp_dir().join("scotch_bench_test_artifacts");
        let _ = std::fs::remove_dir_all(&dir);
        write_artifacts(&dir, &table()).unwrap();
        assert!(dir.join("t1.csv").exists());
        assert!(dir.join("t1.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
