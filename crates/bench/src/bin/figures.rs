//! Regenerate the paper's figures.
//!
//! ```text
//! cargo run --release -p scotch-bench --bin figures -- [all|fig3|fig4|fig9|fig10|fig11|fig12|fig13|fig14|fig15|ablation_migration|ablation_lb|ablation_withdrawal] [--smoke] [--seed N] [--out DIR]
//! ```
//!
//! Prints each experiment's table and writes `results/<id>.{csv,json}`.

use scotch_bench::{experiments, write_artifacts, Scale, DEFAULT_SEED};
use std::path::PathBuf;

fn main() {
    let mut filter = "all".to_string();
    let mut scale = Scale::Full;
    let mut seed = DEFAULT_SEED;
    let mut out = PathBuf::from("results");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes a u64");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            other => filter = other.to_string(),
        }
        i += 1;
    }

    let known: Vec<&str> = experiments::all().iter().map(|(id, _)| *id).collect();
    if filter != "all" && !known.contains(&filter.as_str()) {
        eprintln!(
            "unknown experiment '{filter}'; known: all {}",
            known.join(" ")
        );
        std::process::exit(2);
    }

    eprintln!(
        "running {} at {:?} scale, seed {seed} ...",
        if filter == "all" {
            "all experiments"
        } else {
            &filter
        },
        scale
    );
    let started = std::time::Instant::now();
    let tables = experiments::run_matching(&filter, scale, seed);
    for table in &tables {
        println!("{}", table.to_text());
        write_artifacts(&out, table).expect("write artifacts");
    }
    eprintln!(
        "done: {} experiment(s) in {:.1}s; artifacts in {}",
        tables.len(),
        started.elapsed().as_secs_f64(),
        out.display()
    );
}
