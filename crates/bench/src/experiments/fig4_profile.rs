//! **Fig. 4** — "SDN switch control path profiling."
//!
//! Client only (attacker off), one new flow per packet toward the server,
//! offered rate swept. Three series measured on the Pica8: Packet-In
//! message rate, flow-rule insertion rate, and the successful flow rate at
//! the server. The paper's finding: **all three are identical**, pinned at
//! the OFA's Packet-In capacity — the OFA's Packet-In generation is the
//! bottleneck, not rule insertion.

use crate::{Scale, Table};
use scotch::scenario::Scenario;
use scotch_sim::SimTime;
use scotch_switch::SwitchProfile;

/// Run the Fig. 4 profile sweep.
pub fn run(scale: Scale, seed: u64) -> Table {
    let rates: Vec<f64> = match scale {
        Scale::Full => vec![
            50.0, 100.0, 150.0, 200.0, 300.0, 500.0, 800.0, 1200.0, 2000.0,
        ],
        Scale::Smoke => vec![100.0, 400.0, 1500.0],
    };
    let horizon_s = scale.pick(8u64, 2);
    let horizon = SimTime::from_secs(horizon_s);

    let mut table = Table::new(
        "fig4",
        "Pica8 control path profile: Packet-In, rule insertion, successful flow rates",
        &[
            "new_flow_rate",
            "packet_in_rate",
            "rule_insertion_rate",
            "successful_flow_rate",
        ],
    );
    for rate in rates {
        let report = Scenario::single_switch(SwitchProfile::pica8_pronto_3780())
            .with_clients(rate)
            .run(horizon, seed);
        let secs = horizon_s as f64;
        let sw = &report.switches[0];
        let succeeded = report
            .flows
            .iter()
            .filter(|f| !f.is_attack && f.succeeded())
            .count() as f64;
        table.push(vec![
            rate,
            sw.ofa.packet_in_sent as f64 / secs,
            sw.ofa.rules_inserted as f64 / secs,
            succeeded / secs,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SEED;

    #[test]
    fn three_rates_are_identical_and_saturate() {
        let t = run(Scale::Smoke, DEFAULT_SEED);
        for row in &t.rows {
            let (offered, pin, rule, succ) = (row[0], row[1], row[2], row[3]);
            // The three measured series coincide. Tolerance covers the
            // OFA's 64-deep Packet-In queue: at a short horizon the
            // accepted count runs ahead of the drained count by up to the
            // queue depth.
            assert!(
                (pin - rule).abs() <= 0.2 * pin.max(1.0),
                "pin={pin} rule={rule}"
            );
            assert!(
                (pin - succ).abs() <= 0.2 * pin.max(1.0),
                "pin={pin} succ={succ}"
            );
            // Below capacity they track the offered rate; above they pin
            // at the OFA capacity (~200/s).
            if offered <= 180.0 {
                assert!(
                    (pin - offered).abs() <= 0.1 * offered,
                    "under: {pin} vs {offered}"
                );
            } else {
                assert!((pin - 200.0).abs() < 45.0, "saturated: {pin}");
            }
        }
    }
}
