//! §6's Scotch evaluation experiments (DESIGN.md ids E11–E15).
//!
//! The provided paper text cuts off after Fig. 10 but announces these in
//! §6's preamble: "experiments to demonstrate the benefits of ingress port
//! differentiation and large flow migration … the growth in the Scotch
//! overlay's capacity with addition of new vSwitches … the extra delay
//! incurred by the Scotch overlay traffic relay … the trace driven
//! experiment that demonstrates the benefits of Scotch to the application
//! performance."

use crate::{Scale, Table};
use scotch::app::ControllerMode;
use scotch::scenario::Scenario;
use scotch::ScotchConfig;
use scotch_controller::flowdb::FlowPath;
use scotch_runner::{Job, SweepRunner};
use scotch_sim::{SimDuration, SimTime};

/// **E11 / Fig. 11** — ingress-port differentiation.
///
/// Attacker and client enter the switch on different ports. With
/// per-ingress-port queues the client keeps its fair share of the rule
/// budget `R` and its flows run on the *physical* network; with one shared
/// queue the flood starves clients onto the overlay.
pub fn fig11_ingress_differentiation(scale: Scale, seed: u64) -> Table {
    let attack_rates: Vec<f64> = match scale {
        Scale::Full => vec![500.0, 1000.0, 2000.0, 3000.0],
        Scale::Smoke => vec![2000.0],
    };
    let horizon = SimTime::from_secs(scale.pick(10, 6));

    let mut table = Table::new(
        "fig11",
        "Ingress-port differentiation: client physical-path share & failure",
        &[
            "attack_rate",
            "client_phys_frac_differentiated",
            "client_phys_frac_shared",
            "client_failure_differentiated",
            "client_failure_shared",
        ],
    );

    let physical_fraction = |r: &scotch::Report| {
        let legit: Vec<_> = r.flows.iter().filter(|f| !f.is_attack).collect();
        if legit.is_empty() {
            return 0.0;
        }
        legit
            .iter()
            .filter(|f| f.served_by == Some(FlowPath::Physical))
            .count() as f64
            / legit.len() as f64
    };
    let settled = |r: &scotch::Report| {
        r.client_failure_fraction_between(
            SimTime::from_secs(1),
            horizon.saturating_sub(SimDuration::from_secs(1)),
        )
    };

    for attack in attack_rates {
        let run = |differentiated: bool| {
            Scenario::overlay_datacenter(4)
                .with_config(ScotchConfig {
                    ingress_differentiation: differentiated,
                    ..Default::default()
                })
                .with_clients(80.0)
                .with_attack(attack)
                .run(horizon, seed)
        };
        let with_diff = run(true);
        let shared = run(false);
        table.push(vec![
            attack,
            physical_fraction(&with_diff),
            physical_fraction(&shared),
            settled(&with_diff),
            settled(&shared),
        ]);
    }
    table
}

/// **E12 / Fig. 12** — large-flow migration.
///
/// Elephants start on the overlay during the flood; the controller's
/// stats polls spot and migrate them. Series: the elephants' mean
/// per-packet latency per second, migration on vs off — migration moves
/// them off the 3-tunnel overlay path onto the short physical path.
pub fn fig12_flow_migration(scale: Scale, seed: u64) -> Table {
    let horizon = SimTime::from_secs(scale.pick(12, 8));
    let run = |migration: bool| {
        Scenario::overlay_datacenter(4)
            .with_config(ScotchConfig {
                migration_enabled: migration,
                ..Default::default()
            })
            .with_clients(50.0)
            .with_attack(2_000.0)
            .with_elephants(3, 1000.0, scale.pick(9000, 5000), SimTime::from_secs(2))
            .run(horizon, seed)
    };
    let on = run(true);
    let off = run(false);
    assert!(
        on.app.migrations >= 1,
        "migration must fire: {}",
        on.summary()
    );
    assert_eq!(off.app.migrations, 0);

    let mean_lat_us_per_sec = |r: &scotch::Report, sec: u64| -> f64 {
        let lo = sec as f64;
        let hi = lo + 1.0;
        let mut sum = 0.0;
        let mut n = 0usize;
        for samples in r.tracked.values() {
            for (t, lat) in samples {
                let s = t.as_secs_f64();
                if s >= lo && s < hi {
                    sum += lat.as_secs_f64() * 1e6;
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    };

    let mut table = Table::new(
        "fig12",
        "Elephant packet latency over time, migration on vs off (us)",
        &[
            "t_sec",
            "latency_us_migration_on",
            "latency_us_migration_off",
        ],
    );
    for sec in 2..horizon.as_secs_f64() as u64 {
        table.push(vec![
            sec as f64,
            mean_lat_us_per_sec(&on, sec),
            mean_lat_us_per_sec(&off, sec),
        ]);
    }
    table
}

/// **E13 / Fig. 13** — overlay capacity scaling with the number of mesh
/// vSwitches.
///
/// A flood far beyond any single vSwitch agent's capacity (each handles
/// ~10k Packet-In/s) is load-balanced over 1–8 vSwitches. Series: the
/// aggregate vSwitch Packet-In rate (grows ~linearly until it covers the
/// offered load) and the steady-state client failure (drops to ~0 once
/// capacity suffices).
pub fn fig13_capacity_scaling(scale: Scale, seed: u64) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Full => vec![1, 2, 3, 4, 6, 8],
        Scale::Smoke => vec![1, 3],
    };
    let attack = 25_000.0;
    let horizon = SimTime::from_secs(scale.pick(6, 3));

    let mut table = Table::new(
        "fig13",
        "Overlay capacity vs number of mesh vSwitches (attack 25k flows/s)",
        &["n_vswitches", "vswitch_packet_in_rate", "client_failure"],
    );
    let jobs: Vec<Job<Vec<f64>>> = sizes
        .iter()
        .map(|&n| {
            Job::new(format!("mesh{n}"), seed, move |ctx| {
                let report = Scenario::overlay_datacenter(n)
                    .with_clients(100.0)
                    .with_attack(attack)
                    .run(horizon, seed);
                ctx.add_units(report.events_processed);
                // Count only the mesh vSwitches' Packet-Ins (host vSwitch
                // agents see little in this experiment).
                let mesh_pktin: u64 = report
                    .vswitches
                    .iter()
                    .filter(|v| v.name.starts_with("mesh"))
                    .map(|v| v.ofa.packet_in_sent)
                    .sum();
                let failure = report.client_failure_fraction_between(
                    SimTime::from_secs(1),
                    horizon.saturating_sub(SimDuration::from_secs(1)),
                );
                vec![n as f64, mesh_pktin as f64 / horizon.as_secs_f64(), failure]
            })
        })
        .collect();
    for row in SweepRunner::new().run("fig13", jobs).into_values() {
        table.push(row);
    }
    table
}

/// **E14 / Fig. 14** — extra delay of the overlay path.
///
/// The same paced flows are measured once on the physical path (no
/// congestion, normal admission) and once pinned to the overlay
/// (flood + migration disabled). The overlay packet crosses three tunnels
/// and transits the hardware switch four times (§4.1), so its latency is a
/// small multiple of the physical path's.
pub fn fig14_overlay_delay(scale: Scale, seed: u64) -> Table {
    let horizon = SimTime::from_secs(scale.pick(8, 5));
    // Steady state only: the first ~1.5 s of a flow includes rule-setup
    // races where packets are relayed via the controller.
    let steady_from = SimTime::from_secs_f64(2.5);
    let stats_of = move |r: &scotch::Report| -> (f64, f64, f64) {
        let mut lats: Vec<f64> = r
            .tracked
            .values()
            .flatten()
            .filter(|(t, _)| *t >= steady_from)
            .map(|(_, l)| l.as_secs_f64() * 1e6)
            .collect();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if lats.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mean = lats.iter().sum::<f64>() / lats.len() as f64;
        let p50 = lats[lats.len() / 2];
        let p99 = lats[(lats.len() as f64 * 0.99) as usize];
        (mean, p50, p99)
    };

    // Physical arm: quiet network, elephants admitted normally.
    let physical = Scenario::overlay_datacenter(4)
        .with_elephants(2, 800.0, scale.pick(4000, 2000), SimTime::from_secs(1))
        .run(horizon, seed);
    // Overlay arm: flood keeps the overlay active; migration disabled pins
    // the elephants to the 3-tunnel path.
    let overlay = Scenario::overlay_datacenter(4)
        .with_config(ScotchConfig {
            migration_enabled: false,
            ..Default::default()
        })
        .with_attack(2_000.0)
        .with_elephants(2, 800.0, scale.pick(4000, 2000), SimTime::from_secs(1))
        .run(horizon, seed);

    let (pm, p50p, p99p) = stats_of(&physical);
    let (om, p50o, p99o) = stats_of(&overlay);
    let mut table = Table::new(
        "fig14",
        "Per-packet latency: physical path vs 3-tunnel overlay path (us)",
        &["path_overlay", "mean_us", "p50_us", "p99_us"],
    );
    table.push(vec![0.0, pm, p50p, p99p]);
    table.push(vec![1.0, om, p50o, p99o]);
    table
}

/// **E15 / Fig. 15** — trace-driven application performance.
///
/// A synthetic data-center trace (Poisson arrivals, bounded-Pareto sizes)
/// runs alongside a flood, with and without Scotch. Series: legitimate
/// flow success, completion rate, mean FCT and goodput.
pub fn fig15_trace_driven(scale: Scale, seed: u64) -> Table {
    let horizon = SimTime::from_secs(scale.pick(12, 6));
    // Microflow (5-tuple) rules: every trace flow between a host pair is
    // reactive, as in controllers that install exact-match rules.
    let run = |mode: ControllerMode| {
        Scenario::overlay_datacenter(4)
            .with_mode(mode)
            .with_config(ScotchConfig {
                exact_match_rules: true,
                ..Default::default()
            })
            .with_servers(6)
            .with_trace(scale.pick(200.0, 100.0))
            .with_attack(2_000.0)
            .run(horizon, seed)
    };
    let baseline = run(ControllerMode::Baseline);
    let scotch = run(ControllerMode::Scotch);

    let metrics = |r: &scotch::Report| -> Vec<f64> {
        let legit: Vec<_> = r.flows.iter().filter(|f| !f.is_attack).collect();
        let success =
            legit.iter().filter(|f| f.succeeded()).count() as f64 / legit.len().max(1) as f64;
        let completed =
            legit.iter().filter(|f| f.completed()).count() as f64 / legit.len().max(1) as f64;
        let fct = r.mean_client_fct().unwrap_or(0.0);
        let goodput_mbps = legit.iter().map(|f| f.delivered_bytes).sum::<u64>() as f64 * 8.0
            / r.duration.as_secs_f64()
            / 1e6;
        vec![success, completed, fct, goodput_mbps]
    };

    let mut table = Table::new(
        "fig15",
        "Trace-driven app performance under attack: baseline vs Scotch",
        &[
            "scotch_enabled",
            "flow_success",
            "flow_completion",
            "mean_fct_s",
            "goodput_mbps",
        ],
    );
    let mut row = vec![0.0];
    row.extend(metrics(&baseline));
    table.push(row);
    let mut row = vec![1.0];
    row.extend(metrics(&scotch));
    table.push(row);
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SEED;

    #[test]
    fn fig11_differentiation_shifts_clients_to_physical() {
        let t = fig11_ingress_differentiation(Scale::Smoke, DEFAULT_SEED);
        for row in &t.rows {
            let (diff, shared) = (row[1], row[2]);
            assert!(diff > 0.6, "differentiated phys share {diff}");
            assert!(shared < diff / 2.0, "shared {shared} vs diff {diff}");
            assert!(
                row[3] < 0.05 && row[4] < 0.05,
                "both arms keep clients alive"
            );
        }
    }

    #[test]
    fn fig13_capacity_grows_with_vswitches() {
        let t = fig13_capacity_scaling(Scale::Smoke, DEFAULT_SEED);
        let rates = t.column_values("vswitch_packet_in_rate");
        let failures = t.column_values("client_failure");
        assert!(rates[1] > 2.0 * rates[0], "rate should scale: {rates:?}");
        assert!(
            failures[1] < failures[0] / 2.0,
            "failure should drop: {failures:?}"
        );
    }

    #[test]
    fn fig14_overlay_is_slower_but_bounded() {
        let t = fig14_overlay_delay(Scale::Smoke, DEFAULT_SEED);
        let phys_mean = t.rows[0][1];
        let over_mean = t.rows[1][1];
        assert!(
            over_mean > 1.5 * phys_mean,
            "overlay {over_mean}us vs physical {phys_mean}us"
        );
        assert!(over_mean < 20.0 * phys_mean, "but not pathological");
    }
}

/// **E16 / Fig. 16** — TCAM exhaustion (§3.3).
///
/// "A limited amount of TCAM at a switch can also cause new flows being
/// dropped. A new flow rule won't be installed at the flow table if it
/// becomes full. … the solution proposed in this paper is applicable to
/// the TCAM bottleneck scenario as well."
///
/// Legitimate multi-packet flows at a rate the OFA handles comfortably,
/// but with a flow table too small for the rule working set (rate ×
/// 10 s idle timeout). The baseline's flows lose their tails once the
/// table fills; Scotch notices the TableFull error rate, activates, and
/// carries the flows on vSwitch rules.
pub fn fig16_tcam_exhaustion(scale: Scale, seed: u64) -> Table {
    use scotch_workload::clients::FlowSize;
    let capacities: Vec<usize> = match scale {
        Scale::Full => vec![200, 400, 800, 1600, 2400],
        Scale::Smoke => vec![200, 2400],
    };
    let horizon = SimTime::from_secs(scale.pick(12, 9));
    // 80 flows/s: 160 rule inserts/s (two switches on the path), under
    // both the 200/s lossless insert rate and the OFA capacity — only the
    // table size varies.
    let rate = 80.0;

    let mut table = Table::new(
        "fig16",
        "TCAM exhaustion: flow completion vs flow-table capacity (80 flows/s, 10 s rule timeout)",
        &["table_capacity", "completion_baseline", "completion_scotch"],
    );
    let window_from = SimTime::from_secs(5); // table fills within ~3-4 s
    for cap in capacities {
        let mut profile = scotch_switch::SwitchProfile::pica8_pronto_3780();
        profile.flow_table_capacity = cap;
        let run = |mode: ControllerMode| {
            Scenario::overlay_datacenter(4)
                .with_mode(mode)
                .with_profile(profile.clone())
                .with_config(ScotchConfig {
                    // Per-flow (5-tuple) rules so the working set is the
                    // flow arrival rate times the rule lifetime.
                    exact_match_rules: true,
                    ..Default::default()
                })
                // 50 ms packet gaps: the ~10-15 ms rule-setup time (one
                // 5 ms OFA service slot + control latency) finishes before
                // packet 2 arrives, so only the table size is under test.
                .with_client_flows(rate, FlowSize::Fixed(5), SimDuration::from_millis(50))
                .run(horizon, seed)
        };
        let baseline = run(ControllerMode::Baseline);
        let scotch = run(ControllerMode::Scotch);
        let completion = |r: &scotch::Report| {
            let legit: Vec<_> = r
                .flows
                .iter()
                .filter(|f| {
                    !f.is_attack
                        && f.started_at >= window_from
                        && f.started_at < horizon.saturating_sub(SimDuration::from_secs(1))
                })
                .collect();
            legit.iter().filter(|f| f.completed()).count() as f64 / legit.len().max(1) as f64
        };
        table.push(vec![cap as f64, completion(&baseline), completion(&scotch)]);
        let _ = &window_from;
    }
    table
}

/// **A5** — controller processing capacity (§2).
///
/// "A single node multi-threaded controller can handle millions of
/// PacketIn/sec. A distributed controller … can further scale up
/// capacity. The design of a scalable controller is out of the scope of
/// this paper." This sweep quantifies where the controller *would* become
/// the bottleneck: Scotch raises the Packet-In volume reaching the
/// controller to the full attack rate, so an undersized controller drops
/// messages and clients fail again.
pub fn a5_controller_capacity(scale: Scale, seed: u64) -> Table {
    let capacities: Vec<f64> = match scale {
        Scale::Full => vec![1_000.0, 3_000.0, 6_000.0, 12_000.0, 50_000.0],
        Scale::Smoke => vec![1_000.0, 50_000.0],
    };
    let attack = 8_000.0;
    let horizon = SimTime::from_secs(scale.pick(8, 4));
    let mut table = Table::new(
        "ablation_controller",
        "A5: client failure vs controller Packet-In capacity (attack 8k flows/s, Scotch on)",
        &[
            "controller_capacity",
            "client_failure",
            "controller_dropped",
        ],
    );
    for cap in capacities {
        let report = Scenario::overlay_datacenter(4)
            .with_config(ScotchConfig {
                controller_capacity: Some(cap),
                ..Default::default()
            })
            .with_clients(100.0)
            .with_attack(attack)
            .run(horizon, seed);
        table.push(vec![
            cap,
            report.client_failure_fraction_between(
                SimTime::from_secs(1),
                horizon.saturating_sub(SimDuration::from_secs(1)),
            ),
            report.controller_dropped as f64,
        ]);
    }
    table
}

#[cfg(test)]
mod tcam_tests {
    use super::*;
    use crate::DEFAULT_SEED;

    #[test]
    fn fig16_scotch_survives_small_tcam() {
        let t = fig16_tcam_exhaustion(Scale::Smoke, DEFAULT_SEED);
        // Smallest capacity: baseline loses flow tails, Scotch does not.
        let row = &t.rows[0];
        assert!(
            row[t.col("completion_baseline")] < 0.5,
            "baseline with tiny TCAM should fail: {row:?}"
        );
        assert!(
            row[t.col("completion_scotch")] > 0.9,
            "scotch should absorb the TCAM bottleneck: {row:?}"
        );
        // Ample capacity: both fine.
        let last = t.rows.last().unwrap();
        assert!(last[t.col("completion_baseline")] > 0.9, "{last:?}");
    }

    #[test]
    fn a5_undersized_controller_is_a_bottleneck() {
        let t = a5_controller_capacity(Scale::Smoke, DEFAULT_SEED);
        let failure = t.column_values("client_failure");
        let dropped = t.column_values("controller_dropped");
        assert!(failure[0] > 0.3, "1k/s controller must choke: {failure:?}");
        assert!(dropped[0] > 0.0);
        assert!(failure[1] < 0.05, "50k/s controller is ample: {failure:?}");
    }
}
