//! **Fig. 9** — "Maximum flow rule insertion rate at the Pica8 switch."
//!
//! The controller generates FlowMods at a constant attempted rate with no
//! data traffic; the successful insertion rate is measured (the paper
//! counts installed rules via periodic table queries). Expected shape:
//! identity up to ~200 rules/s, then a concave climb flattening at about
//! 1000 rules/s.
//!
//! Like the paper's isolated bench, this drives the switch model directly
//! rather than through a full network simulation.

use crate::{Scale, Table};
use scotch_net::PortId;
use scotch_net::{FlowKey, IpAddr, NodeId};
use scotch_openflow::{Action, ControllerToSwitch, FlowEntry, FlowModCommand, Match, TableId};
use scotch_sim::{SimRng, SimTime};
use scotch_switch::{PhysicalSwitch, SwitchProfile};

/// Run the Fig. 9 insertion sweep.
pub fn run(scale: Scale, seed: u64) -> Table {
    let rates: Vec<f64> = match scale {
        Scale::Full => vec![
            50.0, 100.0, 150.0, 200.0, 300.0, 400.0, 600.0, 800.0, 1000.0, 1500.0, 2000.0, 2500.0,
            3000.0,
        ],
        Scale::Smoke => vec![100.0, 200.0, 800.0, 3000.0],
    };
    let secs = scale.pick(10.0, 4.0);

    let mut table = Table::new(
        "fig9",
        "Successful vs attempted flow rule insertion rate (Pica8)",
        &["attempted_rate", "successful_rate"],
    );
    for rate in rates {
        // Fresh switch per point, like re-running the testbed.
        let mut sw = PhysicalSwitch::new(
            NodeId(0),
            SwitchProfile::pica8_pronto_3780(),
            SimRng::new(seed ^ rate as u64),
        );
        let n = (rate * secs) as u64;
        let gap_ns = (1e9 / rate) as u64;
        for k in 0..n {
            let now = SimTime::from_nanos(k * gap_ns);
            // All rules distinct, 10 s timeout, as in §6.1.
            let key = FlowKey::tcp(
                IpAddr(0x0a00_0000 + (k % 1_000_000) as u32),
                1024,
                IpAddr::new(10, 0, 1, 1),
                80,
            );
            sw.handle_controller_msg(
                now,
                ControllerToSwitch::FlowMod {
                    table: TableId(0),
                    command: FlowModCommand::Add(
                        FlowEntry::apply(
                            Match::src_dst(key.src, key.dst),
                            1,
                            vec![Action::Output(PortId(1))],
                        )
                        .with_idle_timeout(scotch_sim::SimDuration::from_secs(10)),
                    ),
                },
            );
            // Periodic expiry keeps the table from filling, mirroring the
            // paper's 10 s rule timeout during the measurement.
            if k % 1000 == 999 {
                sw.expire_flows(now);
            }
        }
        let st = sw.ofa_stats();
        table.push(vec![rate, st.rules_inserted as f64 / secs]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SEED;

    #[test]
    fn shape_matches_fig9() {
        let t = run(Scale::Smoke, DEFAULT_SEED);
        let get =
            |rate: f64| -> f64 { t.rows.iter().find(|r| r[0] == rate).map(|r| r[1]).unwrap() };
        // Lossless region: success == attempted.
        assert!((get(100.0) - 100.0).abs() < 5.0);
        assert!((get(200.0) - 200.0).abs() < 10.0);
        // Overload region: concave climb below attempted...
        let s800 = get(800.0);
        assert!(s800 < 800.0 && s800 > 250.0, "s800={s800}");
        // ...flattening at the ~1000/s ceiling.
        let s3000 = get(3000.0);
        assert!((850.0..1100.0).contains(&s3000), "plateau {s3000}");
    }
}
