//! **Fig. 10** — "Interaction of the data path and the control path at the
//! Pica8 switch."
//!
//! A pre-installed rule forwards data traffic at 500 / 1000 / 2000 pps
//! while the controller attempts rule insertions at a swept rate; the
//! series is the data-path packet loss ratio. Expected shape: near-zero
//! loss until a turning point around 1300 rules/s, then a jump past 90 %.

use crate::{Scale, Table};
use scotch_net::PortId;
use scotch_net::{FlowId, FlowKey, IpAddr, NodeId, Packet};
use scotch_openflow::{Action, ControllerToSwitch, FlowEntry, FlowModCommand, Match, TableId};
use scotch_runner::{Job, SweepRunner};
use scotch_sim::{SimRng, SimTime};
use scotch_switch::{DropReason, Output, PhysicalSwitch, SwitchProfile};

/// Measure data-path loss at one (insertion rate, data rate) point.
fn loss_ratio(insert_rate: f64, data_pps: f64, secs: f64, seed: u64) -> f64 {
    let mut sw = PhysicalSwitch::new(
        NodeId(0),
        SwitchProfile::pica8_pronto_3780(),
        SimRng::new(seed ^ (insert_rate as u64) << 16 ^ data_pps as u64),
    );
    // Pre-installed forwarding rule (quiet period, then measurement).
    sw.handle_controller_msg(
        SimTime::ZERO,
        ControllerToSwitch::FlowMod {
            table: TableId(0),
            command: FlowModCommand::Add(FlowEntry::apply(
                Match::ANY,
                1,
                vec![Action::Output(PortId(1))],
            )),
        },
    );
    let key = FlowKey::tcp(IpAddr::new(10, 0, 0, 1), 1024, IpAddr::new(10, 0, 1, 1), 80);

    // Interleave insertions and data packets on their own clocks; skip a
    // warm-up second so the rate estimators settle.
    let warmup = SimTime::from_secs(1);
    let end = SimTime::from_secs_f64(1.0 + secs);
    let mut lost = 0u64;
    let mut total = 0u64;
    let insert_gap = (1e9 / insert_rate) as u64;
    let data_gap = (1e9 / data_pps) as u64;
    let mut t_insert = 0u64;
    let mut t_data = 0u64;
    let mut rule_i = 0u32;
    let mut pkt_i = 0u64;
    loop {
        if t_insert.min(t_data) >= end.as_nanos() {
            break;
        }
        if t_insert <= t_data {
            let now = SimTime::from_nanos(t_insert);
            sw.handle_controller_msg(
                now,
                ControllerToSwitch::FlowMod {
                    table: TableId(1),
                    command: FlowModCommand::Add(FlowEntry::apply(
                        Match::src_dst(IpAddr(0x0b00_0000 + rule_i), IpAddr::new(9, 9, 9, 9)),
                        2,
                        vec![],
                    )),
                },
            );
            rule_i = rule_i.wrapping_add(1) % 1_000_000;
            t_insert += insert_gap;
        } else {
            let now = SimTime::from_nanos(t_data);
            let pkt = Packet::data(key, FlowId(1), now, pkt_i as u32, 1000);
            pkt_i += 1;
            let outs = sw.handle_packet(now, PortId(0), pkt);
            if now >= warmup {
                total += 1;
                if matches!(
                    outs.first(),
                    Some(Output::Dropped {
                        reason: DropReason::DataPlaneOverload,
                        ..
                    })
                ) {
                    lost += 1;
                }
            }
            t_data += data_gap;
        }
    }
    lost as f64 / total.max(1) as f64
}

/// Run the Fig. 10 sweep.
pub fn run(scale: Scale, seed: u64) -> Table {
    let insert_rates: Vec<f64> = match scale {
        Scale::Full => vec![
            200.0, 400.0, 600.0, 800.0, 1000.0, 1100.0, 1200.0, 1300.0, 1400.0, 1600.0, 2000.0,
            2500.0, 3000.0,
        ],
        Scale::Smoke => vec![400.0, 1200.0, 2000.0],
    };
    let secs = scale.pick(6.0, 2.0);
    let mut table = Table::new(
        "fig10",
        "Data-path loss ratio vs attempted rule insertion rate (Pica8)",
        &["insert_rate", "loss_500pps", "loss_1000pps", "loss_2000pps"],
    );
    let jobs: Vec<Job<Vec<f64>>> = insert_rates
        .iter()
        .map(|&r| {
            Job::new(format!("insert{r}"), seed, move |_ctx| {
                vec![
                    r,
                    loss_ratio(r, 500.0, secs, seed),
                    loss_ratio(r, 1000.0, secs, seed),
                    loss_ratio(r, 2000.0, secs, seed),
                ]
            })
        })
        .collect();
    for row in SweepRunner::new().run("fig10", jobs).into_values() {
        table.push(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SEED;

    #[test]
    fn knee_at_1300() {
        let t = run(Scale::Smoke, DEFAULT_SEED);
        for row in &t.rows {
            let rate = row[0];
            for loss in &row[1..] {
                if rate < 1300.0 {
                    assert!(*loss < 0.05, "below knee: rate {rate} loss {loss}");
                } else {
                    assert!(*loss > 0.9, "above knee: rate {rate} loss {loss}");
                }
            }
        }
    }
}
