//! One module per reproduced figure/experiment. See DESIGN.md §5 for the
//! index mapping these to the paper.

pub mod ablations;
pub mod fig10_interaction;
pub mod fig3_failure;
pub mod fig4_profile;
pub mod fig9_insertion;
pub mod scotch_eval;

use crate::{Scale, Table};
use scotch_runner::{Job, SweepRunner};

/// An experiment entry point: `(scale, seed) -> result table`.
pub type Runner = fn(Scale, u64) -> Table;

/// Every experiment in the suite, as `(id, runner)` pairs in paper order.
pub fn all() -> Vec<(&'static str, Runner)> {
    vec![
        ("fig3", fig3_failure::run as Runner),
        ("fig4", fig4_profile::run),
        ("fig9", fig9_insertion::run),
        ("fig10", fig10_interaction::run),
        ("fig11", scotch_eval::fig11_ingress_differentiation),
        ("fig12", scotch_eval::fig12_flow_migration),
        ("fig13", scotch_eval::fig13_capacity_scaling),
        ("fig14", scotch_eval::fig14_overlay_delay),
        ("fig15", scotch_eval::fig15_trace_driven),
        ("fig16", scotch_eval::fig16_tcam_exhaustion),
        ("ablation_migration", ablations::a1_no_migration),
        ("ablation_lb", ablations::a2_lb_policy),
        ("ablation_withdrawal", ablations::a3_withdrawal_thresholds),
        (
            "ablation_dedicated_port",
            ablations::a4_dedicated_port_strawman,
        ),
        ("ablation_controller", scotch_eval::a5_controller_capacity),
    ]
}

/// Run experiments whose id matches `filter` (or all when `filter` is
/// `"all"`), in parallel on the shared sweep runner. Results come back in
/// paper order regardless of scheduling.
pub fn run_matching(filter: &str, scale: Scale, seed: u64) -> Vec<Table> {
    sweep_matching(filter, scale, seed).into_values()
}

/// Like [`run_matching`] but returns the full [`scotch_runner::Sweep`], so
/// callers can inspect per-experiment wall-times or emit a run manifest.
pub fn sweep_matching(filter: &str, scale: Scale, seed: u64) -> scotch_runner::Sweep<Table> {
    let jobs: Vec<Job<Table>> = all()
        .into_iter()
        .filter(|(id, _)| filter == "all" || *id == filter)
        .map(|(id, runner)| {
            Job::new(id, seed, move |ctx| {
                let table = runner(scale, seed);
                ctx.add_units(table.rows.len() as u64);
                table
            })
        })
        .collect();
    SweepRunner::new().run("experiments", jobs)
}
