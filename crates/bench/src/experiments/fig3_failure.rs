//! **Fig. 3** — "Physical switches and Open vSwitch control plane
//! throughput comparison."
//!
//! Client at 100 new flows/s, attacker swept from 100 to 3800 flows/s,
//! one switch under test at a time. The series is the client flow failure
//! fraction. Expected shape (paper): all three curves climb with the
//! attack rate; Pica8 fails earliest/hardest, HP Procurve later, Open
//! vSwitch barely at all within the sweep.

use crate::{Scale, Table};
use scotch::scenario::Scenario;
use scotch_runner::{Job, SweepRunner};
use scotch_sim::SimTime;
use scotch_switch::SwitchProfile;

/// Run the Fig. 3 sweep.
pub fn run(scale: Scale, seed: u64) -> Table {
    let rates: Vec<f64> = match scale {
        Scale::Full => (1..=13).map(|i| 100.0 + (i - 1) as f64 * 308.0).collect(),
        Scale::Smoke => vec![100.0, 1000.0, 3800.0],
    };
    let horizon = SimTime::from_secs(scale.pick(8, 2));

    let mut table = Table::new(
        "fig3",
        "Client flow failure fraction vs attacking flow rate (client 100 flows/s)",
        &["attack_rate", "pica8_pronto", "hp_procurve", "open_vswitch"],
    );

    let devices = [
        SwitchProfile::pica8_pronto_3780(),
        SwitchProfile::hp_procurve_6600(),
        SwitchProfile::open_vswitch(),
    ];
    // One job per attack rate; the runner preserves the (ascending) input
    // order, so no post-sort is needed.
    let jobs: Vec<Job<Vec<f64>>> = rates
        .iter()
        .map(|&rate| {
            let devices = devices.clone();
            Job::new(format!("attack{rate}"), seed, move |ctx| {
                let mut row = vec![rate];
                for profile in devices {
                    let report = Scenario::single_switch(profile)
                        .with_clients(100.0)
                        .with_attack(rate)
                        .run(horizon, seed);
                    ctx.add_units(report.events_processed);
                    row.push(report.client_failure_fraction());
                }
                row
            })
        })
        .collect();
    for row in SweepRunner::new().run("fig3", jobs).into_values() {
        table.push(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SEED;

    #[test]
    fn shape_matches_paper() {
        let t = run(Scale::Smoke, DEFAULT_SEED);
        let pica = t.column_values("pica8_pronto");
        let hp = t.column_values("hp_procurve");
        let ovs = t.column_values("open_vswitch");
        // Monotone-ish climb for the hardware switches.
        assert!(pica.last().unwrap() > pica.first().unwrap());
        // At the top rate: Pica8 worst, OVS best (Fig. 3 ordering).
        let last = t.rows.len() - 1;
        assert!(pica[last] > hp[last], "pica {} hp {}", pica[last], hp[last]);
        assert!(hp[last] > ovs[last], "hp {} ovs {}", hp[last], ovs[last]);
        assert!(pica[last] > 0.8, "pica8 must be crushed at 3800 flows/s");
        assert!(ovs[last] < 0.1, "OVS absorbs the whole sweep");
    }
}
