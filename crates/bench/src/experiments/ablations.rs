//! Design-choice ablations (DESIGN.md §6).

use crate::{Scale, Table};
use scotch::scenario::Scenario;
use scotch::ScotchConfig;
use scotch_openflow::SelectionPolicy;
use scotch_runner::{Job, SweepRunner};
use scotch_sim::{SimDuration, SimTime};

/// **A1** — migration disabled: elephants stay on the overlay, so the
/// mesh vSwitches keep carrying their bytes and the elephants keep the
/// longer-path latency. Quantifies §5.3's motivation ("it is not
/// desirable to only forward flows by using vSwitches").
pub fn a1_no_migration(scale: Scale, seed: u64) -> Table {
    let horizon = SimTime::from_secs(scale.pick(12, 8));
    let run = move |migration: bool| {
        Scenario::overlay_datacenter(4)
            .with_config(ScotchConfig {
                migration_enabled: migration,
                ..Default::default()
            })
            .with_clients(50.0)
            .with_attack(2_000.0)
            .with_elephants(3, 1000.0, scale.pick(8000, 4000), SimTime::from_secs(2))
            .run(horizon, seed)
    };
    // The two arms are independent simulations; run them as a two-job sweep.
    let jobs = vec![
        Job::new("migration_on", seed, move |_ctx| run(true)),
        Job::new("migration_off", seed, move |_ctx| run(false)),
    ];
    let mut arms = SweepRunner::new()
        .run("ablation_migration", jobs)
        .into_values();
    let off = arms.pop().expect("off arm");
    let on = arms.pop().expect("on arm");

    let mesh_forwarded = |r: &scotch::Report| -> f64 {
        r.vswitches
            .iter()
            .filter(|v| v.name.starts_with("mesh"))
            .map(|v| v.dataplane.forwarded)
            .sum::<u64>() as f64
    };
    let eleph_lat_us = |r: &scotch::Report| -> f64 {
        let lats: Vec<f64> = r
            .tracked
            .values()
            .flatten()
            // Steady state: samples after migration had a chance to land.
            .filter(|(t, _)| t.as_secs_f64() > 5.0)
            .map(|(_, l)| l.as_secs_f64() * 1e6)
            .collect();
        if lats.is_empty() {
            0.0
        } else {
            lats.iter().sum::<f64>() / lats.len() as f64
        }
    };

    let mut table = Table::new(
        "ablation_migration",
        "A1: elephant latency & mesh vSwitch load, migration on vs off",
        &[
            "migration_enabled",
            "migrations",
            "mesh_forwarded_pkts",
            "elephant_latency_us",
        ],
    );
    table.push(vec![
        1.0,
        on.app.migrations as f64,
        mesh_forwarded(&on),
        eleph_lat_us(&on),
    ]);
    table.push(vec![
        0.0,
        off.app.migrations as f64,
        mesh_forwarded(&off),
        eleph_lat_us(&off),
    ]);
    table
}

/// **A2** — select-group bucket policy (§5.1): flow-hash vs per-packet
/// round-robin. Round-robin breaks flow→vSwitch affinity, so every packet
/// of a multi-packet flow lands on a vSwitch without that flow's rule and
/// bounces to the controller — visible as duplicate Packet-Ins.
pub fn a2_lb_policy(scale: Scale, seed: u64) -> Table {
    let horizon = SimTime::from_secs(scale.pick(8, 5));
    let run = |policy: SelectionPolicy| {
        Scenario::overlay_datacenter(4)
            .with_config(ScotchConfig {
                lb_policy: policy,
                ..Default::default()
            })
            .with_clients(50.0)
            .with_attack(2_000.0)
            .with_elephants(2, 500.0, scale.pick(2500, 1200), SimTime::from_secs(2))
            .run(horizon, seed)
    };
    let hash = run(SelectionPolicy::FlowHash);
    let rr = run(SelectionPolicy::RoundRobin);

    let mesh_spread = |r: &scotch::Report| -> (f64, f64) {
        let counts: Vec<f64> = r
            .vswitches
            .iter()
            .filter(|v| v.name.starts_with("mesh"))
            .map(|v| v.ofa.packet_in_sent as f64)
            .collect();
        let max = counts.iter().cloned().fold(0.0, f64::max);
        let min = counts.iter().cloned().fold(f64::INFINITY, f64::min);
        (max, min)
    };

    let mut table = Table::new(
        "ablation_lb",
        "A2: select-group bucket policy — flow hash vs round robin",
        &[
            "policy_rr",
            "duplicate_packet_ins",
            "mesh_pktin_max",
            "mesh_pktin_min",
            "client_failure",
        ],
    );
    for (is_rr, r) in [(0.0, &hash), (1.0, &rr)] {
        let (max, min) = mesh_spread(r);
        table.push(vec![
            is_rr,
            r.app.duplicate_packet_ins as f64,
            max,
            min,
            r.client_failure_fraction_between(
                SimTime::from_secs(1),
                horizon.saturating_sub(SimDuration::from_secs(1)),
            ),
        ]);
    }
    table
}

/// **A3** — withdrawal threshold (§5.5): too low and the overlay never
/// lets go (flows keep the longer path); near the activation threshold and
/// the system risks flapping. Sweeps the threshold against a transient
/// attack and reports lifecycle counts.
pub fn a3_withdrawal_thresholds(scale: Scale, seed: u64) -> Table {
    let thresholds: Vec<f64> = match scale {
        Scale::Full => vec![10.0, 40.0, 80.0, 120.0, 150.0],
        Scale::Smoke => vec![10.0, 80.0],
    };
    let horizon = SimTime::from_secs(scale.pick(15, 10));

    let mut table = Table::new(
        "ablation_withdrawal",
        "A3: withdrawal threshold vs lifecycle behaviour (attack 1s-4s, clients 50/s)",
        &[
            "withdrawal_threshold",
            "activations",
            "withdrawals",
            "post_attack_client_failure",
        ],
    );
    let jobs: Vec<Job<Vec<f64>>> = thresholds
        .iter()
        .map(|&th| {
            Job::new(format!("threshold{th}"), seed, move |ctx| {
                let report = Scenario::overlay_datacenter(4)
                    .with_config(ScotchConfig {
                        withdrawal_threshold: th,
                        ..Default::default()
                    })
                    .with_clients(50.0)
                    .with_attack_window(2_000.0, SimTime::from_secs(1), SimTime::from_secs(4))
                    .run(horizon, seed);
                ctx.add_units(report.events_processed);
                vec![
                    th,
                    report.app.activations as f64,
                    report.app.withdrawals as f64,
                    report.client_failure_fraction_between(
                        SimTime::from_secs(7),
                        horizon.saturating_sub(SimDuration::from_secs(1)),
                    ),
                ]
            })
        })
        .collect();
    for row in SweepRunner::new()
        .run("ablation_withdrawal", jobs)
        .into_values()
    {
        table.push(row);
    }
    table
}

/// **A4** — the §4 strawman: "dedicate one port of the physical switch to
/// the overloaded new flows … However, using a dedicated physical port
/// does not fully solve the problem. The maximum flow rule insertion rate
/// is limited … The controller cannot install the flow rules fast enough."
///
/// Modelled as Scotch with overlay forwarding disabled (infinite overlay
/// threshold — every flow waits for physical admission at rate `R`) and no
/// ingress fairness, against full Scotch, on the leaf-spine fabric.
pub fn a4_dedicated_port_strawman(scale: Scale, seed: u64) -> Table {
    let horizon = SimTime::from_secs(scale.pick(10, 6));
    let strawman_cfg = ScotchConfig {
        overlay_threshold: 1_000_000,
        drop_threshold: 2_000_000,
        ingress_differentiation: false,
        ..Default::default()
    };
    let run = |cfg: ScotchConfig| {
        Scenario::multirack(2, 2)
            .with_config(cfg)
            .with_clients(100.0)
            .with_attack(2_000.0)
            .run(horizon, seed)
    };
    let strawman = run(strawman_cfg);
    let scotch = run(ScotchConfig::default());

    let late = |r: &scotch::Report| {
        r.client_failure_fraction_between(
            SimTime::from_secs(2),
            horizon.saturating_sub(SimDuration::from_secs(1)),
        )
    };
    let mut table = Table::new(
        "ablation_dedicated_port",
        "A4: dedicated-port strawman (physical-only admission) vs Scotch overlay forwarding",
        &[
            "overlay_forwarding",
            "client_failure_steady",
            "physical_admissions",
            "overlay_admissions",
        ],
    );
    table.push(vec![
        0.0,
        late(&strawman),
        strawman.app.physical_admitted as f64,
        strawman.app.overlay_admitted as f64,
    ]);
    table.push(vec![
        1.0,
        late(&scotch),
        scotch.app.physical_admitted as f64,
        scotch.app.overlay_admitted as f64,
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SEED;

    #[test]
    fn a4_strawman_starves_clients() {
        let t = a4_dedicated_port_strawman(Scale::Smoke, DEFAULT_SEED);
        let failure = t.column_values("client_failure_steady");
        assert!(failure[0] > 0.5, "strawman failure {}", failure[0]);
        assert!(failure[1] < 0.05, "scotch failure {}", failure[1]);
    }

    #[test]
    fn a3_low_threshold_never_withdraws() {
        let t = a3_withdrawal_thresholds(Scale::Smoke, DEFAULT_SEED);
        let th = t.column_values("withdrawal_threshold");
        let wd = t.column_values("withdrawals");
        // Threshold 10 < the 50/s residual client rate: overlay stays.
        assert_eq!(th[0], 10.0);
        assert_eq!(
            wd[0], 0.0,
            "threshold below residual rate must not withdraw"
        );
        // Threshold 80 > 50/s: withdraws.
        assert!(wd[1] >= 1.0);
    }
}
