//! Micro-benchmarks of the hot paths, plus an end-to-end simulated-second
//! benchmark, on a small self-contained timing harness (`harness = false`;
//! the build is offline so criterion is not available).
//!
//! ```text
//! cargo bench -p scotch-bench [-- <name-filter>]
//! ```

use scotch::scenario::Scenario;
use scotch_net::{FlowId, FlowKey, IpAddr, Packet, PortId};
use scotch_openflow::{
    Action, Bucket, FlowEntry, GroupEntry, Match, Pipeline, SelectionPolicy, TableId,
};
use scotch_sim::rate::FifoServer;
use scotch_sim::{EventQueue, SimRng, SimTime};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measure `f`: calibrate an iteration count to ~50 ms per sample, take
/// five samples, and report the best and median ns/iter.
fn bench<R>(filter: &Option<String>, name: &str, mut f: impl FnMut() -> R) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    // Warm up and estimate the per-iteration cost.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters =
        (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;

    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "{name:<40} {:>12.0} ns/iter (best {:>12.0}, {iters} iters/sample)",
        samples[samples.len() / 2],
        samples[0]
    );
}

fn key(i: u32) -> FlowKey {
    FlowKey::tcp(IpAddr(0x0a00_0000 + i), 1024, IpAddr::new(10, 0, 1, 1), 80)
}

fn bench_flow_table(filter: &Option<String>) {
    for n_rules in [16usize, 256, 2000] {
        let mut pipeline = Pipeline::new(1, n_rules + 1);
        for i in 0..n_rules as u32 {
            pipeline
                .table_mut(TableId(0))
                .insert(
                    SimTime::ZERO,
                    FlowEntry::apply(
                        Match::src_dst(key(i).src, key(i).dst),
                        100,
                        vec![Action::Output(PortId(1))],
                    ),
                )
                .unwrap();
        }
        let pkt = Packet::flow_start(key(n_rules as u32 / 2), FlowId(1), SimTime::ZERO);
        bench(filter, &format!("flow_table_lookup/{n_rules}"), || {
            pipeline.process(SimTime::ZERO, black_box(&pkt), PortId(0))
        });
    }
}

fn bench_group_select(filter: &Option<String>) {
    let mut table = scotch_openflow::GroupTable::new();
    table.install(
        scotch_openflow::GroupId(1),
        GroupEntry::select(
            SelectionPolicy::FlowHash,
            (0..8)
                .map(|i| Bucket::new(vec![Action::Output(PortId(i))]))
                .collect(),
        ),
    );
    let mut i = 0u32;
    bench(filter, "group_select_hash_8_buckets", || {
        i = i.wrapping_add(1);
        // `select` returns a borrow of the chosen bucket's actions; reduce
        // to an owned value so the closure result can escape.
        table
            .select(scotch_openflow::GroupId(1), black_box(&key(i)))
            .map(|acts| acts.len())
    });
}

fn bench_flow_hash(filter: &Option<String>) {
    let k = key(12345);
    bench(filter, "flowkey_hash64", || black_box(&k).hash64());
}

fn bench_event_queue(filter: &Option<String>) {
    bench(filter, "event_queue_push_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.push(SimTime::from_nanos((i * 7919) % 10_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum += v;
        }
        black_box(sum)
    });
}

fn bench_fifo_server(filter: &Option<String>) {
    let mut server = FifoServer::new(64);
    let st = FifoServer::service_time(200.0);
    let mut t = 0u64;
    bench(filter, "fifo_server_offer", || {
        t += 1_000_000;
        server.offer(SimTime::from_nanos(t), st)
    });
}

fn bench_rng(filter: &Option<String>) {
    let mut rng = SimRng::new(1);
    bench(filter, "rng_bounded_pareto", || {
        rng.bounded_pareto(1.0, 100_000.0, 1.2)
    });
}

fn bench_wire_codec(filter: &Option<String>) {
    use scotch_openflow::wire::{decode_message, encode_message, OfMessage};
    use scotch_openflow::{ControllerToSwitch, FlowEntry, FlowModCommand, Instruction};
    let entry = FlowEntry::new(
        Match::exact(key(7)),
        100,
        vec![Instruction::Apply(vec![Action::Output(PortId(3))])],
    );
    let msg = OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
        table: TableId(0),
        command: FlowModCommand::Add(entry),
    });
    let bytes = encode_message(&msg, 1).unwrap();
    bench(filter, "wire_encode_flow_mod", || {
        encode_message(black_box(&msg), 1).unwrap()
    });
    bench(filter, "wire_decode_flow_mod", || {
        decode_message(black_box(&bytes)).unwrap()
    });
}

fn bench_end_to_end(filter: &Option<String>) {
    // One simulated second of the full Scotch data-center scenario under
    // a 2000 flows/s flood: the throughput figure of the whole engine.
    bench(filter, "simulated_second_ddos_2k", || {
        Scenario::overlay_datacenter(4)
            .with_clients(100.0)
            .with_attack(2_000.0)
            .run(SimTime::from_secs(1), 42)
            .events_processed
    });
    bench(filter, "simulated_second_baseline_quiet", || {
        Scenario::single_switch(scotch_switch::SwitchProfile::pica8_pronto_3780())
            .with_clients(100.0)
            .run(SimTime::from_secs(1), 42)
            .events_processed
    });
}

fn main() {
    // `cargo bench` passes --bench; a bare string argument filters by name.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .filter(|a| !a.is_empty());
    bench_flow_table(&filter);
    bench_group_select(&filter);
    bench_flow_hash(&filter);
    bench_event_queue(&filter);
    bench_fifo_server(&filter);
    bench_rng(&filter);
    bench_wire_codec(&filter);
    bench_end_to_end(&filter);
}
