//! Criterion micro-benchmarks of the hot paths, plus an end-to-end
//! simulated-second benchmark.
//!
//! ```text
//! cargo bench -p scotch-bench
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scotch::scenario::Scenario;
use scotch_net::{FlowId, FlowKey, IpAddr, Packet, PortId};
use scotch_openflow::{
    Action, Bucket, FlowEntry, GroupEntry, Match, Pipeline, SelectionPolicy, TableId,
};
use scotch_sim::rate::FifoServer;
use scotch_sim::{EventQueue, SimRng, SimTime};

fn key(i: u32) -> FlowKey {
    FlowKey::tcp(IpAddr(0x0a00_0000 + i), 1024, IpAddr::new(10, 0, 1, 1), 80)
}

fn bench_flow_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_table_lookup");
    for n_rules in [16usize, 256, 2000] {
        let mut pipeline = Pipeline::new(1, n_rules + 1);
        for i in 0..n_rules as u32 {
            pipeline
                .table_mut(TableId(0))
                .insert(
                    SimTime::ZERO,
                    FlowEntry::apply(
                        Match::src_dst(key(i).src, key(i).dst),
                        100,
                        vec![Action::Output(PortId(1))],
                    ),
                )
                .unwrap();
        }
        let pkt = Packet::flow_start(key(n_rules as u32 / 2), FlowId(1), SimTime::ZERO);
        group.bench_with_input(BenchmarkId::from_parameter(n_rules), &n_rules, |b, _| {
            b.iter(|| pipeline.process(SimTime::ZERO, black_box(&pkt), PortId(0)))
        });
    }
    group.finish();
}

fn bench_group_select(c: &mut Criterion) {
    let mut table = scotch_openflow::GroupTable::new();
    table.install(
        scotch_openflow::GroupId(1),
        GroupEntry::select(
            SelectionPolicy::FlowHash,
            (0..8)
                .map(|i| Bucket::new(vec![Action::Output(PortId(i))]))
                .collect(),
        ),
    );
    let mut i = 0u32;
    c.bench_function("group_select_hash_8_buckets", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            table.select(scotch_openflow::GroupId(1), black_box(&key(i)))
        })
    });
}

fn bench_flow_hash(c: &mut Criterion) {
    let k = key(12345);
    c.bench_function("flowkey_hash64", |b| b.iter(|| black_box(&k).hash64()));
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_nanos((i * 7919) % 10_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        })
    });
}

fn bench_fifo_server(c: &mut Criterion) {
    c.bench_function("fifo_server_offer", |b| {
        let mut server = FifoServer::new(64);
        let st = FifoServer::service_time(200.0);
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000_000;
            server.offer(SimTime::from_nanos(t), st)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut rng = SimRng::new(1);
    c.bench_function("rng_bounded_pareto", |b| {
        b.iter(|| rng.bounded_pareto(1.0, 100_000.0, 1.2))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    // One simulated second of the full Scotch data-center scenario under
    // a 2000 flows/s flood: the throughput figure of the whole engine.
    group.bench_function("simulated_second_ddos_2k", |b| {
        b.iter(|| {
            Scenario::overlay_datacenter(4)
                .with_clients(100.0)
                .with_attack(2_000.0)
                .run(SimTime::from_secs(1), 42)
                .events_processed
        })
    });
    group.bench_function("simulated_second_baseline_quiet", |b| {
        b.iter(|| {
            Scenario::single_switch(scotch_switch::SwitchProfile::pica8_pronto_3780())
                .with_clients(100.0)
                .run(SimTime::from_secs(1), 42)
                .events_processed
        })
    });
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    use scotch_openflow::wire::{decode_message, encode_message, OfMessage};
    use scotch_openflow::{ControllerToSwitch, FlowEntry, FlowModCommand, Instruction};
    let entry = FlowEntry::new(
        Match::exact(key(7)),
        100,
        vec![Instruction::Apply(vec![Action::Output(PortId(3))])],
    );
    let msg = OfMessage::ToSwitch(ControllerToSwitch::FlowMod {
        table: TableId(0),
        command: FlowModCommand::Add(entry),
    });
    let bytes = encode_message(&msg, 1).unwrap();
    c.bench_function("wire_encode_flow_mod", |b| {
        b.iter(|| encode_message(black_box(&msg), 1).unwrap())
    });
    c.bench_function("wire_decode_flow_mod", |b| {
        b.iter(|| decode_message(black_box(&bytes)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_flow_table,
    bench_group_select,
    bench_flow_hash,
    bench_event_queue,
    bench_fifo_server,
    bench_rng,
    bench_wire_codec,
    bench_end_to_end
);
criterion_main!(benches);
