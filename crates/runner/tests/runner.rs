//! Behavioural contract of the sweep runner: ordering, determinism, panic
//! containment, metrics, and manifest stability.

use scotch_runner::{Job, Json, SweepRunner};

fn square_jobs(n: u64) -> Vec<Job<u64>> {
    (0..n)
        .map(|i| {
            Job::new(format!("job{i}"), i, move |ctx| {
                ctx.add_units(i);
                ctx.kpi("square", (i * i) as f64);
                i * i
            })
        })
        .collect()
}

#[test]
fn results_preserve_input_order() {
    // More jobs than workers, uneven durations via busy loops, many
    // threads: scheduling order is arbitrary but results must not be.
    let jobs: Vec<Job<u64>> = (0..40)
        .map(|i| {
            Job::new(format!("job{i}"), i, move |_ctx| {
                // Earlier jobs do more work, so they finish last per-worker.
                let mut acc = 0u64;
                for k in 0..(40 - i) * 1000 {
                    acc = acc.wrapping_add(k);
                }
                std::hint::black_box(acc);
                i
            })
        })
        .collect();
    let sweep = SweepRunner::new().threads(8).run("order", jobs);
    let values = sweep.into_values();
    assert_eq!(values, (0..40).collect::<Vec<u64>>());
}

#[test]
fn single_thread_matches_many_threads() {
    let a = SweepRunner::new().threads(1).run("t1", square_jobs(16));
    let b = SweepRunner::new().threads(7).run("t7", square_jobs(16));
    assert_eq!(a.into_values(), b.into_values());
}

#[test]
fn panicking_job_fails_only_itself() {
    let mut jobs = square_jobs(6);
    jobs.insert(
        3,
        Job::new("boom", 99, |_ctx| -> u64 {
            panic!("intentional test panic")
        }),
    );
    let sweep = SweepRunner::new().threads(4).run("contained", jobs);
    assert_eq!(sweep.completed.get(), 6);
    assert_eq!(sweep.failed.get(), 1);
    // The failed job is exactly the one that panicked, message preserved.
    let failed = &sweep.results[3];
    assert_eq!(failed.id, "boom");
    let message = failed.outcome.as_ref().unwrap_err();
    assert!(
        message.contains("intentional test panic"),
        "panic message lost: {message}"
    );
    // Every other job still delivered its value, in order.
    let ok: Vec<u64> = sweep.values().copied().collect();
    assert_eq!(ok, vec![0, 1, 4, 9, 16, 25]);
}

#[test]
fn into_values_panics_on_failed_job() {
    let jobs = vec![
        Job::new("fine", 1, |_ctx| 1u64),
        Job::new("bad", 2, |_ctx| -> u64 { panic!("nope") }),
    ];
    let sweep = SweepRunner::new().threads(2).run("strict", jobs);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || sweep.into_values()))
        .expect_err("must propagate");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("bad"),
        "failure list should name the job: {msg}"
    );
}

#[test]
fn normalized_manifests_are_identical_across_runs() {
    let a = SweepRunner::new().threads(2).run("sweep", square_jobs(10));
    let b = SweepRunner::new().threads(5).run("sweep", square_jobs(10));
    let (ma, mb) = (a.manifest_normalized(), b.manifest_normalized());
    assert_eq!(ma, mb);
    assert_eq!(ma.pretty(), mb.pretty());
}

#[test]
fn full_manifest_has_timing_normalized_does_not() {
    let sweep = SweepRunner::new().threads(2).run("timed", square_jobs(3));
    let full = sweep.manifest().pretty();
    let norm = sweep.manifest_normalized().pretty();
    assert!(full.contains("\"wall_ms\""));
    assert!(full.contains("\"timing\""));
    assert!(full.contains("\"jobs_per_sec\""));
    assert!(!norm.contains("wall_ms"));
    assert!(!norm.contains("\"timing\""));
}

#[test]
fn manifest_records_jobs_seeds_kpis_and_counts() {
    let sweep = SweepRunner::new().threads(3).run("kpis", square_jobs(4));
    let doc = sweep.manifest_normalized();
    let Json::Obj(fields) = &doc else {
        panic!("manifest must be an object")
    };
    let get = |k: &str| {
        fields
            .iter()
            .find(|(name, _)| name == k)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field {k}"))
    };
    assert_eq!(get("name"), &Json::Str("kpis".into()));
    assert_eq!(get("ok"), &Json::Num(4.0));
    assert_eq!(get("failed"), &Json::Num(0.0));
    let Json::Arr(jobs) = get("jobs") else {
        panic!("jobs must be an array")
    };
    assert_eq!(jobs.len(), 4);
    let rendered = doc.pretty();
    assert!(rendered.contains("\"square\": 9"));
    assert!(rendered.contains("\"seed\": 3"));
}

#[test]
fn metrics_cover_every_job() {
    let sweep = SweepRunner::new()
        .threads(2)
        .run("metrics", square_jobs(12));
    assert_eq!(sweep.timing_us.count(), 12);
    assert_eq!(sweep.total_units(), (0..12).sum::<u64>());
    assert!(sweep.jobs_per_sec() > 0.0);
    assert!(sweep.wall.as_nanos() > 0);
}

#[test]
fn empty_sweep_is_fine() {
    let sweep = SweepRunner::new().run("empty", Vec::<Job<u64>>::new());
    assert_eq!(sweep.results.len(), 0);
    assert_eq!(sweep.completed.get(), 0);
    let text = sweep.manifest_normalized().pretty();
    assert!(text.contains("\"jobs\": []"));
}

#[test]
fn manifest_written_to_disk() {
    let dir = std::env::temp_dir().join("scotch_runner_manifest_test");
    let _ = std::fs::remove_dir_all(&dir);
    let sweep = SweepRunner::new().run("disk", square_jobs(2));
    let path = scotch_runner::manifest::write(&dir, "disk", &sweep.manifest()).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(path.ends_with("disk.manifest.json"));
    assert!(text.contains("\"schema\": \"scotch-sweep-manifest/v1\""));
    let _ = std::fs::remove_dir_all(&dir);
}
