//! Run-manifest construction and emission.
//!
//! A manifest is the machine-readable record of one sweep: which jobs ran,
//! with which seeds, what they reported, and how long they took. Everything
//! except the explicitly timing-dependent fields is deterministic in the
//! job list and seeds, so CI can diff normalized manifests across runs.

use crate::json::Json;
use crate::pool::Sweep;
use std::io;
use std::path::{Path, PathBuf};

/// Manifest schema identifier, bumped on breaking layout changes.
pub const SCHEMA: &str = "scotch-sweep-manifest/v1";

/// Build the manifest document. `with_timing` adds the wall-clock fields;
/// normalized manifests (`with_timing = false`) are byte-identical across
/// reruns of the same jobs and seeds.
pub fn build<T>(sweep: &Sweep<T>, with_timing: bool) -> Json {
    let jobs: Vec<Json> = sweep
        .results
        .iter()
        .map(|r| {
            let mut kpis = Json::obj();
            for (name, value) in &r.kpis {
                kpis = kpis.set(name, *value);
            }
            let mut job = Json::obj()
                .set("id", r.id.as_str())
                .set("seed", r.seed)
                .set("status", if r.outcome.is_ok() { "ok" } else { "panicked" })
                .set("units", r.units)
                .set("kpis", kpis);
            if !r.metrics.is_empty() {
                let mut metrics = Json::obj();
                for (name, value) in &r.metrics {
                    metrics = metrics.set(name, *value);
                }
                job = job.set("metrics", metrics);
            }
            if !r.checks.is_empty() {
                let mut checks = Json::obj();
                for (name, verdict) in &r.checks {
                    checks = checks.set(name, verdict.as_str());
                }
                job = job.set("checks", checks);
            }
            if let Err(message) = &r.outcome {
                job = job.set("panic", message.as_str());
            }
            if with_timing {
                job = job
                    .set("wall_ms", r.wall.as_secs_f64() * 1e3)
                    .set("units_per_sec", r.units_per_sec());
                if !r.timings.is_empty() {
                    let mut timing = Json::obj();
                    for (name, value) in &r.timings {
                        timing = timing.set(name, *value);
                    }
                    job = job.set("timing", timing);
                }
            }
            job
        })
        .collect();

    let mut doc = Json::obj()
        .set("schema", SCHEMA)
        .set("name", sweep.name.as_str())
        .set("jobs", Json::Arr(jobs))
        .set("ok", sweep.completed.get())
        .set("failed", sweep.failed.get());
    if with_timing {
        doc = doc.set(
            "timing",
            Json::obj()
                .set("threads", sweep.threads)
                .set("total_wall_ms", sweep.wall.as_secs_f64() * 1e3)
                .set("jobs_per_sec", sweep.jobs_per_sec())
                .set("job_wall_us_p50", sweep.timing_us.quantile(0.5))
                .set("job_wall_us_p99", sweep.timing_us.quantile(0.99))
                .set("steals", sweep.steals.get())
                .set("queue_depth_p50", sweep.queue_depth.quantile(0.5))
                .set("queue_depth_max", sweep.queue_depth.max()),
        );
    }
    doc
}

/// Write `manifest` as `<dir>/<name>.manifest.json`, creating `dir` as
/// needed, and return the path.
pub fn write(dir: &Path, name: &str, manifest: &Json) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.manifest.json"));
    std::fs::write(&path, manifest.pretty())?;
    Ok(path)
}
